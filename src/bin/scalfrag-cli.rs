//! `scalfrag-cli` — run the ScalFrag stack on real `.tns` tensors (or the
//! built-in synthetic presets) from the command line.
//!
//! ```text
//! scalfrag-cli info   <tensor>                      inspect a tensor + features
//! scalfrag-cli mttkrp <tensor> [--mode M] [--rank R] [--backend scalfrag|parti|cpu]
//! scalfrag-cli cpd    <tensor> [--rank R] [--iters N] [--backend ...]
//! scalfrag-cli tune   <tensor> [--mode M] [--rank R]  compare tuning strategies
//! scalfrag-cli trace  <tensor> [--out FILE]           export a Chrome trace
//! ```
//!
//! `<tensor>` is a `.tns` path, or `preset:<name>[@scale]` for one of the
//! Table III stand-ins (e.g. `preset:nell-2@512`).

use scalfrag::autotune::tuner::{tune, TuningStrategy};
use scalfrag::autotune::LaunchPredictor;
use scalfrag::gpusim::{trace, DeviceSpec};
use scalfrag::kernels::{cpd_als, CpdOptions, CpuParallelBackend, MttkrpBackend};
use scalfrag::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: scalfrag-cli <info|mttkrp|cpd|tune|trace> <tensor> [options]\n\
         tensor: a FROSTT .tns file path, or preset:<name>[@scale]\n\
         options: --mode M  --rank R  --iters N  --backend scalfrag|parti|cpu  --out FILE"
    );
    std::process::exit(2);
}

struct Args {
    cmd: String,
    tensor: String,
    mode: usize,
    rank: usize,
    iters: usize,
    backend: String,
    out: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        usage();
    }
    let mut a = Args {
        cmd: argv[0].clone(),
        tensor: argv[1].clone(),
        mode: 0,
        rank: 16,
        iters: 10,
        backend: "scalfrag".into(),
        out: None,
    };
    let mut i = 2;
    while i < argv.len() {
        let need = |i: usize| argv.get(i + 1).unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--mode" => a.mode = need(i).parse().unwrap_or_else(|_| usage()),
            "--rank" => a.rank = need(i).parse().unwrap_or_else(|_| usage()),
            "--iters" => a.iters = need(i).parse().unwrap_or_else(|_| usage()),
            "--backend" => a.backend = need(i).clone(),
            "--out" => a.out = Some(need(i).clone()),
            _ => usage(),
        }
        i += 2;
    }
    a
}

fn load_tensor(spec: &str) -> CooTensor {
    if let Some(rest) = spec.strip_prefix("preset:") {
        let (name, scale) = match rest.split_once('@') {
            Some((n, s)) => (n, s.parse().unwrap_or_else(|_| usage())),
            None => (rest, 512u64),
        };
        let preset = scalfrag::tensor::frostt::by_name(name).unwrap_or_else(|| {
            eprintln!("unknown preset '{name}'; available:");
            for p in scalfrag::tensor::frostt::all_presets() {
                eprintln!("  {}", p.name);
            }
            std::process::exit(2);
        });
        eprintln!("materialising preset {name} at 1/{scale} scale...");
        preset.materialize(scale)
    } else {
        match scalfrag::tensor::io::read_tns_file(spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read '{spec}': {e}");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args = parse_args();
    let tensor = load_tensor(&args.tensor);
    if args.mode >= tensor.order() {
        eprintln!("mode {} out of range for an order-{} tensor", args.mode, tensor.order());
        std::process::exit(2);
    }

    match args.cmd.as_str() {
        "info" => cmd_info(&tensor, args.mode),
        "mttkrp" => cmd_mttkrp(&tensor, &args),
        "cpd" => cmd_cpd(&tensor, &args),
        "tune" => cmd_tune(&tensor, &args),
        "trace" => cmd_trace(&tensor, &args),
        _ => usage(),
    }
}

fn cmd_info(tensor: &CooTensor, mode: usize) {
    println!("order     : {}", tensor.order());
    println!("dims      : {:?}", tensor.dims());
    println!("nnz       : {}", tensor.nnz());
    println!("density   : {:.3e}", tensor.density());
    println!("COO bytes : {}", tensor.byte_size());
    let f = TensorFeatures::extract(tensor, mode);
    println!("-- mode-{mode} features (SS IV-B) --");
    println!("numSlices       : {}", f.num_slices);
    println!("numFibers       : {}", f.num_fibers);
    println!("sliceRatio      : {:.4}", f.slice_ratio);
    println!("fiberRatio      : {:.4}", f.fiber_ratio);
    println!("maxNnzPerSlice  : {}", f.max_nnz_per_slice);
    println!("avgNnzPerSlice  : {:.2}", f.avg_nnz_per_slice);
    println!("sliceImbalance  : {:.2}", f.slice_imbalance);
}

fn cmd_mttkrp(tensor: &CooTensor, args: &Args) {
    let factors = FactorSet::random(tensor.dims(), args.rank, 42);
    match args.backend.as_str() {
        "scalfrag" => {
            let ctx = ScalFrag::builder().build();
            let r = ctx.mttkrp(tensor, &factors, args.mode);
            println!("{}", r.summary());
        }
        "parti" => {
            let r = Parti::rtx3090().mttkrp(tensor, &factors, args.mode);
            println!("{}", r.summary());
        }
        "cpu" => {
            let t0 = std::time::Instant::now();
            let m = scalfrag::kernels::reference::mttkrp_par(tensor, &factors, args.mode);
            println!(
                "cpu-par   mode-{} | wall {:.3}ms | output {}x{} (Frobenius {:.4})",
                args.mode,
                t0.elapsed().as_secs_f64() * 1e3,
                m.rows(),
                m.cols(),
                m.frob_norm()
            );
        }
        other => {
            eprintln!("unknown backend '{other}'");
            std::process::exit(2);
        }
    }
}

fn cmd_cpd(tensor: &CooTensor, args: &Args) {
    let opts = CpdOptions {
        rank: args.rank,
        max_iters: args.iters,
        tol: 1e-4,
        seed: 42,
        nonnegative: false,
    };
    let run = |backend: &mut dyn MttkrpBackend| {
        let t0 = std::time::Instant::now();
        let res = cpd_als(tensor, &opts, backend);
        println!(
            "{:<9} rank {} | {} sweeps | fit {:.4} | wall {:.2}s",
            backend.name(),
            args.rank,
            res.iters,
            res.final_fit(),
            t0.elapsed().as_secs_f64()
        );
        for (i, fit) in res.fits.iter().enumerate() {
            println!("  sweep {:>2}: fit {fit:.5}", i + 1);
        }
    };
    match args.backend.as_str() {
        "scalfrag" => {
            let ctx = ScalFrag::builder().build();
            let mut b = ctx.backend();
            run(&mut b);
            println!("simulated device seconds: {:.4}", b.simulated_seconds);
        }
        "parti" => {
            let parti = Parti::rtx3090();
            let mut b = parti.backend();
            run(&mut b);
            println!("simulated device seconds: {:.4}", b.simulated_seconds);
        }
        "cpu" => run(&mut CpuParallelBackend),
        other => {
            eprintln!("unknown backend '{other}'");
            std::process::exit(2);
        }
    }
}

fn cmd_tune(tensor: &CooTensor, args: &Args) {
    let device = DeviceSpec::rtx3090();
    let space = LaunchConfig::sweep_space(&device);
    eprintln!("training the launch predictor (one-off)...");
    let predictor = LaunchPredictor::train_default(&device, args.rank as u32, 1);
    println!(
        "{:<12} {:>22} {:>10} {:>12} {:>14}",
        "strategy", "chosen", "quality", "measure", "amortise-after"
    );
    for strat in [
        TuningStrategy::ModelGuided,
        TuningStrategy::Random(8),
        TuningStrategy::Random(32),
        TuningStrategy::Exhaustive,
    ] {
        let o = tune(&device, tensor, args.mode, args.rank as u32, &space, strat, Some(&predictor));
        println!(
            "{:<12} {:>22} {:>9.3}x {:>10.3}ms {:>12.1} runs",
            o.strategy,
            format!("{}", o.chosen),
            o.quality(),
            o.measure_cost_s * 1e3,
            o.amortisation_runs()
        );
    }
}

fn cmd_trace(tensor: &CooTensor, args: &Args) {
    let factors = FactorSet::random(tensor.dims(), args.rank, 42);
    let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(4096, 256)).build();
    let r = ctx.mttkrp_dry(tensor, &factors, args.mode);
    println!("{}", r.summary());
    // Re-run through the pipeline to capture the timeline for export.
    let mut sorted = tensor.clone();
    sorted.sort_for_mode(args.mode);
    let plan = scalfrag::pipeline::PipelinePlan::new(
        &sorted,
        args.mode,
        LaunchConfig::new(4096, 256),
        4,
        4,
    );
    let mut gpu = scalfrag::gpusim::Gpu::new(DeviceSpec::rtx3090());
    let run = scalfrag::pipeline::execute_pipelined(
        &mut gpu,
        &sorted,
        &factors,
        &plan,
        scalfrag::pipeline::KernelChoice::Tiled,
        scalfrag::exec::ExecMode::Dry,
    );
    let path = args.out.clone().unwrap_or_else(|| "scalfrag_trace.json".into());
    let file = std::fs::File::create(&path).expect("create trace file");
    trace::write_chrome_trace(&run.timeline, file).expect("write trace");
    println!("wrote Chrome trace to {path} (open at chrome://tracing or ui.perfetto.dev)");
    println!("{}", run.timeline.ascii_gantt(90));
}
