//! # ScalFrag
//!
//! A full-system Rust reproduction of *“ScalFrag: Efficient Tiled-MTTKRP
//! with Adaptive Launching on GPUs”* (IEEE CLUSTER 2024).
//!
//! This facade crate re-exports every sub-crate of the workspace so that
//! downstream users can depend on a single `scalfrag` crate:
//!
//! * [`tensor`] — sparse tensor formats (COO, CSF, HiCOO-lite), synthetic
//!   FROSTT-like dataset generators, feature extraction and `.tns` I/O.
//! * [`linalg`] — the small dense linear algebra CPD-ALS needs (Gram,
//!   Hadamard, Khatri-Rao, pseudo-inverse).
//! * [`gpusim`] — the GPU execution simulator substrate: device model,
//!   occupancy, streams, copy engines and the analytic kernel cost model.
//! * [`kernels`] — MTTKRP kernels (CPU reference, ParTI-style COO atomic,
//!   ScalFrag shared-memory tiled, CSF) and the CPD-ALS driver.
//! * [`balance`] — the load-imbalance-immune kernel arms: the Nisa-style
//!   load-balanced segmented-scan kernel over fixed-nnz chunks (bit-stable
//!   across chunk counts) and the FLYCOO-style mode-agnostic kernel whose
//!   single tensor copy plus per-mode remap tables serves every CPD-ALS
//!   mode without re-tiling.
//! * [`autotune`] — the adaptive launching strategy: from-scratch ML models
//!   (CART, bagging, AdaBoost.R2, kNN, ridge) mapping tensor features to
//!   launch configurations.
//! * [`pipeline`] — tensor segmentation, CUDA-stream-style scheduling and
//!   the pipelined transfer/compute overlap of §IV-C.
//! * [`exec`] — the ScheduleIR execution engine: every path above lowers
//!   to one typed [`exec::Plan`] DAG, and one fault-aware interpreter
//!   executes it (dry-run, retry/backoff and shard re-placement are
//!   interpreter modes, not separate code paths).
//! * [`opt`] — the pass-based plan optimizer over the ScheduleIR:
//!   transfer coalescing, copy/compute overlap re-streaming, dead-op
//!   elimination, eviction sinking / prefetch hoisting, each with a
//!   machine-checked safety contract, plus a cost-model-guided orderer
//!   that picks the best pass pipeline per plan.
//! * [`cluster`] — multi-GPU sharded MTTKRP: node/interconnect model,
//!   shard policies, device-level scheduling and the cross-device
//!   reduction stage.
//! * [`core`] — the end-to-end [`core::ScalFrag`] framework facade, the
//!   [`core::Parti`] baseline it is evaluated against, and the
//!   multi-GPU [`core::ClusterScalFrag`] facade.
//! * [`serve`] — the multi-tenant serving layer: job queue with priority +
//!   EDF scheduling and tenant fairness, admission control with typed
//!   rejections, an LRU plan cache over quantized tensor features, and
//!   per-job/aggregate serving reports.
//! * [`oom`] — out-of-core streaming MTTKRP: double-buffered segment
//!   staging under a configurable device-memory budget with `Evict` /
//!   `Prefetch` ScheduleIR ops, plus synthetic ≥1B-nnz presets executed
//!   as virtual (analytic-workload) plans.
//! * [`host`] — the work-stealing host executor: Chase-Lev deques, a
//!   parking worker pool, order-preserving `par_map`/`par_for` helpers
//!   and the thread-count-invariance test harness. Kernel inner loops
//!   and the conformance corpus runner fan out through it while staying
//!   bit-identical at every pool size.
//! * [`conformance`] — the conformance harness: a slow `f64` differential
//!   MTTKRP oracle with a seeded property-based corpus, a metamorphic
//!   invariant catalogue, and the simulated-race checker driver.
//! * [`faults`] — deterministic fault injection (device failures, transfer
//!   corruption, kernel aborts, stragglers) and the recovery machinery:
//!   segment retries in [`pipeline`], shard re-placement in [`cluster`],
//!   job requeue in [`serve`] and checkpoint/rollback in [`kernels`].
//!
//! ## Quickstart
//!
//! ```
//! use scalfrag::prelude::*;
//!
//! // A small synthetic 3-way tensor, rank-8 factors.
//! let tensor = CooTensor::random_uniform(&[64, 48, 32], 2_000, 1);
//! let factors = FactorSet::random(tensor.dims(), 8, 42);
//!
//! // End-to-end MTTKRP through the ScalFrag stack (tiled kernel +
//! // pipelined transfers) on a simulated RTX 3090. A fixed launch
//! // configuration skips the adaptive-launch training for this example;
//! // the default builder trains a DecisionTree predictor instead.
//! let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(512, 256)).build();
//! let report = ctx.mttkrp(&tensor, &factors, 0);
//! assert!(report.timing.total_s > 0.0);
//! ```

pub use scalfrag_autotune as autotune;
pub use scalfrag_balance as balance;
pub use scalfrag_cluster as cluster;
pub use scalfrag_conformance as conformance;
pub use scalfrag_core as core;
pub use scalfrag_exec as exec;
pub use scalfrag_faults as faults;
pub use scalfrag_gpusim as gpusim;
pub use scalfrag_host as host;
pub use scalfrag_kernels as kernels;
pub use scalfrag_linalg as linalg;
pub use scalfrag_oom as oom;
pub use scalfrag_opt as opt;
pub use scalfrag_pipeline as pipeline;
pub use scalfrag_serve as serve;
pub use scalfrag_tensor as tensor;

/// Convenient glob-importable re-exports of the most used types.
pub mod prelude {
    pub use scalfrag_cluster::{
        execute_cluster_resilient, DeviceScheduler, FaultRecoveryPolicy, Interconnect, NodeSpec,
        RecoveryMode, ResilientClusterRun, ShardPolicy,
    };
    pub use scalfrag_conformance::{oracle_mttkrp, run_differential, ConformanceReport};
    pub use scalfrag_core::{
        ClusterMttkrpReport, ClusterScalFrag, MttkrpReport, Parti, ResilientClusterMttkrpReport,
        ScalFrag,
    };
    pub use scalfrag_exec::{run_plan, ExecMode, Plan, PlanBuilder, PlanTrace};
    pub use scalfrag_faults::{
        DeviceHealth, FaultInjector, FaultKind, FaultLog, FaultPlan, FaultTrigger,
    };
    pub use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
    pub use scalfrag_kernels::{FactorSet, MttkrpBackend};
    pub use scalfrag_linalg::Mat;
    pub use scalfrag_pipeline::RetryPolicy;
    pub use scalfrag_serve::{
        AdmissionPolicy, DevicePool, MttkrpJob, ScalFragServer, ServeReport, WorkloadSpec,
    };
    pub use scalfrag_tensor::{CooTensor, CsfTensor, FeatureKey, TensorFeatures};
}
