//! Tensor sharding: partitioning one COO tensor into contiguous,
//! nnz-balanced pieces for the devices of a node.
//!
//! Both policies reuse the single-GPU segmentation machinery of
//! `scalfrag_tensor::segment`; the difference is what the reduction stage
//! later has to pay:
//!
//! * [`ShardPolicy::SliceAligned`] cuts on mode-slice boundaries, so every
//!   output row is written by exactly one shard and the cross-device merge
//!   is free (each device returns its disjoint row block).
//! * [`ShardPolicy::NnzBalanced`] cuts anywhere for perfect nnz balance,
//!   so rows can straddle shards and the partial outputs must be summed.

use scalfrag_tensor::segment::{
    mode_index_bounds, segment_by_nnz, segment_on_slice_boundaries, Segment,
};
use scalfrag_tensor::{CooTensor, Idx};

/// How the tensor is cut into shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Perfect nnz balance; output rows may straddle shards (reduction
    /// pays a cross-shard sum).
    NnzBalanced,
    /// Cuts on slice boundaries; each output row owned by one shard
    /// (reduction is free), at the cost of some nnz imbalance.
    SliceAligned,
}

/// One contiguous piece of the sharded tensor.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Position in the global shard order (the reduction folds partial
    /// outputs in this order, which keeps numerics device-count-invariant).
    pub index: usize,
    /// Entry range in the mode-sorted parent tensor.
    pub range: Segment,
    /// The materialised piece (inherits the parent's sort order).
    pub tensor: CooTensor,
    /// Inclusive `(first, last)` owned mode-index bounds. Disjoint across
    /// shards for [`ShardPolicy::SliceAligned`]; `None` for nnz-balanced
    /// shards, which have no row-exclusivity guarantee.
    pub rows: Option<(Idx, Idx)>,
}

impl Shard {
    /// Non-zeros in this shard.
    pub fn nnz(&self) -> usize {
        self.range.nnz()
    }

    /// Bytes of the shard's device COO layout.
    pub fn byte_size(&self) -> usize {
        self.range.byte_size(self.tensor.order())
    }
}

/// Cuts a *mode-sorted* tensor into at most `num_shards` shards under
/// `policy`. Returns fewer shards when the tensor is too small (or, for
/// slice-aligned cuts, too skewed) to honour the request; never returns
/// an empty shard for a non-empty tensor.
///
/// # Panics
/// Panics if `num_shards == 0` or `tensor` is not sorted for `mode`.
pub fn shard_tensor(
    tensor: &CooTensor,
    mode: usize,
    policy: ShardPolicy,
    num_shards: usize,
) -> Vec<Shard> {
    assert!(num_shards > 0, "need at least one shard");
    let order = tensor.mode_order(mode);
    assert!(
        tensor.is_sorted_by_order(&order),
        "tensor must be sorted for mode {mode} before sharding"
    );
    let segments = match policy {
        ShardPolicy::NnzBalanced => segment_by_nnz(tensor.nnz(), num_shards),
        ShardPolicy::SliceAligned => segment_on_slice_boundaries(tensor, mode, num_shards),
    };
    segments
        .into_iter()
        .enumerate()
        .map(|(index, range)| {
            let rows = match policy {
                ShardPolicy::SliceAligned => mode_index_bounds(tensor, mode, &range),
                ShardPolicy::NnzBalanced => None,
            };
            Shard { index, tensor: tensor.slice_range(range.start, range.end), range, rows }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_tensor() -> CooTensor {
        let mut t = scalfrag_tensor::gen::zipf_slices(&[60, 40, 30], 3_000, 0.8, 17);
        t.sort_for_mode(0);
        t
    }

    #[test]
    fn nnz_balanced_shards_partition_exactly() {
        let t = sorted_tensor();
        let shards = shard_tensor(&t, 0, ShardPolicy::NnzBalanced, 4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(Shard::nnz).sum();
        assert_eq!(total, t.nnz());
        let max = shards.iter().map(Shard::nnz).max().unwrap();
        let min = shards.iter().map(Shard::nnz).min().unwrap();
        assert!(max - min <= 1, "nnz-balanced shards must be near-equal");
    }

    #[test]
    fn slice_aligned_shards_own_disjoint_row_ranges() {
        let t = sorted_tensor();
        let shards = shard_tensor(&t, 0, ShardPolicy::SliceAligned, 4);
        let total: usize = shards.iter().map(Shard::nnz).sum();
        assert_eq!(total, t.nnz());
        for w in shards.windows(2) {
            let (_, hi) = w[0].rows.unwrap();
            let (lo, _) = w[1].rows.unwrap();
            assert!(hi < lo, "owned row ranges must be disjoint and ordered");
        }
    }

    #[test]
    fn shard_tensors_concatenate_to_the_parent() {
        let t = sorted_tensor();
        for policy in [ShardPolicy::NnzBalanced, ShardPolicy::SliceAligned] {
            let shards = shard_tensor(&t, 0, policy, 3);
            let mut vals = Vec::new();
            for s in &shards {
                vals.extend_from_slice(s.tensor.values());
            }
            assert_eq!(vals, t.values(), "{policy:?}");
        }
    }

    #[test]
    #[should_panic(expected = "sorted for mode")]
    fn unsorted_tensor_is_rejected() {
        let t = scalfrag_tensor::gen::uniform(&[30, 30, 30], 500, 3);
        let _ = shard_tensor(&t, 2, ShardPolicy::SliceAligned, 2);
    }
}
