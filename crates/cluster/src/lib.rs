//! # scalfrag-cluster
//!
//! Multi-GPU sharded MTTKRP on the simulated-GPU substrate: one tensor,
//! `N` simulated devices, an interconnect model, and a reduction stage —
//! the strong-scaling extension of the single-device ScalFrag pipeline.
//!
//! The flow mirrors the single-GPU stack, lifted one level:
//!
//! 1. **Node model** ([`node`]) — `N` (possibly heterogeneous) devices
//!    behind a host, with per-link PCIe, shared-host-bandwidth contention,
//!    or NVLink-style peer lanes.
//! 2. **Sharding** ([`shard`]) — the mode-sorted COO tensor is cut into
//!    contiguous shards, either perfectly nnz-balanced or aligned to slice
//!    boundaries so output rows never straddle devices.
//! 3. **Scheduling** ([`schedule`]) — shards are placed round-robin or by
//!    speed-weighted LPT (which is what makes a 3090 + 3060 node finish
//!    together instead of waiting on the slow card).
//! 4. **Plan building** ([`builders`]) — the schedule lowers to a
//!    multi-device [`scalfrag_exec::Plan`], carrying the node-aware
//!    placement callbacks as a [`scalfrag_exec::ClusterPolicy`].
//! 5. **Execution** ([`executor`], [`resilient`]) — thin wrappers hand
//!    the plan to the single interpreter in `scalfrag-exec`; dry runs are
//!    its [`scalfrag_exec::ExecMode::Dry`], fault injection its resilient
//!    mode.
//!
//! Numerics are decoupled from placement: partial outputs live per
//! *shard* and fold in shard-index order, so for a fixed shard count the
//! result is bitwise identical across device counts and schedulers.

pub mod builders;
pub mod executor;
pub mod node;
pub mod resilient;
pub mod schedule;
pub mod shard;

pub use builders::{build_cluster_plan, plan_builders, NodePlacement};
pub use executor::{execute_cluster, ClusterOptions, ClusterRun, DeviceRun};
pub use node::{Interconnect, NodeSpec};
pub use resilient::{
    execute_cluster_resilient, FaultRecoveryPolicy, RecoveryMode, ResilientClusterRun,
};
pub use scalfrag_exec::ExecMode;
pub use schedule::{assign_shards, DeviceScheduler};
pub use shard::{shard_tensor, Shard, ShardPolicy};
