//! Plan builder: lowers a multi-device cluster schedule (shard →
//! per-device pipeline → reduce) into a ScheduleIR [`Plan`] for the
//! `scalfrag-exec` interpreter. Pure construction — no simulated time
//! passes here.
//!
//! The node/interconnect knowledge the interpreter must not own —
//! initial placement, re-placement of orphaned work, the analytic
//! reduction cost — travels with the plan as a [`ClusterPolicy`]
//! implementation ([`NodePlacement`]).

use crate::executor::{reduction_seconds, shard_output_bytes, ClusterOptions};
use crate::node::NodeSpec;
use crate::schedule::{assign_shards, DeviceScheduler};
use crate::shard::{shard_tensor, Shard, ShardPolicy};
use scalfrag_exec::{
    ClusterPolicy, DeviceOps, KernelChoice, PlaceStrategy, Plan, PlanBuilder, PlanMeta, Reduce,
    ShardDesc, ShardWork, WorkUnit,
};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::segment::{segment_by_nnz, Segment};
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

/// The placement callbacks a cluster plan carries: assignment over the
/// healthy devices (re-running the scheduler on a sub-node that preserves
/// device order), the re-placement strategy, the per-device speed proxy
/// and the analytic reduction cost.
pub struct NodePlacement {
    node: NodeSpec,
    shards: Vec<Shard>,
    scheduler: DeviceScheduler,
    rank: usize,
    rows: usize,
}

impl ClusterPolicy for NodePlacement {
    fn assign(&self, alive: &[usize]) -> Vec<Vec<usize>> {
        // `assign_shards` always sees the FULL shard list (its round-robin
        // branch keys on global shard indices), on a sub-node preserving
        // device order; results map back through `alive`.
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); self.node.num_devices()];
        if alive.is_empty() {
            return assignment;
        }
        let sub = NodeSpec {
            devices: alive.iter().map(|&d| self.node.devices[d].clone()).collect(),
            host: self.node.host.clone(),
            interconnect: self.node.interconnect,
        };
        for (k, list) in
            assign_shards(&self.shards, &sub, self.scheduler, self.rank).into_iter().enumerate()
        {
            assignment[alive[k]] = list;
        }
        assignment
    }

    fn strategy(&self) -> PlaceStrategy {
        match self.scheduler {
            DeviceScheduler::RoundRobin => PlaceStrategy::RoundRobin,
            DeviceScheduler::Lpt => PlaceStrategy::Lpt,
        }
    }

    fn speed_proxy(&self, d: usize) -> f64 {
        self.node.device_speed_proxy(d, self.rank)
    }

    fn reduction_s(&self, assignment: &[Vec<usize>]) -> f64 {
        reduction_seconds(&self.node, &self.shards, assignment, self.rows, self.rank)
    }
}

/// Lowers one cluster MTTKRP: the mode-sorted tensor is sharded, shards
/// are placed by the scheduler, and each device's shards become pipelined
/// `H2D → Launch` units on round-robin streams with a per-shard partial
/// D2H on a dedicated return stream (absent under peer reduction).
pub fn build_cluster_plan(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
) -> Plan {
    assert!(opts.segments_per_shard > 0, "need at least one segment per shard");
    assert!(opts.streams_per_device > 0, "need at least one stream per device");
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let out_bytes = (rows * rank * 4) as u64;
    let factors_bytes = factors.byte_size() as u64;

    let mut sorted = tensor.clone();
    sorted.sort_for_mode(mode);
    let order = sorted.order();
    let shards = shard_tensor(&sorted, mode, opts.policy, opts.num_shards);
    let assignment = assign_shards(&shards, node, opts.scheduler, rank);
    let seg_lists: Vec<Vec<Segment>> =
        shards.iter().map(|s| segment_by_nnz(s.nnz(), opts.segments_per_shard)).collect();

    // Peer-linked nodes gather row-overlapping partials device-to-device,
    // so the per-shard D2H hop disappears from the device timelines.
    let peer_reduce =
        opts.policy == ShardPolicy::NnzBalanced && node.peer_bandwidth_gbs().is_some();

    let shard_descs: Vec<ShardDesc> = shards
        .iter()
        .map(|s| ShardDesc { index: s.index, tensor: Arc::new(s.tensor.clone()), rows: s.rows })
        .collect();

    let mut devices = Vec::with_capacity(node.num_devices());
    for (d, shard_indices) in assignment.iter().enumerate() {
        let spec = node.effective_device(d);
        let mut units: Vec<WorkUnit> = Vec::new();
        let mut shard_work: Vec<ShardWork> = Vec::new();
        for &si in shard_indices {
            let d2h_bytes = shard_output_bytes(&shards[si], rank, out_bytes);
            let mut unit_ids = Vec::with_capacity(seg_lists[si].len());
            for (j, seg) in seg_lists[si].iter().enumerate() {
                let bytes = seg.byte_size(order) as u64;
                unit_ids.push(units.len());
                units.push(WorkUnit {
                    shard: si,
                    segment: j,
                    seg: seg.clone(),
                    stream: None, // the device's round-robin counter places it
                    alloc: Some((bytes, "segment must fit")),
                    h2d_bytes: bytes,
                    h2d_label: format!("shard{si} seg{j} H2D"),
                    kernel_label: format!("shard{si} seg{j} kernel"),
                    workload: None,
                });
            }
            shard_work.push(ShardWork {
                shard: si,
                output_alloc: Some((d2h_bytes, "shard output must fit")),
                units: unit_ids,
                d2h: (!peer_reduce).then(|| (d2h_bytes, format!("shard{si} D2H"))),
            });
        }
        devices.push(DeviceOps {
            device: d,
            name: spec.name,
            spec,
            host: Some(node.host.clone()),
            worker_streams: opts.streams_per_device,
            dedicated_d2h: true,
            residue: None,
            prologue_allocs: vec![(factors_bytes, "factor matrices must fit on each device")],
            units,
            shard_work,
            final_d2h: None,
            shard_list: shard_indices.clone(),
            skip_if_idle: true,
            program: None,
        });
    }

    let reduction_s = reduction_seconds(node, &shards, &assignment, rows, rank);
    let policy =
        NodePlacement { node: node.clone(), shards, scheduler: opts.scheduler, rank, rows };
    Plan {
        name: "scalfrag-cluster",
        mode,
        rank,
        rows,
        order,
        config: opts.config,
        kernel: opts.kernel,
        factors: Arc::new(factors.clone()),
        factors_bytes,
        seg_lists,
        shards: shard_descs,
        devices,
        reduce: Reduce::FoldShards,
        reduction_s,
        peer_reduce,
        replay_spec: node.effective_device(0),
        cluster: Some(Arc::new(policy)),
        sync_after_prologue: true,
        resilient_prologue: vec![(factors_bytes, "factor matrices must fit")],
        seg_alloc_what: "segment must fit",
        static_streams: None,
        tag_shards: true,
        meta: PlanMeta {
            segment_map: format!(
                "{} shard(s) ({:?}) × {} segment(s), {:?} over {} device(s)",
                opts.num_shards,
                opts.policy,
                opts.segments_per_shard,
                opts.scheduler,
                node.num_devices(),
            ),
            predictor: "fixed config".to_string(),
            retry: None,
            optimizer: String::new(),
            batch_jobs: 0,
        },
    }
}

/// The cluster crate's registered plan builders (mirroring the
/// conformance path backends).
pub fn plan_builders() -> Vec<PlanBuilder> {
    let cfg = LaunchConfig::new(512, 256);
    let node = |n: usize| NodeSpec::homogeneous(DeviceSpec::rtx3090(), n);
    vec![
        PlanBuilder::new("cluster-rr-nnz", move |tensor, factors, mode| {
            let mut opts = ClusterOptions::new(cfg, 4);
            opts.kernel = KernelChoice::Tiled;
            opts.scheduler = DeviceScheduler::RoundRobin;
            opts.policy = ShardPolicy::NnzBalanced;
            let mut p = build_cluster_plan(&node(2), tensor, factors, mode, &opts);
            p.name = "cluster-rr-nnz";
            p
        }),
        PlanBuilder::new("cluster-lpt-slice", move |tensor, factors, mode| {
            let mut opts = ClusterOptions::new(cfg, 6);
            opts.kernel = KernelChoice::Tiled;
            opts.scheduler = DeviceScheduler::Lpt;
            opts.policy = ShardPolicy::SliceAligned;
            let mut p = build_cluster_plan(&node(3), tensor, factors, mode, &opts);
            p.name = "cluster-lpt-slice";
            p
        }),
        PlanBuilder::new("cluster-resilient", move |tensor, factors, mode| {
            let opts = ClusterOptions::new(cfg, 6);
            let mut p = build_cluster_plan(&node(3), tensor, factors, mode, &opts);
            p.name = "cluster-resilient";
            p
        }),
    ]
}
