//! Fault-resilient multi-device execution: per-device segment retry plus
//! shard re-placement onto surviving devices.
//!
//! Three policies form the ablation surface of the `fault_storm` bench:
//!
//! * **No-retry** — any fault loses the affected work; a device failure
//!   (even transient) abandons the device. The baseline that shows what
//!   resilience buys.
//! * **Retry** — segments retry in place with exponential backoff
//!   ([`scalfrag_exec::RetryPolicy`]); transient outages are waited out.
//!   Work on a permanently dead device is lost.
//! * **Retry + re-shard** — additionally, when a device dies its
//!   unfinished work is re-placed onto the surviving devices by re-running
//!   the placement policy over the reduced device set, no earlier than the
//!   simulated time the failure was observed.
//!
//! Since the ScheduleIR refactor this module holds no execution loop: it
//! lowers the cluster plan (attaching the retry policy as plan metadata)
//! and hands it to the single resilient interpreter,
//! [`scalfrag_exec::run_plan_resilient`]. The recovery semantics —
//! retry waves, downtime waits, re-placement through the plan's
//! [`scalfrag_exec::ClusterPolicy`], and the functional replay in
//! shard-then-segment order that keeps a fully recovered run bit-identical
//! to the fault-free cluster run — all live there.

use crate::builders::build_cluster_plan;
use crate::executor::{ClusterOptions, DeviceRun};
use crate::node::NodeSpec;
use scalfrag_exec::{run_plan_resilient, ExecMode};
pub use scalfrag_exec::{FaultRecoveryPolicy, RecoveryMode};
use scalfrag_faults::FaultInjector;
use scalfrag_kernels::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

/// The result of one fault-injected cluster MTTKRP.
#[derive(Clone, Debug)]
pub struct ResilientClusterRun {
    /// Output folded from the completed segments (zero or partial rows
    /// where work was lost; all-zero in dry mode).
    pub output: Mat,
    /// Per-device runs, index-aligned with the node's device list.
    pub devices: Vec<DeviceRun>,
    /// Simulated seconds of the cross-shard reduction stage.
    pub reduction_s: f64,
    /// Number of shards actually cut.
    pub num_shards: usize,
    /// Segments (across all shards) whose work was ultimately lost.
    pub failed_segments: usize,
    /// Segments that completed.
    pub completed_segments: usize,
    /// Segments that completed on a device other than their original
    /// placement (the re-shard path).
    pub replaced_segments: usize,
    /// Total segment retries across all devices.
    pub retries: usize,
    /// Devices that were down at start or died during the run.
    pub dead_devices: Vec<usize>,
}

impl ResilientClusterRun {
    /// Cluster makespan: the slowest device plus the reduction stage.
    pub fn makespan(&self) -> f64 {
        self.compute_makespan() + self.reduction_s
    }

    /// Makespan of the compute phase alone (slowest device).
    pub fn compute_makespan(&self) -> f64 {
        self.devices.iter().map(DeviceRun::makespan).fold(0.0, f64::max)
    }

    /// Whether every segment completed (the recovery success criterion).
    pub fn all_complete(&self) -> bool {
        self.failed_segments == 0
    }
}

/// Executes one fault-injected MTTKRP across the node by lowering the
/// cluster schedule to a ScheduleIR plan and handing it to the resilient
/// interpreter (see the module docs for the bit-identity guarantee).
#[allow(clippy::too_many_arguments)]
pub fn execute_cluster_resilient(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
    exec: ExecMode,
) -> ResilientClusterRun {
    let mut plan = build_cluster_plan(node, tensor, factors, mode, opts);
    plan.meta.retry = Some(policy.retry);
    let outcome = run_plan_resilient(&plan, injector, policy, exec);
    let devices = plan
        .devices
        .iter()
        .zip(outcome.device_timelines)
        .zip(outcome.device_shards)
        .map(|((dev, timeline), shard_indices)| DeviceRun {
            device_name: dev.name,
            shard_indices,
            timeline,
        })
        .collect();
    ResilientClusterRun {
        output: outcome.output,
        devices,
        reduction_s: outcome.reduction_s,
        num_shards: plan.shards.len(),
        failed_segments: outcome.total_items - outcome.completed_segments,
        completed_segments: outcome.completed_segments,
        replaced_segments: outcome.replaced_segments,
        retries: outcome.retries,
        dead_devices: outcome.dead_devices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_cluster;
    use crate::shard::ShardPolicy;
    use scalfrag_exec::KernelChoice;
    use scalfrag_faults::{FaultKind, FaultPlan, FaultTrigger};
    use scalfrag_gpusim::{DeviceSpec, LaunchConfig};

    fn setup() -> (CooTensor, FactorSet) {
        let dims = [120u32, 90, 70];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 9_000, 0.8, 41);
        let f = FactorSet::random(&dims, 8, 42);
        (t, f)
    }

    fn opts() -> ClusterOptions {
        let mut o = ClusterOptions::new(LaunchConfig::new(512, 256), 4);
        o.kernel = KernelChoice::Tiled;
        o
    }

    fn bits(m: &Mat) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn fault_free_resilient_is_bit_identical_to_cluster() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Functional);
        let mut inj = FaultInjector::inert();
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry_reshard(),
            ExecMode::Functional,
        );
        assert!(run.all_complete());
        assert_eq!(run.retries, 0);
        assert!(run.dead_devices.is_empty());
        assert_eq!(bits(&base.output), bits(&run.output), "clean run must be bit-identical");
        // Detection is not free: the checksum scans show up in the clock.
        assert!(run.makespan() >= base.makespan());
    }

    #[test]
    fn permanent_death_is_recovered_by_resharding() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Functional);
        let plan = FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: None },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry_reshard(),
            ExecMode::Functional,
        );
        assert!(run.all_complete(), "re-sharding must rescue the dead device's work");
        assert_eq!(run.dead_devices, vec![1]);
        assert!(run.replaced_segments > 0, "rescued segments must be accounted");
        assert!(inj.log().recoveries() > 0);
        assert_eq!(
            bits(&base.output),
            bits(&run.output),
            "recovered run must be bit-identical to fault-free"
        );
    }

    #[test]
    fn without_resharding_a_dead_device_loses_work() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let plan = FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: None },
        );
        for policy in [FaultRecoveryPolicy::retry(), FaultRecoveryPolicy::no_retry()] {
            let mut inj = FaultInjector::new(plan.clone());
            let run = execute_cluster_resilient(
                &node,
                &t,
                &f,
                0,
                &o,
                &mut inj,
                &policy,
                ExecMode::Functional,
            );
            assert!(run.failed_segments > 0, "{policy:?} must demonstrably lose work");
            assert_eq!(run.replaced_segments, 0);
        }
    }

    #[test]
    fn transient_outage_is_waited_out_in_place() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Functional);
        let plan = FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: Some(2e-3) },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry(),
            ExecMode::Functional,
        );
        assert!(run.all_complete(), "transient downtime must be recoverable in place");
        assert!(run.dead_devices.is_empty());
        assert!(run.retries > 0);
        assert_eq!(bits(&base.output), bits(&run.output));
        assert!(run.devices[1].makespan() >= 2e-3, "the outage must show in the clock");
    }

    #[test]
    fn device_down_at_start_is_excluded_from_placement() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Functional);
        let plan = FaultPlan::new().fault(
            0,
            FaultTrigger::AtTime(0.0),
            FaultKind::DeviceFail { down_s: None },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry(),
            ExecMode::Functional,
        );
        assert!(run.all_complete(), "survivors must absorb the full tensor");
        assert_eq!(run.dead_devices, vec![0]);
        assert!(run.devices[0].shard_indices.is_empty());
        assert_eq!(
            bits(&base.output),
            bits(&run.output),
            "placement is timing-only: fewer devices, same bits"
        );
    }

    #[test]
    fn straggler_slows_the_device_but_keeps_numerics() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let mut clean_inj = FaultInjector::inert();
        let clean = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut clean_inj,
            &FaultRecoveryPolicy::retry(),
            ExecMode::Functional,
        );
        let plan = FaultPlan::new().fault(
            0,
            FaultTrigger::AtTime(0.0),
            FaultKind::Straggler { derate: 4.0 },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry(),
            ExecMode::Functional,
        );
        assert!(run.all_complete());
        assert_eq!(bits(&clean.output), bits(&run.output), "slowdown must not touch numerics");
        assert!(
            run.devices[0].makespan() > clean.devices[0].makespan(),
            "a 4x straggler must be visibly slower"
        );
    }

    #[test]
    fn nnz_balanced_recovery_is_bit_identical_too() {
        // Row-straddling shards exercise the FoldShards axpy path under
        // recovery: the replay order must keep the fold deterministic.
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let mut o = opts();
        o.policy = ShardPolicy::NnzBalanced;
        let base = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Functional);
        let plan = FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: None },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry_reshard(),
            ExecMode::Functional,
        );
        assert!(run.all_complete());
        assert_eq!(bits(&base.output), bits(&run.output));
    }
}
