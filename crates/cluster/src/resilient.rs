//! Fault-resilient multi-device execution: per-device segment retry plus
//! shard re-placement onto surviving devices.
//!
//! Three policies form the ablation surface of the `fault_storm` bench:
//!
//! * **No-retry** — any fault loses the affected work; a device failure
//!   (even transient) abandons the device. The baseline that shows what
//!   resilience buys.
//! * **Retry** — segments retry in place with exponential backoff
//!   ([`RetryPolicy`]); transient outages are waited out. Work on a
//!   permanently dead device is lost.
//! * **Retry + re-shard** — additionally, when a device dies its
//!   unfinished work is re-placed onto the surviving devices by re-running
//!   the placement policy over the reduced device set, no earlier than the
//!   simulated time the failure was observed.
//!
//! Numerics follow the same decoupling as the resilient pipeline: the
//! schedule (retries, backoff stalls, downtime waits, re-placements) is
//! timing-only, and the segments that ultimately completed are replayed
//! functionally in shard-then-segment order into the per-shard partial
//! buffers, which fold in shard-index order exactly like
//! [`crate::execute_cluster`]. Because that fold order is placement-
//! invariant, a fully recovered run — even one whose shards finished on
//! different devices than planned — is bit-identical to the fault-free
//! cluster run.

use crate::executor::{fold_partials, reduction_seconds, shard_output_bytes};
use crate::executor::{ClusterOptions, DeviceRun};
use crate::node::NodeSpec;
use crate::schedule::{assign_shards, DeviceScheduler};
use crate::shard::{shard_tensor, Shard, ShardPolicy};
use scalfrag_faults::{DeviceHealth, FaultInjector, OpClass, OpVerdict, RecoveryAction};
use scalfrag_gpusim::{Allocation, Gpu, StreamId, Timeline};
use scalfrag_kernels::{AtomicF32Buffer, FactorSet};
use scalfrag_linalg::Mat;
use scalfrag_pipeline::RetryPolicy;
use scalfrag_tensor::segment::{segment_by_nnz, Segment};
use scalfrag_tensor::CooTensor;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// How far the cluster goes to keep a fault-injected run alive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Lose faulted work; abandon a device on any failure.
    NoRetry,
    /// Retry segments in place; wait out transient outages.
    Retry,
    /// [`RecoveryMode::Retry`] plus re-placement of a dead device's
    /// unfinished work onto survivors.
    RetryReShard,
}

/// The cluster-level recovery policy: a mode plus the segment retry knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRecoveryPolicy {
    /// Recovery mode.
    pub mode: RecoveryMode,
    /// Per-segment retry schedule (ignored under
    /// [`RecoveryMode::NoRetry`]).
    pub retry: RetryPolicy,
}

impl FaultRecoveryPolicy {
    /// The ablation baseline: one attempt, no re-placement.
    pub fn no_retry() -> Self {
        Self { mode: RecoveryMode::NoRetry, retry: RetryPolicy::no_retry() }
    }

    /// In-place retries with the default backoff schedule.
    pub fn retry() -> Self {
        Self { mode: RecoveryMode::Retry, retry: RetryPolicy::default() }
    }

    /// Retries plus shard re-placement — the full recovery stack.
    pub fn retry_reshard() -> Self {
        Self { mode: RecoveryMode::RetryReShard, retry: RetryPolicy::default() }
    }

    /// Same mode with a custom retry schedule.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// The result of one fault-injected cluster MTTKRP.
#[derive(Clone, Debug)]
pub struct ResilientClusterRun {
    /// Output folded from the completed segments (zero or partial rows
    /// where work was lost; all-zero in dry mode).
    pub output: Mat,
    /// Per-device runs, index-aligned with the node's device list.
    pub devices: Vec<DeviceRun>,
    /// Simulated seconds of the cross-shard reduction stage.
    pub reduction_s: f64,
    /// Number of shards actually cut.
    pub num_shards: usize,
    /// Segments (across all shards) whose work was ultimately lost.
    pub failed_segments: usize,
    /// Segments that completed.
    pub completed_segments: usize,
    /// Segments that completed on a device other than their original
    /// placement (the re-shard path).
    pub replaced_segments: usize,
    /// Total segment retries across all devices.
    pub retries: usize,
    /// Devices that were down at start or died during the run.
    pub dead_devices: Vec<usize>,
}

impl ResilientClusterRun {
    /// Cluster makespan: the slowest device plus the reduction stage.
    pub fn makespan(&self) -> f64 {
        self.compute_makespan() + self.reduction_s
    }

    /// Makespan of the compute phase alone (slowest device).
    pub fn compute_makespan(&self) -> f64 {
        self.devices.iter().map(DeviceRun::makespan).fold(0.0, f64::max)
    }

    /// Whether every segment completed (the recovery success criterion).
    pub fn all_complete(&self) -> bool {
        self.failed_segments == 0
    }
}

/// Executes one fault-injected MTTKRP across the node (functional
/// numerics; see the module docs for the bit-identity guarantee).
pub fn execute_cluster_resilient(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
) -> ResilientClusterRun {
    execute_cluster_resilient_impl(node, tensor, factors, mode, opts, injector, policy, true)
}

/// Timing-only variant of [`execute_cluster_resilient`]: identical
/// schedule, retries and fault consumption, zero output.
pub fn execute_cluster_resilient_dry(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
) -> ResilientClusterRun {
    execute_cluster_resilient_impl(node, tensor, factors, mode, opts, injector, policy, false)
}

/// One device's live execution state, kept across re-placement rounds so
/// a survivor can absorb rescued work on its existing clock.
struct Ctx {
    gpu: Gpu,
    streams: Vec<StreamId>,
    d2h_stream: StreamId,
    next_stream: usize,
    allocs: Vec<Allocation>,
    allocated: HashSet<(usize, usize)>,
    done: Vec<(usize, usize)>,
    dead: bool,
}

/// Brings up device `d`: simulated GPU (derated if the device is
/// straggling), streams, factor upload. Synchronised so the clock can be
/// advanced before rescued work lands.
fn make_ctx(node: &NodeSpec, d: usize, derate: f64, factors_bytes: u64, streams: usize) -> Ctx {
    let mut spec = node.effective_device(d);
    if derate > 1.0 {
        spec = spec.derated(derate);
    }
    let mut gpu = Gpu::with_host(spec, node.host.clone());
    let streams: Vec<StreamId> = (0..streams).map(|_| gpu.create_stream()).collect();
    let d2h_stream = gpu.create_stream();
    let allocs = vec![gpu.memory().alloc(factors_bytes).expect("factor matrices must fit")];
    gpu.h2d(streams[0], factors_bytes, "factors H2D");
    let factors_ready = gpu.record_event(streams[0]);
    for &s in &streams[1..] {
        gpu.wait_event(s, factors_ready);
    }
    gpu.synchronize();
    Ctx {
        gpu,
        streams,
        d2h_stream,
        next_stream: 0,
        allocs,
        allocated: HashSet::new(),
        done: Vec::new(),
        dead: false,
    }
}

fn ensure_ctx<'a>(
    ctxs: &'a mut [Option<Ctx>],
    node: &NodeSpec,
    d: usize,
    now_s: f64,
    injector: &mut FaultInjector,
    factors_bytes: u64,
    streams: usize,
) -> &'a mut Ctx {
    if ctxs[d].is_none() {
        let derate = match injector.health_at(d, now_s) {
            DeviceHealth::Straggling { derate } => derate,
            _ => 1.0,
        };
        ctxs[d] = Some(make_ctx(node, d, derate, factors_bytes, streams));
    }
    ctxs[d].as_mut().expect("just created")
}

/// The `(lost, orphans, retries)` outcome of [`drive`]; items are
/// `(shard, segment)` pairs.
type DriveOutcome = (Vec<(usize, usize)>, Vec<(usize, usize)>, usize);

/// Drives `pending` work items (`(shard, segment)` pairs) on device `d`
/// in retry waves, mirroring the resilient pipeline: poll the injector
/// before every H2D and kernel, charge corrupted transfers and aborted
/// kernels, wait out transient outages, back off exponentially between
/// attempts. Returns `(lost, orphans, retries)`: `lost` items hit the
/// attempt cap, `orphans` were unfinished when the device died (the
/// re-shard path may rescue them elsewhere). Completed items accumulate
/// in `ctx.done`; an unrecovered death sets `ctx.dead`.
#[allow(clippy::too_many_arguments)]
fn drive(
    ctx: &mut Ctx,
    d: usize,
    mut pending: Vec<(usize, usize)>,
    shards: &[Shard],
    seg_lists: &[Vec<Segment>],
    order: usize,
    mode: usize,
    factors_arc: &Arc<FactorSet>,
    opts: &ClusterOptions,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
) -> DriveOutcome {
    let retry_allowed = policy.mode != RecoveryMode::NoRetry;
    let mut att: HashMap<(usize, usize), u32> = HashMap::new();
    let mut lost = Vec::new();
    let mut retries = 0usize;
    while !pending.is_empty() {
        let now = ctx.gpu.clock();
        let mut failed: Vec<(usize, usize)> = Vec::new();
        // `Some(until)` once the device goes down this wave; every later
        // poll in the wave sees the same down state from the injector.
        let mut down: Option<Option<f64>> = None;
        for &(si, j) in &pending {
            let a = att.entry((si, j)).or_insert(0);
            *a += 1;
            let attempt = *a;
            let seg = &seg_lists[si][j];
            let stream = ctx.streams[ctx.next_stream % ctx.streams.len()];
            ctx.next_stream += 1;
            if attempt > 1 {
                retries += 1;
                let backoff = policy.retry.backoff_s(attempt);
                if backoff > 0.0 {
                    ctx.gpu.stall(stream, backoff, format!("shard{si} seg{j} backoff"));
                }
                injector.record_recovery(
                    d,
                    now,
                    RecoveryAction::RetrySegment { shard: si, segment: j, attempt },
                );
            }
            let bytes = seg.byte_size(order) as u64;
            if ctx.allocated.insert((si, j)) {
                ctx.allocs.push(ctx.gpu.memory().alloc(bytes).expect("segment must fit"));
            }
            match injector.on_op(d, OpClass::H2D, now) {
                OpVerdict::DeviceDown { until_s } => {
                    down = Some(until_s);
                    failed.push((si, j));
                    continue;
                }
                verdict => {
                    ctx.gpu.h2d(stream, bytes, format!("shard{si} seg{j} H2D try{attempt}"));
                    // ECC-style detection: every transfer pays a host-side
                    // checksum scan over the segment.
                    ctx.gpu.host_task(
                        stream,
                        seg.nnz() as u64,
                        bytes,
                        format!("shard{si} seg{j} checksum"),
                        || {},
                    );
                    if verdict == OpVerdict::Corrupted {
                        failed.push((si, j));
                        continue;
                    }
                }
            }
            match injector.on_op(d, OpClass::Kernel, now) {
                OpVerdict::DeviceDown { until_s } => {
                    down = Some(until_s);
                    failed.push((si, j));
                    continue;
                }
                verdict => {
                    // Timing-only launch even in functional mode: numerics
                    // come from the deterministic replay afterwards, so
                    // retries and re-placement can never reorder the
                    // accumulation.
                    let piece = Arc::new(shards[si].tensor.slice_range(seg.start, seg.end));
                    opts.kernel.enqueue(
                        &mut ctx.gpu,
                        stream,
                        opts.config,
                        piece,
                        Arc::clone(factors_arc),
                        mode,
                        None,
                        format!("shard{si} seg{j} kernel try{attempt}"),
                    );
                    // An aborted kernel is charged its full cost too.
                    if verdict == OpVerdict::Aborted {
                        failed.push((si, j));
                        continue;
                    }
                }
            }
            ctx.done.push((si, j));
        }
        ctx.gpu.synchronize();
        let (keep, dropped): (Vec<_>, Vec<_>) =
            failed.into_iter().partition(|it| retry_allowed && att[it] < policy.retry.max_attempts);
        match down {
            Some(Some(until)) if retry_allowed => {
                // Transient outage: wait it out, then retry the wave.
                ctx.gpu.advance_to(until);
                lost.extend(dropped);
                pending = keep;
            }
            Some(_) => {
                // Permanent failure (or any outage under no-retry): the
                // device is gone; everything unfinished is orphaned and
                // may be rescued by re-placement.
                ctx.dead = true;
                let mut orphans = keep;
                orphans.extend(dropped);
                return (lost, orphans, retries);
            }
            None => {
                lost.extend(dropped);
                pending = keep;
            }
        }
    }
    (lost, Vec::new(), retries)
}

/// Replays the completed items functionally, in shard-then-segment order,
/// on a scratch device — the same per-buffer accumulation order as the
/// fault-free cluster executor, so recovery is invisible to the numerics.
#[allow(clippy::too_many_arguments)]
fn replay_completed_items(
    node: &NodeSpec,
    shards: &[Shard],
    seg_lists: &[Vec<Segment>],
    done: &HashSet<(usize, usize)>,
    buffers: &[Arc<AtomicF32Buffer>],
    factors_arc: &Arc<FactorSet>,
    mode: usize,
    opts: &ClusterOptions,
) {
    let mut scratch = Gpu::new(node.effective_device(0));
    let s = scratch.create_stream();
    for (si, segs) in seg_lists.iter().enumerate() {
        for (j, seg) in segs.iter().enumerate() {
            if !done.contains(&(si, j)) {
                continue;
            }
            opts.kernel.enqueue(
                &mut scratch,
                s,
                opts.config,
                Arc::new(shards[si].tensor.slice_range(seg.start, seg.end)),
                Arc::clone(factors_arc),
                mode,
                Some(Arc::clone(&buffers[si])),
                format!("replay shard{si} seg{j}"),
            );
        }
    }
    scratch.synchronize();
}

#[allow(clippy::too_many_arguments)]
fn execute_cluster_resilient_impl(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
    functional: bool,
) -> ResilientClusterRun {
    assert!(opts.segments_per_shard > 0, "need at least one segment per shard");
    assert!(opts.streams_per_device > 0, "need at least one stream per device");
    assert!(policy.retry.max_attempts >= 1, "at least one attempt is required");
    let n = node.num_devices();
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let out_bytes = (rows * rank * 4) as u64;
    let factors_bytes = factors.byte_size() as u64;

    let mut sorted = tensor.clone();
    sorted.sort_for_mode(mode);
    let order = sorted.order();
    let shards = shard_tensor(&sorted, mode, opts.policy, opts.num_shards);
    let seg_lists: Vec<Vec<Segment>> =
        shards.iter().map(|s| segment_by_nnz(s.nnz(), opts.segments_per_shard)).collect();
    let total_items: usize = seg_lists.iter().map(Vec::len).sum();

    let buffers: Vec<Arc<AtomicF32Buffer>> = shards
        .iter()
        .map(|_| Arc::new(AtomicF32Buffer::new(if functional { rows * rank } else { 0 })))
        .collect();
    let factors_arc = Arc::new(factors.clone());
    let peer_reduce =
        opts.policy == ShardPolicy::NnzBalanced && node.peer_bandwidth_gbs().is_some();

    // Bring-up health check: devices already down at t = 0 receive no
    // work (failure detection at admission is cheap); stragglers run but
    // derated. Mid-run faults are what the recovery modes differ on.
    let mut dead = vec![false; n];
    let mut derate0 = vec![1.0f64; n];
    for d in 0..n {
        match injector.health_at(d, 0.0) {
            DeviceHealth::Down { .. } => dead[d] = true,
            DeviceHealth::Straggling { derate } => derate0[d] = derate,
            DeviceHealth::Healthy => {}
        }
    }
    let alive: Vec<usize> = (0..n).filter(|&d| !dead[d]).collect();

    // Initial placement over the healthy devices only. `assign_shards`
    // always sees the FULL shard list (its round-robin branch keys on
    // global shard indices), on a sub-node preserving device order.
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    if !alive.is_empty() {
        let sub = NodeSpec {
            devices: alive.iter().map(|&d| node.devices[d].clone()).collect(),
            host: node.host.clone(),
            interconnect: node.interconnect,
        };
        for (k, list) in assign_shards(&shards, &sub, opts.scheduler, rank).into_iter().enumerate()
        {
            assignment[alive[k]] = list;
        }
    }
    // Reduction-stage ownership: updated when shards re-place.
    let mut owner: Vec<Option<usize>> = vec![None; shards.len()];
    for (d, list) in assignment.iter().enumerate() {
        for &si in list {
            owner[si] = Some(d);
        }
    }

    let mut ctxs: Vec<Option<Ctx>> = (0..n).map(|_| None).collect();
    let mut lost: Vec<(usize, usize)> = Vec::new();
    let mut orphans: Vec<(usize, usize)> = Vec::new();
    let mut rescued: HashSet<(usize, usize)> = HashSet::new();
    let mut retries = 0usize;
    // Rescued work cannot start before the failure was observed.
    let mut fail_clock = 0.0f64;

    for d in 0..n {
        let items: Vec<(usize, usize)> = assignment[d]
            .iter()
            .flat_map(|&si| (0..seg_lists[si].len()).map(move |j| (si, j)))
            .collect();
        if items.is_empty() {
            continue;
        }
        let ctx =
            ensure_ctx(&mut ctxs, node, d, 0.0, injector, factors_bytes, opts.streams_per_device);
        let (l, o, r) = drive(
            ctx,
            d,
            items,
            &shards,
            &seg_lists,
            order,
            mode,
            &factors_arc,
            opts,
            injector,
            policy,
        );
        retries += r;
        lost.extend(l);
        if !o.is_empty() {
            dead[d] = true;
            fail_clock = fail_clock.max(ctx.gpu.clock());
            orphans.extend(o);
        }
    }

    // Re-placement rounds: re-run the placement policy over the surviving
    // devices for the orphaned work, until everything is placed or no
    // device remains.
    while !orphans.is_empty() {
        if policy.mode != RecoveryMode::RetryReShard {
            lost.append(&mut orphans);
            break;
        }
        let survivors: Vec<usize> = (0..n).filter(|&d| !dead[d]).collect();
        if survivors.is_empty() {
            lost.append(&mut orphans);
            break;
        }
        orphans.sort_unstable();
        let mut by_shard: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for it in orphans.drain(..) {
            by_shard.entry(it.0).or_default().push(it);
        }
        let mut extra: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        match opts.scheduler {
            DeviceScheduler::RoundRobin => {
                for (k, (si, items)) in by_shard.into_iter().enumerate() {
                    let target = survivors[k % survivors.len()];
                    reshard(injector, &mut owner, si, target, fail_clock);
                    rescued.extend(items.iter().copied());
                    extra[target].extend(items);
                }
            }
            DeviceScheduler::Lpt => {
                // LPT over the survivors: projected finish = current
                // device clock + orphan bytes / end-to-end speed proxy.
                let speeds: Vec<f64> =
                    survivors.iter().map(|&d| node.device_speed_proxy(d, rank)).collect();
                let mut load: Vec<f64> = survivors
                    .iter()
                    .map(|&d| ctxs[d].as_ref().map_or(0.0, |c| c.gpu.clock()).max(fail_clock))
                    .collect();
                let group_bytes = |si: usize, items: &[(usize, usize)]| -> u64 {
                    items.iter().map(|&(_, j)| seg_lists[si][j].byte_size(order) as u64).sum()
                };
                let mut groups: Vec<(usize, Vec<(usize, usize)>)> = by_shard.into_iter().collect();
                groups.sort_by(|a, b| {
                    group_bytes(b.0, &b.1).cmp(&group_bytes(a.0, &a.1)).then(a.0.cmp(&b.0))
                });
                for (si, items) in groups {
                    let bytes = group_bytes(si, &items) as f64;
                    let best = (0..survivors.len())
                        .min_by(|&a, &b| {
                            let ca = load[a] + bytes / (speeds[a] * 1e9);
                            let cb = load[b] + bytes / (speeds[b] * 1e9);
                            ca.partial_cmp(&cb).expect("finite loads").then(a.cmp(&b))
                        })
                        .expect("survivors is non-empty");
                    load[best] += bytes / (speeds[best] * 1e9);
                    reshard(injector, &mut owner, si, survivors[best], fail_clock);
                    rescued.extend(items.iter().copied());
                    extra[survivors[best]].extend(items);
                }
            }
        }
        for d in survivors {
            if extra[d].is_empty() {
                continue;
            }
            let ctx = ensure_ctx(
                &mut ctxs,
                node,
                d,
                fail_clock,
                injector,
                factors_bytes,
                opts.streams_per_device,
            );
            ctx.gpu.advance_to(fail_clock);
            let (l, o, r) = drive(
                ctx,
                d,
                std::mem::take(&mut extra[d]),
                &shards,
                &seg_lists,
                order,
                mode,
                &factors_arc,
                opts,
                injector,
                policy,
            );
            retries += r;
            lost.extend(l);
            if !o.is_empty() {
                dead[d] = true;
                fail_clock = fail_clock.max(ctx.gpu.clock());
                orphans.extend(o);
            }
        }
    }

    // Return partial outputs on each surviving device's D2H stream,
    // scaled by the fraction of the shard it actually completed.
    for slot in ctxs.iter_mut().take(n) {
        let Some(ctx) = slot.as_mut() else { continue };
        if ctx.dead || peer_reduce {
            continue;
        }
        let mut per_shard: BTreeMap<usize, usize> = BTreeMap::new();
        for &(si, _) in &ctx.done {
            *per_shard.entry(si).or_insert(0) += 1;
        }
        if per_shard.is_empty() {
            continue;
        }
        let worker_streams = ctx.streams.clone();
        let evs: Vec<_> = worker_streams.iter().map(|&s| ctx.gpu.record_event(s)).collect();
        for ev in evs {
            ctx.gpu.wait_event(ctx.d2h_stream, ev);
        }
        for (si, cnt) in per_shard {
            let full = shard_output_bytes(&shards[si], rank, out_bytes) as f64;
            let frac = cnt as f64 / seg_lists[si].len() as f64;
            let bytes = ((full * frac).ceil() as u64).max(1);
            ctx.gpu.d2h(ctx.d2h_stream, bytes, format!("shard{si} D2H"));
        }
        ctx.gpu.synchronize();
    }

    let done: HashSet<(usize, usize)> =
        ctxs.iter().flatten().flat_map(|c| c.done.iter().copied()).collect();
    let completed_segments = done.len();
    let replaced_segments = rescued.intersection(&done).count();

    let mut devices = Vec::with_capacity(n);
    for (d, slot) in ctxs.iter_mut().enumerate() {
        let device_name = node.effective_device(d).name;
        match slot {
            Some(ctx) => {
                for a in ctx.allocs.drain(..) {
                    ctx.gpu.memory().free(a);
                }
                let shard_indices: Vec<usize> = ctx
                    .done
                    .iter()
                    .map(|&(si, _)| si)
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                devices.push(DeviceRun {
                    device_name,
                    shard_indices,
                    timeline: ctx.gpu.full_timeline().clone(),
                });
            }
            None => devices.push(DeviceRun {
                device_name,
                shard_indices: Vec::new(),
                timeline: Timeline::default(),
            }),
        }
    }

    let mut final_assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (si, o) in owner.iter().enumerate() {
        if let Some(d) = o {
            final_assignment[*d].push(si);
        }
    }
    let reduction_s = reduction_seconds(node, &shards, &final_assignment, rows, rank);

    if functional {
        replay_completed_items(
            node,
            &shards,
            &seg_lists,
            &done,
            &buffers,
            &factors_arc,
            mode,
            opts,
        );
    }
    let output = if functional {
        fold_partials(&shards, &buffers, rows, rank)
    } else {
        Mat::zeros(rows, rank)
    };

    ResilientClusterRun {
        output,
        devices,
        reduction_s,
        num_shards: shards.len(),
        failed_segments: total_items - completed_segments,
        completed_segments,
        replaced_segments,
        retries,
        dead_devices: (0..n).filter(|&d| dead[d]).collect(),
    }
}

/// Records one shard re-placement in the fault log and the reduction
/// ownership table.
fn reshard(
    injector: &mut FaultInjector,
    owner: &mut [Option<usize>],
    si: usize,
    target: usize,
    now_s: f64,
) {
    injector.record_recovery(
        target,
        now_s,
        RecoveryAction::ReShard {
            shard: si,
            from_device: owner[si].unwrap_or(target),
            to_device: target,
        },
    );
    owner[si] = Some(target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_cluster;
    use scalfrag_faults::{FaultKind, FaultPlan, FaultTrigger};
    use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
    use scalfrag_pipeline::KernelChoice;

    fn setup() -> (CooTensor, FactorSet) {
        let dims = [120u32, 90, 70];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 9_000, 0.8, 41);
        let f = FactorSet::random(&dims, 8, 42);
        (t, f)
    }

    fn opts() -> ClusterOptions {
        let mut o = ClusterOptions::new(LaunchConfig::new(512, 256), 4);
        o.kernel = KernelChoice::Tiled;
        o
    }

    fn bits(m: &Mat) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn fault_free_resilient_is_bit_identical_to_cluster() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o);
        let mut inj = FaultInjector::inert();
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry_reshard(),
        );
        assert!(run.all_complete());
        assert_eq!(run.retries, 0);
        assert!(run.dead_devices.is_empty());
        assert_eq!(bits(&base.output), bits(&run.output), "clean run must be bit-identical");
        // Detection is not free: the checksum scans show up in the clock.
        assert!(run.makespan() >= base.makespan());
    }

    #[test]
    fn permanent_death_is_recovered_by_resharding() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o);
        let plan = FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: None },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry_reshard(),
        );
        assert!(run.all_complete(), "re-sharding must rescue the dead device's work");
        assert_eq!(run.dead_devices, vec![1]);
        assert!(run.replaced_segments > 0, "rescued segments must be accounted");
        assert!(inj.log().recoveries() > 0);
        assert_eq!(
            bits(&base.output),
            bits(&run.output),
            "recovered run must be bit-identical to fault-free"
        );
    }

    #[test]
    fn without_resharding_a_dead_device_loses_work() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let plan = FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: None },
        );
        for policy in [FaultRecoveryPolicy::retry(), FaultRecoveryPolicy::no_retry()] {
            let mut inj = FaultInjector::new(plan.clone());
            let run = execute_cluster_resilient(&node, &t, &f, 0, &o, &mut inj, &policy);
            assert!(run.failed_segments > 0, "{policy:?} must demonstrably lose work");
            assert_eq!(run.replaced_segments, 0);
        }
    }

    #[test]
    fn transient_outage_is_waited_out_in_place() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o);
        let plan = FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: Some(2e-3) },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry(),
        );
        assert!(run.all_complete(), "transient downtime must be recoverable in place");
        assert!(run.dead_devices.is_empty());
        assert!(run.retries > 0);
        assert_eq!(bits(&base.output), bits(&run.output));
        assert!(run.devices[1].makespan() >= 2e-3, "the outage must show in the clock");
    }

    #[test]
    fn device_down_at_start_is_excluded_from_placement() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let base = execute_cluster(&node, &t, &f, 0, &o);
        let plan = FaultPlan::new().fault(
            0,
            FaultTrigger::AtTime(0.0),
            FaultKind::DeviceFail { down_s: None },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry(),
        );
        assert!(run.all_complete(), "survivors must absorb the full tensor");
        assert_eq!(run.dead_devices, vec![0]);
        assert!(run.devices[0].shard_indices.is_empty());
        assert_eq!(
            bits(&base.output),
            bits(&run.output),
            "placement is timing-only: fewer devices, same bits"
        );
    }

    #[test]
    fn straggler_slows_the_device_but_keeps_numerics() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let o = opts();
        let mut clean_inj = FaultInjector::inert();
        let clean = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut clean_inj,
            &FaultRecoveryPolicy::retry(),
        );
        let plan = FaultPlan::new().fault(
            0,
            FaultTrigger::AtTime(0.0),
            FaultKind::Straggler { derate: 4.0 },
        );
        let mut inj = FaultInjector::new(plan);
        let run = execute_cluster_resilient(
            &node,
            &t,
            &f,
            0,
            &o,
            &mut inj,
            &FaultRecoveryPolicy::retry(),
        );
        assert!(run.all_complete());
        assert_eq!(bits(&clean.output), bits(&run.output), "slowdown must not touch numerics");
        assert!(
            run.devices[0].makespan() > clean.devices[0].makespan(),
            "a 4x straggler must be visibly slower"
        );
    }
}
