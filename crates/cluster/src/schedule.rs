//! Device-level shard scheduling: which device runs which shard.
//!
//! Round-robin is oblivious to both shard sizes and device speeds; LPT
//! (longest processing time first) greedily places the heaviest remaining
//! shard on the device with the earliest projected finish, using the
//! node's end-to-end speed proxy (effective host link + kernel memory
//! bandwidth, see [`NodeSpec::device_speed_proxy`]) — on equal PCIe links
//! a 3090 still retires a shard faster than a 3060, but only by the
//! kernel term, not by the raw 2.6× memory-bandwidth ratio.

use crate::node::NodeSpec;
use crate::shard::Shard;

/// The shard-to-device placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceScheduler {
    /// Shard `i` on device `i mod N` — ignores shard size and device speed.
    RoundRobin,
    /// Longest-processing-time-first onto the least-loaded device,
    /// speed-weighted; the classic 4/3-approximation for makespan on
    /// uniform machines.
    Lpt,
}

/// Assigns shards to the node's devices for an MTTKRP at CPD rank `rank`
/// (the rank sets how compute-bound the kernel is, and therefore how much
/// LPT should favour faster devices). Returns one shard-index list per
/// device, each sorted ascending (devices execute their shards in global
/// shard order, which keeps the numeric fold order scheduler-invariant).
pub fn assign_shards(
    shards: &[Shard],
    node: &NodeSpec,
    scheduler: DeviceScheduler,
    rank: usize,
) -> Vec<Vec<usize>> {
    let n = node.num_devices();
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    match scheduler {
        DeviceScheduler::RoundRobin => {
            for shard in shards {
                assignment[shard.index % n].push(shard.index);
            }
        }
        DeviceScheduler::Lpt => {
            // Speed proxy: effective end-to-end throughput (host link +
            // kernel bandwidth). Projected finish = assigned nnz / speed.
            let speeds: Vec<f64> = (0..n).map(|d| node.device_speed_proxy(d, rank)).collect();
            let mut order: Vec<usize> = (0..shards.len()).collect();
            // Heaviest first; ties broken by shard index for determinism.
            order.sort_by(|&a, &b| shards[b].nnz().cmp(&shards[a].nnz()).then(a.cmp(&b)));
            let mut load = vec![0.0f64; n];
            for s in order {
                let cost = |d: usize| (load[d] + shards[s].nnz() as f64) / speeds[d];
                let best = (0..n)
                    .min_by(|&a, &b| {
                        cost(a).partial_cmp(&cost(b)).expect("finite loads").then(a.cmp(&b))
                    })
                    .expect("node has devices");
                load[best] += shards[s].nnz() as f64;
                assignment[best].push(s);
            }
            for list in &mut assignment {
                list.sort_unstable();
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{shard_tensor, ShardPolicy};
    use scalfrag_gpusim::DeviceSpec;

    fn shards(num: usize) -> Vec<Shard> {
        let mut t = scalfrag_tensor::gen::zipf_slices(&[80, 50, 40], 6_000, 1.1, 23);
        t.sort_for_mode(0);
        shard_tensor(&t, 0, ShardPolicy::SliceAligned, num)
    }

    fn assigned_nnz(shards: &[Shard], list: &[usize]) -> usize {
        list.iter().map(|&s| shards[s].nnz()).sum()
    }

    #[test]
    fn round_robin_cycles_devices() {
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 3);
        let s = shards(7);
        let a = assign_shards(&s, &node, DeviceScheduler::RoundRobin, 16);
        for (d, list) in a.iter().enumerate() {
            for &i in list {
                assert_eq!(i % 3, d);
            }
        }
    }

    #[test]
    fn every_shard_assigned_exactly_once() {
        let node = NodeSpec::heterogeneous(vec![DeviceSpec::rtx3090(), DeviceSpec::rtx3060()]);
        let s = shards(8);
        for sched in [DeviceScheduler::RoundRobin, DeviceScheduler::Lpt] {
            let a = assign_shards(&s, &node, sched, 16);
            let mut seen = vec![false; s.len()];
            for list in &a {
                for &i in list {
                    assert!(!seen[i], "shard {i} assigned twice under {sched:?}");
                    seen[i] = true;
                }
            }
            assert!(seen.into_iter().all(|x| x), "unassigned shard under {sched:?}");
        }
    }

    #[test]
    fn lpt_weights_by_device_speed() {
        // 3090 vs 3060 share the PCIe generation, so the end-to-end proxy
        // tilts toward the 3090 by the kernel term only — mildly at rank
        // 16 (link-bound), decisively at rank 64 (compute-bound, where
        // the raw memory-bandwidth ratio is 2.6×).
        let node = NodeSpec::heterogeneous(vec![DeviceSpec::rtx3090(), DeviceSpec::rtx3060()]);
        let s = shards(8);
        let total: usize = s.iter().map(Shard::nnz).sum();
        let frac = |rank: usize| {
            let a = assign_shards(&s, &node, DeviceScheduler::Lpt, rank);
            assigned_nnz(&s, &a[0]) as f64 / total as f64
        };
        let at16 = frac(16);
        let at64 = frac(64);
        assert!(
            (0.5..0.95).contains(&at64),
            "fast device should carry the bulk at rank 64, got {at64}"
        );
        assert!(at64 >= at16, "higher rank must not reduce the tilt");
        let rr = assign_shards(&s, &node, DeviceScheduler::RoundRobin, 64);
        let rr_fast = assigned_nnz(&s, &rr[0]) as f64 / total as f64;
        assert!(at64 > rr_fast, "LPT must shift load toward the fast device");
    }

    #[test]
    fn lpt_balances_homogeneous_devices() {
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4);
        let s = shards(8);
        let a = assign_shards(&s, &node, DeviceScheduler::Lpt, 16);
        let loads: Vec<usize> = a.iter().map(|l| assigned_nnz(&s, l)).collect();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 2.0, "LPT loads too skewed: {loads:?}");
    }
}
