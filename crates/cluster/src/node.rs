//! The multi-GPU node model: a set of devices, the host they hang off,
//! and the interconnect that carries tensor shards and partial results.
//!
//! The interconnect determines two things:
//!
//! 1. the *effective* host-link bandwidth each device sees during shard
//!    transfers (per-link PCIe vs several devices contending for the
//!    host's memory bandwidth), and
//! 2. the path partial output rows take during the reduction stage
//!    (D2H + host add vs direct peer-to-peer links).

use scalfrag_gpusim::{DeviceSpec, HostSpec};

/// How the devices of a node reach the host and each other.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Interconnect {
    /// Every device owns a dedicated full-bandwidth PCIe link (idealised
    /// switch with enough host-side bandwidth for all links at once).
    PerLinkPcie,
    /// All device links funnel through `total_gbs` of shared host memory
    /// bandwidth: with `D` devices active, each link is derated to
    /// `min(pcie, total_gbs / D)` — the realistic commodity-node regime
    /// and the main source of sub-linear strong scaling.
    SharedHost {
        /// Aggregate host-side bandwidth shared by all device links, GB/s.
        total_gbs: f64,
    },
    /// NVLink-style direct device↔device lanes at `peer_gbs` on top of
    /// dedicated PCIe host links. Shard transfers behave like
    /// [`Interconnect::PerLinkPcie`]; the reduction of row-overlapping
    /// shards travels peer-to-peer instead of bouncing through the host.
    PeerLinks {
        /// Per-direction peer link bandwidth, GB/s.
        peer_gbs: f64,
    },
}

/// A simulated multi-GPU node: `N` devices + host + interconnect.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// The devices, in scheduling order (may be heterogeneous).
    pub devices: Vec<DeviceSpec>,
    /// The host CPU executing reductions and staging transfers.
    pub host: HostSpec,
    /// The transfer-contention and reduction-path model.
    pub interconnect: Interconnect,
}

impl NodeSpec {
    /// A node of `n` identical devices behind the default host
    /// (i7-11700K) with shared-host-bandwidth contention — the
    /// commodity-workstation configuration of the paper's testbed,
    /// scaled out.
    pub fn homogeneous(device: DeviceSpec, n: usize) -> Self {
        assert!(n > 0, "a node needs at least one device");
        let host = HostSpec::i7_11700k();
        let total_gbs = host.mem_bandwidth_gbs;
        Self {
            devices: vec![device; n],
            host,
            interconnect: Interconnect::SharedHost { total_gbs },
        }
    }

    /// A node of explicitly listed (possibly different) devices.
    pub fn heterogeneous(devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "a node needs at least one device");
        let host = HostSpec::i7_11700k();
        let total_gbs = host.mem_bandwidth_gbs;
        Self { devices, host, interconnect: Interconnect::SharedHost { total_gbs } }
    }

    /// Replaces the host model.
    pub fn with_host(mut self, host: HostSpec) -> Self {
        self.host = host;
        self
    }

    /// Replaces the interconnect model.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Number of devices in the node.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The device spec the executor should simulate for device `idx`,
    /// with the interconnect contention folded into its PCIe bandwidth.
    pub fn effective_device(&self, idx: usize) -> DeviceSpec {
        let spec = self.devices[idx].clone();
        match self.interconnect {
            Interconnect::PerLinkPcie | Interconnect::PeerLinks { .. } => spec,
            Interconnect::SharedHost { total_gbs } => {
                let share = total_gbs / self.num_devices() as f64;
                let h2d = spec.pcie_h2d_gbs.min(share);
                let d2h = spec.pcie_d2h_gbs.min(share);
                spec.with_pcie_bandwidth(h2d, d2h)
            }
        }
    }

    /// Scheduler speed proxy for device `idx`, in effective GB/s of shard
    /// data retired end-to-end at CPD rank `rank`.
    ///
    /// The pipelined executor is transfer-bound on the host link and
    /// bandwidth-bound in the kernel, so the serial-path estimate combines
    /// both: `1 / (1/pcie_eff + γ/mem_bw)`, where γ ≈ 1.5 × rank is the
    /// kernel's device-memory traffic per transferred tensor byte
    /// (calibrated against the tiled kernel's simulated cost at rank 16).
    /// Two cards on equal links thus differ only by the kernel term —
    /// negligible at small ranks where the link binds, decisive at large
    /// ranks where the kernel does.
    pub fn device_speed_proxy(&self, idx: usize, rank: usize) -> f64 {
        let gamma = 1.5 * rank as f64;
        let eff = self.effective_device(idx);
        1.0 / (1.0 / eff.pcie_h2d_gbs + gamma / eff.mem_bandwidth_gbs)
    }

    /// Peer-link bandwidth, if the node has peer lanes.
    pub fn peer_bandwidth_gbs(&self) -> Option<f64> {
        match self.interconnect {
            Interconnect::PeerLinks { peer_gbs } => Some(peer_gbs),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_host_derates_links_by_device_count() {
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4);
        let eff = node.effective_device(0);
        // 31.2 GB/s host bandwidth over 4 devices = 7.8 GB/s per link.
        assert!((eff.pcie_h2d_gbs - 31.2 / 4.0).abs() < 1e-12);
        assert!(eff.pcie_h2d_gbs < DeviceSpec::rtx3090().pcie_h2d_gbs);
    }

    #[test]
    fn single_device_shared_host_keeps_full_pcie() {
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 1);
        let eff = node.effective_device(0);
        // One device: the 31.2 GB/s pool exceeds the 24.3 GB/s link.
        assert_eq!(eff.pcie_h2d_gbs, DeviceSpec::rtx3090().pcie_h2d_gbs);
    }

    #[test]
    fn per_link_and_peer_keep_full_pcie() {
        for ic in [Interconnect::PerLinkPcie, Interconnect::PeerLinks { peer_gbs: 50.0 }] {
            let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4).with_interconnect(ic);
            assert_eq!(node.effective_device(3).pcie_h2d_gbs, DeviceSpec::rtx3090().pcie_h2d_gbs);
        }
    }

    #[test]
    fn heterogeneous_node_preserves_device_order() {
        let node = NodeSpec::heterogeneous(vec![DeviceSpec::rtx3090(), DeviceSpec::rtx3060()]);
        assert_eq!(node.num_devices(), 2);
        assert_eq!(node.devices[0].name, DeviceSpec::rtx3090().name);
        assert_eq!(node.devices[1].name, DeviceSpec::rtx3060().name);
        assert!(node.peer_bandwidth_gbs().is_none());
    }
}
