//! Multi-device MTTKRP execution: shard → per-device pipeline → reduce.
//!
//! Every device runs its assigned shards through the same per-segment
//! H2D/kernel pipeline the single-GPU executor uses (one simulated [`Gpu`]
//! per device, PCIe bandwidth derated by the node's interconnect model).
//! Partial outputs are kept **per shard**, not per device, and folded on
//! the host in shard-index order — so the numeric result is bitwise
//! invariant to the device count and the scheduler, which only move work
//! between timelines.
//!
//! The reduction stage depends on the shard policy:
//!
//! * slice-aligned shards own disjoint output rows; each device returns
//!   exactly its final row block and the merge costs nothing;
//! * nnz-balanced shards overlap on rows; every shard's full partial
//!   output returns D2H and the host pays one add per extra shard — or,
//!   with peer links, partials gather device-to-device and only the merged
//!   result crosses PCIe.

use crate::node::{Interconnect, NodeSpec};
use crate::schedule::{assign_shards, DeviceScheduler};
use crate::shard::{shard_tensor, Shard, ShardPolicy};
use scalfrag_gpusim::{Gpu, LaunchConfig, StreamId, Timeline};
use scalfrag_kernels::{AtomicF32Buffer, FactorSet};
use scalfrag_linalg::Mat;
use scalfrag_pipeline::KernelChoice;
use scalfrag_tensor::{segment::segment_by_nnz, CooTensor};
use std::sync::Arc;

/// Execution knobs of one cluster MTTKRP.
#[derive(Clone, Copy, Debug)]
pub struct ClusterOptions {
    /// Kernel launched per segment (tiled or ParTI-style atomic COO).
    pub kernel: KernelChoice,
    /// How the tensor is cut into shards.
    pub policy: ShardPolicy,
    /// How shards are placed on devices.
    pub scheduler: DeviceScheduler,
    /// Shard count. Fixing this independently of the device count keeps
    /// the numeric output bitwise identical across node sizes.
    pub num_shards: usize,
    /// Pipeline segments per shard (transfer/compute overlap within a
    /// device).
    pub segments_per_shard: usize,
    /// Streams per device.
    pub streams_per_device: usize,
    /// Kernel launch configuration (shared by all devices).
    pub config: LaunchConfig,
}

impl ClusterOptions {
    /// Paper-style defaults: tiled kernel, slice-aligned shards, LPT
    /// placement, 2 segments per shard on 2 streams.
    pub fn new(config: LaunchConfig, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        Self {
            kernel: KernelChoice::Tiled,
            policy: ShardPolicy::SliceAligned,
            scheduler: DeviceScheduler::Lpt,
            num_shards,
            segments_per_shard: 2,
            streams_per_device: 2,
            config,
        }
    }
}

/// One device's slice of a cluster execution.
#[derive(Clone, Debug)]
pub struct DeviceRun {
    /// Marketing name of the simulated device.
    pub device_name: &'static str,
    /// Global indices of the shards this device executed (ascending).
    pub shard_indices: Vec<usize>,
    /// This device's timeline (empty if it received no shards).
    pub timeline: Timeline,
}

impl DeviceRun {
    /// Simulated seconds this device was busy end-to-end.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }
}

/// The result of one multi-device MTTKRP.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// The MTTKRP output `M ∈ ℝ^{Iₙ × F}` (zeros for dry runs).
    pub output: Mat,
    /// Per-device runs, index-aligned with the node's device list.
    pub devices: Vec<DeviceRun>,
    /// Simulated seconds of the cross-shard reduction stage (0 for
    /// slice-aligned shards).
    pub reduction_s: f64,
    /// Number of shards actually cut (≤ the requested count).
    pub num_shards: usize,
}

impl ClusterRun {
    /// Cluster makespan: the slowest device plus the reduction stage.
    pub fn makespan(&self) -> f64 {
        self.compute_makespan() + self.reduction_s
    }

    /// Makespan of the compute phase alone (slowest device).
    pub fn compute_makespan(&self) -> f64 {
        self.devices.iter().map(DeviceRun::makespan).fold(0.0, f64::max)
    }

    /// Busy seconds summed across devices as `(h2d, kernel, d2h, host)`.
    pub fn breakdown(&self) -> (f64, f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0, 0.0);
        for d in &self.devices {
            let (h2d, kernel, d2h, host) = d.timeline.breakdown();
            acc.0 += h2d;
            acc.1 += kernel;
            acc.2 += d2h;
            acc.3 += host;
        }
        acc
    }
}

/// Executes one MTTKRP across the node's devices (functional: the output
/// is numerically real).
pub fn execute_cluster(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
) -> ClusterRun {
    execute_cluster_impl(node, tensor, factors, mode, opts, true)
}

/// Timing-only variant of [`execute_cluster`] for benchmark sweeps: the
/// schedule and simulated clock are identical, the output stays zero.
pub fn execute_cluster_dry(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
) -> ClusterRun {
    execute_cluster_impl(node, tensor, factors, mode, opts, false)
}

fn execute_cluster_impl(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
    functional: bool,
) -> ClusterRun {
    assert!(opts.segments_per_shard > 0, "need at least one segment per shard");
    assert!(opts.streams_per_device > 0, "need at least one stream per device");
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let out_bytes = (rows * rank * 4) as u64;

    let mut sorted = tensor.clone();
    sorted.sort_for_mode(mode);
    let shards = shard_tensor(&sorted, mode, opts.policy, opts.num_shards);
    let assignment = assign_shards(&shards, node, opts.scheduler, rank);

    // Per-SHARD partial outputs (not per device): the fold below walks
    // them in shard order, making numerics independent of placement.
    let buffers: Vec<Arc<AtomicF32Buffer>> = shards
        .iter()
        .map(|_| Arc::new(AtomicF32Buffer::new(if functional { rows * rank } else { 0 })))
        .collect();
    let factors_arc = Arc::new(factors.clone());

    // Peer-linked nodes gather row-overlapping partials device-to-device,
    // so the per-shard D2H hop disappears from the device timelines.
    let peer_reduce =
        opts.policy == ShardPolicy::NnzBalanced && node.peer_bandwidth_gbs().is_some();

    let mut devices = Vec::with_capacity(node.num_devices());
    for (d, shard_indices) in assignment.iter().enumerate() {
        let spec = node.effective_device(d);
        let device_name = spec.name;
        if shard_indices.is_empty() {
            devices.push(DeviceRun {
                device_name,
                shard_indices: Vec::new(),
                timeline: Timeline::default(),
            });
            continue;
        }

        let mut gpu = Gpu::with_host(spec, node.host.clone());
        let streams: Vec<StreamId> =
            (0..opts.streams_per_device).map(|_| gpu.create_stream()).collect();
        // Returning partials on a dedicated stream keeps the per-shard
        // D2H waits off the worker streams — otherwise a later shard's
        // H2D queued behind the wait would stall until the earlier
        // shard's kernels finish, serialising the pipeline at every
        // shard boundary.
        let d2h_stream = gpu.create_stream();
        let mut allocs = Vec::new();
        allocs.push(
            gpu.memory()
                .alloc(factors.byte_size() as u64)
                .expect("factor matrices must fit on each device"),
        );

        // Factors travel once per device; all streams wait for them.
        gpu.h2d(streams[0], factors.byte_size() as u64, "factors H2D");
        let factors_ready = gpu.record_event(streams[0]);
        for &s in &streams[1..] {
            gpu.wait_event(s, factors_ready);
        }

        let mut next_stream = 0usize;
        for &si in shard_indices {
            let shard = &shards[si];
            allocs.push(
                gpu.memory()
                    .alloc(shard_output_bytes(shard, rank, out_bytes))
                    .expect("shard output must fit"),
            );
            let segments = segment_by_nnz(shard.nnz(), opts.segments_per_shard);
            let mut kernel_done = Vec::with_capacity(segments.len());
            for (j, seg) in segments.iter().enumerate() {
                let stream = streams[next_stream % streams.len()];
                next_stream += 1;
                let piece = Arc::new(shard.tensor.slice_range(seg.start, seg.end));
                let bytes = seg.byte_size(sorted.order());
                allocs.push(gpu.memory().alloc(bytes as u64).expect("segment must fit"));
                gpu.h2d(stream, bytes as u64, format!("shard{si} seg{j} H2D"));
                opts.kernel.enqueue(
                    &mut gpu,
                    stream,
                    opts.config,
                    piece,
                    Arc::clone(&factors_arc),
                    mode,
                    functional.then(|| Arc::clone(&buffers[si])),
                    format!("shard{si} seg{j} kernel"),
                );
                kernel_done.push(gpu.record_event(stream));
            }
            if !peer_reduce {
                // The shard's partial result returns on the host link:
                // only its owned rows when slice-aligned, the full
                // partial matrix when rows may straddle shards.
                for ev in kernel_done {
                    gpu.wait_event(d2h_stream, ev);
                }
                gpu.d2h(
                    d2h_stream,
                    shard_output_bytes(&shards[si], rank, out_bytes),
                    format!("shard{si} D2H"),
                );
            }
        }

        let timeline = gpu.synchronize();
        for a in allocs {
            gpu.memory().free(a);
        }
        devices.push(DeviceRun { device_name, shard_indices: shard_indices.clone(), timeline });
    }

    let reduction_s = reduction_seconds(node, &shards, &assignment, rows, rank);
    let output = if functional {
        fold_partials(&shards, &buffers, rows, rank)
    } else {
        Mat::zeros(rows, rank)
    };

    ClusterRun { output, devices, reduction_s, num_shards: shards.len() }
}

/// Bytes of one shard's D2H result: its owned row block when slice-aligned,
/// the full partial output otherwise.
pub(crate) fn shard_output_bytes(shard: &Shard, rank: usize, full_out_bytes: u64) -> u64 {
    match shard.rows {
        Some((lo, hi)) => ((hi - lo + 1) as u64) * rank as u64 * 4,
        None => full_out_bytes,
    }
}

/// Host-side fold of the per-shard partial outputs, in shard-index order.
/// Slice-aligned shards copy their disjoint row blocks (bit-preserving);
/// nnz-balanced shards sum, giving a deterministic shard-ordered
/// accumulation.
pub(crate) fn fold_partials(
    shards: &[Shard],
    buffers: &[Arc<AtomicF32Buffer>],
    rows: usize,
    rank: usize,
) -> Mat {
    let mut out = Mat::zeros(rows, rank);
    for shard in shards {
        let partial = buffers[shard.index].to_vec();
        match shard.rows {
            Some((lo, hi)) => {
                for r in lo as usize..=hi as usize {
                    out.row_mut(r).copy_from_slice(&partial[r * rank..(r + 1) * rank]);
                }
            }
            None => out.axpy(1.0, &Mat::from_vec(rows, rank, partial)),
        }
    }
    out
}

/// Analytic cost of the cross-shard reduction stage.
pub(crate) fn reduction_seconds(
    node: &NodeSpec,
    shards: &[Shard],
    assignment: &[Vec<usize>],
    rows: usize,
    rank: usize,
) -> f64 {
    let num_shards = shards.len();
    if num_shards <= 1 {
        return 0.0;
    }
    // Slice-aligned shards own disjoint rows: the per-shard D2H copies in
    // the device timelines already returned the final rows.
    if shards.iter().all(|s| s.rows.is_some()) {
        return 0.0;
    }
    let bytes = (rows * rank * 4) as f64;
    let extra = (num_shards - 1) as f64;
    match node.interconnect {
        Interconnect::PerLinkPcie | Interconnect::SharedHost { .. } => {
            // Host sums S partial matrices: one add per extra shard,
            // streaming two operands in and one result out.
            extra * node.host.task_duration_s((rows * rank) as u64, 3 * (rows * rank * 4) as u64)
        }
        Interconnect::PeerLinks { peer_gbs } => {
            // Gather on the device owning shard 0: off-root partials hop
            // one peer link each, every extra shard costs one device-side
            // add, and the merged matrix crosses PCIe once.
            let root = assignment.iter().position(|list| list.contains(&0)).unwrap_or(0);
            let off_root =
                shards.iter().skip(1).filter(|s| !assignment[root].contains(&s.index)).count()
                    as f64;
            let gather = off_root * bytes / (peer_gbs * 1e9);
            let root_spec = node.effective_device(root);
            let adds = extra * 3.0 * bytes / (root_spec.mem_bandwidth_gbs * 1e9);
            let d2h = root_spec.pcie_latency_us * 1e-6 + bytes / (root_spec.pcie_d2h_gbs * 1e9);
            gather + adds + d2h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::DeviceSpec;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn setup() -> (CooTensor, FactorSet) {
        let dims = [120u32, 90, 70];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 9_000, 0.8, 41);
        let f = FactorSet::random(&dims, 8, 42);
        (t, f)
    }

    fn opts(policy: ShardPolicy, kernel: KernelChoice) -> ClusterOptions {
        let mut o = ClusterOptions::new(LaunchConfig::new(512, 256), 4);
        o.policy = policy;
        o.kernel = kernel;
        o
    }

    #[test]
    fn slice_aligned_output_matches_reference() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2);
        let run = execute_cluster(
            &node,
            &t,
            &f,
            0,
            &opts(ShardPolicy::SliceAligned, KernelChoice::Tiled),
        );
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let expect = mttkrp_seq(&sorted, &f, 0);
        assert!(run.output.max_abs_diff(&expect) < 1e-2);
        assert_eq!(run.reduction_s, 0.0, "slice-aligned reduce is free");
        for d in &run.devices {
            assert!(d.timeline.validate().is_ok());
        }
    }

    #[test]
    fn nnz_balanced_pays_for_reduction() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2);
        let run =
            execute_cluster(&node, &t, &f, 0, &opts(ShardPolicy::NnzBalanced, KernelChoice::Tiled));
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let expect = mttkrp_seq(&sorted, &f, 0);
        assert!(run.output.max_abs_diff(&expect) < 1e-2);
        assert!(run.reduction_s > 0.0, "cross-shard rows must cost a reduction");
    }

    #[test]
    fn output_is_bitwise_invariant_to_device_count() {
        let (t, f) = setup();
        let o = opts(ShardPolicy::SliceAligned, KernelChoice::CooAtomic);
        let outputs: Vec<Vec<f32>> = [1usize, 2, 3]
            .iter()
            .map(|&n| {
                let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), n);
                execute_cluster(&node, &t, &f, 0, &o).output.into_vec()
            })
            .collect();
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn dry_run_matches_functional_timing_and_computes_nothing() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2);
        let o = opts(ShardPolicy::SliceAligned, KernelChoice::Tiled);
        let wet = execute_cluster(&node, &t, &f, 0, &o);
        let dry = execute_cluster_dry(&node, &t, &f, 0, &o);
        assert_eq!(wet.makespan(), dry.makespan());
        assert_eq!(dry.output.frob_norm(), 0.0);
    }

    #[test]
    fn peer_links_cheapen_the_nnz_balanced_reduction() {
        // Output large enough for bandwidth (not PCIe latency) to dominate
        // the reduction: 4000 rows × rank 32 ≈ 512 KB of partial output.
        let dims = [4_000u32, 90, 70];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 20_000, 0.8, 41);
        let f = FactorSet::random(&dims, 32, 42);
        let base = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2)
            .with_interconnect(Interconnect::PerLinkPcie);
        let peered = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2)
            .with_interconnect(Interconnect::PeerLinks { peer_gbs: 300.0 });
        let o = opts(ShardPolicy::NnzBalanced, KernelChoice::Tiled);
        let host_path = execute_cluster_dry(&base, &t, &f, 0, &o);
        let peer_path = execute_cluster_dry(&peered, &t, &f, 0, &o);
        assert!(
            peer_path.reduction_s < host_path.reduction_s,
            "peer gather {} should beat host adds {}",
            peer_path.reduction_s,
            host_path.reduction_s
        );
        // Peer reduction also drops the per-shard D2H hops from the device
        // timelines, so the end-to-end makespan improves as well.
        assert!(peer_path.makespan() < host_path.makespan());
    }

    #[test]
    fn devices_beyond_shard_count_stay_idle() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 6);
        let mut o = opts(ShardPolicy::SliceAligned, KernelChoice::Tiled);
        o.num_shards = 2;
        let run = execute_cluster_dry(&node, &t, &f, 0, &o);
        let idle = run.devices.iter().filter(|d| d.shard_indices.is_empty()).count();
        assert!(idle >= 4, "only 2 shards: at least 4 of 6 devices idle");
        for d in run.devices.iter().filter(|d| d.shard_indices.is_empty()) {
            assert_eq!(d.makespan(), 0.0);
        }
    }
}
