//! Multi-device MTTKRP execution: shard → per-device pipeline → reduce.
//!
//! Since the ScheduleIR refactor this module is a thin wrapper: the
//! cluster schedule lowers to a multi-device [`scalfrag_exec::Plan`]
//! ([`crate::builders`]) and the single interpreter
//! ([`scalfrag_exec::run_plan`]) instantiates one simulated [`Gpu`] per
//! device and executes it. Timing-only sweeps pass [`ExecMode::Dry`] —
//! identical schedule and simulated clock, zero output.
//!
//! Partial outputs are kept **per shard**, not per device, and folded on
//! the host in shard-index order — so the numeric result is bitwise
//! invariant to the device count and the scheduler, which only move work
//! between timelines.
//!
//! The reduction stage depends on the shard policy:
//!
//! * slice-aligned shards own disjoint output rows; each device returns
//!   exactly its final row block and the merge costs nothing;
//! * nnz-balanced shards overlap on rows; every shard's full partial
//!   output returns D2H and the host pays one add per extra shard — or,
//!   with peer links, partials gather device-to-device and only the merged
//!   result crosses PCIe.
//!
//! [`Gpu`]: scalfrag_gpusim::Gpu

use crate::builders::build_cluster_plan;
use crate::node::{Interconnect, NodeSpec};
use crate::schedule::DeviceScheduler;
use crate::shard::{Shard, ShardPolicy};
use scalfrag_exec::{run_plan, ExecMode, KernelChoice, PlanTrace};
use scalfrag_gpusim::{LaunchConfig, Timeline};
use scalfrag_kernels::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

/// Execution knobs of one cluster MTTKRP.
#[derive(Clone, Copy, Debug)]
pub struct ClusterOptions {
    /// Kernel launched per segment (tiled or ParTI-style atomic COO).
    pub kernel: KernelChoice,
    /// How the tensor is cut into shards.
    pub policy: ShardPolicy,
    /// How shards are placed on devices.
    pub scheduler: DeviceScheduler,
    /// Shard count. Fixing this independently of the device count keeps
    /// the numeric output bitwise identical across node sizes.
    pub num_shards: usize,
    /// Pipeline segments per shard (transfer/compute overlap within a
    /// device).
    pub segments_per_shard: usize,
    /// Streams per device.
    pub streams_per_device: usize,
    /// Kernel launch configuration (shared by all devices).
    pub config: LaunchConfig,
}

impl ClusterOptions {
    /// Paper-style defaults: tiled kernel, slice-aligned shards, LPT
    /// placement, 2 segments per shard on 2 streams.
    pub fn new(config: LaunchConfig, num_shards: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        Self {
            kernel: KernelChoice::Tiled,
            policy: ShardPolicy::SliceAligned,
            scheduler: DeviceScheduler::Lpt,
            num_shards,
            segments_per_shard: 2,
            streams_per_device: 2,
            config,
        }
    }
}

/// One device's slice of a cluster execution.
#[derive(Clone, Debug)]
pub struct DeviceRun {
    /// Marketing name of the simulated device.
    pub device_name: &'static str,
    /// Global indices of the shards this device executed (ascending).
    pub shard_indices: Vec<usize>,
    /// This device's timeline (empty if it received no shards).
    pub timeline: Timeline,
}

impl DeviceRun {
    /// Simulated seconds this device was busy end-to-end.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }
}

/// The result of one multi-device MTTKRP.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// The MTTKRP output `M ∈ ℝ^{Iₙ × F}` (zeros for dry runs).
    pub output: Mat,
    /// Per-device runs, index-aligned with the node's device list.
    pub devices: Vec<DeviceRun>,
    /// Simulated seconds of the cross-shard reduction stage (0 for
    /// slice-aligned shards).
    pub reduction_s: f64,
    /// Number of shards actually cut (≤ the requested count).
    pub num_shards: usize,
    /// Structured trace of every executed op across all devices.
    pub trace: PlanTrace,
}

impl ClusterRun {
    /// Cluster makespan: the slowest device plus the reduction stage.
    pub fn makespan(&self) -> f64 {
        self.compute_makespan() + self.reduction_s
    }

    /// Makespan of the compute phase alone (slowest device).
    pub fn compute_makespan(&self) -> f64 {
        self.devices.iter().map(DeviceRun::makespan).fold(0.0, f64::max)
    }

    /// Busy seconds summed across devices as `(h2d, kernel, d2h, host)`.
    pub fn breakdown(&self) -> (f64, f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0, 0.0);
        for d in &self.devices {
            let (h2d, kernel, d2h, host) = d.timeline.breakdown();
            acc.0 += h2d;
            acc.1 += kernel;
            acc.2 += d2h;
            acc.3 += host;
        }
        acc
    }
}

/// Executes one MTTKRP across the node's devices by lowering the cluster
/// schedule to a ScheduleIR plan and interpreting it.
pub fn execute_cluster(
    node: &NodeSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    opts: &ClusterOptions,
    exec: ExecMode,
) -> ClusterRun {
    let plan = build_cluster_plan(node, tensor, factors, mode, opts);
    let outcome = run_plan(&plan, exec);
    let devices = plan
        .devices
        .iter()
        .zip(outcome.device_timelines)
        .map(|(dev, timeline)| DeviceRun {
            device_name: dev.name,
            shard_indices: dev.shard_list.clone(),
            timeline,
        })
        .collect();
    ClusterRun {
        output: outcome.output,
        devices,
        reduction_s: outcome.reduction_s,
        num_shards: plan.shards.len(),
        trace: outcome.trace,
    }
}

/// Bytes of one shard's D2H result: its owned row block when slice-aligned,
/// the full partial output otherwise.
pub(crate) fn shard_output_bytes(shard: &Shard, rank: usize, full_out_bytes: u64) -> u64 {
    match shard.rows {
        Some((lo, hi)) => ((hi - lo + 1) as u64) * rank as u64 * 4,
        None => full_out_bytes,
    }
}

/// Analytic cost of the cross-shard reduction stage.
pub(crate) fn reduction_seconds(
    node: &NodeSpec,
    shards: &[Shard],
    assignment: &[Vec<usize>],
    rows: usize,
    rank: usize,
) -> f64 {
    let num_shards = shards.len();
    if num_shards <= 1 {
        return 0.0;
    }
    // Slice-aligned shards own disjoint rows: the per-shard D2H copies in
    // the device timelines already returned the final rows.
    if shards.iter().all(|s| s.rows.is_some()) {
        return 0.0;
    }
    let bytes = (rows * rank * 4) as f64;
    let extra = (num_shards - 1) as f64;
    match node.interconnect {
        Interconnect::PerLinkPcie | Interconnect::SharedHost { .. } => {
            // Host sums S partial matrices: one add per extra shard,
            // streaming two operands in and one result out.
            extra * node.host.task_duration_s((rows * rank) as u64, 3 * (rows * rank * 4) as u64)
        }
        Interconnect::PeerLinks { peer_gbs } => {
            // Gather on the device owning shard 0: off-root partials hop
            // one peer link each, every extra shard costs one device-side
            // add, and the merged matrix crosses PCIe once.
            let root = assignment.iter().position(|list| list.contains(&0)).unwrap_or(0);
            let off_root =
                shards.iter().skip(1).filter(|s| !assignment[root].contains(&s.index)).count()
                    as f64;
            let gather = off_root * bytes / (peer_gbs * 1e9);
            let root_spec = node.effective_device(root);
            let adds = extra * 3.0 * bytes / (root_spec.mem_bandwidth_gbs * 1e9);
            let d2h = root_spec.pcie_latency_us * 1e-6 + bytes / (root_spec.pcie_d2h_gbs * 1e9);
            gather + adds + d2h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::DeviceSpec;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn setup() -> (CooTensor, FactorSet) {
        let dims = [120u32, 90, 70];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 9_000, 0.8, 41);
        let f = FactorSet::random(&dims, 8, 42);
        (t, f)
    }

    fn opts(policy: ShardPolicy, kernel: KernelChoice) -> ClusterOptions {
        let mut o = ClusterOptions::new(LaunchConfig::new(512, 256), 4);
        o.policy = policy;
        o.kernel = kernel;
        o
    }

    #[test]
    fn slice_aligned_output_matches_reference() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2);
        let run = execute_cluster(
            &node,
            &t,
            &f,
            0,
            &opts(ShardPolicy::SliceAligned, KernelChoice::Tiled),
            ExecMode::Functional,
        );
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let expect = mttkrp_seq(&sorted, &f, 0);
        assert!(run.output.max_abs_diff(&expect) < 1e-2);
        assert_eq!(run.reduction_s, 0.0, "slice-aligned reduce is free");
        for d in &run.devices {
            assert!(d.timeline.validate().is_ok());
        }
    }

    #[test]
    fn nnz_balanced_pays_for_reduction() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2);
        let run = execute_cluster(
            &node,
            &t,
            &f,
            0,
            &opts(ShardPolicy::NnzBalanced, KernelChoice::Tiled),
            ExecMode::Functional,
        );
        let mut sorted = t.clone();
        sorted.sort_for_mode(0);
        let expect = mttkrp_seq(&sorted, &f, 0);
        assert!(run.output.max_abs_diff(&expect) < 1e-2);
        assert!(run.reduction_s > 0.0, "cross-shard rows must cost a reduction");
    }

    #[test]
    fn output_is_bitwise_invariant_to_device_count() {
        let (t, f) = setup();
        let o = opts(ShardPolicy::SliceAligned, KernelChoice::CooAtomic);
        let outputs: Vec<Vec<f32>> = [1usize, 2, 3]
            .iter()
            .map(|&n| {
                let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), n);
                execute_cluster(&node, &t, &f, 0, &o, ExecMode::Functional).output.into_vec()
            })
            .collect();
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn dry_run_matches_functional_timing_and_computes_nothing() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2);
        let o = opts(ShardPolicy::SliceAligned, KernelChoice::Tiled);
        let wet = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Functional);
        let dry = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Dry);
        assert_eq!(wet.makespan(), dry.makespan());
        assert_eq!(dry.output.frob_norm(), 0.0);
    }

    #[test]
    fn peer_links_cheapen_the_nnz_balanced_reduction() {
        // Output large enough for bandwidth (not PCIe latency) to dominate
        // the reduction: 4000 rows × rank 32 ≈ 512 KB of partial output.
        let dims = [4_000u32, 90, 70];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 20_000, 0.8, 41);
        let f = FactorSet::random(&dims, 32, 42);
        let base = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2)
            .with_interconnect(Interconnect::PerLinkPcie);
        let peered = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2)
            .with_interconnect(Interconnect::PeerLinks { peer_gbs: 300.0 });
        let o = opts(ShardPolicy::NnzBalanced, KernelChoice::Tiled);
        let host_path = execute_cluster(&base, &t, &f, 0, &o, ExecMode::Dry);
        let peer_path = execute_cluster(&peered, &t, &f, 0, &o, ExecMode::Dry);
        assert!(
            peer_path.reduction_s < host_path.reduction_s,
            "peer gather {} should beat host adds {}",
            peer_path.reduction_s,
            host_path.reduction_s
        );
        // Peer reduction also drops the per-shard D2H hops from the device
        // timelines, so the end-to-end makespan improves as well.
        assert!(peer_path.makespan() < host_path.makespan());
    }

    #[test]
    fn devices_beyond_shard_count_stay_idle() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 6);
        let mut o = opts(ShardPolicy::SliceAligned, KernelChoice::Tiled);
        o.num_shards = 2;
        let run = execute_cluster(&node, &t, &f, 0, &o, ExecMode::Dry);
        let idle = run.devices.iter().filter(|d| d.shard_indices.is_empty()).count();
        assert!(idle >= 4, "only 2 shards: at least 4 of 6 devices idle");
        for d in run.devices.iter().filter(|d| d.shard_indices.is_empty()) {
            assert_eq!(d.makespan(), 0.0);
        }
    }

    #[test]
    fn cluster_plan_renders_a_typed_ir_dump() {
        let (t, f) = setup();
        let node = NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2);
        let p = build_cluster_plan(
            &node,
            &t,
            &f,
            0,
            &opts(ShardPolicy::SliceAligned, KernelChoice::Tiled),
        );
        let dump = p.render();
        assert!(dump.contains("device 0"), "dump:\n{dump}");
        assert!(dump.contains("device 1"), "dump:\n{dump}");
        assert!(dump.contains("shard0 seg0 H2D"), "dump:\n{dump}");
        assert!(dump.contains("D2H"), "dump:\n{dump}");
    }
}
