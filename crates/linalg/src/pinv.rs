//! Moore-Penrose pseudo-inverse of the ALS normal matrix.
//!
//! Equation (2) of the paper updates a factor as
//! `A = X₍₁₎(B ⊙ C)(CᵀC * BᵀB)†` — the `†` is implemented here via the
//! Jacobi eigendecomposition of the symmetric PSD normal matrix.

use crate::eig::{jacobi_eigen, JacobiOptions};
use crate::ops::{matmul, matmul_transb};
use crate::{Mat, EIG_EPS};

/// Moore-Penrose pseudo-inverse of a symmetric positive semi-definite
/// matrix (the `(CᵀC * BᵀB)†` of Equation (2)).
///
/// Eigenvalues below `EIG_EPS * λ_max` are treated as zero, which is what
/// makes this a pseudo-inverse rather than a plain inverse and keeps ALS
/// stable when factors become rank-deficient.
///
/// # Panics
/// Panics if `a` is not square.
pub fn pinv_spd(a: &Mat) -> Mat {
    let (vals, vecs) = jacobi_eigen(a, JacobiOptions::default());
    let n = vals.len();
    let lmax = vals.first().copied().unwrap_or(0.0).abs();
    let cutoff = EIG_EPS * lmax.max(1e-30);
    let dinv =
        Mat::from_fn(
            n,
            n,
            |r, c| {
                if r == c && vals[r].abs() > cutoff {
                    1.0 / vals[r]
                } else {
                    0.0
                }
            },
        );
    // A† = V · diag(1/λ) · Vᵀ
    matmul_transb(&matmul(&vecs, &dinv), &vecs)
}

/// Solves the ALS normal equations `out = M · V†` where `M` is the MTTKRP
/// result (`I × F`) and `v` the `F×F` Hadamard-of-Grams matrix — exactly
/// line 5 of Algorithm 1.
///
/// # Panics
/// Panics if `m.cols() != v.rows()`.
pub fn solve_normal_equations(m: &Mat, v: &Mat) -> Mat {
    assert_eq!(m.cols(), v.rows(), "MTTKRP result and normal matrix rank mismatch");
    matmul(m, &pinv_spd(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gram;

    #[test]
    fn pinv_of_identity_is_identity() {
        let i = Mat::identity(5);
        assert!(pinv_spd(&i).max_abs_diff(&i) < 1e-5);
    }

    #[test]
    fn pinv_inverts_well_conditioned_spd() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x9E3779B97F4A7C15);
        let b = Mat::random(12, 5, &mut rng);
        let mut a = gram(&b);
        for i in 0..5 {
            a[(i, i)] += 1.0; // ensure well-conditioned
        }
        let ainv = pinv_spd(&a);
        let prod = matmul(&a, &ainv);
        assert!(prod.max_abs_diff(&Mat::identity(5)) < 1e-3);
    }

    #[test]
    fn pinv_satisfies_penrose_condition_on_singular_matrix() {
        // Rank-1 matrix: A = u uᵀ with u = [1,2]. A† must satisfy A·A†·A = A.
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        let p = pinv_spd(&a);
        let apa = matmul(&matmul(&a, &p), &a);
        assert!(apa.max_abs_diff(&a) < 1e-4);
        let pap = matmul(&matmul(&p, &a), &p);
        assert!(pap.max_abs_diff(&p) < 1e-4);
    }

    #[test]
    fn pinv_of_zero_is_zero() {
        let z = Mat::zeros(3, 3);
        assert!(pinv_spd(&z).max_abs_diff(&z) < 1e-30);
    }

    #[test]
    fn solve_normal_equations_recovers_factor() {
        // If M = A_true · V for an invertible V, then M · V† = A_true.
        let mut rng = rand::rngs::mock::StepRng::new(99, 0x9E3779B97F4A7C15);
        let a_true = Mat::random(9, 4, &mut rng);
        let b = Mat::random(20, 4, &mut rng);
        let mut v = gram(&b);
        for i in 0..4 {
            v[(i, i)] += 0.5;
        }
        let m = matmul(&a_true, &v);
        let rec = solve_normal_equations(&m, &v);
        assert!(rec.max_abs_diff(&a_true) < 1e-2);
    }
}
