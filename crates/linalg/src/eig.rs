//! Cyclic Jacobi eigendecomposition for small symmetric matrices.
//!
//! The ALS normal matrix `V = (BᵀB * CᵀC * …)` of Equation (2) is symmetric
//! positive semi-definite and only `F×F` (rank × rank), so the classic
//! cyclic Jacobi rotation method converges in a handful of sweeps and is
//! numerically robust — more than enough for the pseudo-inverse in
//! [`crate::pinv`].

use crate::Mat;

/// Options controlling the Jacobi iteration.
#[derive(Clone, Copy, Debug)]
pub struct JacobiOptions {
    /// Maximum number of full sweeps over all off-diagonal pairs.
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm relative to
    /// the total Frobenius norm.
    pub tol: f32,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        Self { max_sweeps: 64, tol: 1e-10 }
    }
}

/// Computes the eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric
/// matrix using cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` where column `k` of the returned
/// matrix is the eigenvector for `λ_k`. Eigenvalues are sorted descending.
///
/// # Panics
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Mat, opts: JacobiOptions) -> (Vec<f32>, Mat) {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen requires a square matrix");
    let n = a.rows();
    // Work in f64: the normal matrices of big factors can be ill-conditioned.
    let mut m: Vec<f64> = a.as_slice().iter().map(|&x| x as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let idx = |r: usize, c: usize| r * n + c;
    let total_norm: f64 = m.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);

    for _sweep in 0..opts.max_sweeps {
        let off: f64 = {
            let mut s = 0.0;
            for r in 0..n {
                for c in (r + 1)..n {
                    s += m[idx(r, c)] * m[idx(r, c)];
                }
            }
            (2.0 * s).sqrt()
        };
        if off <= opts.tol as f64 * total_norm {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[idx(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[idx(p, p)];
                let aqq = m[idx(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation G(p,q,θ) on both sides: M <- GᵀMG.
                for k in 0..n {
                    let mkp = m[idx(k, p)];
                    let mkq = m[idx(k, q)];
                    m[idx(k, p)] = c * mkp - s * mkq;
                    m[idx(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[idx(p, k)];
                    let mqk = m[idx(q, k)];
                    m[idx(p, k)] = c * mpk - s * mqk;
                    m[idx(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors: V <- VG.
                for k in 0..n {
                    let vkp = v[idx(k, p)];
                    let vkq = v[idx(k, q)];
                    v[idx(k, p)] = c * vkp - s * vkq;
                    v[idx(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[idx(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let eigenvalues: Vec<f32> = pairs.iter().map(|&(l, _)| l as f32).collect();
    let eigenvectors = Mat::from_fn(n, n, |r, c| v[idx(r, pairs[c].1)] as f32);
    (eigenvalues, eigenvectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_transb};

    fn reconstruct(vals: &[f32], vecs: &Mat) -> Mat {
        let n = vals.len();
        let d = Mat::from_fn(n, n, |r, c| if r == c { vals[r] } else { 0.0 });
        matmul_transb(&matmul(vecs, &d), vecs)
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Mat::from_fn(3, 3, |r, c| if r == c { (3 - r) as f32 } else { 0.0 });
        let (vals, _) = jacobi_eigen(&a, JacobiOptions::default());
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 2.0).abs() < 1e-5);
        assert!((vals[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = jacobi_eigen(&a, JacobiOptions::default());
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 1.0).abs() < 1e-5);
        assert!(reconstruct(&vals, &vecs).max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn reconstructs_random_spd() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 0x9E3779B97F4A7C15);
        let b = Mat::random(10, 6, &mut rng);
        let a = crate::ops::gram(&b); // SPD (or PSD)
        let (vals, vecs) = jacobi_eigen(&a, JacobiOptions::default());
        // Eigenvalues of a Gram matrix are non-negative.
        assert!(vals.iter().all(|&l| l > -1e-3));
        // Sorted descending.
        assert!(vals.windows(2).all(|w| w[0] >= w[1] - 1e-6));
        let rec = reconstruct(&vals, &vecs);
        let scale = a.frob_norm().max(1.0);
        assert!(rec.max_abs_diff(&a) / scale < 1e-4, "reconstruction error too large");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Mat::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]);
        let (_, vecs) = jacobi_eigen(&a, JacobiOptions::default());
        let vtv = matmul(&vecs.transpose(), &vecs);
        assert!(vtv.max_abs_diff(&Mat::identity(3)) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let _ = jacobi_eigen(&Mat::zeros(2, 3), JacobiOptions::default());
    }
}
