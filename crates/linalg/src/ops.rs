//! Dense matrix products used by CPD-ALS: matmul, Gram, Hadamard and
//! Khatri-Rao (the `⊙` of Equation (4) in the paper).

use crate::Mat;

/// General dense matrix product `C = A · B`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Mat::zeros(m, n);
    // i-k-j loop order keeps the inner loop streaming over contiguous rows of
    // both B and C (row-major friendly).
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    c
}

/// Dense matrix product with the second operand transposed: `C = A · Bᵀ`.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_transb(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.cols(), "inner dimensions must agree");
    let (m, n) = (a.rows(), b.rows());
    Mat::from_fn(m, n, |i, j| a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum())
}

/// Gram matrix `G = Aᵀ · A` (an `F×F` symmetric PSD matrix) — line 3 of the
/// CPD-ALS algorithm. Accumulates in `f64` since mode sizes reach millions.
pub fn gram(a: &Mat) -> Mat {
    let f = a.cols();
    let mut acc = vec![0.0f64; f * f];
    for r in 0..a.rows() {
        let row = a.row(r);
        for i in 0..f {
            let ri = row[i] as f64;
            if ri == 0.0 {
                continue;
            }
            for j in i..f {
                acc[i * f + j] += ri * row[j] as f64;
            }
        }
    }
    let mut g = Mat::zeros(f, f);
    for i in 0..f {
        for j in i..f {
            let v = acc[i * f + j] as f32;
            g[(i, j)] = v;
            g[(j, i)] = v;
        }
    }
    g
}

/// Element-wise (Hadamard, `*` in the paper) product `A * B`.
///
/// # Panics
/// Panics if the shapes differ.
pub fn hadamard(a: &Mat, b: &Mat) -> Mat {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| x * y).collect();
    Mat::from_vec(a.rows(), a.cols(), data)
}

/// In-place Hadamard product `a *= b`.
///
/// # Panics
/// Panics if the shapes differ.
pub fn hadamard_assign(a: &mut Mat, b: &Mat) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
}

/// Khatri-Rao product `K = A ⊙ B ∈ ℝ^{(I·J)×F}` — the "matching column-wise"
/// Kronecker product of §II-C. Row `i·J + j` of `K` is the Hadamard product
/// of row `i` of `A` and row `j` of `B`.
///
/// Only used on *small* operands (validation, fit computation); the whole
/// point of sparse MTTKRP is never materialising this for real tensors.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
pub fn khatri_rao(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.cols(), "Khatri-Rao operands must share the column count");
    let f = a.cols();
    let (i_dim, j_dim) = (a.rows(), b.rows());
    let mut k = Mat::zeros(i_dim * j_dim, f);
    for i in 0..i_dim {
        let arow = a.row(i);
        for j in 0..j_dim {
            let brow = b.row(j);
            let krow = k.row_mut(i * j_dim + j);
            for c in 0..f {
                krow[c] = arow[c] * brow[c];
            }
        }
    }
    k
}

/// Chained Khatri-Rao product `M₀ ⊙ M₁ ⊙ … ⊙ Mₙ` evaluated left to right.
///
/// # Panics
/// Panics if `mats` is empty or column counts differ.
pub fn khatri_rao_chain(mats: &[&Mat]) -> Mat {
    assert!(!mats.is_empty(), "khatri_rao_chain needs at least one operand");
    let mut acc = mats[0].clone();
    for m in &mats[1..] {
        acc = khatri_rao(&acc, m);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Mat, b: &Mat, tol: f32) -> bool {
        a.max_abs_diff(b) <= tol
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let i = Mat::identity(3);
        assert!(approx_eq(&matmul(&a, &i), &a, 0.0));
        assert!(approx_eq(&matmul(&i, &a), &a, 0.0));
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transb_agrees_with_explicit_transpose() {
        let a = Mat::from_fn(4, 3, |r, c| (r + 2 * c) as f32);
        let b = Mat::from_fn(5, 3, |r, c| (2 * r + c) as f32);
        let expect = matmul(&a, &b.transpose());
        assert!(approx_eq(&matmul_transb(&a, &b), &expect, 1e-5));
    }

    #[test]
    fn gram_matches_definition() {
        let a = Mat::from_fn(6, 4, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let expect = matmul(&a.transpose(), &a);
        let g = gram(&a);
        assert!(approx_eq(&g, &expect, 1e-4));
        // symmetry
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn hadamard_known() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(hadamard(&a, &b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        let mut c = a.clone();
        hadamard_assign(&mut c, &b);
        assert_eq!(c.as_slice(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn khatri_rao_shape_and_values() {
        // A is 2x2, B is 3x2 -> K is 6x2, row (i*3+j) = A[i,:]*B[j,:]
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let k = khatri_rao(&a, &b);
        assert_eq!(k.rows(), 6);
        assert_eq!(k.cols(), 2);
        assert_eq!(k.row(0), &[1.0, 2.0]); // a0*b0
        assert_eq!(k.row(2), &[3.0, 6.0]); // a0*b2
        assert_eq!(k.row(5), &[9.0, 12.0]); // a1*b2
    }

    #[test]
    fn khatri_rao_chain_three_way() {
        let a = Mat::from_fn(2, 2, |r, c| (r + c + 1) as f32);
        let b = Mat::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f32);
        let c = Mat::from_fn(2, 2, |r, c| (r + 2 * c + 1) as f32);
        let chained = khatri_rao_chain(&[&a, &b, &c]);
        let expect = khatri_rao(&khatri_rao(&a, &b), &c);
        assert!(approx_eq(&chained, &expect, 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
