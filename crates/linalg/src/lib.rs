//! # scalfrag-linalg
//!
//! Small dense linear algebra support for the ScalFrag reproduction.
//!
//! CPD-ALS (Algorithm 1 of the paper) needs, besides the sparse MTTKRP
//! itself, a handful of *dense* operations on the factor matrices:
//!
//! * Gram matrices `Aᵀ·A` (line 3 of Algorithm 1),
//! * Hadamard products of those Gram matrices,
//! * the Moore-Penrose pseudo-inverse of the resulting `F×F` symmetric
//!   positive semi-definite matrix (line 5),
//! * the Khatri-Rao product (for validating MTTKRP on small tensors and for
//!   reconstructing a tensor from its factors when computing the CPD fit).
//!
//! All matrices here are row-major [`Mat`] with `f32` entries — the rank `F`
//! is small (8–64 in the paper's experiments) so no BLAS is needed; the
//! implementations favour clarity and are unit/property tested instead.

pub mod eig;
pub mod mat;
pub mod ops;
pub mod pinv;

pub use eig::{jacobi_eigen, JacobiOptions};
pub use mat::Mat;
pub use ops::{
    gram, hadamard, hadamard_assign, khatri_rao, khatri_rao_chain, matmul, matmul_transb,
};
pub use pinv::{pinv_spd, solve_normal_equations};

/// Tolerance used across the crate when deciding whether an eigenvalue is
/// numerically zero relative to the largest one.
pub const EIG_EPS: f32 = 1e-6;
