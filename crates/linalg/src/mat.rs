//! Row-major dense matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f32`.
///
/// This is the storage type for CPD factor matrices and all of the small
/// `F×F` intermediates of the ALS update. Row-major layout matches the
/// access pattern of MTTKRP, which streams whole factor rows.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[0, 1)` using the
    /// supplied RNG — the standard CPD-ALS factor initialisation.
    pub fn random(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen::<f32>())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major data slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrows row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Fills every entry with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// Frobenius norm `‖M‖_F = sqrt(Σ m_ij²)`, accumulated in `f64` for
    /// stability on large factors.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Squared Frobenius norm accumulated in `f64`.
    pub fn frob_norm_sq(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()
    }

    /// Maximum absolute entry-wise difference to `other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Mat) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Entry-wise `self += alpha * other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every entry by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// True when all entries are finite (no NaN/∞) — used as a sanity check
    /// after ALS updates.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Normalises every column to unit Euclidean length and returns the
    /// vector of original column norms (the CPD "lambda" weights). Columns
    /// with zero norm are left untouched and report a norm of 0.
    pub fn normalize_columns(&mut self) -> Vec<f32> {
        let mut norms = vec![0.0f64; self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self[(r, c)] as f64;
                norms[c] += v * v;
            }
        }
        let norms: Vec<f32> = norms.into_iter().map(|n| n.sqrt() as f32).collect();
        for r in 0..self.rows {
            for c in 0..self.cols {
                if norms[c] > 0.0 {
                    self[(r, c)] /= norms[c];
                }
            }
        }
        norms
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Mat::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn indexing_is_row_major() {
        let m = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Mat::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), m);
        assert_eq!(t[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn frob_norm_matches_manual() {
        let m = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frob_norm() - 5.0).abs() < 1e-6);
        assert!((m.frob_norm_sq() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 7.0, 8.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12.0, 14.0, 16.0]);
    }

    #[test]
    fn normalize_columns_unit_norm() {
        let mut m = Mat::from_vec(2, 2, vec![3.0, 0.0, 4.0, 0.0]);
        let norms = m.normalize_columns();
        assert!((norms[0] - 5.0).abs() < 1e-6);
        assert_eq!(norms[1], 0.0);
        assert!((m[(0, 0)] - 0.6).abs() < 1e-6);
        assert!((m[(1, 0)] - 0.8).abs() < 1e-6);
        // zero column untouched
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let m = Mat::from_fn(4, 4, |r, c| (r + c) as f32);
        assert_eq!(m.max_abs_diff(&m.clone()), 0.0);
    }

    #[test]
    fn random_in_unit_interval() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9E3779B97F4A7C15);
        let m = Mat::random(8, 8, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Mat::zeros(2, 2);
        assert!(m.is_finite());
        m[(1, 1)] = f32::NAN;
        assert!(!m.is_finite());
    }
}
