//! The fault taxonomy and the append-only log of injections and
//! recoveries.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// What goes wrong. The four kinds cover the failure modes that dominate
/// multi-GPU tensor workloads: whole-device loss, ECC-visible transfer
/// corruption, kernel-level aborts, and stragglers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The device stops accepting work. `down_s: Some(d)` is a transient
    /// outage that heals after `d` simulated seconds (counted from the
    /// moment the fault is observed); `None` is permanent for the run.
    DeviceFail { down_s: Option<f64> },
    /// One H2D/D2H transfer delivers corrupted bytes. Detectable: the
    /// resilient executors checksum every segment after transfer, so a
    /// corrupted segment is retried rather than silently consumed.
    TransferCorruption,
    /// One kernel launch aborts after being charged its full cost.
    KernelAbort,
    /// The device keeps working but slows down: bandwidths divide by
    /// `derate`, fixed latencies multiply by it (`derate >= 1`).
    Straggler { derate: f64 },
}

impl FaultKind {
    /// Whether a single retry (or waiting out the downtime) can recover
    /// from this fault without moving work to another device.
    pub fn is_recoverable_in_place(&self) -> bool {
        !matches!(self, FaultKind::DeviceFail { down_s: None })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DeviceFail { down_s: Some(d) } => {
                write!(f, "transient device failure ({d:.2e}s)")
            }
            FaultKind::DeviceFail { down_s: None } => write!(f, "permanent device failure"),
            FaultKind::TransferCorruption => write!(f, "transfer corruption"),
            FaultKind::KernelAbort => write!(f, "kernel abort"),
            FaultKind::Straggler { derate } => write!(f, "straggler (derate {derate:.2}x)"),
        }
    }
}

/// What a recovery layer did about a fault. Logged next to the injections
/// so a `FaultLog` reads as a causal trace of the whole incident.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoveryAction {
    /// A pipeline/cluster executor re-enqueued a failed segment
    /// (`attempt` is 1-based: attempt 2 is the first retry).
    RetrySegment { shard: usize, segment: usize, attempt: u32 },
    /// The cluster executor re-placed a shard from a dead device onto a
    /// survivor.
    ReShard { shard: usize, from_device: usize, to_device: usize },
    /// The serve scheduler put a job back in the queue (device failed at
    /// or during its service).
    Requeue { job: u64 },
    /// CPD-ALS rolled factors back to the checkpoint taken after
    /// `to_sweep` completed sweeps.
    Rollback { to_sweep: usize },
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::RetrySegment { shard, segment, attempt } => {
                write!(f, "retry shard {shard} segment {segment} (attempt {attempt})")
            }
            RecoveryAction::ReShard { shard, from_device, to_device } => {
                write!(f, "re-place shard {shard}: device {from_device} -> {to_device}")
            }
            RecoveryAction::Requeue { job } => write!(f, "requeue job {job}"),
            RecoveryAction::Rollback { to_sweep } => {
                write!(f, "roll back to checkpoint at sweep {to_sweep}")
            }
        }
    }
}

/// One log line: either a fault firing or a recovery responding.
#[derive(Clone, Debug, PartialEq)]
pub enum LogEntry {
    /// A planned fault fired. `op` is the per-device operation index that
    /// observed it (`None` for health polls outside any operation).
    Injected { kind: FaultKind, op: Option<u64> },
    /// A recovery layer acted.
    Recovered { action: RecoveryAction },
}

/// A timestamped, device-attributed log record.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// Device the event concerns.
    pub device: usize,
    /// Simulated time of observation (s).
    pub sim_time_s: f64,
    /// What happened.
    pub entry: LogEntry,
}

/// The append-only trace of a fault-injected run. Determinism contract:
/// the same [`crate::FaultPlan`] driven by the same execution produces a
/// byte-identical log ([`FaultLog::fingerprint`] is the cheap witness).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultLog {
    /// Records in observation order.
    pub records: Vec<LogRecord>,
}

impl FaultLog {
    /// Number of faults that actually fired.
    pub fn injected(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.entry, LogEntry::Injected { .. })).count()
    }

    /// Number of recovery actions recorded.
    pub fn recoveries(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.entry, LogEntry::Recovered { .. })).count()
    }

    /// Injected fault kinds, in observation order.
    pub fn injected_kinds(&self) -> impl Iterator<Item = &FaultKind> {
        self.records.iter().filter_map(|r| match &r.entry {
            LogEntry::Injected { kind, .. } => Some(kind),
            LogEntry::Recovered { .. } => None,
        })
    }

    /// Order-sensitive, bit-stable fingerprint of the whole trace
    /// (timestamps hashed via `f64::to_bits`).
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.records.len().hash(&mut h);
        for r in &self.records {
            r.device.hash(&mut h);
            r.sim_time_s.to_bits().hash(&mut h);
            // Debug form is stable and covers every enum payload; f64
            // payloads print with enough digits to distinguish plans.
            format!("{:?}", r.entry).hash(&mut h);
        }
        h.finish()
    }

    /// Human-readable rendering, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let line = match &r.entry {
                LogEntry::Injected { kind, op } => match op {
                    Some(op) => format!(
                        "[{:>10.6}s] dev{} op{:<4} FAULT    {kind}\n",
                        r.sim_time_s, r.device, op
                    ),
                    None => {
                        format!(
                            "[{:>10.6}s] dev{}        FAULT    {kind}\n",
                            r.sim_time_s, r.device
                        )
                    }
                },
                LogEntry::Recovered { action } => {
                    format!("[{:>10.6}s] dev{}        RECOVER  {action}\n", r.sim_time_s, r.device)
                }
            };
            out.push_str(&line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> FaultLog {
        FaultLog {
            records: vec![
                LogRecord {
                    device: 1,
                    sim_time_s: 0.5,
                    entry: LogEntry::Injected { kind: FaultKind::TransferCorruption, op: Some(3) },
                },
                LogRecord {
                    device: 1,
                    sim_time_s: 0.6,
                    entry: LogEntry::Recovered {
                        action: RecoveryAction::RetrySegment { shard: 0, segment: 2, attempt: 2 },
                    },
                },
            ],
        }
    }

    #[test]
    fn counts_and_kinds() {
        let log = sample_log();
        assert_eq!(log.injected(), 1);
        assert_eq!(log.recoveries(), 1);
        assert_eq!(log.injected_kinds().collect::<Vec<_>>(), [&FaultKind::TransferCorruption]);
    }

    #[test]
    fn fingerprint_is_order_and_payload_sensitive() {
        let a = sample_log();
        let mut b = a.clone();
        b.records.reverse();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.records[0].sim_time_s = 0.5000001;
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), sample_log().fingerprint());
    }

    #[test]
    fn recoverability_classification() {
        assert!(FaultKind::DeviceFail { down_s: Some(1e-3) }.is_recoverable_in_place());
        assert!(!FaultKind::DeviceFail { down_s: None }.is_recoverable_in_place());
        assert!(FaultKind::TransferCorruption.is_recoverable_in_place());
        assert!(FaultKind::Straggler { derate: 2.0 }.is_recoverable_in_place());
    }

    #[test]
    fn render_mentions_every_record() {
        let text = sample_log().render();
        assert!(text.contains("FAULT"));
        assert!(text.contains("RECOVER"));
        assert!(text.contains("transfer corruption"));
    }
}
