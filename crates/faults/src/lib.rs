//! # scalfrag-faults — deterministic fault injection for the simulated stack
//!
//! Large-scale MTTKRP only makes sense on hardware where partial failures
//! are the norm: a multi-GPU node loses a card, a PCIe transfer flips bits,
//! a kernel aborts, a thermally throttled device straggles. This crate
//! gives the simulated stack a *deterministic* model of exactly those
//! events so every resilience layer above it can be tested bit-for-bit:
//!
//! * **Fault taxonomy** ([`event`]) — [`FaultKind`] covers device failure
//!   (permanent or transient with a downtime), ECC-style H2D/D2H transfer
//!   corruption (detectable via segment checksums), kernel aborts, and
//!   straggler derating. Every injected fault and every recovery action
//!   lands in a [`FaultLog`] with a stable fingerprint.
//! * **Fault plans** ([`plan`]) — a [`FaultPlan`] schedules faults per
//!   device by simulated time ([`FaultTrigger::AtTime`]) or by operation
//!   count ([`FaultTrigger::AtOp`]); [`FaultPlan::seeded_storm`] draws a
//!   whole MTBF-controlled storm from one seed.
//! * **The injector** ([`injector`]) — executors poll
//!   [`FaultInjector::on_op`] before each simulated H2D/D2H/kernel and get
//!   a typed [`OpVerdict`]; schedulers poll [`FaultInjector::health_at`]
//!   for device state ([`DeviceHealth`]). Same plan + same execution ⇒
//!   identical verdicts and an identical log.
//! * **Checksums** ([`checksum`]) — FNV-1a fingerprints of tensors,
//!   matrices and raw buffers: the detection mechanism for transfer
//!   corruption and the "zero numeric drift" witness used by the
//!   `fault_storm` bench and the recovery property tests.
//!
//! The injector is deliberately passive: it never mutates the simulator.
//! Executors decide what a verdict means (charge the op and retry, stall
//! for backoff, re-place work), which keeps timing policy reviewable in
//! one place per layer — `scalfrag-pipeline` retries segments,
//! `scalfrag-cluster` re-places shards, `scalfrag-serve` requeues jobs,
//! `scalfrag-kernels` rolls CPD-ALS back to a checkpoint.

pub mod checksum;
pub mod event;
pub mod injector;
pub mod plan;

pub use checksum::{buffer_checksum, mat_checksum, tensor_checksum};
pub use event::{FaultKind, FaultLog, LogEntry, LogRecord, RecoveryAction};
pub use injector::{DeviceHealth, FaultInjector, OpClass, OpVerdict};
pub use plan::{FaultPlan, FaultTrigger, ScheduledFault};
