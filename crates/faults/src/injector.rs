//! The injector: consumes a [`FaultPlan`] against a running execution and
//! hands executors typed verdicts, while tracking per-device health and
//! the full [`FaultLog`].

use crate::event::{FaultKind, FaultLog, LogEntry, LogRecord, RecoveryAction};
use crate::plan::{FaultPlan, FaultTrigger};

/// The class of simulated operation being polled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Host-to-device transfer.
    H2D,
    /// Device-to-host transfer.
    D2H,
    /// Kernel launch.
    Kernel,
}

/// The injector's answer for one polled operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OpVerdict {
    /// The operation proceeds normally.
    Ok,
    /// The transfer completes but delivers corrupted bytes (the checksum
    /// pass will catch it; the executor pays the transfer and retries).
    Corrupted,
    /// The kernel is charged its full cost, then aborts.
    Aborted,
    /// The device is down: the operation does not run. `until_s: Some(t)`
    /// means it heals at simulated time `t`; `None` is permanent.
    DeviceDown { until_s: Option<f64> },
}

/// Current device state as seen by schedulers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeviceHealth {
    /// Accepting work at full speed.
    Healthy,
    /// Accepting work, derated by `derate` (bandwidths divided,
    /// latencies multiplied).
    Straggling {
        /// Slowdown factor, `>= 1`.
        derate: f64,
    },
    /// Not accepting work. `until_s: Some(t)` heals at `t`; `None` never.
    Down {
        /// Recovery time, if transient.
        until_s: Option<f64>,
    },
}

#[derive(Clone, Copy, Debug)]
struct DownState {
    until_s: Option<f64>,
}

/// Deterministic fault injector over one [`FaultPlan`].
///
/// Executors poll [`FaultInjector::on_op`] once per simulated operation
/// (which advances that device's operation counter) and
/// [`FaultInjector::health_at`] for scheduling decisions. Both are `&mut`
/// because observing a fault consumes it; given the same plan and the
/// same sequence of polls, every verdict — and the resulting
/// [`FaultLog`] — is identical.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    consumed: Vec<bool>,
    ops: Vec<u64>,
    down: Vec<Option<DownState>>,
    derate: Vec<Option<f64>>,
    log: FaultLog,
}

impl FaultInjector {
    /// An injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let n = plan.faults.len();
        Self {
            plan,
            consumed: vec![false; n],
            ops: Vec::new(),
            down: Vec::new(),
            derate: Vec::new(),
            log: FaultLog::default(),
        }
    }

    /// An injector with nothing scheduled (the fault-free baseline).
    pub fn inert() -> Self {
        Self::new(FaultPlan::new())
    }

    fn ensure(&mut self, device: usize) {
        if device >= self.ops.len() {
            self.ops.resize(device + 1, 0);
            self.down.resize(device + 1, None);
            self.derate.resize(device + 1, None);
        }
    }

    fn trigger_fired(trigger: FaultTrigger, now_s: f64, op: Option<u64>) -> bool {
        match trigger {
            FaultTrigger::AtTime(t) => now_s >= t,
            FaultTrigger::AtOp(n) => op.is_some_and(|o| o >= n),
        }
    }

    /// Activates any pending health-state faults (device failures,
    /// stragglers) whose trigger has fired for `device`.
    fn activate_health_faults(&mut self, device: usize, now_s: f64, op: Option<u64>) {
        for i in 0..self.plan.faults.len() {
            if self.consumed[i] {
                continue;
            }
            let f = self.plan.faults[i];
            if f.device != device || !Self::trigger_fired(f.trigger, now_s, op) {
                continue;
            }
            match f.kind {
                FaultKind::DeviceFail { down_s } => {
                    self.consumed[i] = true;
                    self.down[device] = Some(DownState { until_s: down_s.map(|d| now_s + d) });
                    self.log.records.push(LogRecord {
                        device,
                        sim_time_s: now_s,
                        entry: LogEntry::Injected { kind: f.kind, op },
                    });
                }
                FaultKind::Straggler { derate } => {
                    self.consumed[i] = true;
                    // Stragglers stack multiplicatively if scheduled twice.
                    let cur = self.derate[device].unwrap_or(1.0);
                    self.derate[device] = Some(cur * derate.max(1.0));
                    self.log.records.push(LogRecord {
                        device,
                        sim_time_s: now_s,
                        entry: LogEntry::Injected { kind: f.kind, op },
                    });
                }
                FaultKind::TransferCorruption | FaultKind::KernelAbort => {}
            }
        }
    }

    /// `Some(state)` if the device is down at `now_s` (clearing expired
    /// transient outages as a side effect).
    fn down_at(&mut self, device: usize, now_s: f64) -> Option<DownState> {
        match self.down[device] {
            Some(d) => match d.until_s {
                Some(u) if now_s >= u => {
                    self.down[device] = None;
                    None
                }
                _ => Some(d),
            },
            None => None,
        }
    }

    /// Polls the injector for one simulated operation on `device` at
    /// simulated time `now_s`. Advances the device's operation counter and
    /// returns the verdict; corruption applies only to transfer classes,
    /// aborts only to kernels.
    pub fn on_op(&mut self, device: usize, class: OpClass, now_s: f64) -> OpVerdict {
        self.ensure(device);
        let op = self.ops[device];
        self.ops[device] += 1;
        self.activate_health_faults(device, now_s, Some(op));
        if let Some(d) = self.down_at(device, now_s) {
            return OpVerdict::DeviceDown { until_s: d.until_s };
        }
        for i in 0..self.plan.faults.len() {
            if self.consumed[i] {
                continue;
            }
            let f = self.plan.faults[i];
            if f.device != device || !Self::trigger_fired(f.trigger, now_s, Some(op)) {
                continue;
            }
            let verdict = match (f.kind, class) {
                (FaultKind::TransferCorruption, OpClass::H2D | OpClass::D2H) => {
                    OpVerdict::Corrupted
                }
                (FaultKind::KernelAbort, OpClass::Kernel) => OpVerdict::Aborted,
                _ => continue,
            };
            self.consumed[i] = true;
            self.log.records.push(LogRecord {
                device,
                sim_time_s: now_s,
                entry: LogEntry::Injected { kind: f.kind, op: Some(op) },
            });
            return verdict;
        }
        OpVerdict::Ok
    }

    /// Current health of `device` at simulated time `now_s`. Activates
    /// any time-triggered health faults that have come due.
    pub fn health_at(&mut self, device: usize, now_s: f64) -> DeviceHealth {
        self.ensure(device);
        self.activate_health_faults(device, now_s, None);
        if let Some(d) = self.down_at(device, now_s) {
            return DeviceHealth::Down { until_s: d.until_s };
        }
        match self.derate[device] {
            Some(f) if f > 1.0 => DeviceHealth::Straggling { derate: f },
            _ => DeviceHealth::Healthy,
        }
    }

    /// The first device failure scheduled to fire by time on `device`
    /// strictly after `t0_s` and at or before `t1_s` — how the serve
    /// scheduler discovers a device dying *during* a job's service
    /// window. Consumes the fault, marks the device down and logs it;
    /// returns `(fail_time_s, until_s)`.
    pub fn fail_between(
        &mut self,
        device: usize,
        t0_s: f64,
        t1_s: f64,
    ) -> Option<(f64, Option<f64>)> {
        self.ensure(device);
        if self.down[device].is_some() {
            return None;
        }
        let mut best: Option<(usize, f64, Option<f64>)> = None;
        for i in 0..self.plan.faults.len() {
            if self.consumed[i] {
                continue;
            }
            let f = self.plan.faults[i];
            if f.device != device {
                continue;
            }
            if let (FaultTrigger::AtTime(t), FaultKind::DeviceFail { down_s }) = (f.trigger, f.kind)
            {
                if t > t0_s && t <= t1_s && best.is_none_or(|(_, bt, _)| t < bt) {
                    best = Some((i, t, down_s));
                }
            }
        }
        let (i, t, down_s) = best?;
        self.consumed[i] = true;
        let until_s = down_s.map(|d| t + d);
        self.down[device] = Some(DownState { until_s });
        self.log.records.push(LogRecord {
            device,
            sim_time_s: t,
            entry: LogEntry::Injected { kind: self.plan.faults[i].kind, op: None },
        });
        Some((t, until_s))
    }

    /// Logs a recovery action taken by an execution layer.
    pub fn record_recovery(&mut self, device: usize, now_s: f64, action: RecoveryAction) {
        self.log.records.push(LogRecord {
            device,
            sim_time_s: now_s,
            entry: LogEntry::Recovered { action },
        });
    }

    /// The log so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Operations polled on `device` so far.
    pub fn op_count(&self, device: usize) -> u64 {
        self.ops.get(device).copied().unwrap_or(0)
    }

    /// Scheduled faults that have not fired yet.
    pub fn faults_remaining(&self) -> usize {
        self.consumed.iter().filter(|&&c| !c).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_faults_fire_once_on_matching_class() {
        let plan = FaultPlan::new()
            .fault(0, FaultTrigger::AtOp(1), FaultKind::TransferCorruption)
            .fault(0, FaultTrigger::AtOp(2), FaultKind::KernelAbort);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_op(0, OpClass::H2D, 0.0), OpVerdict::Ok); // op 0
                                                                    // Op 1 is a kernel: the corruption fault is due but class-gated, so
                                                                    // it waits for the next transfer.
        assert_eq!(inj.on_op(0, OpClass::Kernel, 0.0), OpVerdict::Ok);
        assert_eq!(inj.on_op(0, OpClass::H2D, 0.0), OpVerdict::Corrupted); // op 2
        assert_eq!(inj.on_op(0, OpClass::Kernel, 0.0), OpVerdict::Aborted); // op 3
        assert_eq!(inj.on_op(0, OpClass::H2D, 0.0), OpVerdict::Ok);
        assert_eq!(inj.faults_remaining(), 0);
        assert_eq!(inj.log().injected(), 2);
    }

    #[test]
    fn transient_failure_heals_after_downtime() {
        let plan = FaultPlan::new().fault(
            0,
            FaultTrigger::AtOp(1),
            FaultKind::DeviceFail { down_s: Some(0.5) },
        );
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.on_op(0, OpClass::H2D, 1.0), OpVerdict::Ok);
        let v = inj.on_op(0, OpClass::Kernel, 1.0);
        assert_eq!(v, OpVerdict::DeviceDown { until_s: Some(1.5) });
        assert!(matches!(inj.health_at(0, 1.2), DeviceHealth::Down { .. }));
        assert_eq!(inj.health_at(0, 1.5), DeviceHealth::Healthy);
        assert_eq!(inj.on_op(0, OpClass::Kernel, 1.6), OpVerdict::Ok);
    }

    #[test]
    fn permanent_failure_never_heals_and_straggler_derates() {
        let plan = FaultPlan::new()
            .fault(1, FaultTrigger::AtTime(0.0), FaultKind::Straggler { derate: 2.0 })
            .fault(0, FaultTrigger::AtTime(1.0), FaultKind::DeviceFail { down_s: None });
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.health_at(1, 0.0), DeviceHealth::Straggling { derate: 2.0 });
        assert_eq!(inj.health_at(0, 0.5), DeviceHealth::Healthy);
        assert_eq!(inj.health_at(0, 1.0), DeviceHealth::Down { until_s: None });
        assert_eq!(inj.health_at(0, 99.0), DeviceHealth::Down { until_s: None });
        assert_eq!(inj.on_op(0, OpClass::H2D, 100.0), OpVerdict::DeviceDown { until_s: None });
    }

    #[test]
    fn fail_between_finds_midservice_failures() {
        let plan = FaultPlan::new().fault(
            0,
            FaultTrigger::AtTime(2.0),
            FaultKind::DeviceFail { down_s: Some(1.0) },
        );
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.fail_between(0, 0.0, 1.9), None);
        assert_eq!(inj.fail_between(0, 1.9, 3.0), Some((2.0, Some(3.0))));
        // Consumed: a second scan finds nothing.
        assert_eq!(inj.fail_between(0, 0.0, 10.0), None);
        assert!(matches!(inj.health_at(0, 2.5), DeviceHealth::Down { .. }));
        assert_eq!(inj.health_at(0, 3.0), DeviceHealth::Healthy);
    }

    #[test]
    fn identical_poll_sequences_give_identical_logs() {
        let plan = FaultPlan::seeded_storm(42, 2, 3, 24, true);
        let drive = |mut inj: FaultInjector| -> u64 {
            for op in 0..16u64 {
                let now = op as f64 * 0.01;
                let _ = inj.on_op(0, OpClass::H2D, now);
                let _ = inj.on_op(0, OpClass::Kernel, now);
                let _ = inj.on_op(1, OpClass::H2D, now);
                let _ = inj.health_at(1, now);
            }
            inj.log().fingerprint()
        };
        assert_eq!(drive(FaultInjector::new(plan.clone())), drive(FaultInjector::new(plan)));
    }

    #[test]
    fn inert_injector_never_intervenes() {
        let mut inj = FaultInjector::inert();
        for op in 0..32 {
            assert_eq!(inj.on_op(0, OpClass::Kernel, op as f64), OpVerdict::Ok);
        }
        assert_eq!(inj.health_at(0, 10.0), DeviceHealth::Healthy);
        assert_eq!(inj.log().records.len(), 0);
    }
}
