//! Fault plans: the declarative, seed-reproducible schedule of what fails
//! where and when.

use crate::event::FaultKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When a scheduled fault fires, per device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultTrigger {
    /// Fires at the first poll whose simulated time reaches `t` seconds.
    AtTime(f64),
    /// Fires at the first operation whose per-device operation index
    /// (0-based, counted across H2D/D2H/kernel polls) reaches `n`.
    AtOp(u64),
}

/// One planned fault: a device, a trigger, a kind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduledFault {
    /// Target device index.
    pub device: usize,
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What fires.
    pub kind: FaultKind,
}

/// An ordered list of scheduled faults. Order matters only among faults
/// that become eligible at the same poll (earlier entries fire first);
/// everything else is governed by the triggers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The schedule.
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (the fault-free baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one fault (builder style).
    pub fn fault(mut self, device: usize, trigger: FaultTrigger, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault { device, trigger, kind });
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether every scheduled fault is recoverable without abandoning the
    /// device (i.e. no permanent `DeviceFail`).
    pub fn is_recoverable(&self) -> bool {
        self.faults.iter().all(|f| f.kind.is_recoverable_in_place())
    }

    /// Draws a whole fault storm from one seed: per device, operation gaps
    /// follow a geometric-ish law with mean `mean_ops_between_faults`
    /// (the MTBF knob, in operations), truncated at `horizon_ops`. Fault
    /// kinds mix transfer corruption, kernel aborts, stragglers and device
    /// failures; `recoverable_only` replaces permanent device failures
    /// with transient ones so retry-class policies can always finish.
    ///
    /// Deterministic: same arguments ⇒ identical plan.
    pub fn seeded_storm(
        seed: u64,
        num_devices: usize,
        mean_ops_between_faults: u64,
        horizon_ops: u64,
        recoverable_only: bool,
    ) -> Self {
        assert!(num_devices > 0, "a storm needs at least one device");
        assert!(mean_ops_between_faults > 0, "MTBF must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_5eed_u64.rotate_left(17));
        let mut faults = Vec::new();
        for device in 0..num_devices {
            let mut op = 0u64;
            loop {
                // Inverse-CDF exponential gap, rounded up so faults never
                // pile onto the same op index.
                let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
                let gap = (-(1.0 - u).ln() * mean_ops_between_faults as f64).ceil().max(1.0);
                op = op.saturating_add(gap as u64);
                if op >= horizon_ops {
                    break;
                }
                let kind = match rng.gen_range(0u32..100) {
                    0..=39 => FaultKind::TransferCorruption,
                    40..=59 => FaultKind::KernelAbort,
                    60..=79 => FaultKind::Straggler { derate: 1.25 + rng.gen::<f64>() * 2.0 },
                    _ => {
                        let transient = recoverable_only || rng.gen::<bool>();
                        if transient {
                            // Downtime on the order of a few segment times.
                            FaultKind::DeviceFail {
                                down_s: Some(1e-4 * (1.0 + rng.gen::<f64>() * 9.0)),
                            }
                        } else {
                            FaultKind::DeviceFail { down_s: None }
                        }
                    }
                };
                faults.push(ScheduledFault { device, trigger: FaultTrigger::AtOp(op), kind });
            }
        }
        Self { faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let p = FaultPlan::new()
            .fault(0, FaultTrigger::AtOp(2), FaultKind::TransferCorruption)
            .fault(1, FaultTrigger::AtTime(0.5), FaultKind::KernelAbort);
        assert_eq!(p.len(), 2);
        assert_eq!(p.faults[0].device, 0);
        assert_eq!(p.faults[1].trigger, FaultTrigger::AtTime(0.5));
        assert!(p.is_recoverable());
    }

    #[test]
    fn permanent_failure_marks_plan_unrecoverable() {
        let p = FaultPlan::new().fault(
            0,
            FaultTrigger::AtOp(1),
            FaultKind::DeviceFail { down_s: None },
        );
        assert!(!p.is_recoverable());
    }

    #[test]
    fn seeded_storm_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded_storm(7, 3, 8, 64, true);
        let b = FaultPlan::seeded_storm(7, 3, 8, 64, true);
        assert_eq!(a, b, "same seed must give the identical plan");
        let c = FaultPlan::seeded_storm(8, 3, 8, 64, true);
        assert_ne!(a, c, "different seed must change the plan");
        assert!(!a.is_empty(), "mean gap 8 over 64 ops on 3 devices should fire");
    }

    #[test]
    fn recoverable_storms_never_schedule_permanent_failures() {
        for seed in 0..16u64 {
            let p = FaultPlan::seeded_storm(seed, 4, 4, 128, true);
            assert!(p.is_recoverable(), "seed {seed} produced a permanent failure");
        }
    }

    #[test]
    fn storm_respects_horizon_and_mtbf_scaling() {
        let dense = FaultPlan::seeded_storm(3, 2, 4, 256, true);
        let sparse = FaultPlan::seeded_storm(3, 2, 64, 256, true);
        assert!(dense.len() > sparse.len(), "shorter MTBF must mean more faults");
        for f in &dense.faults {
            match f.trigger {
                FaultTrigger::AtOp(op) => assert!(op < 256),
                FaultTrigger::AtTime(_) => panic!("storms schedule by op count"),
            }
        }
    }
}
