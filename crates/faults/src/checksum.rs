//! FNV-1a fingerprints over tensors, matrices and raw value buffers.
//!
//! Two roles: (1) the ECC-style *detection* mechanism — resilient
//! executors conceptually checksum every transferred segment, and the
//! simulated verification cost is charged as a host task sized by these
//! routines' inputs; (2) the *zero numeric drift* witness — recovery
//! tests and the `fault_storm` bench compare output fingerprints against
//! fault-free runs, so "bit-identical" is one `u64` comparison.

use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of a raw f32 buffer (bit-exact: hashes `to_bits`).
pub fn buffer_checksum(values: &[f32]) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(values.len() as u64).to_le_bytes());
    for v in values {
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

/// Fingerprint of a matrix: shape plus bit-exact contents.
pub fn mat_checksum(m: &Mat) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(m.rows() as u64).to_le_bytes());
    h = fnv1a(h, &(m.cols() as u64).to_le_bytes());
    for v in m.as_slice() {
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

/// Fingerprint of a COO tensor: dims, nnz and bit-exact values — what a
/// segment checksum pass would verify after an H2D transfer.
pub fn tensor_checksum(t: &CooTensor) -> u64 {
    let mut h = FNV_OFFSET;
    for &d in t.dims() {
        h = fnv1a(h, &(d as u64).to_le_bytes());
    }
    h = fnv1a(h, &(t.nnz() as u64).to_le_bytes());
    for v in t.values() {
        h = fnv1a(h, &v.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_checksum_is_bit_sensitive() {
        let a = buffer_checksum(&[1.0, 2.0, 3.0]);
        assert_eq!(a, buffer_checksum(&[1.0, 2.0, 3.0]));
        assert_ne!(a, buffer_checksum(&[1.0, 2.0, 3.0000002]));
        assert_ne!(a, buffer_checksum(&[1.0, 2.0]));
        // 0.0 and -0.0 are distinct bit patterns: a corruption flipping
        // only the sign bit must still be caught.
        assert_ne!(buffer_checksum(&[0.0]), buffer_checksum(&[-0.0]));
    }

    #[test]
    fn mat_checksum_includes_shape() {
        let a = Mat::from_vec(2, 3, vec![1.0; 6]);
        let b = Mat::from_vec(3, 2, vec![1.0; 6]);
        assert_ne!(mat_checksum(&a), mat_checksum(&b));
        assert_eq!(mat_checksum(&a), mat_checksum(&a.clone()));
    }

    #[test]
    fn tensor_checksum_detects_value_corruption() {
        let t = CooTensor::random_uniform(&[16, 16, 16], 200, 99);
        let base = tensor_checksum(&t);
        assert_eq!(base, tensor_checksum(&t.clone()));
        let mut corrupted = t.clone();
        corrupted.values_mut()[17] += 1.0e-6;
        assert_ne!(base, tensor_checksum(&corrupted));
    }
}
