//! Retry and recovery policies — plan-level metadata consumed by the
//! interpreter's resilient mode.

/// Segment-retry policy: capped attempts with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per segment (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry (s).
    pub backoff_base_s: f64,
    /// Multiplier applied per further retry.
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, backoff_base_s: 5e-5, backoff_mult: 2.0 }
    }
}

impl RetryPolicy {
    /// The ablation baseline: one attempt, no recovery.
    pub fn no_retry() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// Default backoff schedule with a custom attempt cap.
    pub fn with_attempts(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        Self { max_attempts, ..Self::default() }
    }

    /// Backoff stall before `attempt` (1-based; attempt 1 pays none).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            0.0
        } else {
            self.backoff_base_s * self.backoff_mult.powi(attempt as i32 - 2)
        }
    }
}

/// How far a multi-device run goes to keep a fault-injected run alive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Lose faulted work; abandon a device on any failure.
    NoRetry,
    /// Retry segments in place; wait out transient outages.
    Retry,
    /// [`RecoveryMode::Retry`] plus re-placement of a dead device's
    /// unfinished work onto survivors.
    RetryReShard,
}

/// The cluster-level recovery policy: a mode plus the segment retry knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRecoveryPolicy {
    /// Recovery mode.
    pub mode: RecoveryMode,
    /// Per-segment retry schedule (ignored under
    /// [`RecoveryMode::NoRetry`]).
    pub retry: RetryPolicy,
}

impl FaultRecoveryPolicy {
    /// The ablation baseline: one attempt, no re-placement.
    pub fn no_retry() -> Self {
        Self { mode: RecoveryMode::NoRetry, retry: RetryPolicy::no_retry() }
    }

    /// In-place retries with the default backoff schedule.
    pub fn retry() -> Self {
        Self { mode: RecoveryMode::Retry, retry: RetryPolicy::default() }
    }

    /// Retries plus shard re-placement — the full recovery stack.
    pub fn retry_reshard() -> Self {
        Self { mode: RecoveryMode::RetryReShard, retry: RetryPolicy::default() }
    }

    /// Same mode with a custom retry schedule.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_exponential() {
        let p = RetryPolicy { max_attempts: 5, backoff_base_s: 1e-4, backoff_mult: 2.0 };
        assert_eq!(p.backoff_s(1), 0.0);
        assert!((p.backoff_s(2) - 1e-4).abs() < 1e-18);
        assert!((p.backoff_s(3) - 2e-4).abs() < 1e-18);
        assert!((p.backoff_s(4) - 4e-4).abs() < 1e-18);
    }
}
