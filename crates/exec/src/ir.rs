//! The ScheduleIR: an executable description of one MTTKRP schedule.
//!
//! A [`Plan`] is built once by a *plan builder* (the `pipeline`, `cluster`
//! and `serve` crates) and executed by the single interpreter in
//! [`crate::interp`]. Per device the plan lowers to a linear program of
//! typed ops ([`PlanOp`]) — `Alloc`, `Free`, `Evict`, `Prefetch`, `H2D`,
//! `Launch`, `HostResidue`, `Barrier`, `D2H` — each tagged with a stream
//! placement where it moves data; streams within
//! a device execute their queues in order, so the op list plus the barrier
//! edges form the schedule DAG. Cross-device reduction is a single
//! analytic [`PlanOp::Reduce`] op.
//!
//! The same lowering feeds both execution and [`Plan::render`], so the IR
//! dump is exactly what the interpreter runs.

use crate::kernel::KernelChoice;
use crate::retry::RetryPolicy;
use scalfrag_gpusim::{DeviceSpec, HostSpec, KernelWorkload, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::segment::Segment;
use scalfrag_tensor::{CooTensor, Idx};
use std::fmt::Write as _;
use std::sync::Arc;

/// Whether the interpreter computes numerics or only simulates time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Kernels run their numeric bodies; the outcome carries the real
    /// MTTKRP output.
    Functional,
    /// Timing-only: identical schedule and simulated clock, zero output.
    Dry,
}

/// A stream slot within one device's plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamRef {
    /// One of the device's worker streams.
    Worker(usize),
    /// The dedicated D2H return stream (cluster plans).
    D2h,
    /// The host-task stream (hybrid residue).
    Host,
}

/// One typed op of the lowered per-device program.
///
/// Memory ops name device buffers by *slot* — a small program-local
/// handle the interpreter maps to a live pool allocation. `Alloc`/`Free`
/// are host-side bookkeeping (no timeline span); `Evict` and `Prefetch`
/// move segment bytes and therefore occupy copy-engine time like any
/// other transfer, participating in retries, dry runs and trace
/// fingerprints.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // field meanings documented per variant
pub enum PlanOp {
    /// Charge a device-memory allocation of `bytes` into `slot` (fails
    /// the plan with the `what` message if it cannot fit). `transient`
    /// buffers must be freed before the program ends — the interpreter's
    /// dry-run leak check enforces it.
    Alloc { slot: usize, bytes: u64, what: &'static str, transient: bool },
    /// Release `slot` back to the device pool (no timeline span).
    Free { slot: usize },
    /// Evict `slot` to make room for the next resident segment: an
    /// optional D2H write-back of `writeback_bytes` on `stream` (0 =
    /// clean drop, no span), then the slot's pool page is released.
    Evict { stream: StreamRef, slot: usize, writeback_bytes: u64, label: String },
    /// (Re-)stage a segment: allocate `bytes` into the empty `slot` and
    /// H2D the payload on `stream` — the re-fetch half of an eviction.
    Prefetch { stream: StreamRef, slot: usize, bytes: u64, what: &'static str, label: String },
    /// Host-to-device copy of `bytes` on `stream`.
    H2D { stream: StreamRef, bytes: u64, label: String },
    /// One segment's kernel launch on `stream` with the lowered
    /// `(grid, block)`; `unit` indexes [`DeviceOps::units`].
    Launch { stream: StreamRef, unit: usize, grid: u32, block: u32, label: String },
    /// The CPU residue of a hybrid schedule, folded concurrently on the
    /// host stream.
    HostResidue { stream: StreamRef, label: &'static str },
    /// Event edge: record on every `record` stream, wait on every `wait`
    /// stream. Events are pure ordering; they occupy no engine time.
    Barrier { record: Vec<StreamRef>, wait: Vec<StreamRef> },
    /// Device-to-host copy of `bytes` on `stream`.
    D2H { stream: StreamRef, bytes: u64, label: String },
    /// The analytic cross-shard reduction of `seconds` (plan-level,
    /// render only).
    Reduce { seconds: f64 },
}

/// One shard of the input tensor (a single-device plan has exactly one).
#[derive(Clone, Debug)]
pub struct ShardDesc {
    /// Global shard index — also the partial-buffer slot it accumulates
    /// into and its position in the reduction fold order.
    pub index: usize,
    /// The shard's entries (mode-sorted for segmented plans).
    pub tensor: Arc<CooTensor>,
    /// Owned output row range when slice-aligned (`None` = rows may
    /// straddle shards and the full partial output returns).
    pub rows: Option<(Idx, Idx)>,
}

/// One work unit: a segment's H2D + kernel launch.
#[derive(Clone, Debug)]
pub struct WorkUnit {
    /// Index into [`Plan::shards`].
    pub shard: usize,
    /// Segment ordinal within the shard.
    pub segment: usize,
    /// The nnz range this unit covers.
    pub seg: Segment,
    /// Static worker-stream placement; `None` = the device's round-robin
    /// stream counter assigns one at lowering time.
    pub stream: Option<usize>,
    /// Per-unit segment-buffer allocation (skip when the prologue already
    /// charged it, as the sync plan does for the whole tensor).
    pub alloc: Option<(u64, &'static str)>,
    /// H2D payload bytes.
    pub h2d_bytes: u64,
    /// H2D span label.
    pub h2d_label: String,
    /// Kernel span label.
    pub kernel_label: String,
    /// Analytic cost-model workload for *virtual* units (synthetic
    /// presets too large to materialise): the interpreter launches this
    /// workload directly instead of slicing the shard tensor. Virtual
    /// units are dry-only — a functional run panics.
    pub workload: Option<KernelWorkload>,
}

/// One shard's slice of a device program: output allocation, units, and
/// the per-shard partial-result return.
#[derive(Clone, Debug)]
pub struct ShardWork {
    /// Index into [`Plan::shards`].
    pub shard: usize,
    /// Partial-output allocation charged before the shard's units.
    pub output_alloc: Option<(u64, &'static str)>,
    /// Indices into [`DeviceOps::units`].
    pub units: Vec<usize>,
    /// Per-shard D2H `(bytes, label)` on the dedicated return stream,
    /// ordered after the shard's kernels (absent under peer reduction).
    pub d2h: Option<(u64, String)>,
}

/// The hybrid schedule's CPU residue.
#[derive(Clone, Debug)]
pub struct ResidueWork {
    /// The sparse-slice tail folded on the host.
    pub tensor: Arc<CooTensor>,
    /// Roofline flops of the host task.
    pub flops: u64,
    /// Roofline bytes of the host task.
    pub bytes: u64,
    /// Host-task span label.
    pub label: &'static str,
}

/// One device's share of the plan.
#[derive(Clone, Debug)]
pub struct DeviceOps {
    /// Device index within the plan (names it to the fault injector).
    pub device: usize,
    /// Marketing name of the simulated device.
    pub name: &'static str,
    /// Device model the interpreter instantiates (ignored when the caller
    /// supplies its own [`scalfrag_gpusim::Gpu`]).
    pub spec: DeviceSpec,
    /// Host model for host tasks (`None` = default host).
    pub host: Option<HostSpec>,
    /// Worker-stream count.
    pub worker_streams: usize,
    /// Whether partial results return on a dedicated D2H stream.
    pub dedicated_d2h: bool,
    /// Hybrid CPU residue, submitted before any device work.
    pub residue: Option<ResidueWork>,
    /// Allocations charged before the factor upload.
    pub prologue_allocs: Vec<(u64, &'static str)>,
    /// Every work unit of this device.
    pub units: Vec<WorkUnit>,
    /// Units grouped per shard, in execution order.
    pub shard_work: Vec<ShardWork>,
    /// Final whole-output D2H `(bytes, label)` on worker stream 0, ordered
    /// after all kernels (single-device plans).
    pub final_d2h: Option<(u64, &'static str)>,
    /// Global indices of the shards this device executes.
    pub shard_list: Vec<usize>,
    /// Skip the device entirely (empty timeline) when it has no units —
    /// cluster semantics; single-device plans always run their prologue.
    pub skip_if_idle: bool,
    /// Explicit op program: when set, [`Plan::lower_device`] returns it
    /// verbatim instead of lowering the declarative fields. Used by
    /// builders whose schedule the generic lowering cannot express (the
    /// out-of-core streaming plan's evict/prefetch loop).
    pub program: Option<Vec<PlanOp>>,
}

/// How per-shard partial buffers combine into the output matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduce {
    /// One shard, one buffer: the output is read back directly.
    Single,
    /// Fold partials in shard-index order (copy owned row blocks, sum
    /// row-overlapping partials) — bitwise invariant to placement.
    FoldShards,
    /// Batch-fused serving plans: every shard is one *independent* job
    /// accumulating into its own buffer; nothing is folded. The canonical
    /// `output` is shard 0's matrix (the group lead) and the interpreter
    /// returns every per-job matrix in `ExecOutcome::shard_outputs`, in
    /// shard-index order. Because each job's kernels touch only its own
    /// buffer, a group of N is bit-identical per job to N solo runs.
    PerJob,
}

/// Re-placement strategy a cluster plan's policy uses for orphaned work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaceStrategy {
    /// Orphaned shards round-robin over the survivors.
    RoundRobin,
    /// Orphaned shards go to the survivor with the earliest projected
    /// finish (current clock + bytes / speed proxy).
    Lpt,
}

/// Placement callbacks a multi-device plan carries: initial assignment
/// over the healthy devices, re-placement strategy inputs, and the
/// analytic reduction cost. Implemented by the cluster crate (it owns the
/// node/interconnect model); the interpreter stays node-agnostic.
pub trait ClusterPolicy: Send + Sync {
    /// Assigns every shard to one of the `alive` devices; returns
    /// per-device shard lists indexed by *global* device index.
    fn assign(&self, alive: &[usize]) -> Vec<Vec<usize>>;
    /// Strategy for re-placing orphaned work.
    fn strategy(&self) -> PlaceStrategy;
    /// End-to-end speed proxy of device `d` (bytes/s), for LPT.
    fn speed_proxy(&self, d: usize) -> f64;
    /// Analytic seconds of the cross-shard reduction for a final
    /// shard-to-device assignment.
    fn reduction_s(&self, assignment: &[Vec<usize>]) -> f64;
}

/// Plan-level metadata: where the schedule came from.
#[derive(Clone, Debug, Default)]
pub struct PlanMeta {
    /// Human-readable segment map (counts, streams, split).
    pub segment_map: String,
    /// Predictor verdict (or "fixed config" when none ran).
    pub predictor: String,
    /// Retry policy attached by a resilient wrapper (informational).
    pub retry: Option<RetryPolicy>,
    /// Comma-separated names of the optimizer passes applied to this plan
    /// (empty = raw builder output). Stamped by `scalfrag-opt`; rendered
    /// so an IR dump always says where its schedule came from.
    pub optimizer: String,
    /// Batch provenance: the number of serving jobs fused into this plan
    /// (0 = not a batched plan). Set by `build_batched_plan`; rendered so
    /// an IR dump always says how many jobs share the factor upload.
    pub batch_jobs: usize,
}

/// An executable MTTKRP schedule: shards, per-device programs, reduction,
/// and the resilient-mode knobs. Built by the plan builders; executed by
/// [`crate::interp::run_plan`] and friends.
#[derive(Clone)]
pub struct Plan {
    /// Stable builder name (printed by `plan_dump`).
    pub name: &'static str,
    /// MTTKRP mode.
    pub mode: usize,
    /// Factor rank.
    pub rank: usize,
    /// Output rows (`dims[mode]`).
    pub rows: usize,
    /// Tensor order.
    pub order: usize,
    /// Base launch configuration.
    pub config: LaunchConfig,
    /// Kernel launched per segment.
    pub kernel: KernelChoice,
    /// The factor matrices.
    pub factors: Arc<FactorSet>,
    /// Factor upload bytes.
    pub factors_bytes: u64,
    /// The input shards (one for single-device plans).
    pub shards: Vec<ShardDesc>,
    /// Segment list per shard (resilient mode re-derives work items from
    /// these).
    pub seg_lists: Vec<Vec<Segment>>,
    /// Per-device programs.
    pub devices: Vec<DeviceOps>,
    /// How partial buffers combine.
    pub reduce: Reduce,
    /// Analytic reduction seconds for the static placement.
    pub reduction_s: f64,
    /// Row-overlapping partials gather device-to-device (peer links), so
    /// per-shard D2H hops are absent.
    pub peer_reduce: bool,
    /// Device model for the functional replay in resilient mode.
    pub replay_spec: DeviceSpec,
    /// Placement callbacks (multi-device plans only).
    pub cluster: Option<Arc<dyn ClusterPolicy>>,
    /// Resilient mode: synchronize after the factor upload so the first
    /// wave's clock sits at the prologue end (cluster semantics) instead
    /// of zero (pipeline semantics).
    pub sync_after_prologue: bool,
    /// Resilient mode: allocations charged at bring-up.
    pub resilient_prologue: Vec<(u64, &'static str)>,
    /// Resilient mode: OOM message for lazy segment allocations.
    pub seg_alloc_what: &'static str,
    /// Resilient mode: static worker-stream per `(shard, segment)`
    /// (`None` = the device's round-robin counter).
    pub static_streams: Option<Vec<Vec<usize>>>,
    /// Resilient-mode labels carry the shard index (`shard0 seg1 …`)
    /// instead of the bare segment (`seg1 …`).
    pub tag_shards: bool,
    /// Plan metadata.
    pub meta: PlanMeta,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("rank", &self.rank)
            .field("shards", &self.shards.len())
            .field("devices", &self.devices.len())
            .field("reduce", &self.reduce)
            .finish_non_exhaustive()
    }
}

impl Plan {
    /// Resilient-mode label tag for one `(shard, segment)` item.
    pub(crate) fn tag(&self, si: usize, j: usize) -> String {
        if self.tag_shards {
            format!("shard{si} seg{j}")
        } else {
            format!("seg{j}")
        }
    }

    /// Total `(shard, segment)` work items across all devices.
    pub fn total_items(&self) -> usize {
        self.seg_lists.iter().map(Vec::len).sum()
    }

    /// Total lowered op count across all device programs — the op-budget
    /// metric the plan optimizer reports reductions against.
    pub fn total_ops(&self) -> usize {
        self.devices.iter().map(|d| self.lower_device(d).len()).sum()
    }

    /// Lowers one device's share into its linear op program. Execution
    /// and [`Plan::render`] both consume this, so the dump *is* the
    /// schedule.
    ///
    /// Transient per-segment buffers get `Free` ops: each worker stream
    /// keeps at most one segment buffer live (its FIFO queue guarantees
    /// the previous segment's kernel drained before the buffer is
    /// rewritten), so long plans hold `O(streams)` segment buffers
    /// instead of monotonically consuming the pool.
    pub fn lower_device(&self, dev: &DeviceOps) -> Vec<PlanOp> {
        if let Some(program) = &dev.program {
            return program.clone();
        }
        let mut ops = Vec::new();
        let mut next_slot = 0usize;
        if let Some(res) = &dev.residue {
            ops.push(PlanOp::HostResidue { stream: StreamRef::Host, label: res.label });
        }
        for &(bytes, what) in &dev.prologue_allocs {
            ops.push(PlanOp::Alloc { slot: next_slot, bytes, what, transient: false });
            next_slot += 1;
        }
        ops.push(PlanOp::H2D {
            stream: StreamRef::Worker(0),
            bytes: self.factors_bytes,
            label: "factors H2D".to_string(),
        });
        // Factors travel once on stream 0; every other stream waits.
        if dev.worker_streams > 1 {
            ops.push(PlanOp::Barrier {
                record: vec![StreamRef::Worker(0)],
                wait: (1..dev.worker_streams).map(StreamRef::Worker).collect(),
            });
        }
        let cfg = self.kernel.full_config(self.config, self.rank as u32);
        let mut next_stream = 0usize;
        // The transient segment buffer each worker stream currently holds.
        let mut live_seg: Vec<Option<usize>> = vec![None; dev.worker_streams];
        for sw in &dev.shard_work {
            if let Some((bytes, what)) = sw.output_alloc {
                ops.push(PlanOp::Alloc { slot: next_slot, bytes, what, transient: false });
                next_slot += 1;
            }
            let mut used: Vec<usize> = Vec::new();
            for &ui in &sw.units {
                let u = &dev.units[ui];
                let s = match u.stream {
                    Some(s) => s,
                    None => {
                        let s = next_stream % dev.worker_streams;
                        next_stream += 1;
                        s
                    }
                };
                if !used.contains(&s) {
                    used.push(s);
                }
                if let Some((bytes, what)) = u.alloc {
                    if let Some(prev) = live_seg[s].take() {
                        ops.push(PlanOp::Free { slot: prev });
                    }
                    ops.push(PlanOp::Alloc { slot: next_slot, bytes, what, transient: true });
                    live_seg[s] = Some(next_slot);
                    next_slot += 1;
                }
                ops.push(PlanOp::H2D {
                    stream: StreamRef::Worker(s),
                    bytes: u.h2d_bytes,
                    label: u.h2d_label.clone(),
                });
                ops.push(PlanOp::Launch {
                    stream: StreamRef::Worker(s),
                    unit: ui,
                    grid: cfg.grid,
                    block: cfg.block,
                    label: u.kernel_label.clone(),
                });
            }
            if let Some((bytes, label)) = &sw.d2h {
                // A stream's queue runs in order, so an event recorded at
                // its tail marks the completion of every kernel queued on
                // it — one event per used stream orders the shard's D2H
                // after all its kernels.
                if !used.is_empty() {
                    ops.push(PlanOp::Barrier {
                        record: used.iter().map(|&s| StreamRef::Worker(s)).collect(),
                        wait: vec![StreamRef::D2h],
                    });
                }
                ops.push(PlanOp::D2H {
                    stream: StreamRef::D2h,
                    bytes: *bytes,
                    label: label.clone(),
                });
            }
        }
        if let Some((bytes, label)) = dev.final_d2h {
            if dev.worker_streams > 1 {
                ops.push(PlanOp::Barrier {
                    record: (0..dev.worker_streams).map(StreamRef::Worker).collect(),
                    wait: vec![StreamRef::Worker(0)],
                });
            }
            ops.push(PlanOp::D2H { stream: StreamRef::Worker(0), bytes, label: label.to_string() });
        }
        for slot in live_seg.into_iter().flatten() {
            ops.push(PlanOp::Free { slot });
        }
        ops
    }

    /// Renders the plan as a typed-op IR dump (what `plan_dump` prints).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan {:?}: mode {}, rank {}, {} shard(s), {} device(s), reduce {:?}",
            self.name,
            self.mode,
            self.rank,
            self.shards.len(),
            self.devices.len(),
            self.reduce,
        );
        if !self.meta.segment_map.is_empty() {
            let _ = writeln!(s, "  segment map: {}", self.meta.segment_map);
        }
        if !self.meta.predictor.is_empty() {
            let _ = writeln!(s, "  predictor: {}", self.meta.predictor);
        }
        if !self.meta.optimizer.is_empty() {
            let _ = writeln!(s, "  optimizer: {}", self.meta.optimizer);
        }
        if self.meta.batch_jobs > 0 {
            let _ = writeln!(s, "  batch: {} fused job(s)", self.meta.batch_jobs);
        }
        if let Some(r) = &self.meta.retry {
            let _ = writeln!(s, "  retry: {r:?}");
        }
        for dev in &self.devices {
            let _ = writeln!(
                s,
                "  device {} ({}): {} worker stream(s){}",
                dev.device,
                dev.name,
                dev.worker_streams,
                if dev.dedicated_d2h { " + d2h stream" } else { "" },
            );
            for op in self.lower_device(dev) {
                let _ = writeln!(s, "    {}", render_op(&op));
            }
        }
        if self.reduction_s > 0.0 {
            let _ = writeln!(s, "  {}", render_op(&PlanOp::Reduce { seconds: self.reduction_s }));
        }
        s
    }
}

fn render_stream(r: &StreamRef) -> String {
    match r {
        StreamRef::Worker(i) => format!("w{i}"),
        StreamRef::D2h => "d2h".to_string(),
        StreamRef::Host => "host".to_string(),
    }
}

fn render_op(op: &PlanOp) -> String {
    match op {
        PlanOp::Alloc { slot, bytes, what, transient } => format!(
            "Alloc    slot{slot} {bytes} B ({what}{})",
            if *transient { ", transient" } else { "" }
        ),
        PlanOp::Free { slot } => format!("Free     slot{slot}"),
        PlanOp::Evict { stream, slot, writeback_bytes, label } => format!(
            "Evict    [{}] slot{slot} writeback {writeback_bytes} B \"{label}\"",
            render_stream(stream)
        ),
        PlanOp::Prefetch { stream, slot, bytes, what, label } => format!(
            "Prefetch [{}] slot{slot} {bytes} B ({what}) \"{label}\"",
            render_stream(stream)
        ),
        PlanOp::H2D { stream, bytes, label } => {
            format!("H2D      [{}] {bytes} B \"{label}\"", render_stream(stream))
        }
        PlanOp::Launch { stream, grid, block, label, .. } => {
            format!("Launch   [{}] grid {grid} block {block} \"{label}\"", render_stream(stream))
        }
        PlanOp::HostResidue { stream, label } => {
            format!("HostRes  [{}] \"{label}\"", render_stream(stream))
        }
        PlanOp::Barrier { record, wait } => format!(
            "Barrier  record[{}] -> wait[{}]",
            record.iter().map(render_stream).collect::<Vec<_>>().join(","),
            wait.iter().map(render_stream).collect::<Vec<_>>().join(","),
        ),
        PlanOp::D2H { stream, bytes, label } => {
            format!("D2H      [{}] {bytes} B \"{label}\"", render_stream(stream))
        }
        PlanOp::Reduce { seconds } => format!("Reduce   {seconds:.3e} s (analytic)"),
    }
}
