//! The single plan interpreter.
//!
//! Every execution path in the workspace — sync, pipelined, hybrid,
//! cluster RR/LPT, the resilient variants and the serving layer — runs
//! through the functions here:
//!
//! * [`run_plan_on`] / [`run_plan`] — fault-free execution of a lowered
//!   plan, functional or dry ([`ExecMode`]).
//! * [`run_plan_resilient_on`] — single-device execution under a
//!   [`FaultInjector`]: segments run in retry waves with exponential
//!   backoff; transient outages are waited out in place.
//! * [`run_plan_resilient`] — multi-device execution under fault
//!   injection, adding bring-up health checks and re-placement of a dead
//!   device's work via the plan's [`ClusterPolicy`].
//!
//! Numerics are decoupled from timing exactly as before the engine
//! existed: fault-free runs launch functional kernels in plan order, while
//! resilient runs schedule timing-only kernels and replay the completed
//! segments functionally in shard-then-segment order, so a fully
//! recovered run is bit-identical to the fault-free one.

use crate::ir::{DeviceOps, ExecMode, PlaceStrategy, Plan, PlanOp, Reduce, ShardDesc, StreamRef};
use crate::retry::{FaultRecoveryPolicy, RecoveryMode};
use crate::trace::PlanTrace;
use parking_lot::Mutex;
use scalfrag_faults::{DeviceHealth, FaultInjector, OpClass, OpVerdict, RecoveryAction};
use scalfrag_gpusim::{Allocation, Gpu, StreamId, Timeline};
use scalfrag_kernels::{reference, AtomicF32Buffer};
use scalfrag_linalg::Mat;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Per-item outcome of a resilient run (trivially "1 attempt, completed"
/// for fault-free runs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitOutcome {
    /// Global shard index.
    pub shard: usize,
    /// Segment ordinal within the shard.
    pub segment: usize,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Whether the item's kernel ultimately completed.
    pub completed: bool,
}

/// Per-device memory accounting of one interpreted plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceMemStats {
    /// Pool high-watermark of live bytes during the device's program.
    pub peak_bytes: u64,
    /// `Evict` ops executed (resident segments dropped for space).
    pub evictions: u64,
    /// `Prefetch` ops executed (segments (re-)staged into a slot).
    pub prefetches: u64,
    /// `Free` ops executed (transient buffers released mid-plan).
    pub frees: u64,
    /// Total H2D payload bytes staged (factors + segments + prefetches).
    pub staged_bytes: u64,
}

/// The result of interpreting one plan.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The MTTKRP output (zero in dry mode or where work was lost).
    pub output: Mat,
    /// The primary device's timeline (single-device plans; the batch of
    /// this run only when the caller's GPU carried earlier work).
    pub timeline: Timeline,
    /// Per-device timelines, index-aligned with the plan's device list.
    pub device_timelines: Vec<Timeline>,
    /// Per-device shard indices that actually ran there.
    pub device_shards: Vec<Vec<usize>>,
    /// The structured plan trace across all devices.
    pub trace: PlanTrace,
    /// Analytic seconds of the cross-shard reduction stage.
    pub reduction_s: f64,
    /// Per-item accounting.
    pub outcomes: Vec<UnitOutcome>,
    /// Total segment retries across all devices.
    pub retries: usize,
    /// Items completed on a device other than their original placement.
    pub replaced_segments: usize,
    /// Items that completed.
    pub completed_segments: usize,
    /// Total items in the plan.
    pub total_items: usize,
    /// Devices that were down at start or died during the run.
    pub dead_devices: Vec<usize>,
    /// Per-device memory accounting, index-aligned with the device list.
    pub mem: Vec<DeviceMemStats>,
    /// Per-shard output matrices, shard-index order — filled only by
    /// functional fault-free runs of [`Reduce::PerJob`] plans (the
    /// batch-fused serving path reads one matrix per fused job); empty
    /// everywhere else.
    pub shard_outputs: Vec<Mat>,
}

impl ExecOutcome {
    /// End-to-end makespan: the slowest device plus the reduction stage.
    pub fn makespan(&self) -> f64 {
        self.device_timelines.iter().map(Timeline::makespan).fold(0.0, f64::max) + self.reduction_s
    }

    /// Whether every item completed.
    pub fn all_complete(&self) -> bool {
        self.completed_segments == self.total_items
    }
}

type HostAcc = Arc<Mutex<Option<Mat>>>;

fn make_buffers(plan: &Plan, mode: ExecMode) -> Vec<Arc<AtomicF32Buffer>> {
    let size = if mode == ExecMode::Functional { plan.rows * plan.rank } else { 0 };
    plan.shards.iter().map(|_| Arc::new(AtomicF32Buffer::new(size))).collect()
}

fn reduce_output(plan: &Plan, buffers: &[Arc<AtomicF32Buffer>], mode: ExecMode) -> Mat {
    match mode {
        ExecMode::Dry => Mat::zeros(plan.rows, plan.rank),
        ExecMode::Functional => match plan.reduce {
            Reduce::Single => Mat::from_vec(plan.rows, plan.rank, buffers[0].to_vec()),
            Reduce::FoldShards => fold_shards(&plan.shards, buffers, plan.rows, plan.rank),
            // Per-job plans never fold: the canonical output is the group
            // lead's (shard 0); the full set returns via `shard_outputs`.
            Reduce::PerJob => Mat::from_vec(plan.rows, plan.rank, buffers[0].to_vec()),
        },
    }
}

/// Materializes every per-shard buffer as its own output matrix — the
/// per-job results of a [`Reduce::PerJob`] plan. Empty unless the run is
/// functional and the plan is per-job.
fn per_job_outputs(plan: &Plan, buffers: &[Arc<AtomicF32Buffer>], mode: ExecMode) -> Vec<Mat> {
    if mode != ExecMode::Functional || plan.reduce != Reduce::PerJob {
        return Vec::new();
    }
    buffers.iter().map(|b| Mat::from_vec(plan.rows, plan.rank, b.to_vec())).collect()
}

/// Host-side fold of the per-shard partial outputs, in shard-index order.
/// Slice-aligned shards copy their disjoint row blocks (bit-preserving);
/// row-overlapping shards sum in a deterministic shard-ordered
/// accumulation.
fn fold_shards(
    shards: &[ShardDesc],
    buffers: &[Arc<AtomicF32Buffer>],
    rows: usize,
    rank: usize,
) -> Mat {
    let mut out = Mat::zeros(rows, rank);
    for shard in shards {
        let partial = buffers[shard.index].to_vec();
        match shard.rows {
            Some((lo, hi)) => {
                for r in lo as usize..=hi as usize {
                    out.row_mut(r).copy_from_slice(&partial[r * rank..(r + 1) * rank]);
                }
            }
            None => out.axpy(1.0, &Mat::from_vec(rows, rank, partial)),
        }
    }
    out
}

fn submit_residue(
    gpu: &mut Gpu,
    stream: StreamId,
    plan: &Plan,
    dev: &DeviceOps,
    host_acc: &HostAcc,
    functional: bool,
) {
    let res = dev.residue.as_ref().expect("HostResidue op requires residue work");
    if functional {
        let tensor = Arc::clone(&res.tensor);
        let factors = Arc::clone(&plan.factors);
        let acc = Arc::clone(host_acc);
        let mode = plan.mode;
        gpu.host_task(stream, res.flops, res.bytes, res.label, move || {
            let m = reference::mttkrp_par(&tensor, &factors, mode);
            *acc.lock() = Some(m);
        });
    } else {
        gpu.host_task(stream, res.flops, res.bytes, res.label, || {});
    }
}

/// Executes one device's lowered op program. Returns the batch timeline
/// of this program only, plus its memory accounting.
fn run_device(
    gpu: &mut Gpu,
    plan: &Plan,
    dev: &DeviceOps,
    buffers: &[Arc<AtomicF32Buffer>],
    host_acc: &HostAcc,
    mode: ExecMode,
) -> (Timeline, DeviceMemStats) {
    // Stream creation order fixes the raw stream ids that appear in the
    // trace: host (hybrid residue) first, then workers, then the
    // dedicated D2H return stream.
    let host_stream = dev.residue.as_ref().map(|_| gpu.create_stream());
    let workers: Vec<StreamId> = (0..dev.worker_streams).map(|_| gpu.create_stream()).collect();
    let d2h_stream = if dev.dedicated_d2h { Some(gpu.create_stream()) } else { None };
    let resolve = |r: &StreamRef| match r {
        StreamRef::Worker(i) => workers[*i],
        StreamRef::D2h => d2h_stream.expect("plan uses the D2H stream but declared none"),
        StreamRef::Host => host_stream.expect("plan uses the host stream but declared none"),
    };

    // The program-local slot table: slot id → live pool allocation.
    // `transient` slots must be freed by the program itself; the dry-run
    // leak check below enforces it.
    let mut slots: Vec<Option<Allocation>> = Vec::new();
    let mut transient_slots: Vec<bool> = Vec::new();
    let mut stats = DeviceMemStats::default();
    let fill_slot = |slots: &mut Vec<Option<Allocation>>,
                     flags: &mut Vec<bool>,
                     slot: usize,
                     a: Allocation,
                     transient: bool| {
        if slot >= slots.len() {
            slots.resize_with(slot + 1, || None);
            flags.resize(slot + 1, false);
        }
        assert!(slots[slot].is_none(), "plan {:?}: Alloc into live slot {slot}", plan.name);
        slots[slot] = Some(a);
        flags[slot] = transient;
    };
    for op in plan.lower_device(dev) {
        match op {
            PlanOp::Alloc { slot, bytes, what, transient } => {
                let a = gpu.memory().alloc(bytes).expect(what);
                fill_slot(&mut slots, &mut transient_slots, slot, a, transient);
            }
            PlanOp::Free { slot } => {
                let a = slots[slot]
                    .take()
                    .unwrap_or_else(|| panic!("plan {:?}: Free of empty slot {slot}", plan.name));
                gpu.memory().free(a);
                stats.frees += 1;
            }
            PlanOp::Evict { stream, slot, writeback_bytes, label } => {
                if writeback_bytes > 0 {
                    gpu.d2h(resolve(&stream), writeback_bytes, label);
                }
                let a = slots[slot]
                    .take()
                    .unwrap_or_else(|| panic!("plan {:?}: Evict of empty slot {slot}", plan.name));
                gpu.memory().free(a);
                stats.evictions += 1;
            }
            PlanOp::Prefetch { stream, slot, bytes, what, label } => {
                let a = gpu.memory().alloc(bytes).expect(what);
                fill_slot(&mut slots, &mut transient_slots, slot, a, true);
                gpu.h2d(resolve(&stream), bytes, label);
                stats.prefetches += 1;
                stats.staged_bytes += bytes;
            }
            PlanOp::H2D { stream, bytes, label } => {
                gpu.h2d(resolve(&stream), bytes, label);
                stats.staged_bytes += bytes;
            }
            PlanOp::Launch { stream, unit, label, .. } => {
                let u = &dev.units[unit];
                if let Some(workload) = u.workload {
                    // Virtual unit: analytic workload, no tensor data to
                    // slice — the schedule is real, the numerics absent.
                    assert!(
                        mode == ExecMode::Dry,
                        "plan {:?}: virtual work units are dry-only (no data to compute on)",
                        plan.name
                    );
                    let cfg = plan.kernel.full_config(plan.config, plan.rank as u32);
                    gpu.launch(resolve(&stream), cfg, workload, label);
                    continue;
                }
                let shard = &plan.shards[u.shard];
                // A segment covering the whole shard (batched serving
                // plans launch one kernel per job) needs no copy.
                let piece = if u.seg.start == 0 && u.seg.end == shard.tensor.nnz() {
                    Arc::clone(&shard.tensor)
                } else {
                    Arc::new(shard.tensor.slice_range(u.seg.start, u.seg.end))
                };
                plan.kernel.enqueue(
                    gpu,
                    resolve(&stream),
                    plan.config,
                    piece,
                    Arc::clone(&plan.factors),
                    plan.mode,
                    (mode == ExecMode::Functional).then(|| Arc::clone(&buffers[u.shard])),
                    label,
                );
            }
            PlanOp::HostResidue { stream, .. } => {
                submit_residue(
                    gpu,
                    resolve(&stream),
                    plan,
                    dev,
                    host_acc,
                    mode == ExecMode::Functional,
                );
            }
            PlanOp::Barrier { record, wait } => {
                for r in &record {
                    let ev = gpu.record_event(resolve(r));
                    for w in &wait {
                        gpu.wait_event(resolve(w), ev);
                    }
                }
            }
            PlanOp::D2H { stream, bytes, label } => {
                gpu.d2h(resolve(&stream), bytes, label);
            }
            PlanOp::Reduce { .. } => {}
        }
    }
    // Leak check (dry runs): when the program ends, the only live slots
    // may be the persistent ones — a live transient buffer means a plan
    // builder forgot its Free/Evict and would monotonically consume the
    // pool on long plans.
    if mode == ExecMode::Dry {
        let leaked: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|&(i, s)| s.is_some() && transient_slots[i])
            .map(|(i, _)| i)
            .collect();
        assert!(
            leaked.is_empty(),
            "plan {:?}: transient slots {leaked:?} still live at end of device {} program \
             (end-of-plan live bytes must equal the persistent allocations)",
            plan.name,
            dev.device
        );
    }
    let timeline = gpu.synchronize();
    stats.peak_bytes = gpu.memory().peak();
    for a in slots.into_iter().flatten() {
        gpu.memory().free(a);
    }
    (timeline, stats)
}

fn trivial_outcomes(plan: &Plan) -> Vec<UnitOutcome> {
    let mut v = Vec::new();
    for (si, segs) in plan.seg_lists.iter().enumerate() {
        for j in 0..segs.len() {
            v.push(UnitOutcome { shard: si, segment: j, attempts: 1, completed: true });
        }
    }
    v
}

/// Executes a single-device plan on the caller's GPU (fault-free).
pub fn run_plan_on(gpu: &mut Gpu, plan: &Plan, mode: ExecMode) -> ExecOutcome {
    assert_eq!(plan.devices.len(), 1, "run_plan_on executes single-device plans");
    let dev = &plan.devices[0];
    let buffers = make_buffers(plan, mode);
    let host_acc: HostAcc = Arc::new(Mutex::new(None));
    let (timeline, mem) = run_device(gpu, plan, dev, &buffers, &host_acc, mode);
    let mut output = reduce_output(plan, &buffers, mode);
    if let Some(host_m) = host_acc.lock().take() {
        output.axpy(1.0, &host_m);
    }
    let shard_outputs = per_job_outputs(plan, &buffers, mode);
    let outcomes = trivial_outcomes(plan);
    let total = outcomes.len();
    ExecOutcome {
        output,
        shard_outputs,
        trace: PlanTrace::from_timelines([(0, &timeline)]),
        device_timelines: vec![timeline.clone()],
        device_shards: vec![dev.shard_list.clone()],
        timeline,
        reduction_s: plan.reduction_s,
        outcomes,
        retries: 0,
        replaced_segments: 0,
        completed_segments: total,
        total_items: total,
        dead_devices: Vec::new(),
        mem: vec![mem],
    }
}

/// Executes any plan fault-free, instantiating one simulated GPU per
/// device from the plan's specs.
pub fn run_plan(plan: &Plan, mode: ExecMode) -> ExecOutcome {
    let buffers = make_buffers(plan, mode);
    let host_acc: HostAcc = Arc::new(Mutex::new(None));
    let mut device_timelines = Vec::with_capacity(plan.devices.len());
    let mut mem = Vec::with_capacity(plan.devices.len());
    for dev in &plan.devices {
        if dev.skip_if_idle && dev.units.is_empty() {
            device_timelines.push(Timeline::default());
            mem.push(DeviceMemStats::default());
            continue;
        }
        let mut gpu = match &dev.host {
            Some(h) => Gpu::with_host(dev.spec.clone(), h.clone()),
            None => Gpu::new(dev.spec.clone()),
        };
        let (tl, m) = run_device(&mut gpu, plan, dev, &buffers, &host_acc, mode);
        device_timelines.push(tl);
        mem.push(m);
    }
    let mut output = reduce_output(plan, &buffers, mode);
    if let Some(host_m) = host_acc.lock().take() {
        output.axpy(1.0, &host_m);
    }
    let shard_outputs = per_job_outputs(plan, &buffers, mode);
    let outcomes = trivial_outcomes(plan);
    let total = outcomes.len();
    ExecOutcome {
        output,
        shard_outputs,
        trace: PlanTrace::from_timelines(device_timelines.iter().enumerate()),
        timeline: device_timelines.first().cloned().unwrap_or_default(),
        device_shards: plan.devices.iter().map(|d| d.shard_list.clone()).collect(),
        device_timelines,
        reduction_s: plan.reduction_s,
        outcomes,
        retries: 0,
        replaced_segments: 0,
        completed_segments: total,
        total_items: total,
        dead_devices: Vec::new(),
        mem,
    }
}

// ---------------------------------------------------------------------
// Resilient execution
// ---------------------------------------------------------------------

/// Mutable wave state of one device, kept across re-placement rounds so a
/// survivor absorbs rescued work on its existing clock.
#[derive(Default)]
struct WaveState {
    next_stream: usize,
    allocated: HashSet<(usize, usize)>,
    done: Vec<(usize, usize)>,
}

type Item = (usize, usize);

/// The `(lost, orphans, retries, attempts, dead)` outcome of one
/// [`drive_waves`] call.
type DriveOutcome = (Vec<Item>, Vec<Item>, usize, HashMap<Item, u32>, bool);

/// Drives `pending` work items (`(shard, segment)` pairs) on device `d`
/// in retry waves: poll the injector before every H2D and kernel, charge
/// corrupted transfers and aborted kernels, back off exponentially
/// between attempts. Kernels are timing-only — numerics come from the
/// deterministic replay afterwards, so retries can never reorder the
/// accumulation.
///
/// `wait_in_place` selects the down-device semantics: a single-device run
/// waits transient outages out and loses everything on a permanent
/// failure; a multi-device run abandons the device so the re-shard path
/// can rescue its orphans.
#[allow(clippy::too_many_arguments)]
fn drive_waves(
    gpu: &mut Gpu,
    streams: &[StreamId],
    allocs: &mut Vec<Allocation>,
    st: &mut WaveState,
    plan: &Plan,
    d: usize,
    mut pending: Vec<Item>,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
    wait_in_place: bool,
) -> DriveOutcome {
    let retry_allowed = policy.mode != RecoveryMode::NoRetry;
    let mut att: HashMap<Item, u32> = HashMap::new();
    let mut lost = Vec::new();
    let mut retries = 0usize;
    while !pending.is_empty() {
        let now = gpu.clock();
        let mut failed: Vec<Item> = Vec::new();
        // `Some(until)` once the device goes down this wave; every later
        // poll in the wave sees the same down state from the injector.
        let mut down: Option<Option<f64>> = None;
        for &(si, j) in &pending {
            let a = att.entry((si, j)).or_insert(0);
            *a += 1;
            let attempt = *a;
            let seg = &plan.seg_lists[si][j];
            let stream = match &plan.static_streams {
                Some(tbl) => streams[tbl[si][j]],
                None => {
                    let s = streams[st.next_stream % streams.len()];
                    st.next_stream += 1;
                    s
                }
            };
            if attempt > 1 {
                retries += 1;
                let backoff = policy.retry.backoff_s(attempt);
                if backoff > 0.0 {
                    gpu.stall(stream, backoff, format!("{} backoff", plan.tag(si, j)));
                }
                injector.record_recovery(
                    d,
                    now,
                    RecoveryAction::RetrySegment { shard: si, segment: j, attempt },
                );
            }
            let bytes = seg.byte_size(plan.order) as u64;
            if st.allocated.insert((si, j)) {
                allocs.push(gpu.memory().alloc(bytes).expect(plan.seg_alloc_what));
            }
            match injector.on_op(d, OpClass::H2D, now) {
                OpVerdict::DeviceDown { until_s } => {
                    down = Some(until_s);
                    failed.push((si, j));
                    continue;
                }
                verdict => {
                    gpu.h2d(stream, bytes, format!("{} H2D try{attempt}", plan.tag(si, j)));
                    // ECC-style detection: every transfer pays a host-side
                    // checksum scan over the segment.
                    gpu.host_task(
                        stream,
                        seg.nnz() as u64,
                        bytes,
                        format!("{} checksum", plan.tag(si, j)),
                        || {},
                    );
                    if verdict == OpVerdict::Corrupted {
                        failed.push((si, j));
                        continue;
                    }
                }
            }
            match injector.on_op(d, OpClass::Kernel, now) {
                OpVerdict::DeviceDown { until_s } => {
                    down = Some(until_s);
                    failed.push((si, j));
                    continue;
                }
                verdict => {
                    let piece = Arc::new(plan.shards[si].tensor.slice_range(seg.start, seg.end));
                    plan.kernel.enqueue(
                        gpu,
                        stream,
                        plan.config,
                        piece,
                        Arc::clone(&plan.factors),
                        plan.mode,
                        None,
                        format!("{} kernel try{attempt}", plan.tag(si, j)),
                    );
                    // An aborted kernel is charged its full cost too.
                    if verdict == OpVerdict::Aborted {
                        failed.push((si, j));
                        continue;
                    }
                }
            }
            st.done.push((si, j));
        }
        gpu.synchronize();
        if wait_in_place {
            pending = failed.into_iter().filter(|it| att[it] < policy.retry.max_attempts).collect();
            if let Some(until) = down {
                match until {
                    // Transient outage: wait it out (if anything is left
                    // to retry), then resume.
                    Some(u) if !pending.is_empty() => gpu.advance_to(u),
                    Some(_) => {}
                    // Permanent failure: everything still pending is lost.
                    None => pending.clear(),
                }
            }
        } else {
            let (keep, dropped): (Vec<_>, Vec<_>) = failed
                .into_iter()
                .partition(|it| retry_allowed && att[it] < policy.retry.max_attempts);
            match down {
                Some(Some(until)) if retry_allowed => {
                    // Transient outage: wait it out, then retry the wave.
                    gpu.advance_to(until);
                    lost.extend(dropped);
                    pending = keep;
                }
                Some(_) => {
                    // Permanent failure (or any outage under no-retry):
                    // the device is gone; everything unfinished is
                    // orphaned and may be rescued by re-placement.
                    let mut orphans = keep;
                    orphans.extend(dropped);
                    return (lost, orphans, retries, att, true);
                }
                None => {
                    lost.extend(dropped);
                    pending = keep;
                }
            }
        }
    }
    (lost, Vec::new(), retries, att, false)
}

/// Replays the completed items functionally, in shard-then-segment order,
/// on a scratch device — the same per-buffer accumulation order as the
/// fault-free interpreter, so recovery is invisible to the numerics.
fn replay_completed(plan: &Plan, done: &HashSet<Item>, buffers: &[Arc<AtomicF32Buffer>]) {
    let mut scratch = Gpu::new(plan.replay_spec.clone());
    let s = scratch.create_stream();
    for (si, segs) in plan.seg_lists.iter().enumerate() {
        for (j, seg) in segs.iter().enumerate() {
            if !done.contains(&(si, j)) {
                continue;
            }
            let label = if plan.tag_shards {
                format!("replay shard{si} seg{j}")
            } else {
                format!("replay seg{j}")
            };
            plan.kernel.enqueue(
                &mut scratch,
                s,
                plan.config,
                Arc::new(plan.shards[si].tensor.slice_range(seg.start, seg.end)),
                Arc::clone(&plan.factors),
                plan.mode,
                Some(Arc::clone(&buffers[si])),
                label,
            );
        }
    }
    scratch.synchronize();
}

/// Executes a single-device plan on the caller's GPU under fault
/// injection. `device_id` names the device to the injector. The hybrid
/// residue (when present) participates: an aborted or corrupted host fold
/// is charged and retried under the same backoff schedule.
pub fn run_plan_resilient_on(
    gpu: &mut Gpu,
    plan: &Plan,
    device_id: usize,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
    mode: ExecMode,
) -> ExecOutcome {
    assert!(policy.retry.max_attempts >= 1, "at least one attempt is required");
    assert_eq!(plan.devices.len(), 1, "run_plan_resilient_on executes single-device plans");
    let dev = &plan.devices[0];

    let host_stream = dev.residue.as_ref().map(|_| gpu.create_stream());
    let streams: Vec<StreamId> = (0..dev.worker_streams).map(|_| gpu.create_stream()).collect();
    let mut allocs: Vec<Allocation> = plan
        .resilient_prologue
        .iter()
        .map(|&(bytes, what)| gpu.memory().alloc(bytes).expect(what))
        .collect();

    gpu.h2d(streams[0], plan.factors_bytes, "factors H2D");
    let factors_ready = gpu.record_event(streams[0]);
    for &s in &streams[1..] {
        gpu.wait_event(s, factors_ready);
    }
    if plan.sync_after_prologue {
        gpu.synchronize();
    }

    // The hybrid residue runs through the same retry discipline as device
    // segments: a corrupted or aborted host fold is charged (the cost of
    // the failed pass) and resubmitted after backoff.
    let host_acc: HostAcc = Arc::new(Mutex::new(None));
    if dev.residue.is_some() {
        let hs = host_stream.expect("created above");
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let now = gpu.clock();
            if attempt > 1 {
                let backoff = policy.retry.backoff_s(attempt);
                if backoff > 0.0 {
                    gpu.stall(hs, backoff, "host residue backoff".to_string());
                }
            }
            match injector.on_op(device_id, OpClass::Kernel, now) {
                OpVerdict::DeviceDown { .. } => break,
                OpVerdict::Ok => {
                    submit_residue(gpu, hs, plan, dev, &host_acc, mode == ExecMode::Functional);
                    break;
                }
                _corrupted_or_aborted => {
                    submit_residue(gpu, hs, plan, dev, &host_acc, false);
                    if attempt >= policy.retry.max_attempts {
                        break;
                    }
                }
            }
        }
    }

    let items: Vec<Item> =
        (0..plan.seg_lists.first().map_or(0, Vec::len)).map(|j| (0usize, j)).collect();
    let mut st = WaveState::default();
    let (_lost, _orphans, retries, att, _dead) = drive_waves(
        gpu,
        &streams,
        &mut allocs,
        &mut st,
        plan,
        device_id,
        items,
        injector,
        policy,
        true,
    );

    // One D2H of whatever the device accumulated, ordered after all work.
    let done_events: Vec<_> = streams.iter().map(|&s| gpu.record_event(s)).collect();
    for ev in done_events {
        gpu.wait_event(streams[0], ev);
    }
    let (final_bytes, final_label) =
        dev.final_d2h.expect("single-device resilient plans return their output");
    gpu.d2h(streams[0], final_bytes, final_label.to_string());
    gpu.synchronize();
    for a in allocs {
        gpu.memory().free(a);
    }

    let done: HashSet<Item> = st.done.iter().copied().collect();
    let buffers = make_buffers(plan, mode);
    if mode == ExecMode::Functional {
        replay_completed(plan, &done, &buffers);
    }
    let mut output = reduce_output(plan, &buffers, mode);
    if let Some(host_m) = host_acc.lock().take() {
        output.axpy(1.0, &host_m);
    }

    let total_items = plan.total_items();
    let outcomes: Vec<UnitOutcome> = (0..total_items)
        .map(|j| UnitOutcome {
            shard: 0,
            segment: j,
            attempts: att.get(&(0, j)).copied().unwrap_or(0),
            completed: done.contains(&(0, j)),
        })
        .collect();
    let timeline = gpu.full_timeline().clone();
    ExecOutcome {
        output,
        trace: PlanTrace::from_timelines([(0, &timeline)]),
        device_timelines: vec![timeline.clone()],
        device_shards: vec![done
            .iter()
            .map(|&(si, _)| si)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()],
        timeline,
        reduction_s: plan.reduction_s,
        completed_segments: done.len(),
        outcomes,
        retries,
        replaced_segments: 0,
        total_items,
        dead_devices: Vec::new(),
        // Resilient waves alloc lazily outside the slot machinery: only
        // the pool watermark is meaningful here.
        mem: vec![DeviceMemStats { peak_bytes: gpu.memory().peak(), ..Default::default() }],
        shard_outputs: Vec::new(),
    }
}

/// One device's live execution context across re-placement rounds.
struct Ctx {
    gpu: Gpu,
    streams: Vec<StreamId>,
    d2h_stream: Option<StreamId>,
    st: WaveState,
    allocs: Vec<Allocation>,
    dead: bool,
}

/// Brings up device `d`: simulated GPU (derated if the device is
/// straggling), streams, factor upload. Synchronised (per the plan) so
/// the clock can be advanced before rescued work lands.
fn make_ctx(plan: &Plan, dev: &DeviceOps, derate: f64) -> Ctx {
    let mut spec = dev.spec.clone();
    if derate > 1.0 {
        spec = spec.derated(derate);
    }
    let mut gpu = match &dev.host {
        Some(h) => Gpu::with_host(spec, h.clone()),
        None => Gpu::new(spec),
    };
    let streams: Vec<StreamId> = (0..dev.worker_streams).map(|_| gpu.create_stream()).collect();
    let d2h_stream = if dev.dedicated_d2h { Some(gpu.create_stream()) } else { None };
    let mut allocs = Vec::new();
    for &(bytes, what) in &plan.resilient_prologue {
        allocs.push(gpu.memory().alloc(bytes).expect(what));
    }
    gpu.h2d(streams[0], plan.factors_bytes, "factors H2D");
    let factors_ready = gpu.record_event(streams[0]);
    for &s in &streams[1..] {
        gpu.wait_event(s, factors_ready);
    }
    if plan.sync_after_prologue {
        gpu.synchronize();
    }
    Ctx { gpu, streams, d2h_stream, st: WaveState::default(), allocs, dead: false }
}

fn ensure_ctx<'a>(
    ctxs: &'a mut [Option<Ctx>],
    plan: &Plan,
    d: usize,
    now_s: f64,
    injector: &mut FaultInjector,
) -> &'a mut Ctx {
    if ctxs[d].is_none() {
        let derate = match injector.health_at(d, now_s) {
            DeviceHealth::Straggling { derate } => derate,
            _ => 1.0,
        };
        ctxs[d] = Some(make_ctx(plan, &plan.devices[d], derate));
    }
    ctxs[d].as_mut().expect("just created")
}

fn shard_d2h_bytes(shard: &ShardDesc, rank: usize, full_out_bytes: u64) -> u64 {
    match shard.rows {
        Some((lo, hi)) => ((hi - lo + 1) as u64) * rank as u64 * 4,
        None => full_out_bytes,
    }
}

/// Executes a multi-device plan under fault injection: bring-up health
/// checks exclude devices down at t = 0, each device drives its items in
/// retry waves, and (under [`RecoveryMode::RetryReShard`]) a dead
/// device's orphans re-place onto survivors via the plan's
/// [`ClusterPolicy`], no earlier than the simulated time the failure was
/// observed.
pub fn run_plan_resilient(
    plan: &Plan,
    injector: &mut FaultInjector,
    policy: &FaultRecoveryPolicy,
    mode: ExecMode,
) -> ExecOutcome {
    assert!(policy.retry.max_attempts >= 1, "at least one attempt is required");
    let cluster =
        plan.cluster.as_ref().expect("multi-device resilient execution needs a cluster policy");
    let n = plan.devices.len();
    let rank = plan.rank;
    let rows = plan.rows;
    let out_bytes = (rows * rank * 4) as u64;
    let total_items = plan.total_items();
    let buffers = make_buffers(plan, mode);

    // Bring-up health check: devices already down at t = 0 receive no
    // work (failure detection at admission is cheap); stragglers run but
    // derated. Mid-run faults are what the recovery modes differ on.
    let mut dead = vec![false; n];
    for (d, slot) in dead.iter_mut().enumerate() {
        if let DeviceHealth::Down { .. } = injector.health_at(d, 0.0) {
            *slot = true;
        }
    }
    let alive: Vec<usize> = (0..n).filter(|&d| !dead[d]).collect();

    // Initial placement over the healthy devices only.
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    if !alive.is_empty() {
        assignment = cluster.assign(&alive);
    }
    // Reduction-stage ownership: updated when shards re-place.
    let mut owner: Vec<Option<usize>> = vec![None; plan.shards.len()];
    for (d, list) in assignment.iter().enumerate() {
        for &si in list {
            owner[si] = Some(d);
        }
    }

    let mut ctxs: Vec<Option<Ctx>> = (0..n).map(|_| None).collect();
    let mut lost: Vec<Item> = Vec::new();
    let mut orphans: Vec<Item> = Vec::new();
    let mut rescued: HashSet<Item> = HashSet::new();
    let mut attempts: HashMap<Item, u32> = HashMap::new();
    let mut retries = 0usize;
    // Rescued work cannot start before the failure was observed.
    let mut fail_clock = 0.0f64;

    let merge_att = |total: &mut HashMap<Item, u32>, att: HashMap<Item, u32>| {
        for (k, v) in att {
            *total.entry(k).or_insert(0) += v;
        }
    };

    for d in 0..n {
        let items: Vec<Item> = assignment[d]
            .iter()
            .flat_map(|&si| (0..plan.seg_lists[si].len()).map(move |j| (si, j)))
            .collect();
        if items.is_empty() {
            continue;
        }
        let ctx = ensure_ctx(&mut ctxs, plan, d, 0.0, injector);
        let (l, o, r, att, died) = drive_waves(
            &mut ctx.gpu,
            &ctx.streams.clone(),
            &mut ctx.allocs,
            &mut ctx.st,
            plan,
            d,
            items,
            injector,
            policy,
            false,
        );
        merge_att(&mut attempts, att);
        retries += r;
        lost.extend(l);
        if died {
            ctx.dead = true;
        }
        if !o.is_empty() {
            dead[d] = true;
            fail_clock = fail_clock.max(ctx.gpu.clock());
            orphans.extend(o);
        }
    }

    // Re-placement rounds: re-run the placement policy over the surviving
    // devices for the orphaned work, until everything is placed or no
    // device remains.
    while !orphans.is_empty() {
        if policy.mode != RecoveryMode::RetryReShard {
            lost.append(&mut orphans);
            break;
        }
        let survivors: Vec<usize> = (0..n).filter(|&d| !dead[d]).collect();
        if survivors.is_empty() {
            lost.append(&mut orphans);
            break;
        }
        orphans.sort_unstable();
        let mut by_shard: BTreeMap<usize, Vec<Item>> = BTreeMap::new();
        for it in orphans.drain(..) {
            by_shard.entry(it.0).or_default().push(it);
        }
        let mut extra: Vec<Vec<Item>> = vec![Vec::new(); n];
        match cluster.strategy() {
            PlaceStrategy::RoundRobin => {
                for (k, (si, items)) in by_shard.into_iter().enumerate() {
                    let target = survivors[k % survivors.len()];
                    reshard(injector, &mut owner, si, target, fail_clock);
                    rescued.extend(items.iter().copied());
                    extra[target].extend(items);
                }
            }
            PlaceStrategy::Lpt => {
                // LPT over the survivors: projected finish = current
                // device clock + orphan bytes / end-to-end speed proxy.
                let speeds: Vec<f64> = survivors.iter().map(|&d| cluster.speed_proxy(d)).collect();
                let mut load: Vec<f64> = survivors
                    .iter()
                    .map(|&d| ctxs[d].as_ref().map_or(0.0, |c| c.gpu.clock()).max(fail_clock))
                    .collect();
                let group_bytes = |si: usize, items: &[Item]| -> u64 {
                    items
                        .iter()
                        .map(|&(_, j)| plan.seg_lists[si][j].byte_size(plan.order) as u64)
                        .sum()
                };
                let mut groups: Vec<(usize, Vec<Item>)> = by_shard.into_iter().collect();
                groups.sort_by(|a, b| {
                    group_bytes(b.0, &b.1).cmp(&group_bytes(a.0, &a.1)).then(a.0.cmp(&b.0))
                });
                for (si, items) in groups {
                    let bytes = group_bytes(si, &items) as f64;
                    let best = (0..survivors.len())
                        .min_by(|&a, &b| {
                            let ca = load[a] + bytes / (speeds[a] * 1e9);
                            let cb = load[b] + bytes / (speeds[b] * 1e9);
                            ca.partial_cmp(&cb).expect("finite loads").then(a.cmp(&b))
                        })
                        .expect("survivors is non-empty");
                    load[best] += bytes / (speeds[best] * 1e9);
                    reshard(injector, &mut owner, si, survivors[best], fail_clock);
                    rescued.extend(items.iter().copied());
                    extra[survivors[best]].extend(items);
                }
            }
        }
        for d in survivors {
            if extra[d].is_empty() {
                continue;
            }
            let ctx = ensure_ctx(&mut ctxs, plan, d, fail_clock, injector);
            ctx.gpu.advance_to(fail_clock);
            let (l, o, r, att, died) = drive_waves(
                &mut ctx.gpu,
                &ctx.streams.clone(),
                &mut ctx.allocs,
                &mut ctx.st,
                plan,
                d,
                std::mem::take(&mut extra[d]),
                injector,
                policy,
                false,
            );
            merge_att(&mut attempts, att);
            retries += r;
            lost.extend(l);
            if died {
                ctx.dead = true;
            }
            if !o.is_empty() {
                dead[d] = true;
                fail_clock = fail_clock.max(ctx.gpu.clock());
                orphans.extend(o);
            }
        }
    }

    // Return partial outputs on each surviving device's D2H stream,
    // scaled by the fraction of the shard it actually completed.
    for slot in ctxs.iter_mut().take(n) {
        let Some(ctx) = slot.as_mut() else { continue };
        if ctx.dead || plan.peer_reduce {
            continue;
        }
        let mut per_shard: BTreeMap<usize, usize> = BTreeMap::new();
        for &(si, _) in &ctx.st.done {
            *per_shard.entry(si).or_insert(0) += 1;
        }
        if per_shard.is_empty() {
            continue;
        }
        let d2h_stream = ctx.d2h_stream.expect("multi-device plans return on the D2H stream");
        let worker_streams = ctx.streams.clone();
        let evs: Vec<_> = worker_streams.iter().map(|&s| ctx.gpu.record_event(s)).collect();
        for ev in evs {
            ctx.gpu.wait_event(d2h_stream, ev);
        }
        for (si, cnt) in per_shard {
            let full = shard_d2h_bytes(&plan.shards[si], rank, out_bytes) as f64;
            let frac = cnt as f64 / plan.seg_lists[si].len() as f64;
            let bytes = ((full * frac).ceil() as u64).max(1);
            ctx.gpu.d2h(d2h_stream, bytes, format!("shard{si} D2H"));
        }
        ctx.gpu.synchronize();
    }

    let done: HashSet<Item> =
        ctxs.iter().flatten().flat_map(|c| c.st.done.iter().copied()).collect();
    let completed_segments = done.len();
    let replaced_segments = rescued.intersection(&done).count();

    let mut device_timelines = Vec::with_capacity(n);
    let mut device_shards = Vec::with_capacity(n);
    let mut mem = Vec::with_capacity(n);
    for slot in ctxs.iter_mut() {
        match slot {
            Some(ctx) => {
                mem.push(DeviceMemStats {
                    peak_bytes: ctx.gpu.memory().peak(),
                    ..Default::default()
                });
                for a in ctx.allocs.drain(..) {
                    ctx.gpu.memory().free(a);
                }
                device_shards.push(
                    ctx.st
                        .done
                        .iter()
                        .map(|&(si, _)| si)
                        .collect::<BTreeSet<_>>()
                        .into_iter()
                        .collect(),
                );
                device_timelines.push(ctx.gpu.full_timeline().clone());
            }
            None => {
                device_shards.push(Vec::new());
                device_timelines.push(Timeline::default());
                mem.push(DeviceMemStats::default());
            }
        }
    }

    let mut final_assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (si, o) in owner.iter().enumerate() {
        if let Some(d) = o {
            final_assignment[*d].push(si);
        }
    }
    let reduction_s = cluster.reduction_s(&final_assignment);

    if mode == ExecMode::Functional {
        replay_completed(plan, &done, &buffers);
    }
    let output = reduce_output(plan, &buffers, mode);

    let mut outcomes = Vec::with_capacity(total_items);
    for (si, segs) in plan.seg_lists.iter().enumerate() {
        for j in 0..segs.len() {
            outcomes.push(UnitOutcome {
                shard: si,
                segment: j,
                attempts: attempts.get(&(si, j)).copied().unwrap_or(0),
                completed: done.contains(&(si, j)),
            });
        }
    }

    ExecOutcome {
        output,
        trace: PlanTrace::from_timelines(device_timelines.iter().enumerate()),
        timeline: device_timelines.first().cloned().unwrap_or_default(),
        device_timelines,
        device_shards,
        reduction_s,
        outcomes,
        retries,
        replaced_segments,
        completed_segments,
        total_items,
        dead_devices: (0..n).filter(|&d| dead[d]).collect(),
        mem,
        shard_outputs: Vec::new(),
    }
}

/// Records one shard re-placement in the fault log and the reduction
/// ownership table.
fn reshard(
    injector: &mut FaultInjector,
    owner: &mut [Option<usize>],
    si: usize,
    target: usize,
    now_s: f64,
) {
    injector.record_recovery(
        target,
        now_s,
        RecoveryAction::ReShard {
            shard: si,
            from_device: owner[si].unwrap_or(target),
            to_device: target,
        },
    );
    owner[si] = Some(target);
}
