//! The plan-builder registry: every execution path publishes a named
//! builder producing a [`Plan`](crate::ir::Plan) for a `(tensor,
//! factors, mode)` triple. The conformance suite and the `plan_dump`
//! tool enumerate these to guarantee every path stays covered and
//! fingerprintable.

use crate::ir::Plan;
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::CooTensor;

/// Type of a registered builder closure.
pub type BuildFn = dyn Fn(&CooTensor, &FactorSet, usize) -> Plan + Send + Sync;

/// A named plan builder.
pub struct PlanBuilder {
    /// Registry name (conformance backends are named `path:<name>`).
    pub name: &'static str,
    /// Builds the plan for a tensor, factor set and mode.
    pub build: Box<BuildFn>,
}

impl PlanBuilder {
    /// Registers a builder under `name`.
    pub fn new(
        name: &'static str,
        build: impl Fn(&CooTensor, &FactorSet, usize) -> Plan + Send + Sync + 'static,
    ) -> Self {
        Self { name, build: Box::new(build) }
    }
}

impl std::fmt::Debug for PlanBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanBuilder").field("name", &self.name).finish_non_exhaustive()
    }
}
