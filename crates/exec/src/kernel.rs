//! Kernel dispatch shared by every plan builder and the interpreter.

use scalfrag_balance::{BalancedKernel, FlycooKernel, CHUNK_LEN, FLYCOO_SEG_LEN};
use scalfrag_gpusim::{Gpu, LaunchConfig, StreamId};
use scalfrag_kernels::{AtomicF32Buffer, CooAtomicKernel, FactorSet, SegmentStats, TiledKernel};
use scalfrag_tensor::{ChunkedTensor, CooTensor, FlycooTensor};
use std::sync::Arc;

/// Which kernel the interpreter launches per segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// ParTI-style atomic COO kernel.
    CooAtomic,
    /// ScalFrag shared-memory tiled kernel.
    Tiled,
    /// Load-balanced segmented-scan kernel over fixed-nnz chunks
    /// (`balance-segscan`): immune to slice/fiber skew.
    Balanced,
    /// FLYCOO-style mode-agnostic kernel (`balance-flycoo`): one tensor
    /// copy plus per-mode remap tables serves every MTTKRP mode.
    ModeAgnostic,
}

impl KernelChoice {
    /// The full launch configuration (with this kernel's shared-memory
    /// request) for a base `(grid, block)`.
    pub fn full_config(&self, base: LaunchConfig, rank: u32) -> LaunchConfig {
        match self {
            KernelChoice::CooAtomic | KernelChoice::Balanced | KernelChoice::ModeAgnostic => base,
            KernelChoice::Tiled => TiledKernel::config_with_smem(base, rank),
        }
    }

    /// The cost-model workload of this kernel over a segment.
    pub fn workload(
        &self,
        stats: &SegmentStats,
        rank: u32,
        block: u32,
    ) -> scalfrag_gpusim::KernelWorkload {
        match self {
            KernelChoice::CooAtomic => scalfrag_kernels::workload::coo_atomic_workload(stats, rank),
            KernelChoice::Tiled => scalfrag_kernels::workload::tiled_workload(stats, rank, block),
            KernelChoice::Balanced => scalfrag_balance::balanced_workload(stats, rank),
            KernelChoice::ModeAgnostic => scalfrag_balance::flycoo_workload(stats, rank),
        }
    }

    /// Enqueues one segment's kernel launch on `stream`: resolves the
    /// launch configuration, cost-model workload and (when `out` is given)
    /// the functional kernel body. The balance arms build their chunked /
    /// remapped layouts from the COO segment here, mirroring the device-side
    /// format construction the real kernels would do at load time.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        &self,
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        seg: Arc<CooTensor>,
        factors: Arc<FactorSet>,
        mode: usize,
        out: Option<Arc<AtomicF32Buffer>>,
        label: String,
    ) {
        match out {
            Some(out) => match self {
                KernelChoice::CooAtomic => {
                    CooAtomicKernel::enqueue(gpu, stream, config, seg, factors, mode, out, label);
                }
                KernelChoice::Tiled => {
                    TiledKernel::enqueue(gpu, stream, config, seg, factors, mode, out, label);
                }
                KernelChoice::Balanced => {
                    let stats = SegmentStats::compute(&seg, mode);
                    let chunked = Arc::new(ChunkedTensor::from_coo(&seg, mode, CHUNK_LEN));
                    BalancedKernel::enqueue(
                        gpu, stream, config, &stats, chunked, factors, out, label,
                    );
                }
                KernelChoice::ModeAgnostic => {
                    let stats = SegmentStats::compute(&seg, mode);
                    let fly = Arc::new(FlycooTensor::from_coo(&seg, FLYCOO_SEG_LEN));
                    FlycooKernel::enqueue(
                        gpu, stream, config, &stats, fly, mode, factors, out, label,
                    );
                }
            },
            None => {
                // Timing-only launch: same cost-model workload, no numerics.
                let rank = factors.rank() as u32;
                let cfg = self.full_config(config, rank);
                let stats = SegmentStats::compute(&seg, mode);
                let workload = self.workload(&stats, rank, cfg.block);
                gpu.launch(stream, cfg, workload, label);
            }
        }
    }
}
