//! The structured plan trace: every executed op as `(device, stream,
//! kind, label, sim-time span)`, with a toolchain-stable FNV-1a
//! fingerprint. This is the unified observability layer every execution
//! path emits.

use scalfrag_gpusim::{SpanKind, Timeline};
use std::fmt::Write as _;

/// One executed op.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Plan device index.
    pub device: usize,
    /// Raw stream id within the device.
    pub stream: u32,
    /// Engine-level op kind.
    pub kind: SpanKind,
    /// Op label (as scheduled by the plan).
    pub label: String,
    /// Simulated start (s).
    pub start: f64,
    /// Simulated end (s).
    pub end: f64,
}

/// The trace of one interpreted plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanTrace {
    /// Events in per-device timeline order.
    pub events: Vec<TraceEvent>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn kind_code(kind: SpanKind) -> u8 {
    match kind {
        SpanKind::CopyH2D => 0,
        SpanKind::CopyD2H => 1,
        SpanKind::Kernel => 2,
        SpanKind::HostTask => 3,
    }
}

impl PlanTrace {
    /// Builds a trace from per-device timelines.
    pub fn from_timelines<'a>(timelines: impl IntoIterator<Item = (usize, &'a Timeline)>) -> Self {
        let mut events = Vec::new();
        for (device, tl) in timelines {
            for span in &tl.spans {
                events.push(TraceEvent {
                    device,
                    stream: span.stream,
                    kind: span.kind,
                    label: span.label.clone(),
                    start: span.start,
                    end: span.end,
                });
            }
        }
        PlanTrace { events }
    }

    /// Whether the trace recorded no ops.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a digest over every event's placement, label and span bits.
    /// Toolchain-independent: a changed constant means a changed schedule.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut byte = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for e in &self.events {
            for b in (e.device as u64).to_le_bytes() {
                byte(b);
            }
            for b in e.stream.to_le_bytes() {
                byte(b);
            }
            byte(kind_code(e.kind));
            for &b in e.label.as_bytes() {
                byte(b);
            }
            byte(0xff);
            for b in e.start.to_bits().to_le_bytes() {
                byte(b);
            }
            for b in e.end.to_bits().to_le_bytes() {
                byte(b);
            }
        }
        h
    }

    /// Renders the trace as a fixed-width table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>3} {:>4} {:<8} {:>12} {:>12}  label",
            "dev", "strm", "kind", "start", "end"
        );
        for e in &self.events {
            let _ = writeln!(
                s,
                "{:>3} {:>4} {:<8} {:>12.3e} {:>12.3e}  {}",
                e.device,
                e.stream,
                format!("{:?}", e.kind),
                e.start,
                e.end,
                e.label,
            );
        }
        s
    }
}
