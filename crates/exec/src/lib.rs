//! `scalfrag-exec` — the ScheduleIR execution engine.
//!
//! A [`Plan`] is a declarative schedule: per-device typed ops (`H2D`,
//! `Launch`, `Reduce`, `D2H`, `HostResidue`, `Barrier`) with stream
//! placement, plus plan-level metadata (segment map, predictor verdict,
//! retry policy). The `pipeline`, `cluster`, `serve` and `core` crates
//! are pure plan *builders*; this crate owns the single interpreter that
//! executes any plan over the simulated GPU — fault-free or under fault
//! injection, functional or dry — and emits a fingerprintable
//! [`PlanTrace`].

#![warn(missing_docs)]

mod interp;
mod ir;
mod kernel;
mod registry;
mod retry;
mod trace;

pub use interp::{
    run_plan, run_plan_on, run_plan_resilient, run_plan_resilient_on, DeviceMemStats, ExecOutcome,
    UnitOutcome,
};
pub use ir::{
    ClusterPolicy, DeviceOps, ExecMode, PlaceStrategy, Plan, PlanMeta, PlanOp, Reduce, ResidueWork,
    ShardDesc, ShardWork, StreamRef, WorkUnit,
};
pub use kernel::KernelChoice;
pub use registry::{BuildFn, PlanBuilder};
pub use retry::{FaultRecoveryPolicy, RecoveryMode, RetryPolicy};
pub use trace::{PlanTrace, TraceEvent};
