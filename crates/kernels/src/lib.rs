//! # scalfrag-kernels
//!
//! The MTTKRP kernels of the ScalFrag reproduction and the CPD-ALS driver
//! built on top of them.
//!
//! Three simulated GPU kernels (all functionally executed, all timed by the
//! `scalfrag-gpusim` cost model) plus a CPU reference:
//!
//! * [`reference`] — sequential and rayon-parallel CPU MTTKRP over COO and
//!   CSF; the correctness oracle for everything else, validated on small
//!   tensors against the dense Equation (4) (`X₍ₙ₎ · (⊙ factors)`).
//! * [`coo_kernel`] — the ParTI-style nnz-parallel COO kernel: one thread
//!   per non-zero, `atomicAdd` per rank element into the output rows. This
//!   is the baseline strategy the paper compares against.
//! * [`tiled_kernel`] — the ScalFrag tiled kernel (§IV-A): partial results
//!   (`mvals`) and factor rows (`times_mat`) staged in shared memory, with
//!   block-level pre-reduction slashing the global atomic traffic.
//! * [`csf_kernel`] — a fiber-parallel kernel over the CSF tree, with one
//!   owner per output row (no atomics at all).
//! * [`cpd`] — the CPD-ALS loop of Algorithm 1 parameterised over any
//!   [`MttkrpBackend`], with fit tracking.
//! * [`checkpoint`] — iteration-level checkpoint/rollback for CPD-ALS over
//!   fallible backends: a failed MTTKRP rolls the factors back to the last
//!   snapshot and re-runs, bitwise identical to a fault-free run.

pub mod atomic_buf;
pub mod backend;
pub mod bcsf_kernel;
pub mod checkpoint;
pub mod coo_kernel;
pub mod cpd;
pub mod csf_kernel;
pub mod factors;
pub mod fcoo_kernel;
pub mod hicoo_kernel;
pub mod partials;
pub mod race;
pub mod reference;
pub mod simd;
pub mod spttm;
pub mod tiled_kernel;
pub mod tucker;
pub mod workload;

pub use atomic_buf::AtomicF32Buffer;
pub use backend::{CpuParallelBackend, CpuSequentialBackend, MttkrpBackend};
pub use bcsf_kernel::BcsfKernel;
pub use checkpoint::{
    cpd_als_checkpointed, CheckpointConfig, CheckpointedCpdResult, FallibleMttkrpBackend,
    MttkrpFailure, Reliable, ScriptedFailureBackend,
};
pub use coo_kernel::CooAtomicKernel;
pub use cpd::{cpd_als, CpdOptions, CpdResult};
pub use csf_kernel::CsfFiberKernel;
pub use factors::FactorSet;
pub use fcoo_kernel::FCooKernel;
pub use hicoo_kernel::HiCooKernel;
pub use partials::{run_units, UpdateList};
pub use race::{
    trace_balanced, trace_bcsf, trace_coo, trace_csf, trace_fcoo, trace_flycoo, trace_hicoo,
    trace_racy_balanced_carry, trace_racy_coo, trace_tiled,
};
pub use tiled_kernel::TiledKernel;
pub use tucker::{tucker_hosvd, TuckerResult};
pub use workload::SegmentStats;
