//! The ParTI-style COO atomic kernel.
//!
//! ParTI's GPU SpMTTKRP "divid[es] data partitions based on tensor
//! non-zeros" with the output updated through atomic operations (§VI-B of
//! the paper, and the overhead it calls out). The simulated kernel mirrors
//! that: one thread per non-zero, the rank-loop in registers, one
//! `atomicAdd` per rank element into the output row.

use crate::atomic_buf::AtomicF32Buffer;
use crate::factors::FactorSet;
use crate::workload::{coo_atomic_workload, SegmentStats};
use crate::{partials, simd};
use scalfrag_gpusim::{Gpu, KernelWorkload, LaunchConfig, OpId, StreamId};
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

/// Entries per parallel unit. Fixed (never thread-derived) so the unit
/// decomposition — and with it the submission-order fold — is identical
/// at every pool size.
const UNIT_LEN: usize = 1024;

/// The nnz-parallel atomic COO MTTKRP kernel (the ParTI baseline kernel).
pub struct CooAtomicKernel;

impl CooAtomicKernel {
    /// Kernel name for reports.
    pub const NAME: &'static str = "coo-atomic";

    /// Cost-model workload of this kernel over a segment.
    pub fn workload(stats: &SegmentStats, rank: u32) -> KernelWorkload {
        coo_atomic_workload(stats, rank)
    }

    /// Functional body: computes `out[row·rank + f] += val · Π factor rows`
    /// for every entry, in parallel, with atomic f32 adds — the exact
    /// update the CUDA kernel performs.
    ///
    /// `out` must have `dims[mode] * rank` elements.
    pub fn execute(seg: &CooTensor, factors: &FactorSet, mode: usize, out: &AtomicF32Buffer) {
        let rank = factors.rank();
        assert_eq!(out.len(), seg.dims()[mode] as usize * rank, "output buffer shape mismatch");
        let order = seg.order();
        let nnz = seg.nnz();
        let units = nnz.div_ceil(UNIT_LEN);
        partials::run_units(units, out, |u, list| {
            for e in u * UNIT_LEN..((u + 1) * UNIT_LEN).min(nnz) {
                let mut acc = [0.0f32; 64];
                let acc = &mut acc[..rank.min(64)];
                simd::fill(acc, seg.values()[e]);
                // Ranks above the 64-register budget fall back to a heap path.
                debug_assert!(rank <= 64, "rank > 64 unsupported by the register kernel");
                for m in 0..order {
                    if m == mode {
                        continue;
                    }
                    simd::mul_assign(acc, factors.get(m).row(seg.mode_indices(m)[e] as usize));
                }
                let base = seg.mode_indices(mode)[e] as usize * rank;
                for (f, &a) in acc.iter().enumerate() {
                    list.push((base + f, a));
                }
            }
        });
    }

    /// Enqueues this kernel on the simulated GPU: the duration comes from
    /// the cost model, the numeric work from [`CooAtomicKernel::execute`].
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        seg: Arc<CooTensor>,
        factors: Arc<FactorSet>,
        mode: usize,
        out: Arc<AtomicF32Buffer>,
        label: impl Into<String>,
    ) -> OpId {
        let stats = SegmentStats::compute(&seg, mode);
        let workload = Self::workload(&stats, factors.rank() as u32);
        gpu.launch_exec(stream, config, workload, label, move || {
            Self::execute(&seg, &factors, mode, &out);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;
    use scalfrag_tensor::CooTensor;

    fn run_functional(t: &CooTensor, f: &FactorSet, mode: usize) -> Mat {
        let rank = f.rank();
        let out = AtomicF32Buffer::new(t.dims()[mode] as usize * rank);
        CooAtomicKernel::execute(t, f, mode, &out);
        Mat::from_vec(t.dims()[mode] as usize, rank, out.to_vec())
    }

    #[test]
    fn matches_reference_all_modes_3way() {
        let t = CooTensor::random_uniform(&[30, 20, 10], 1_000, 1);
        let f = FactorSet::random(&[30, 20, 10], 16, 2);
        for mode in 0..3 {
            let a = run_functional(&t, &f, mode);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-3, "mode {mode}: {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn matches_reference_4way() {
        let t = CooTensor::random_uniform(&[12, 10, 8, 6], 500, 3);
        let f = FactorSet::random(&[12, 10, 8, 6], 8, 4);
        for mode in 0..4 {
            let a = run_functional(&t, &f, mode);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-3);
        }
    }

    #[test]
    fn enqueued_kernel_executes_and_is_timed() {
        let t = Arc::new(CooTensor::random_uniform(&[20, 15, 10], 400, 5));
        let f = Arc::new(FactorSet::random(&[20, 15, 10], 8, 6));
        let out = Arc::new(AtomicF32Buffer::new(20 * 8));
        let mut gpu = Gpu::new(scalfrag_gpusim::DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        CooAtomicKernel::enqueue(
            &mut gpu,
            s,
            LaunchConfig::new(64, 128),
            Arc::clone(&t),
            Arc::clone(&f),
            0,
            Arc::clone(&out),
            "coo",
        );
        let tl = gpu.synchronize();
        assert_eq!(tl.spans.len(), 1);
        assert!(tl.spans[0].duration() > 0.0);
        let m = Mat::from_vec(20, 8, out.to_vec());
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(m.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_output_size_panics() {
        let t = CooTensor::random_uniform(&[5, 5], 10, 0);
        let f = FactorSet::random(&[5, 5], 4, 0);
        let out = AtomicF32Buffer::new(3);
        CooAtomicKernel::execute(&t, &f, 0, &out);
    }
}
