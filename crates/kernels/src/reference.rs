//! CPU reference MTTKRP — the correctness oracle.
//!
//! Implements Equation (4), `M = X₍ₙ₎ (A⁽ᴺ⁾ ⊙ … ⊙ A⁽ⁿ⁺¹⁾ ⊙ A⁽ⁿ⁻¹⁾ ⊙ … ⊙
//! A⁽¹⁾)`, directly over the sparse entries: for every non-zero
//! `x(i₁,…,i_N)` and every rank column `f`,
//! `M(i_n, f) += x · Π_{m≠n} A⁽ᵐ⁾(i_m, f)`.
//!
//! Three flavours: sequential over COO, rayon-parallel over COO (row-sharded
//! to stay deterministic up to f32 association within a row), and a dense
//! validator that literally materialises `X₍ₙ₎` and the Khatri-Rao chain
//! for tiny tensors.

use crate::{simd, FactorSet};
use scalfrag_linalg::{khatri_rao_chain, matmul, Mat};
use scalfrag_tensor::{matricize, CooTensor, CsfTensor};

/// Fixed partial count for [`mttkrp_par`]. Deliberately **not** derived
/// from `rayon::current_num_threads()`: with the work-stealing pool the
/// thread count varies per call site, and a thread-dependent chunk count
/// would change the partial fold order — and therefore the f32 bits —
/// between pool sizes. 32 partials keep 8 workers busy (4 chunks each)
/// while bounding partial-matrix memory.
pub const PAR_CHUNKS: usize = 32;

/// Entry-chunk length [`mttkrp_par`] uses for `nnz` entries — a pure
/// function of the workload, identical at every thread count. Public so
/// the heuristic-regression test can pin the thread-independence.
pub fn par_chunk_len(nnz: usize) -> usize {
    nnz.div_ceil(PAR_CHUNKS).max(1)
}

/// Sequential COO MTTKRP for any mode of any-order tensors.
///
/// # Panics
/// Panics if factor dims do not match the tensor.
pub fn mttkrp_seq(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
    check_shapes(tensor, factors, mode);
    let rank = factors.rank();
    let order = tensor.order();
    let mut out = Mat::zeros(tensor.dims()[mode] as usize, rank);
    let mut acc = vec![0.0f32; rank];
    for e in 0..tensor.nnz() {
        simd::fill(&mut acc, tensor.values()[e]);
        for m in 0..order {
            if m == mode {
                continue;
            }
            simd::mul_assign(&mut acc, factors.get(m).row(tensor.mode_indices(m)[e] as usize));
        }
        let out_row = out.row_mut(tensor.mode_indices(mode)[e] as usize);
        simd::add_assign(out_row, &acc);
    }
    out
}

/// Pool-parallel COO MTTKRP. The tensor does not need to be sorted; each
/// chunk accumulates a private output which is reduced at the end (the
/// multi-core CPU strategy of SPLATT-style libraries). The chunk count is
/// fixed ([`par_chunk_len`]) and partials fold in chunk order, so the
/// result is bit-identical at every pool size.
pub fn mttkrp_par(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
    check_shapes(tensor, factors, mode);
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let order = tensor.order();
    let nnz = tensor.nnz();
    if nnz == 0 {
        return Mat::zeros(rows, rank);
    }
    let chunk = par_chunk_len(nnz);
    let num_chunks = nnz.div_ceil(chunk);

    let partials: Vec<Mat> = scalfrag_host::par_map(num_chunks, |c| {
        let mut local = Mat::zeros(rows, rank);
        let mut acc = vec![0.0f32; rank];
        for e in c * chunk..((c + 1) * chunk).min(nnz) {
            simd::fill(&mut acc, tensor.values()[e]);
            for m in 0..order {
                if m == mode {
                    continue;
                }
                simd::mul_assign(&mut acc, factors.get(m).row(tensor.mode_indices(m)[e] as usize));
            }
            let out_row = local.row_mut(tensor.mode_indices(mode)[e] as usize);
            simd::add_assign(out_row, &acc);
        }
        local
    });

    let mut out = Mat::zeros(rows, rank);
    for p in partials {
        out.axpy(1.0, &p);
    }
    out
}

/// MTTKRP over a CSF tree for its *root* mode: each slice owns its output
/// row, so slices parallelise without atomics; within a slice the tree is
/// walked depth-first accumulating fiber partials (the classic SPLATT
/// 3-way recursion, generalised to any order).
pub fn mttkrp_csf(csf: &CsfTensor, factors: &FactorSet) -> Mat {
    let mode = csf.mode_order()[0];
    let rank = factors.rank();
    let rows = csf.dims()[mode] as usize;
    let mut out = Mat::zeros(rows, rank);

    // Slice-parallel on the host pool; results land in slice order (the
    // same order the sequential shim produced), so bits are pool-invariant.
    let slice_results: Vec<(usize, Vec<f32>)> = scalfrag_host::par_map(csf.num_slices(), |s| {
        let mut acc = vec![0.0f32; rank];
        accumulate_subtree(csf, factors, 0, s, &mut acc);
        (csf.fids(0)[s] as usize, acc)
    });

    for (row, acc) in slice_results {
        let out_row = out.row_mut(row);
        for (o, a) in out_row.iter_mut().zip(acc) {
            *o += a;
        }
    }
    out
}

/// Recursively accumulates `Σ_leaf val · Π_{levels>0} factor_row` for the
/// subtree under `node` at `level`, writing into `acc` (length `rank`).
fn accumulate_subtree(
    csf: &CsfTensor,
    factors: &FactorSet,
    level: usize,
    node: usize,
    acc: &mut [f32],
) {
    let order = csf.order();
    if level == order - 1 {
        // Leaf: val * factor row of the leaf mode.
        let m = csf.mode_order()[level];
        let row = factors.get(m).row(csf.fids(level)[node] as usize);
        let v = csf.values()[node];
        for (a, &w) in acc.iter_mut().zip(row) {
            *a += v * w;
        }
        return;
    }
    let mut child_acc = vec![0.0f32; acc.len()];
    for child in csf.fptr(level)[node]..csf.fptr(level)[node + 1] {
        accumulate_subtree(csf, factors, level + 1, child, &mut child_acc);
        if level + 1 < order - 1 {
            // Inner node: scale the subtree result by this child's factor row
            // and fold it up. (For the level just above the leaves the leaf
            // call already multiplied values; the child's own row applies.)
        }
        let m = csf.mode_order()[level + 1];
        if level + 1 < order - 1 {
            let row = factors.get(m).row(csf.fids(level + 1)[child] as usize);
            for (a, (&c, &w)) in acc.iter_mut().zip(child_acc.iter().zip(row)) {
                *a += c * w;
            }
        } else {
            // child is a leaf: already multiplied by its factor row above.
            for (a, &c) in acc.iter_mut().zip(child_acc.iter()) {
                *a += c;
            }
        }
        child_acc.iter_mut().for_each(|x| *x = 0.0);
    }
    // Root level (0) rows are the output; intermediate levels multiplied by
    // their own factor row happen in the caller.
}

/// Dense-path validation: materialises `X₍ₙ₎` and the Khatri-Rao chain and
/// multiplies them — Equation (4) literally. Only for tiny tensors.
pub fn mttkrp_dense_validation(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
    check_shapes(tensor, factors, mode);
    let (rows, cols, x) = matricize::to_dense_matricized(tensor, mode);
    let xmat = Mat::from_vec(rows, cols, x);
    // Column linearisation in `matricize` runs highest mode slowest, so the
    // Khatri-Rao chain must be A^(N) ⊙ ... skipping mode n ... ⊙ A^(1).
    let mats: Vec<&Mat> =
        (0..tensor.order()).rev().filter(|&m| m != mode).map(|m| factors.get(m)).collect();
    let kr = khatri_rao_chain(&mats);
    matmul(&xmat, &kr)
}

fn check_shapes(tensor: &CooTensor, factors: &FactorSet, mode: usize) {
    assert!(mode < tensor.order(), "mode out of range");
    assert_eq!(factors.order(), tensor.order(), "factor count != tensor order");
    for (m, &d) in tensor.dims().iter().enumerate() {
        assert_eq!(factors.get(m).rows(), d as usize, "factor {m} rows != tensor dim");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_diff(a: &Mat, b: &Mat) -> f32 {
        a.max_abs_diff(b)
    }

    #[test]
    fn seq_matches_dense_equation4_3way() {
        let t = CooTensor::random_uniform(&[6, 5, 4], 40, 1);
        let f = FactorSet::random(&[6, 5, 4], 7, 2);
        for mode in 0..3 {
            let sparse = mttkrp_seq(&t, &f, mode);
            let dense = mttkrp_dense_validation(&t, &f, mode);
            assert!(
                max_diff(&sparse, &dense) < 1e-4,
                "mode {mode} disagrees with Equation (4): {}",
                max_diff(&sparse, &dense)
            );
        }
    }

    #[test]
    fn seq_matches_dense_equation4_4way() {
        let t = CooTensor::random_uniform(&[4, 5, 3, 6], 50, 3);
        let f = FactorSet::random(&[4, 5, 3, 6], 5, 4);
        for mode in 0..4 {
            let sparse = mttkrp_seq(&t, &f, mode);
            let dense = mttkrp_dense_validation(&t, &f, mode);
            assert!(max_diff(&sparse, &dense) < 1e-4, "mode {mode} disagrees");
        }
    }

    #[test]
    fn par_matches_seq() {
        let t = CooTensor::random_uniform(&[40, 30, 20], 2_000, 5);
        let f = FactorSet::random(&[40, 30, 20], 16, 6);
        for mode in 0..3 {
            let a = mttkrp_seq(&t, &f, mode);
            let b = mttkrp_par(&t, &f, mode);
            assert!(max_diff(&a, &b) < 1e-3, "mode {mode}: {}", max_diff(&a, &b));
        }
    }

    #[test]
    fn csf_matches_seq_3way() {
        let t = CooTensor::random_uniform(&[15, 12, 9], 300, 7);
        let f = FactorSet::random(&[15, 12, 9], 8, 8);
        for mode in 0..3 {
            let csf = CsfTensor::from_coo(&t, mode);
            let a = mttkrp_csf(&csf, &f);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(max_diff(&a, &b) < 1e-3, "mode {mode}: {}", max_diff(&a, &b));
        }
    }

    #[test]
    fn csf_matches_seq_4way() {
        let t = CooTensor::random_uniform(&[8, 7, 6, 5], 200, 9);
        let f = FactorSet::random(&[8, 7, 6, 5], 6, 10);
        for mode in 0..4 {
            let csf = CsfTensor::from_coo(&t, mode);
            let a = mttkrp_csf(&csf, &f);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(max_diff(&a, &b) < 1e-3, "mode {mode}: {}", max_diff(&a, &b));
        }
    }

    #[test]
    fn empty_tensor_gives_zero_output() {
        let t = CooTensor::new(&[5, 5, 5]);
        let f = FactorSet::random(&[5, 5, 5], 4, 0);
        let m = mttkrp_par(&t, &f, 0);
        assert_eq!(m.frob_norm(), 0.0);
    }

    #[test]
    fn mttkrp_is_linear_in_values() {
        // MTTKRP(2X) == 2 * MTTKRP(X).
        let t = CooTensor::random_uniform(&[10, 8, 6], 100, 11);
        let mut t2 = t.clone();
        for v in t2.values_mut() {
            *v *= 2.0;
        }
        let f = FactorSet::random(&[10, 8, 6], 5, 12);
        let mut a = mttkrp_seq(&t, &f, 1);
        a.scale(2.0);
        let b = mttkrp_seq(&t2, &f, 1);
        assert!(max_diff(&a, &b) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "mode out of range")]
    fn bad_mode_panics() {
        let t = CooTensor::new(&[3, 3]);
        let f = FactorSet::random(&[3, 3], 2, 0);
        let _ = mttkrp_seq(&t, &f, 2);
    }

    #[test]
    #[should_panic(expected = "rows != tensor dim")]
    fn mismatched_factors_panic() {
        let t = CooTensor::new(&[3, 3]);
        let f = FactorSet::random(&[3, 4], 2, 0);
        let _ = mttkrp_seq(&t, &f, 0);
    }
}
