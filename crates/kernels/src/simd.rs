//! SIMD-friendly fixed-width accumulator-tile primitives.
//!
//! The kernels' inner loops are all rank-length elementwise ops —
//! `acc = v`, `acc *= factor_row`, `acc += prod` — over slices whose
//! length (the CP rank) is only known at run time, which keeps LLVM from
//! vectorizing the naive `zip` loops well. These helpers process the
//! slice in fixed [`LANES`]-wide blocks through `[f32; LANES]` array
//! refs (via `chunks_exact` + `try_into`), giving the autovectorizer a
//! compile-time width, with a scalar tail for the remainder.
//!
//! **Bit-exactness:** every helper performs exactly the per-element
//! operations of its naive loop, in the same element order, with no
//! reassociation — so swapping a naive loop for a helper cannot move
//! output bits. `bitwise_matches_naive_loops` pins that promise.

/// Fixed accumulator-tile width. Eight f32 lanes = one AVX2 register.
pub const LANES: usize = 8;

/// `acc[i] = v` for all `i` — vectorized broadcast fill.
#[inline]
pub fn fill(acc: &mut [f32], v: f32) {
    let mut chunks = acc.chunks_exact_mut(LANES);
    for c in &mut chunks {
        let c: &mut [f32; LANES] = c.try_into().unwrap();
        *c = [v; LANES];
    }
    for a in chunks.into_remainder() {
        *a = v;
    }
}

/// `acc[i] *= row[i]` — vectorized elementwise product.
///
/// # Panics
/// Panics (in debug) if `row` is shorter than `acc`.
#[inline]
pub fn mul_assign(acc: &mut [f32], row: &[f32]) {
    debug_assert!(row.len() >= acc.len());
    let n = acc.len();
    let mut a_chunks = acc.chunks_exact_mut(LANES);
    let mut r_chunks = row[..n].chunks_exact(LANES);
    for (a, r) in (&mut a_chunks).zip(&mut r_chunks) {
        let a: &mut [f32; LANES] = a.try_into().unwrap();
        let r: &[f32; LANES] = r.try_into().unwrap();
        for i in 0..LANES {
            a[i] *= r[i];
        }
    }
    for (a, &r) in a_chunks.into_remainder().iter_mut().zip(r_chunks.remainder()) {
        *a *= r;
    }
}

/// `acc[i] += x[i]` — vectorized elementwise add.
///
/// # Panics
/// Panics (in debug) if `x` is shorter than `acc`.
#[inline]
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    debug_assert!(x.len() >= acc.len());
    let n = acc.len();
    let mut a_chunks = acc.chunks_exact_mut(LANES);
    let mut x_chunks = x[..n].chunks_exact(LANES);
    for (a, r) in (&mut a_chunks).zip(&mut x_chunks) {
        let a: &mut [f32; LANES] = a.try_into().unwrap();
        let r: &[f32; LANES] = r.try_into().unwrap();
        for i in 0..LANES {
            a[i] += r[i];
        }
    }
    for (a, &r) in a_chunks.into_remainder().iter_mut().zip(x_chunks.remainder()) {
        *a += r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises lengths around the lane boundary (0, 1, LANES-1, LANES,
    /// LANES+1, 2·LANES+3, a big odd one) against the naive loops, on
    /// bit-patterns including negative zero, subnormals and values whose
    /// products round — bits must match exactly.
    #[test]
    fn bitwise_matches_naive_loops() {
        let lens = [0usize, 1, LANES - 1, LANES, LANES + 1, 2 * LANES + 3, 67];
        for &n in &lens {
            let row: Vec<f32> = (0..n)
                .map(|i| match i % 5 {
                    0 => -0.0,
                    1 => f32::MIN_POSITIVE / 2.0, // subnormal
                    2 => 1e8 + i as f32,
                    3 => -3.7e-3 * i as f32,
                    _ => (i as f32 * 0.7).sin(),
                })
                .collect();
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 1.3).cos() * 1e3).collect();

            let mut a = vec![0.0f32; n];
            let mut b = vec![0.0f32; n];

            fill(&mut a, 2.5);
            b.iter_mut().for_each(|v| *v = 2.5);
            assert_eq!(bits(&a), bits(&b), "fill len {n}");

            mul_assign(&mut a, &row);
            b.iter_mut().zip(&row).for_each(|(v, &r)| *v *= r);
            assert_eq!(bits(&a), bits(&b), "mul_assign len {n}");

            add_assign(&mut a, &x);
            b.iter_mut().zip(&x).for_each(|(v, &r)| *v += r);
            assert_eq!(bits(&a), bits(&b), "add_assign len {n}");
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn mul_accepts_longer_row() {
        let mut acc = vec![2.0f32; 3];
        let row = [3.0f32; 10];
        mul_assign(&mut acc, &row);
        assert_eq!(acc, vec![6.0; 3]);
    }
}
