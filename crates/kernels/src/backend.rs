//! The MTTKRP backend abstraction.
//!
//! CPD-ALS (and the examples/benchmarks) only need "give me the MTTKRP of
//! this tensor for this mode"; *how* it is produced — CPU reference, the
//! ParTI baseline on the simulated GPU, or the full ScalFrag pipeline — is
//! a backend. The GPU-backed implementations live in `scalfrag-core`.

use crate::factors::FactorSet;
use crate::reference;
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

/// Anything that can compute a mode-`n` MTTKRP.
pub trait MttkrpBackend {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Computes `M = X₍ₙ₎ (⊙_{m≠n} A⁽ᵐ⁾)` — Equation (4).
    fn mttkrp(&mut self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat;
}

/// Sequential CPU reference backend.
pub struct CpuSequentialBackend;

impl MttkrpBackend for CpuSequentialBackend {
    fn name(&self) -> &'static str {
        "cpu-seq"
    }

    fn mttkrp(&mut self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
        reference::mttkrp_seq(tensor, factors, mode)
    }
}

/// Rayon-parallel CPU backend.
pub struct CpuParallelBackend;

impl MttkrpBackend for CpuParallelBackend {
    fn name(&self) -> &'static str {
        "cpu-par"
    }

    fn mttkrp(&mut self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
        reference::mttkrp_par(tensor, factors, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree() {
        let t = CooTensor::random_uniform(&[20, 15, 10], 500, 1);
        let f = FactorSet::random(&[20, 15, 10], 8, 2);
        let a = CpuSequentialBackend.mttkrp(&t, &f, 1);
        let b = CpuParallelBackend.mttkrp(&t, &f, 1);
        assert!(a.max_abs_diff(&b) < 1e-3);
        assert_eq!(CpuSequentialBackend.name(), "cpu-seq");
        assert_eq!(CpuParallelBackend.name(), "cpu-par");
    }
}
