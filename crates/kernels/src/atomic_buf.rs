//! A lock-free `f32` accumulation buffer — the functional equivalent of
//! the `atomicAdd(float*)` the ParTI COO kernel issues on the GPU.
//!
//! The buffer stores IEEE-754 bit patterns in `AtomicU32`s and implements
//! add via a compare-exchange loop, exactly like `atomicAdd` is specified
//! on hardware without native float atomics. This lets the simulated
//! kernels run data-race-free under rayon while keeping the same update
//! semantics (including non-deterministic summation order, which the tests
//! account for with tolerances).

use std::sync::atomic::{AtomicU32, Ordering};

/// A shared buffer of atomically-accumulable `f32`s.
pub struct AtomicF32Buffer {
    bits: Vec<AtomicU32>,
}

impl AtomicF32Buffer {
    /// Creates a zero-initialised buffer of `len` floats.
    pub fn new(len: usize) -> Self {
        let mut bits = Vec::with_capacity(len);
        bits.resize_with(len, || AtomicU32::new(0f32.to_bits()));
        Self { bits }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Atomically adds `v` to element `i` (the `atomicAdd` loop).
    #[inline]
    pub fn add(&self, i: usize, v: f32) {
        let cell = &self.bits[i];
        let mut current = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(current) + v).to_bits();
            match cell.compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Non-atomic read of element `i` (call after parallel phase ends).
    pub fn get(&self, i: usize) -> f32 {
        f32::from_bits(self.bits[i].load(Ordering::Acquire))
    }

    /// Snapshots the whole buffer into a `Vec<f32>`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.bits.iter().map(|b| f32::from_bits(b.load(Ordering::Acquire))).collect()
    }

    /// Resets every element to zero.
    pub fn reset(&self) {
        let zero = 0f32.to_bits();
        for b in &self.bits {
            b.store(zero, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn sequential_adds_accumulate() {
        let buf = AtomicF32Buffer::new(4);
        buf.add(1, 2.5);
        buf.add(1, 0.5);
        buf.add(3, -1.0);
        assert_eq!(buf.get(0), 0.0);
        assert_eq!(buf.get(1), 3.0);
        assert_eq!(buf.get(3), -1.0);
        assert_eq!(buf.to_vec(), vec![0.0, 3.0, 0.0, -1.0]);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let buf = AtomicF32Buffer::new(8);
        // 10_000 adds of 1.0 spread over 8 slots from many threads: integer
        // values up to 10k are exact in f32, so the result must be exact.
        (0..10_000u32).into_par_iter().for_each(|i| {
            buf.add((i % 8) as usize, 1.0);
        });
        let total: f32 = buf.to_vec().iter().sum();
        assert_eq!(total, 10_000.0);
        assert_eq!(buf.get(0), 1250.0);
    }

    #[test]
    fn reset_zeroes() {
        let buf = AtomicF32Buffer::new(3);
        buf.add(0, 7.0);
        buf.reset();
        assert_eq!(buf.to_vec(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_buffer() {
        let buf = AtomicF32Buffer::new(0);
        assert!(buf.is_empty());
        assert_eq!(buf.to_vec(), Vec::<f32>::new());
    }
}
