//! The ScalFrag tiled MTTKRP kernel (§IV-A).
//!
//! The paper: *"the frequently accessed data in the kernel and intermediate
//! results (e.g., computation result `mvals`, factor matrices `times_mat`)
//! are stored in shared memory to reduce the latency of data accesses."*
//!
//! The simulated kernel reproduces both effects:
//!
//! * **functionally** — entries are processed in block-sized windows of the
//!   mode-sorted segment; each window accumulates same-row partials in a
//!   local buffer (the `mvals` shared-memory tile) and flushes one atomic
//!   add per (row, rank) pair instead of one per (entry, rank) pair;
//! * **in the cost model** — via [`tiled_workload`]'s
//!   `shared_tile_reduction` (fewer global atomics) and higher effective
//!   coalescing (staged `times_mat` reuse), at the price of a shared-memory
//!   request that the occupancy calculator charges against residency.

use crate::atomic_buf::AtomicF32Buffer;
use crate::factors::FactorSet;
use crate::workload::{tiled_smem_bytes, tiled_workload, SegmentStats};
use crate::{partials, simd};
use scalfrag_gpusim::{Gpu, KernelWorkload, LaunchConfig, OpId, StreamId};
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

/// The shared-memory tiled MTTKRP kernel — ScalFrag's compute contribution.
pub struct TiledKernel;

impl TiledKernel {
    /// Kernel name for reports.
    pub const NAME: &'static str = "scalfrag-tiled";

    /// Cost-model workload of this kernel over a segment.
    pub fn workload(stats: &SegmentStats, rank: u32, block: u32) -> KernelWorkload {
        tiled_workload(stats, rank, block)
    }

    /// The launch configuration this kernel needs for a given base config:
    /// same grid/block plus the dynamic shared-memory request for the
    /// `mvals` and `times_mat` tiles.
    pub fn config_with_smem(base: LaunchConfig, rank: u32) -> LaunchConfig {
        LaunchConfig::with_shared(base.grid, base.block, tiled_smem_bytes(rank, base.block))
    }

    /// Functional body. `seg` should be sorted for `mode` (the pipeline's
    /// preprocessing guarantees it); unsorted input is still *correct*,
    /// merely tile-ineffective — matching the real kernel, where sorting is
    /// what makes same-row entries land in the same block.
    pub fn execute(
        seg: &CooTensor,
        factors: &FactorSet,
        mode: usize,
        block: u32,
        out: &AtomicF32Buffer,
    ) {
        let rank = factors.rank();
        assert_eq!(out.len(), seg.dims()[mode] as usize * rank, "output buffer shape mismatch");
        let order = seg.order();
        let nnz = seg.nnz();
        if nnz == 0 {
            return;
        }
        // Window = block size: the functional analogue of one thread
        // block's shared-memory tile. Not thread-derived, so the unit
        // decomposition is pool-size-invariant.
        let window = (block as usize).max(32);

        let units = nnz.div_ceil(window);
        partials::run_units(units, out, |u, list| {
            // The `mvals` tile: partial sums for the row currently being
            // accumulated. Sorted input => row changes are monotone, so a
            // single open row suffices (the shared-memory tile of the
            // real kernel holds one row per warp).
            let mut open_row = usize::MAX;
            let mut mvals = vec![0.0f32; rank];
            let mut acc = vec![0.0f32; rank];

            let flush = |row: usize, mvals: &mut [f32], list: &mut partials::UpdateList| {
                if row != usize::MAX {
                    let base = row * rank;
                    for (f, m) in mvals.iter_mut().enumerate() {
                        if *m != 0.0 {
                            list.push((base + f, *m));
                        }
                        *m = 0.0;
                    }
                }
            };

            for e in u * window..((u + 1) * window).min(nnz) {
                let row = seg.mode_indices(mode)[e] as usize;
                if row != open_row {
                    flush(open_row, &mut mvals, list);
                    open_row = row;
                }
                simd::fill(&mut acc, seg.values()[e]);
                for m in 0..order {
                    if m == mode {
                        continue;
                    }
                    simd::mul_assign(&mut acc, factors.get(m).row(seg.mode_indices(m)[e] as usize));
                }
                simd::add_assign(&mut mvals, &acc);
            }
            flush(open_row, &mut mvals, list);
        });
    }

    /// Enqueues this kernel on the simulated GPU.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        gpu: &mut Gpu,
        stream: StreamId,
        base_config: LaunchConfig,
        seg: Arc<CooTensor>,
        factors: Arc<FactorSet>,
        mode: usize,
        out: Arc<AtomicF32Buffer>,
        label: impl Into<String>,
    ) -> OpId {
        let rank = factors.rank() as u32;
        let config = Self::config_with_smem(base_config, rank);
        let stats = SegmentStats::compute(&seg, mode);
        let workload = Self::workload(&stats, rank, config.block);
        let block = config.block;
        gpu.launch_exec(stream, config, workload, label, move || {
            Self::execute(&seg, &factors, mode, block, &out);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;

    fn run_functional(t: &CooTensor, f: &FactorSet, mode: usize, block: u32) -> Mat {
        let rank = f.rank();
        let out = AtomicF32Buffer::new(t.dims()[mode] as usize * rank);
        TiledKernel::execute(t, f, mode, block, &out);
        Mat::from_vec(t.dims()[mode] as usize, rank, out.to_vec())
    }

    #[test]
    fn matches_reference_sorted_input() {
        let mut t = CooTensor::random_uniform(&[25, 20, 15], 1_500, 1);
        let f = FactorSet::random(&[25, 20, 15], 16, 2);
        for mode in 0..3 {
            t.sort_for_mode(mode);
            let a = run_functional(&t, &f, mode, 256);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-3, "mode {mode}: {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn correct_even_when_unsorted() {
        let t = CooTensor::random_uniform(&[25, 20, 15], 1_000, 3);
        let f = FactorSet::random(&[25, 20, 15], 8, 4);
        let a = run_functional(&t, &f, 0, 128);
        let b = mttkrp_seq(&t, &f, 0);
        assert!(a.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn matches_reference_4way_and_tiny_blocks() {
        let mut t = CooTensor::random_uniform(&[10, 9, 8, 7], 600, 5);
        let f = FactorSet::random(&[10, 9, 8, 7], 4, 6);
        for mode in 0..4 {
            t.sort_for_mode(mode);
            for &block in &[32u32, 64, 1024] {
                let a = run_functional(&t, &f, mode, block);
                let b = mttkrp_seq(&t, &f, mode);
                assert!(a.max_abs_diff(&b) < 1e-3, "mode {mode} block {block}");
            }
        }
    }

    #[test]
    fn empty_segment_is_noop() {
        let t = CooTensor::new(&[5, 5, 5]);
        let f = FactorSet::random(&[5, 5, 5], 4, 0);
        let out = AtomicF32Buffer::new(5 * 4);
        TiledKernel::execute(&t, &f, 0, 256, &out);
        assert!(out.to_vec().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn smem_config_is_attached() {
        let cfg = TiledKernel::config_with_smem(LaunchConfig::new(512, 256), 16);
        assert_eq!(cfg.grid, 512);
        assert_eq!(cfg.block, 256);
        assert_eq!(cfg.shared_mem_per_block, tiled_smem_bytes(16, 256));
        assert!(cfg.shared_mem_per_block > 0);
    }

    #[test]
    fn enqueued_tiled_kernel_matches_reference() {
        let mut t = CooTensor::random_uniform(&[30, 10, 10], 800, 7);
        t.sort_for_mode(0);
        let t = Arc::new(t);
        let f = Arc::new(FactorSet::random(&[30, 10, 10], 8, 8));
        let out = Arc::new(AtomicF32Buffer::new(30 * 8));
        let mut gpu = Gpu::new(scalfrag_gpusim::DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        TiledKernel::enqueue(
            &mut gpu,
            s,
            LaunchConfig::new(128, 128),
            Arc::clone(&t),
            Arc::clone(&f),
            0,
            Arc::clone(&out),
            "tiled",
        );
        gpu.synchronize();
        let m = Mat::from_vec(30, 8, out.to_vec());
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(m.max_abs_diff(&expect) < 1e-3);
    }
}
