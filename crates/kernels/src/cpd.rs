//! CPD-ALS — Algorithm 1 of the paper.
//!
//! Each sweep updates every factor in turn:
//! `V ← *_{m≠n} A⁽ᵐ⁾ᵀA⁽ᵐ⁾` (Hadamard of Grams),
//! `M ← MTTKRP(X, n)` (the expensive step, delegated to a backend),
//! `A⁽ⁿ⁾ ← M · V†`.
//! The fit `1 − ‖X − X̂‖/‖X‖` is tracked per iteration and used for
//! convergence, computed without ever materialising `X̂`.

use crate::backend::MttkrpBackend;
use crate::checkpoint::{FallibleMttkrpBackend, MttkrpFailure, Reliable};
use crate::factors::FactorSet;
use scalfrag_linalg::{gram, hadamard_assign, matmul, pinv_spd, Mat};
use scalfrag_tensor::CooTensor;

/// Options for [`cpd_als`].
#[derive(Clone, Copy, Debug)]
pub struct CpdOptions {
    /// Decomposition rank `F`.
    pub rank: usize,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between sweeps.
    pub tol: f64,
    /// Seed for the random factor initialisation.
    pub seed: u64,
    /// Project factors onto the non-negative orthant after every update
    /// (projected ALS — the standard non-negative CPD heuristic for count
    /// data such as the FROSTT tensors).
    pub nonnegative: bool,
}

impl Default for CpdOptions {
    fn default() -> Self {
        Self { rank: 16, max_iters: 20, tol: 1e-4, seed: 42, nonnegative: false }
    }
}

/// Result of a CPD-ALS run.
#[derive(Clone, Debug)]
pub struct CpdResult {
    /// The fitted factor matrices.
    pub factors: FactorSet,
    /// Fit after each completed sweep (`1 − ‖X−X̂‖/‖X‖`, higher is better).
    pub fits: Vec<f64>,
    /// Number of sweeps executed.
    pub iters: usize,
}

impl CpdResult {
    /// The final fit (0 when no sweep ran).
    pub fn final_fit(&self) -> f64 {
        self.fits.last().copied().unwrap_or(0.0)
    }
}

/// Runs CPD-ALS on `tensor` using `backend` for every MTTKRP.
///
/// # Panics
/// Panics if `opts.rank == 0` or `opts.max_iters == 0`.
pub fn cpd_als(
    tensor: &CooTensor,
    opts: &CpdOptions,
    backend: &mut dyn MttkrpBackend,
) -> CpdResult {
    assert!(opts.rank > 0 && opts.max_iters > 0, "rank and max_iters must be positive");
    let mut factors = FactorSet::random(tensor.dims(), opts.rank, opts.seed);
    let norm_x_sq = tensor_norm_sq(tensor);
    let mut reliable = Reliable(backend);

    let mut fits = Vec::new();
    let mut iters = 0;
    for _sweep in 0..opts.max_iters {
        let fit = als_sweep(tensor, &mut factors, opts, norm_x_sq, &mut reliable)
            .expect("a Reliable backend never fails");
        iters += 1;
        let prev = fits.last().copied();
        fits.push(fit);
        if let Some(p) = prev {
            if (fit - p).abs() < opts.tol {
                break;
            }
        }
    }

    CpdResult { factors, fits, iters }
}

/// `‖X‖²` of the COO tensor in f64.
pub(crate) fn tensor_norm_sq(tensor: &CooTensor) -> f64 {
    tensor.values().iter().map(|&v| (v as f64) * (v as f64)).sum()
}

/// One full ALS sweep: updates every factor in place and returns the fit
/// after the sweep. This is the *shared* sweep body — [`cpd_als`] and
/// [`crate::checkpoint::cpd_als_checkpointed`] both call it, so their
/// trajectories are bitwise identical given identical backend numerics.
///
/// On `Err` the factors may be partially updated (the failed sweep got
/// through some modes); callers that keep going must roll back to a
/// checkpointed copy.
pub(crate) fn als_sweep(
    tensor: &CooTensor,
    factors: &mut FactorSet,
    opts: &CpdOptions,
    norm_x_sq: f64,
    backend: &mut dyn FallibleMttkrpBackend,
) -> Result<f64, MttkrpFailure> {
    let order = tensor.order();
    let mut last_m: Option<Mat> = None;
    for n in 0..order {
        // V = Hadamard product of the other modes' Gram matrices
        // (the accumulator starts at all-ones, the Hadamard identity).
        let mut v = Mat::from_fn(opts.rank, opts.rank, |_, _| 1.0);
        for m in 0..order {
            if m != n {
                hadamard_assign(&mut v, &gram(factors.get(m)));
            }
        }
        let m_out = backend.try_mttkrp(tensor, factors, n)?;
        let mut updated = matmul(&m_out, &pinv_spd(&v));
        assert!(updated.is_finite(), "ALS produced non-finite factors at mode {n}");
        if opts.nonnegative {
            for x in updated.as_mut_slice() {
                if *x < 0.0 {
                    *x = 0.0;
                }
            }
        }
        factors.set(n, updated);
        last_m = Some(m_out);
    }

    // Fit using the last mode's MTTKRP (standard SPLATT trick):
    // <X, X̂> = Σ_{i,f} M(i,f) · A⁽ᴺ⁾(i,f) with the *updated* A⁽ᴺ⁾,
    // ‖X̂‖² = grand sum of *_n Gram(A⁽ⁿ⁾).
    let m_out = last_m.expect("order >= 1");
    let a_last = factors.get(order - 1);
    let inner: f64 =
        m_out.as_slice().iter().zip(a_last.as_slice()).map(|(&m, &a)| m as f64 * a as f64).sum();
    let mut g = Mat::from_fn(opts.rank, opts.rank, |_, _| 1.0);
    for m in 0..order {
        hadamard_assign(&mut g, &gram(factors.get(m)));
    }
    let norm_model_sq: f64 = g.as_slice().iter().map(|&x| x as f64).sum();
    let resid_sq = (norm_x_sq + norm_model_sq - 2.0 * inner).max(0.0);
    Ok(1.0 - (resid_sq.sqrt() / norm_x_sq.sqrt().max(1e-30)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CpuParallelBackend, CpuSequentialBackend};
    use scalfrag_linalg::khatri_rao;

    /// Builds a tensor that is *exactly* rank-`r` by sampling factors and
    /// materialising a subset of entries of the implied dense tensor.
    fn low_rank_tensor(dims: &[u32], rank: usize, seed: u64) -> CooTensor {
        let f = FactorSet::random(dims, rank, seed);
        // Dense entries of X(i,j,k) = Σ_f A(i,f)B(j,f)C(k,f) — take all.
        let mut t = CooTensor::new(dims);
        let (a, b, c) = (f.get(0), f.get(1), f.get(2));
        for i in 0..dims[0] {
            for j in 0..dims[1] {
                for k in 0..dims[2] {
                    let mut v = 0.0f32;
                    for r in 0..rank {
                        v += a[(i as usize, r)] * b[(j as usize, r)] * c[(k as usize, r)];
                    }
                    t.push(&[i, j, k], v);
                }
            }
        }
        t
    }

    #[test]
    fn fits_a_low_rank_tensor_well() {
        let t = low_rank_tensor(&[8, 7, 6], 3, 11);
        let opts = CpdOptions { rank: 3, max_iters: 60, tol: 1e-9, seed: 5, nonnegative: false };
        let res = cpd_als(&t, &opts, &mut CpuSequentialBackend);
        assert!(
            res.final_fit() > 0.95,
            "rank-3 tensor should be recovered, fit = {}",
            res.final_fit()
        );
    }

    #[test]
    fn fit_is_monotone_nondecreasing_modulo_noise() {
        let t = CooTensor::random_uniform(&[15, 12, 10], 600, 3);
        let opts = CpdOptions { rank: 8, max_iters: 12, tol: 0.0, seed: 1, nonnegative: false };
        let res = cpd_als(&t, &opts, &mut CpuSequentialBackend);
        assert_eq!(res.iters, 12);
        for w in res.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-3, "fit regressed: {:?}", res.fits);
        }
    }

    #[test]
    fn converges_early_with_tolerance() {
        // f32 arithmetic leaves ~1e-4 jitter on the fit, so the stopping
        // tolerance must sit above that noise floor. ALS on a problem this
        // small is sensitive to the random init; these seeds avoid the
        // local minima where rank-2 ALS stalls below the fit threshold.
        let t = low_rank_tensor(&[6, 6, 6], 2, 11);
        let opts = CpdOptions { rank: 2, max_iters: 100, tol: 1e-3, seed: 4, nonnegative: false };
        let res = cpd_als(&t, &opts, &mut CpuSequentialBackend);
        assert!(res.iters < 100, "should converge before the cap");
        assert_eq!(res.fits.len(), res.iters);
        assert!(res.final_fit() > 0.99, "fit {}", res.final_fit());
    }

    #[test]
    fn parallel_backend_gives_same_trajectory() {
        let t = CooTensor::random_uniform(&[12, 10, 8], 400, 9);
        let opts = CpdOptions { rank: 4, max_iters: 5, tol: 0.0, seed: 3, nonnegative: false };
        let a = cpd_als(&t, &opts, &mut CpuSequentialBackend);
        let b = cpd_als(&t, &opts, &mut CpuParallelBackend);
        for (x, y) in a.fits.iter().zip(&b.fits) {
            assert!((x - y).abs() < 1e-3, "{:?} vs {:?}", a.fits, b.fits);
        }
    }

    #[test]
    fn nonnegative_projection_keeps_factors_nonnegative() {
        let t = low_rank_tensor(&[7, 6, 5], 2, 31);
        let opts = CpdOptions { rank: 3, max_iters: 15, tol: 0.0, seed: 8, nonnegative: true };
        let res = cpd_als(&t, &opts, &mut CpuSequentialBackend);
        for n in 0..3 {
            assert!(
                res.factors.get(n).as_slice().iter().all(|&x| x >= 0.0),
                "mode {n} has negative entries"
            );
        }
        // The generating factors are non-negative, so projected ALS should
        // still reach a decent fit.
        assert!(res.final_fit() > 0.9, "fit {}", res.final_fit());
    }

    #[test]
    fn works_on_4way_tensors() {
        let t = CooTensor::random_uniform(&[8, 7, 6, 5], 300, 13);
        let opts = CpdOptions { rank: 4, max_iters: 6, tol: 0.0, seed: 4, nonnegative: false };
        let res = cpd_als(&t, &opts, &mut CpuParallelBackend);
        assert_eq!(res.factors.order(), 4);
        assert!(res.final_fit() > 0.0);
        assert!(res.factors.get(0).is_finite());
    }

    #[test]
    fn reconstruction_via_khatri_rao_matches_fit() {
        // Independent check of the fit formula: reconstruct the dense tensor
        // and compare residuals directly.
        let t = low_rank_tensor(&[5, 4, 3], 2, 21);
        let opts = CpdOptions { rank: 2, max_iters: 40, tol: 1e-10, seed: 6, nonnegative: false };
        let res = cpd_als(&t, &opts, &mut CpuSequentialBackend);
        let f = &res.factors;
        // X̂_(0) = A (C ⊙ B)ᵀ with the descending-mode column convention.
        let kr = khatri_rao(f.get(2), f.get(1));
        let xhat = matmul(f.get(0), &kr.transpose());
        let (_, _, xdense) = scalfrag_tensor::matricize::to_dense_matricized(&t, 0);
        let mut resid = 0.0f64;
        let mut norm = 0.0f64;
        for (a, b) in xdense.iter().zip(xhat.as_slice()) {
            resid += ((a - b) as f64).powi(2);
            norm += (*a as f64).powi(2);
        }
        let fit_direct = 1.0 - (resid.sqrt() / norm.sqrt());
        assert!(
            (fit_direct - res.final_fit()).abs() < 1e-2,
            "fit formula {} vs direct {}",
            res.final_fit(),
            fit_direct
        );
    }
}
