//! Tucker decomposition (HOSVD) — the other decomposition ParTI ships
//! ("ParTI supports … SpCPD, sparse Tucker decomposition", §V-A3), built
//! from this crate's SpTTM and the Jacobi eigensolver.
//!
//! The truncated HOSVD computes, per mode, the leading `rₙ` eigenvectors
//! of the Gram matrix `S⁽ⁿ⁾ = X₍ₙ₎ X₍ₙ₎ᵀ` (accumulated sparsely, fiber by
//! fiber), then contracts the tensor with every factor transpose via a
//! TTM chain to obtain the core:
//! `G = X ×₁ U⁽¹⁾ᵀ ×₂ U⁽²⁾ᵀ ⋯ ×_N U⁽ᴺ⁾ᵀ`.
//!
//! Scope note: the eigen-based factor step materialises the `Iₙ × Iₙ`
//! Gram, so this is the *validation-scale* Tucker (mode sizes ≤
//! [`MAX_GRAM_DIM`]) — the same role ParTI's reference Tucker plays;
//! production-scale Tucker needs randomized sketching, which the paper
//! does not evaluate.

use crate::spttm::spttm_par;
use scalfrag_linalg::{jacobi_eigen, JacobiOptions, Mat};
use scalfrag_tensor::{CooTensor, Idx};

/// Mode-size limit for the dense Gram accumulation.
pub const MAX_GRAM_DIM: usize = 4096;

/// The result of a Tucker decomposition.
#[derive(Clone, Debug)]
pub struct TuckerResult {
    /// Orthonormal factor matrices `U⁽ⁿ⁾ ∈ ℝ^{Iₙ × rₙ}`.
    pub factors: Vec<Mat>,
    /// The dense core tensor, row-major over `core_dims`.
    pub core: Vec<f32>,
    /// Core extents `r₁ × … × r_N`.
    pub core_dims: Vec<usize>,
}

impl TuckerResult {
    /// Core value at a multi-index.
    pub fn core_at(&self, idx: &[usize]) -> f32 {
        let mut flat = 0usize;
        for (m, &i) in idx.iter().enumerate() {
            flat = flat * self.core_dims[m] + i;
        }
        self.core[flat]
    }

    /// Frobenius norm of the core (equals `‖X̂‖_F` because the factors are
    /// orthonormal).
    pub fn core_norm(&self) -> f64 {
        self.core.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// Reconstructs the dense tensor `X̂ = G ×₁ U⁽¹⁾ ⋯ ×_N U⁽ᴺ⁾` — tiny
    /// tensors only (validation).
    pub fn reconstruct_dense(&self, dims: &[Idx]) -> Vec<f32> {
        let size: usize = dims.iter().map(|&d| d as usize).product();
        assert!(size <= 1 << 22, "reconstruction only for small tensors");
        let n = dims.len();
        let mut out = vec![0.0f32; size];
        // Iterate all output coordinates; contract against the core.
        let core_size: usize = self.core_dims.iter().product();
        let mut coord = vec![0usize; n];
        for (flat, o) in out.iter_mut().enumerate() {
            let mut rem = flat;
            for m in (0..n).rev() {
                coord[m] = rem % dims[m] as usize;
                rem /= dims[m] as usize;
            }
            let mut acc = 0.0f64;
            let mut cidx = vec![0usize; n];
            for cflat in 0..core_size {
                let mut crem = cflat;
                for m in (0..n).rev() {
                    cidx[m] = crem % self.core_dims[m];
                    crem /= self.core_dims[m];
                }
                let mut w = self.core[cflat] as f64;
                for m in 0..n {
                    w *= self.factors[m][(coord[m], cidx[m])] as f64;
                }
                acc += w;
            }
            *o = acc as f32;
        }
        out
    }
}

/// Sparse accumulation of `S = X₍ₙ₎ X₍ₙ₎ᵀ`: entries sharing a mode-`n`
/// fiber contribute `v·v'` to `S[iₙ, iₙ']`.
fn mode_gram(tensor: &CooTensor, mode: usize) -> Mat {
    let dim = tensor.dims()[mode] as usize;
    assert!(dim <= MAX_GRAM_DIM, "mode {mode} too large ({dim}) for dense Gram");
    let mut sorted = tensor.clone();
    let mut order: Vec<usize> = (0..tensor.order()).filter(|&m| m != mode).collect();
    order.push(mode);
    sorted.sort_by_order(&order);

    let key_at = |e: usize| -> Vec<Idx> {
        order[..order.len() - 1].iter().map(|&m| sorted.mode_indices(m)[e]).collect()
    };
    let mut s = vec![0.0f64; dim * dim];
    let nnz = sorted.nnz();
    let mut start = 0usize;
    while start < nnz {
        let mut end = start + 1;
        while end < nnz && key_at(end) == key_at(start) {
            end += 1;
        }
        for a in start..end {
            let ia = sorted.mode_indices(mode)[a] as usize;
            let va = sorted.values()[a] as f64;
            for b in start..end {
                let ib = sorted.mode_indices(mode)[b] as usize;
                s[ia * dim + ib] += va * sorted.values()[b] as f64;
            }
        }
        start = end;
    }
    Mat::from_fn(dim, dim, |r, c| s[r * dim + c] as f32)
}

/// Truncated HOSVD of `tensor` with per-mode target ranks.
///
/// # Panics
/// Panics if `ranks.len() != order`, any rank is 0 or exceeds its mode
/// size, or a mode exceeds [`MAX_GRAM_DIM`].
pub fn tucker_hosvd(tensor: &CooTensor, ranks: &[usize]) -> TuckerResult {
    let n = tensor.order();
    assert_eq!(ranks.len(), n, "one target rank per mode");
    for (m, &r) in ranks.iter().enumerate() {
        assert!(r > 0 && r <= tensor.dims()[m] as usize, "invalid rank {r} for mode {m}");
    }

    // Factors: leading eigenvectors of the per-mode Gram.
    let factors: Vec<Mat> = (0..n)
        .map(|m| {
            let s = mode_gram(tensor, m);
            let (_, vecs) = jacobi_eigen(&s, JacobiOptions::default());
            Mat::from_fn(s.rows(), ranks[m], |r, c| vecs[(r, c)])
        })
        .collect();

    // Core via the TTM chain (SpTTM keeps intermediates semi-sparse).
    let mut current = tensor.clone();
    for (m, u) in factors.iter().enumerate() {
        let semi = spttm_par(&current, u, m);
        current = semi.to_coo();
    }
    let core_dims: Vec<usize> = ranks.to_vec();
    let core_size: usize = core_dims.iter().product();
    assert!(core_size <= 1 << 24, "core too large");
    let mut core = vec![0.0f32; core_size];
    for e in 0..current.nnz() {
        let c = current.coord(e);
        let mut flat = 0usize;
        for (m, &i) in c.iter().enumerate() {
            flat = flat * core_dims[m] + i as usize;
        }
        core[flat] += current.values()[e];
    }

    TuckerResult { factors, core, core_dims }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_linalg::matmul;

    #[test]
    fn factors_are_orthonormal() {
        let t = CooTensor::random_uniform(&[10, 8, 6], 120, 3);
        let res = tucker_hosvd(&t, &[4, 4, 3]);
        for (m, u) in res.factors.iter().enumerate() {
            let utu = matmul(&u.transpose(), u);
            assert!(
                utu.max_abs_diff(&Mat::identity(utu.rows())) < 1e-3,
                "mode {m} factor not orthonormal"
            );
        }
        assert_eq!(res.core_dims, vec![4, 4, 3]);
    }

    #[test]
    fn full_rank_tucker_reconstructs_exactly() {
        let t = CooTensor::random_uniform(&[6, 5, 4], 50, 7);
        let dims = [6u32, 5, 4];
        let res = tucker_hosvd(&t, &[6, 5, 4]);
        let rec = res.reconstruct_dense(&dims);
        let dense = t.to_dense();
        let mut err = 0.0f64;
        let mut norm = 0.0f64;
        for (a, b) in dense.iter().zip(&rec) {
            err += ((a - b) as f64).powi(2);
            norm += (*a as f64).powi(2);
        }
        assert!(err.sqrt() / norm.sqrt() < 1e-3, "relative error {}", err.sqrt() / norm.sqrt());
    }

    #[test]
    fn truncated_tucker_captures_most_energy() {
        // A tensor with strong low-rank structure compresses well.
        let mut t = CooTensor::new(&[12, 10, 8]);
        for i in 0..12u32 {
            for j in 0..10u32 {
                for k in 0..8u32 {
                    let v = (i as f32 + 1.0) * (j as f32 + 1.0) * 0.1
                        + 0.01 * ((i * 31 + j * 17 + k * 7) % 5) as f32;
                    t.push(&[i, j, k], v);
                }
            }
        }
        let norm_x: f64 = t.values().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
        let res = tucker_hosvd(&t, &[2, 2, 2]);
        // Orthonormal factors: captured energy == core norm.
        assert!(
            res.core_norm() / norm_x > 0.98,
            "rank-(2,2,2) Tucker should capture the structure: {}",
            res.core_norm() / norm_x
        );
    }

    #[test]
    fn truncation_reduces_core_energy_monotonically() {
        let t = CooTensor::random_uniform(&[9, 8, 7], 200, 11);
        let full = tucker_hosvd(&t, &[9, 8, 7]).core_norm();
        let half = tucker_hosvd(&t, &[4, 4, 4]).core_norm();
        let tiny = tucker_hosvd(&t, &[1, 1, 1]).core_norm();
        assert!(full >= half - 1e-6);
        assert!(half >= tiny - 1e-6);
        assert!(tiny > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid rank")]
    fn zero_rank_rejected() {
        let t = CooTensor::random_uniform(&[4, 4, 4], 10, 0);
        let _ = tucker_hosvd(&t, &[0, 2, 2]);
    }
}
