//! CPD factor matrices.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scalfrag_linalg::Mat;
use scalfrag_tensor::Idx;

/// The set of dense factor matrices `A⁽¹⁾ … A⁽ᴺ⁾` of a CPD model: one
/// `Iₙ × F` matrix per tensor mode.
#[derive(Clone, Debug, PartialEq)]
pub struct FactorSet {
    rank: usize,
    mats: Vec<Mat>,
}

impl FactorSet {
    /// Random factors in `[0, 1)` for the given mode sizes — the standard
    /// CPD-ALS initialisation (Algorithm 1's "randomly initialized dense
    /// factor matrices"). Deterministic in `seed`.
    pub fn random(dims: &[Idx], rank: usize, seed: u64) -> Self {
        assert!(rank > 0, "rank must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mats = dims.iter().map(|&d| Mat::random(d as usize, rank, &mut rng)).collect();
        Self { rank, mats }
    }

    /// Builds a factor set from explicit matrices.
    ///
    /// # Panics
    /// Panics if the matrices disagree on the column count or the set is
    /// empty.
    pub fn from_mats(mats: Vec<Mat>) -> Self {
        assert!(!mats.is_empty(), "a factor set needs at least one matrix");
        let rank = mats[0].cols();
        assert!(mats.iter().all(|m| m.cols() == rank), "all factor matrices must share the rank");
        Self { rank, mats }
    }

    /// The CPD rank `F`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.mats.len()
    }

    /// The factor matrix of mode `n`.
    pub fn get(&self, n: usize) -> &Mat {
        &self.mats[n]
    }

    /// Mutable access to the factor matrix of mode `n` (the ALS update).
    pub fn get_mut(&mut self, n: usize) -> &mut Mat {
        &mut self.mats[n]
    }

    /// Replaces the factor matrix of mode `n`.
    ///
    /// # Panics
    /// Panics if the replacement's shape differs.
    pub fn set(&mut self, n: usize, m: Mat) {
        assert_eq!(m.cols(), self.rank, "rank mismatch");
        assert_eq!(m.rows(), self.mats[n].rows(), "mode size mismatch");
        self.mats[n] = m;
    }

    /// Mode sizes of the factor set.
    pub fn dims(&self) -> Vec<Idx> {
        self.mats.iter().map(|m| m.rows() as Idx).collect()
    }

    /// Total bytes of all factor matrices (the resident device footprint).
    pub fn byte_size(&self) -> usize {
        self.mats.iter().map(|m| m.rows() * m.cols() * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_factors_match_dims() {
        let f = FactorSet::random(&[10, 20, 30], 8, 1);
        assert_eq!(f.order(), 3);
        assert_eq!(f.rank(), 8);
        assert_eq!(f.get(1).rows(), 20);
        assert_eq!(f.get(1).cols(), 8);
        assert_eq!(f.dims(), vec![10, 20, 30]);
        assert_eq!(f.byte_size(), (10 + 20 + 30) * 8 * 4);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = FactorSet::random(&[5, 6], 4, 9);
        let b = FactorSet::random(&[5, 6], 4, 9);
        assert_eq!(a, b);
        let c = FactorSet::random(&[5, 6], 4, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn set_replaces_and_checks_shape() {
        let mut f = FactorSet::random(&[5, 6], 4, 0);
        f.set(0, Mat::zeros(5, 4));
        assert_eq!(f.get(0).frob_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn set_rejects_wrong_rank() {
        let mut f = FactorSet::random(&[5, 6], 4, 0);
        f.set(0, Mat::zeros(5, 3));
    }

    #[test]
    #[should_panic(expected = "share the rank")]
    fn from_mats_rejects_mixed_ranks() {
        let _ = FactorSet::from_mats(vec![Mat::zeros(5, 4), Mat::zeros(6, 3)]);
    }
}
