//! Simulated-thread write traces of every MTTKRP kernel, for the gpusim
//! race checker.
//!
//! Each `trace_*` function replays the memory-*write* pattern of the
//! matching `execute` body over the simulated `(grid × block)` thread
//! space of a launch configuration, recording into an
//! [`AccessLog`]. The traces encode each kernel's concurrency claim:
//!
//! * **COO atomic** — one thread per non-zero (grid-stride), `rank`
//!   atomics into the output row. All-atomic, race-free by construction.
//! * **ScalFrag tiled** — one window per thread block; the `mvals` shared
//!   tile is pre-reduced so that rank column `f` is owned by lane
//!   `f % block` (the warp-reduction owner), and that owner lane issues
//!   the single global atomic per (row, column) flush.
//! * **CSF fiber** — one worker per root slice; slices own disjoint
//!   output rows, so stores are *plain* — the checker proves the
//!   "no atomics at all" claim instead of assuming it.
//! * **BCSF heavy/light** — heavy slices: one worker per 256-entry chunk,
//!   atomic flush into the (shared) heavy row; light runs: one worker per
//!   run, plain stores into rows no other worker touches.
//! * **HiCOO block** — one thread block per tensor block; the local tile
//!   word `w` is owned by lane `w % block`, and flushes to global memory
//!   are atomic (different tensor blocks can map to the same output row).
//! * **F-COO segmented reduction** — one block per partition; rows
//!   strictly interior to a partition are plain-stored (exclusively
//!   owned), rows on a partition boundary are combined atomically.
//! * **Balanced segmented-scan** — one worker per fixed-nnz chunk;
//!   interior rows (never cut by a chunk boundary) are plain-stored by
//!   their owning chunk, each chunk's carry-out goes to its *own*
//!   exclusive carry cell as a plain store, and the boundary rows are
//!   written only by the single carry-resolution worker (atomics, since
//!   the output buffer is shared across segments).
//! * **FLYCOO mode-agnostic** — one block per remap partition, same
//!   interior/carry-cell/resolver discipline as the balanced kernel but
//!   walking the mode's remap table instead of sorted storage.
//!
//! [`trace_racy_coo`] is the deliberately-broken mutant: the plain-store
//! version of the COO kernel (the classic forgot-the-atomic bug). The
//! checker must flag it whenever two entries of one output row land on
//! different simulated threads — the self-test in the conformance harness
//! asserts exactly that. [`trace_racy_balanced_carry`] is its
//! segmented-scan sibling: every chunk applies its carry-in/carry-out
//! directly to the shared boundary row with a plain store instead of
//! handing it to its exclusive carry cell — two chunks cut by the same
//! row then plain-write the same words, which the checker must flag.

use crate::bcsf_kernel::HeavyLightSplit;
use scalfrag_gpusim::racecheck::{block_of_item, grid_stride_thread, AccessKind, AccessLog};
use scalfrag_gpusim::{LaunchConfig, SimThread};
use scalfrag_tensor::{ChunkedTensor, CooTensor, CsfTensor, FCooTensor, FlycooTensor, HiCooTensor};

/// Traces the ParTI-style atomic COO kernel: thread-per-entry, `rank`
/// atomics into `out[row·rank ‥ row·rank+rank]`.
pub fn trace_coo(
    seg: &CooTensor,
    mode: usize,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    for e in 0..seg.nnz() {
        let t = grid_stride_thread(e as u64, cfg.grid, cfg.block);
        let base = seg.mode_indices(mode)[e] as usize * rank;
        for f in 0..rank {
            log.global_write(base + f, t, AccessKind::Atomic);
        }
    }
}

/// The racy mutant: identical thread mapping to [`trace_coo`], but plain
/// stores instead of atomics. Any row populated by entries that map to
/// two different threads is a lost-update race.
pub fn trace_racy_coo(
    seg: &CooTensor,
    mode: usize,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    for e in 0..seg.nnz() {
        let t = grid_stride_thread(e as u64, cfg.grid, cfg.block);
        let base = seg.mode_indices(mode)[e] as usize * rank;
        for f in 0..rank {
            log.global_write(base + f, t, AccessKind::PlainWrite);
        }
    }
}

/// Traces the ScalFrag tiled kernel: one block-sized window per thread
/// block, shared-tile pre-reduction owned per rank column, one atomic
/// flush per (row, column) by the owning lane.
pub fn trace_tiled(
    seg: &CooTensor,
    mode: usize,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    let window = (cfg.block as usize).max(32);
    let nnz = seg.nnz();
    let mut w = 0u64;
    let mut start = 0usize;
    while start < nnz {
        let end = (start + window).min(nnz);
        let block = block_of_item(w, cfg.grid);
        for f in 0..rank {
            // Column f of the mvals tile is reduced into by its owner lane
            // (post-__syncthreads(), in the real kernel).
            let owner = SimThread { block, thread: f as u32 % cfg.block };
            log.shared_write(block, f, owner, AccessKind::PlainWrite);
        }
        // One flush per distinct row in the window, per rank column, by
        // the column's owner lane — atomics, because the row may continue
        // in the next window / another block.
        let idx = seg.mode_indices(mode);
        let mut open = u32::MAX;
        for &row in &idx[start..end] {
            if row != open {
                open = row;
                let base = open as usize * rank;
                for f in 0..rank {
                    let owner = SimThread { block, thread: f as u32 % cfg.block };
                    log.global_write(base + f, owner, AccessKind::Atomic);
                }
            }
        }
        start = end;
        w += 1;
    }
}

/// Traces the CSF fiber-parallel kernel: worker-per-slice, *plain* stores
/// into the slice's own output row — the checker proves rows are disjoint.
pub fn trace_csf(csf: &CsfTensor, rank: usize, cfg: LaunchConfig, log: &mut AccessLog) {
    for s in 0..csf.num_slices() {
        let t = grid_stride_thread(s as u64, cfg.grid, cfg.block);
        let base = csf.fids(0)[s] as usize * rank;
        for f in 0..rank {
            log.global_write(base + f, t, AccessKind::PlainWrite);
        }
    }
}

/// Traces the BCSF heavy/light kernel over a mode-sorted tensor.
pub fn trace_bcsf(
    seg: &CooTensor,
    mode: usize,
    split: &HeavyLightSplit,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    let idx = seg.mode_indices(mode);
    let mut item = 0u64;
    // Heavy slices: each 256-entry chunk is one worker; all of them flush
    // the same row, so the flush must be atomic.
    for r in &split.heavy {
        let base = idx[r.start] as usize * rank;
        let mut chunk_start = r.start;
        while chunk_start < r.end {
            let t = grid_stride_thread(item, cfg.grid, cfg.block);
            item += 1;
            for f in 0..rank {
                log.global_write(base + f, t, AccessKind::Atomic);
            }
            chunk_start += 256;
        }
    }
    // Light runs: one worker per run; the run's slices belong to no other
    // worker, so plain stores suffice.
    for r in &split.light_runs {
        let t = grid_stride_thread(item, cfg.grid, cfg.block);
        item += 1;
        let mut open = u32::MAX;
        for e in r.clone() {
            if idx[e] != open {
                open = idx[e];
                let base = open as usize * rank;
                for f in 0..rank {
                    log.global_write(base + f, t, AccessKind::PlainWrite);
                }
            }
        }
    }
}

/// Traces the HiCOO block kernel: thread-block-per-tensor-block, local
/// tile words owned per lane, atomic global flushes (blocks sharing a
/// slice of output rows is the norm).
pub fn trace_hicoo(
    hicoo: &HiCooTensor,
    mode: usize,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    let edge = hicoo.block_edge() as usize;
    for (k, b) in hicoo.blocks().iter().enumerate() {
        let block = block_of_item(k as u64, cfg.grid);
        let row_base = (b.bidx[mode] as usize) << hicoo.block_edge().trailing_zeros();
        let mut touched = vec![false; edge];
        for e in b.start..b.end {
            let coord = hicoo.coord_in(b, e);
            let local = coord[mode] as usize - row_base;
            touched[local] = true;
            for f in 0..rank {
                let word = local * rank + f;
                let owner = SimThread { block, thread: (word % cfg.block as usize) as u32 };
                log.shared_write(block, word, owner, AccessKind::PlainWrite);
            }
        }
        for (local, &hit) in touched.iter().enumerate() {
            if hit {
                let base = (row_base + local) * rank;
                for f in 0..rank {
                    let word = local * rank + f;
                    let owner = SimThread { block, thread: (word % cfg.block as usize) as u32 };
                    log.global_write(base + f, owner, AccessKind::Atomic);
                }
            }
        }
    }
}

/// Traces the F-COO segmented-reduction kernel: block-per-partition,
/// plain stores for rows wholly inside the partition, atomic combination
/// for the partition's first and last rows (which may straddle a
/// neighbouring partition).
pub fn trace_fcoo(fcoo: &FCooTensor, rank: usize, cfg: LaunchConfig, log: &mut AccessLog) {
    for p in 0..fcoo.num_partitions() {
        let range = fcoo.partition_range(p);
        if range.is_empty() {
            continue;
        }
        let block = block_of_item(p as u64, cfg.grid);
        let t = SimThread { block, thread: 0 };
        let first = fcoo.row(range.start) as usize;
        let last = fcoo.row(range.end - 1) as usize;
        let mut open = usize::MAX;
        for e in range {
            let row = fcoo.row(e) as usize;
            if row != open {
                open = row;
                let kind = if row == first || row == last {
                    AccessKind::Atomic
                } else {
                    AccessKind::PlainWrite
                };
                let base = row * rank;
                for f in 0..rank {
                    log.global_write(base + f, t, kind);
                }
            }
        }
    }
}

/// Traces the load-balanced segmented-scan kernel over a chunked tensor:
/// one worker per fixed-nnz chunk. Rows wholly inside a chunk are
/// plain-stored by that chunk's worker (exclusive ownership); a chunk
/// whose entry stream continues into its successor hands its partial row
/// off through its *own* carry cell (one plain-stored word range per
/// chunk, single writer by construction); the cut rows themselves are
/// written only by the dedicated carry-resolution worker, atomically.
/// Carry cells live past the output rows at `dims[mode]·rank`.
pub fn trace_balanced(
    chunked: &ChunkedTensor,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    let carry_base = chunked.dims()[chunked.mode()] as usize * rank;
    for c in 0..chunked.num_chunks() {
        let range = chunked.chunk_range(c);
        let t = SimThread { block: block_of_item(c as u64, cfg.grid), thread: 0 };
        let head_cut = chunked.chunk_continues(c);
        let tail_cut = chunked.chunk_continues(c + 1);
        let mut open = u32::MAX;
        for e in range.clone() {
            let row = chunked.row(e);
            if row == open {
                continue;
            }
            open = row;
            let run_starts_at_head = e == range.start && head_cut;
            let run_ends_at_tail = chunked.row(range.end - 1) == row && tail_cut;
            if run_starts_at_head || run_ends_at_tail {
                // Cut row: the partial goes to the chunk's carry cell,
                // never to the shared output row.
                continue;
            }
            let base = row as usize * rank;
            for f in 0..rank {
                log.global_write(base + f, t, AccessKind::PlainWrite);
            }
        }
        if head_cut || tail_cut {
            let cell = carry_base + c * rank;
            for f in 0..rank {
                log.global_write(cell + f, t, AccessKind::PlainWrite);
            }
        }
    }
    // The carry-resolution worker is the only writer of the cut rows.
    let resolver = SimThread { block: 0, thread: 0 };
    for b in chunked.boundary_rows() {
        let base = b.row as usize * rank;
        for f in 0..rank {
            log.global_write(base + f, resolver, AccessKind::Atomic);
        }
    }
}

/// The racy segmented-scan mutant: instead of handing partials to
/// exclusive carry cells and letting one resolver write each cut row,
/// every chunk applies its carry directly to the shared boundary row with
/// a plain store. Two chunks cut by the same row then plain-write the
/// same words from different simulated threads — a lost-update race the
/// checker must flag.
pub fn trace_racy_balanced_carry(
    chunked: &ChunkedTensor,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    for c in 0..chunked.num_chunks() {
        let range = chunked.chunk_range(c);
        let t = SimThread { block: block_of_item(c as u64, cfg.grid), thread: 0 };
        let mut open = u32::MAX;
        for e in range {
            let row = chunked.row(e);
            if row == open {
                continue;
            }
            open = row;
            let base = row as usize * rank;
            for f in 0..rank {
                log.global_write(base + f, t, AccessKind::PlainWrite);
            }
        }
    }
}

/// Traces the FLYCOO mode-agnostic kernel: one block per remap partition,
/// with the same interior/carry-cell/resolver write discipline as
/// [`trace_balanced`] — only the iteration order (the mode's remap table)
/// differs.
pub fn trace_flycoo(
    fly: &FlycooTensor,
    mode: usize,
    rank: usize,
    cfg: LaunchConfig,
    log: &mut AccessLog,
) {
    let carry_base = fly.dims()[mode] as usize * rank;
    for p in 0..fly.num_partitions() {
        let range = fly.partition_range(p);
        if range.is_empty() {
            continue;
        }
        let t = SimThread { block: block_of_item(p as u64, cfg.grid), thread: 0 };
        let head_cut = fly.partition_continues(mode, p);
        let tail_cut = fly.partition_continues(mode, p + 1);
        let mut open = u32::MAX;
        for k in range.clone() {
            let row = fly.row_at(mode, k);
            if row == open {
                continue;
            }
            open = row;
            let run_starts_at_head = k == range.start && head_cut;
            let run_ends_at_tail = fly.row_at(mode, range.end - 1) == row && tail_cut;
            if run_starts_at_head || run_ends_at_tail {
                continue;
            }
            let base = row as usize * rank;
            for f in 0..rank {
                log.global_write(base + f, t, AccessKind::PlainWrite);
            }
        }
        if head_cut || tail_cut {
            let cell = carry_base + p * rank;
            for f in 0..rank {
                log.global_write(cell + f, t, AccessKind::PlainWrite);
            }
        }
    }
    let resolver = SimThread { block: 0, thread: 0 };
    for b in fly.boundary_rows(mode) {
        let base = b.row as usize * rank;
        for f in 0..rank {
            log.global_write(base + f, resolver, AccessKind::Atomic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BcsfKernel;
    use scalfrag_tensor::gen;

    fn sorted(mode: usize) -> CooTensor {
        let mut t = gen::zipf_slices(&[40, 30, 20], 2_000, 1.0, 7);
        t.sort_for_mode(mode);
        t
    }

    #[test]
    fn coo_trace_is_race_free_and_mutant_is_not() {
        let t = sorted(0);
        let cfg = LaunchConfig::new(4, 64);
        let mut clean = AccessLog::new();
        trace_coo(&t, 0, 8, cfg, &mut clean);
        assert!(clean.check().is_race_free());

        let mut racy = AccessLog::new();
        trace_racy_coo(&t, 0, 8, cfg, &mut racy);
        let report = racy.check();
        assert!(!report.is_race_free(), "the plain-store mutant must be caught");
    }

    #[test]
    fn all_real_kernel_traces_are_race_free() {
        let mode = 0;
        let t = sorted(mode);
        let rank = 8;
        let cfg = LaunchConfig::new(8, 64);

        let mut log = AccessLog::new();
        trace_tiled(&t, mode, rank, cfg, &mut log);
        assert!(log.check().is_race_free(), "tiled: {}", log.check().summary());

        let mut log = AccessLog::new();
        trace_csf(&CsfTensor::from_coo(&t, mode), rank, cfg, &mut log);
        assert!(log.check().is_race_free(), "csf: {}", log.check().summary());

        let mut log = AccessLog::new();
        let split = BcsfKernel::split(&t, mode, 64);
        trace_bcsf(&t, mode, &split, rank, cfg, &mut log);
        assert!(log.check().is_race_free(), "bcsf: {}", log.check().summary());

        let mut log = AccessLog::new();
        trace_hicoo(&HiCooTensor::from_coo(&t, 3), mode, rank, cfg, &mut log);
        assert!(log.check().is_race_free(), "hicoo: {}", log.check().summary());

        let mut log = AccessLog::new();
        trace_fcoo(&FCooTensor::from_coo(&t, mode, 64), rank, cfg, &mut log);
        assert!(log.check().is_race_free(), "fcoo: {}", log.check().summary());
    }

    #[test]
    fn balanced_trace_is_race_free_and_carry_mutant_is_not() {
        let t = gen::zipf_slices(&[40, 30, 20], 2_000, 1.0, 7);
        let cfg = LaunchConfig::new(8, 64);
        for chunk_len in [32usize, 128, 4096] {
            let c = ChunkedTensor::from_coo(&t, 0, chunk_len);
            let mut clean = AccessLog::new();
            trace_balanced(&c, 8, cfg, &mut clean);
            assert!(
                clean.check().is_race_free(),
                "chunk_len {chunk_len}: {}",
                clean.check().summary()
            );
        }
        // 2 000 nnz over 40 slices: average run ≫ 32, so chunk boundaries
        // must cut rows — the precondition for the mutant to race.
        let c = ChunkedTensor::from_coo(&t, 0, 32);
        assert!(!c.boundary_rows().is_empty(), "fixture must produce cut rows");
        let mut racy = AccessLog::new();
        trace_racy_balanced_carry(&c, 8, cfg, &mut racy);
        assert!(!racy.check().is_race_free(), "plain-store carry application must be caught");
    }

    #[test]
    fn flycoo_trace_is_race_free_for_every_mode() {
        let t = gen::zipf_slices(&[40, 30, 20], 2_000, 1.0, 7);
        let f = FlycooTensor::from_coo(&t, 64);
        let cfg = LaunchConfig::new(8, 64);
        for mode in 0..3 {
            let mut log = AccessLog::new();
            trace_flycoo(&f, mode, 8, cfg, &mut log);
            assert!(log.check().is_race_free(), "mode {mode}: {}", log.check().summary());
        }
    }

    #[test]
    fn empty_tensor_traces_cleanly() {
        let t = CooTensor::new(&[5, 5, 5]);
        let cfg = LaunchConfig::new(2, 32);
        let mut log = AccessLog::new();
        trace_coo(&t, 0, 4, cfg, &mut log);
        trace_tiled(&t, 0, 4, cfg, &mut log);
        assert!(log.is_empty());
        assert!(log.check().is_race_free());
    }
}
