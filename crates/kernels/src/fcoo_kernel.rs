//! The F-COO segmented-reduction kernel (Liu et al.) — the atomic-free
//! COO-family alternative of §II-D.
//!
//! Each partition of the F-COO tensor is processed by one block: entries
//! are multiplied and *segment-scanned* using the start flags, so every
//! output row receives exactly one write per partition that touches it,
//! and at most one cross-partition combination at each boundary (instead
//! of `rank` atomics per entry as in the plain COO kernel).

use crate::atomic_buf::AtomicF32Buffer;
use crate::factors::FactorSet;
use crate::workload::SegmentStats;
use crate::{partials, simd};
use scalfrag_gpusim::{Gpu, KernelWorkload, LaunchConfig, OpId, StreamId};
use scalfrag_tensor::FCooTensor;
use std::sync::Arc;

/// The flag-based segmented-reduction MTTKRP kernel.
pub struct FCooKernel;

impl FCooKernel {
    /// Kernel name for reports.
    pub const NAME: &'static str = "fcoo-segreduce";

    /// Cost-model workload: no atomics; instead one combining write per
    /// row-per-partition, a small flag-read overhead, and slightly higher
    /// per-item instruction cost (the scan).
    pub fn workload(stats: &SegmentStats, rank: u32, num_partitions: u64) -> KernelWorkload {
        KernelWorkload {
            work_items: stats.nnz,
            flops: stats.flops(rank),
            // Indices (one fewer mode than COO), values, factor rows, flags.
            bytes_read: stats.bytes_read(rank) - stats.nnz * 4 + stats.nnz / 8,
            // One rank-row write per (row, partition) pair; bounded by one
            // per partition plus one per distinct row.
            bytes_written: (num_partitions + stats.nnz / stats.avg_nnz_per_slice.max(1.0) as u64)
                * rank as u64
                * 4,
            atomic_ops: num_partitions * rank as u64, // boundary combinations
            atomic_hotness: 0.0,
            coalescing: 0.45,
            regs_per_thread: 48,
            shared_tile_reduction: 1.0,
            item_cycles: (rank * (stats.order + 2)) as f64 * 2.0,
        }
    }

    /// Functional body: per-partition segmented reduction. Output rows can
    /// straddle partitions, so boundary flushes use the shared atomic
    /// buffer (one combination per boundary — the F-COO invariant).
    pub fn execute(fcoo: &FCooTensor, factors: &FactorSet, out: &AtomicF32Buffer) {
        let rank = factors.rank();
        let mode = fcoo.mode();
        assert_eq!(out.len(), fcoo.dims()[mode] as usize * rank, "output buffer shape mismatch");
        if fcoo.nnz() == 0 {
            return;
        }

        // One unit per F-COO partition, applied in partition order.
        partials::run_units(fcoo.num_partitions(), out, |p, list| {
            let range = fcoo.partition_range(p);
            let mut acc = vec![0.0f32; rank];
            let mut prod = vec![0.0f32; rank];
            let mut open_row = fcoo.row(range.start) as usize;

            for e in range {
                let row = fcoo.row(e) as usize;
                if row != open_row {
                    debug_assert!(fcoo.starts_row(e), "rows change only at start flags");
                    flush(list, open_row, rank, &mut acc);
                    open_row = row;
                }
                simd::fill(&mut prod, fcoo.values()[e]);
                for (k, _) in fcoo.other_modes().iter().enumerate() {
                    let m = fcoo.other_modes()[k];
                    simd::mul_assign(
                        &mut prod,
                        factors.get(m).row(fcoo.other_indices(k)[e] as usize),
                    );
                }
                simd::add_assign(&mut acc, &prod);
            }
            flush(list, open_row, rank, &mut acc);
        });

        fn flush(list: &mut crate::partials::UpdateList, row: usize, rank: usize, acc: &mut [f32]) {
            let base = row * rank;
            for (f, a) in acc.iter_mut().enumerate() {
                if *a != 0.0 {
                    list.push((base + f, *a));
                }
                *a = 0.0;
            }
        }
    }

    /// Enqueues this kernel on the simulated GPU.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        coo_stats: &SegmentStats,
        fcoo: Arc<FCooTensor>,
        factors: Arc<FactorSet>,
        out: Arc<AtomicF32Buffer>,
        label: impl Into<String>,
    ) -> OpId {
        let workload =
            Self::workload(coo_stats, factors.rank() as u32, fcoo.num_partitions() as u64);
        gpu.launch_exec(stream, config, workload, label, move || {
            Self::execute(&fcoo, &factors, &out);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;
    use scalfrag_tensor::CooTensor;

    fn run(t: &CooTensor, f: &FactorSet, mode: usize, seg_len: usize) -> Mat {
        let fcoo = FCooTensor::from_coo(t, mode, seg_len);
        let rank = f.rank();
        let out = AtomicF32Buffer::new(t.dims()[mode] as usize * rank);
        FCooKernel::execute(&fcoo, f, &out);
        Mat::from_vec(t.dims()[mode] as usize, rank, out.to_vec())
    }

    #[test]
    fn matches_reference_across_modes_and_seg_lens() {
        let t = CooTensor::random_uniform(&[25, 20, 15], 1_200, 1);
        let f = FactorSet::random(&[25, 20, 15], 8, 2);
        for mode in 0..3 {
            for seg_len in [1usize, 7, 64, 4096] {
                let a = run(&t, &f, mode, seg_len);
                let b = mttkrp_seq(&t, &f, mode);
                assert!(
                    a.max_abs_diff(&b) < 1e-3,
                    "mode {mode} seg {seg_len}: {}",
                    a.max_abs_diff(&b)
                );
            }
        }
    }

    #[test]
    fn matches_reference_4way() {
        let t = CooTensor::random_uniform(&[10, 9, 8, 7], 500, 3);
        let f = FactorSet::random(&[10, 9, 8, 7], 4, 4);
        for mode in 0..4 {
            let a = run(&t, &f, mode, 37);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-3, "mode {mode}");
        }
    }

    #[test]
    fn workload_has_few_atomics() {
        let t = CooTensor::random_uniform(&[100, 80, 60], 10_000, 5);
        let stats = SegmentStats::compute(&t, 0);
        let w = FCooKernel::workload(&stats, 16, 40);
        let coo_w = crate::workload::coo_atomic_workload(&stats, 16);
        assert!(w.atomic_ops < coo_w.atomic_ops / 100);
        assert_eq!(w.atomic_hotness, 0.0);
    }

    #[test]
    fn enqueue_runs() {
        let t = CooTensor::random_uniform(&[20, 15, 10], 400, 7);
        let f = Arc::new(FactorSet::random(&[20, 15, 10], 4, 8));
        let stats = SegmentStats::compute(&t, 0);
        let fcoo = Arc::new(FCooTensor::from_coo(&t, 0, 64));
        let out = Arc::new(AtomicF32Buffer::new(20 * 4));
        let mut gpu = Gpu::new(scalfrag_gpusim::DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        FCooKernel::enqueue(
            &mut gpu,
            s,
            LaunchConfig::new(64, 64),
            &stats,
            fcoo,
            Arc::clone(&f),
            Arc::clone(&out),
            "fcoo",
        );
        gpu.synchronize();
        let m = Mat::from_vec(20, 4, out.to_vec());
        assert!(m.max_abs_diff(&mttkrp_seq(&t, &f, 0)) < 1e-3);
    }

    #[test]
    fn empty_tensor_is_noop() {
        let t = CooTensor::new(&[5, 5, 5]);
        let f = FactorSet::random(&[5, 5, 5], 4, 0);
        let fcoo = FCooTensor::from_coo(&t, 0, 16);
        let out = AtomicF32Buffer::new(5 * 4);
        FCooKernel::execute(&fcoo, &f, &out);
        assert!(out.to_vec().iter().all(|&x| x == 0.0));
    }
}
