//! Submission-order folding of per-unit partials — the discipline that
//! lets the kernels run on the work-stealing pool without moving a single
//! output bit.
//!
//! A kernel splits its entries into **units** (fixed windows, blocks,
//! partitions — never a function of the thread count), and each unit
//! records the `out.add(index, value)` calls it *would* have made into a
//! private [`UpdateList`]. [`run_units`] executes the units on the
//! `scalfrag-host` pool and then applies the lists **in unit order** from
//! one thread. Because the sequential rayon shim also executed units in
//! submission order, the applied add sequence is *identical* to the
//! pre-pool sequential kernels — which is why the golden cluster output
//! checksum (a hash of output value bits) survives the pool at every
//! thread count.

use crate::atomic_buf::AtomicF32Buffer;

/// The `out.add` calls one unit produces, in the order it produced them:
/// `(flat output index, addend)`.
pub type UpdateList = Vec<(usize, f32)>;

/// Runs `unit(u, &mut list)` for every `u in 0..num_units` on the host
/// pool and applies every recorded update to `out` in unit order.
///
/// At an effective thread count of 1 the units run inline and each list
/// is applied as soon as its unit finishes — same order, no buffering —
/// so the sequential path keeps its flat memory profile and stays the
/// bit-reference the parallel path must reproduce.
pub fn run_units<F>(num_units: usize, out: &AtomicF32Buffer, unit: F)
where
    F: Fn(usize, &mut UpdateList) + Sync,
{
    if scalfrag_host::current_num_threads() <= 1 || num_units <= 1 {
        let mut list = UpdateList::new();
        for u in 0..num_units {
            list.clear();
            unit(u, &mut list);
            apply(out, &list);
        }
        return;
    }
    let lists = scalfrag_host::par_map(num_units, |u| {
        let mut list = UpdateList::new();
        unit(u, &mut list);
        list
    });
    for list in &lists {
        apply(out, list);
    }
}

fn apply(out: &AtomicF32Buffer, list: &UpdateList) {
    for &(index, value) in list {
        out.add(index, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_updates_in_unit_order_at_every_thread_count() {
        // f32 addition is not associative: applying unit partials out of
        // order would move bits on this payload (1e8 absorbs small adds
        // one at a time but not pre-summed).
        let golden = scalfrag_host::with_threads(1, run_case);
        for threads in [2usize, 4, 8] {
            let got = scalfrag_host::with_threads(threads, run_case);
            assert_eq!(golden, got, "{threads} threads moved bits");
        }
    }

    fn run_case() -> Vec<u32> {
        let out = AtomicF32Buffer::new(4);
        run_units(64, &out, |u, list| {
            let x = if u == 0 { 1e8 } else { 5.0 };
            list.push((u % 4, x));
            list.push(((u + 1) % 4, x * 0.5));
        });
        out.to_vec().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn zero_units_is_a_noop() {
        let out = AtomicF32Buffer::new(2);
        run_units(0, &out, |_, _| panic!("no units to run"));
        assert_eq!(out.to_vec(), vec![0.0, 0.0]);
    }
}
