//! A BCSF-style load-balanced kernel (Nisa et al., IPDPS'19 — cited in
//! §II-D as the CSF variant that "mainly optimize[s] the load imbalance
//! issue of CSF format").
//!
//! The plain CSF fiber-parallel kernel assigns one worker per slice, so a
//! Zipf-headed tensor serialises on its heaviest slice. BCSF splits the
//! slices by population:
//!
//! * **heavy slices** (population ≥ threshold) are processed
//!   *entry-parallel* with atomic accumulation into their row — many
//!   workers cooperate on one output row;
//! * **light slices** keep the one-worker-per-slice scheme with plain
//!   writes.
//!
//! Functionally both halves land in the same output buffer; the cost
//! model reflects the balance repair through `work_items` (heavy entries
//! spread across workers) and a shortened per-worker serial chain.

use crate::atomic_buf::AtomicF32Buffer;
use crate::factors::FactorSet;
use crate::workload::SegmentStats;
use crate::{partials, simd};
use scalfrag_gpusim::KernelWorkload;
use scalfrag_tensor::CooTensor;

/// Entries per heavy-slice pre-reduction chunk (one CTA's worth).
const HEAVY_CHUNK: usize = 256;

/// The heavy/light split kernel over a mode-sorted COO tensor.
pub struct BcsfKernel;

/// The heavy/light partition of a tensor's slices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeavyLightSplit {
    /// Entry ranges (over the mode-sorted tensor) of heavy slices.
    pub heavy: Vec<std::ops::Range<usize>>,
    /// Entry ranges of contiguous *runs* of light slices.
    pub light_runs: Vec<std::ops::Range<usize>>,
    /// Population threshold used.
    pub threshold: u32,
}

impl BcsfKernel {
    /// Kernel name for reports.
    pub const NAME: &'static str = "bcsf-heavy-light";

    /// Partitions a *mode-sorted* tensor's slices into heavy singletons and
    /// runs of light slices.
    ///
    /// # Panics
    /// Panics if the tensor is not sorted for `mode`.
    pub fn split(tensor: &CooTensor, mode: usize, threshold: u32) -> HeavyLightSplit {
        assert!(
            tensor.is_sorted_by_order(&tensor.mode_order(mode)),
            "BCSF split requires a mode-sorted tensor"
        );
        let idx = tensor.mode_indices(mode);
        let nnz = tensor.nnz();
        let mut heavy = Vec::new();
        let mut light_runs = Vec::new();
        let mut e = 0usize;
        let mut light_start: Option<usize> = None;
        while e < nnz {
            let row = idx[e];
            let mut end = e + 1;
            while end < nnz && idx[end] == row {
                end += 1;
            }
            if (end - e) as u32 >= threshold {
                if let Some(ls) = light_start.take() {
                    light_runs.push(ls..e);
                }
                heavy.push(e..end);
            } else if light_start.is_none() {
                light_start = Some(e);
            }
            e = end;
        }
        if let Some(ls) = light_start {
            light_runs.push(ls..nnz);
        }
        HeavyLightSplit { heavy, light_runs, threshold }
    }

    /// Cost-model workload: heavy entries are spread entry-parallel, so the
    /// per-worker serial chain is bounded by the *light* threshold rather
    /// than the heaviest slice; atomics only occur on the heavy rows.
    pub fn workload(stats: &SegmentStats, rank: u32, split: &HeavyLightSplit) -> KernelWorkload {
        let heavy_nnz: u64 = split.heavy.iter().map(|r| r.len() as u64).sum();
        KernelWorkload {
            // Heavy entries parallelise individually; each light run is one
            // work item.
            work_items: heavy_nnz + split.light_runs.len().max(1) as u64,
            flops: stats.flops(rank),
            bytes_read: stats.bytes_read(rank),
            bytes_written: stats.output_bytes(rank),
            atomic_ops: heavy_nnz * rank as u64,
            // Heavy rows are few and hot by construction, but the per-row
            // concurrency is what tiling/cta-reduction absorbs; model the
            // residual contention with the plain hotness of the heavy part.
            atomic_hotness: stats.row_hotness,
            coalescing: 0.5,
            regs_per_thread: 48,
            shared_tile_reduction: 32.0, // CTA-level reduction on heavy rows
            item_cycles: (split.threshold.max(1) * rank * (stats.order + 1)) as f64,
        }
    }

    /// Functional body over a mode-sorted tensor.
    pub fn execute(
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
        split: &HeavyLightSplit,
        out: &AtomicF32Buffer,
    ) {
        let rank = factors.rank();
        assert_eq!(out.len(), tensor.dims()[mode] as usize * rank, "output buffer shape mismatch");
        let order = tensor.order();

        let accumulate = |e: usize, acc: &mut [f32]| {
            simd::fill(acc, tensor.values()[e]);
            for m in 0..order {
                if m == mode {
                    continue;
                }
                simd::mul_assign(acc, factors.get(m).row(tensor.mode_indices(m)[e] as usize));
            }
        };

        // Heavy slices: entry-parallel (chunked so each worker pre-reduces
        // a run before its partial reaches the shared row). The units are
        // the flattened (slice, chunk) pairs in slice-then-chunk order —
        // the exact sequence the sequential path flushed in.
        let heavy_units: Vec<(usize, std::ops::Range<usize>)> = split
            .heavy
            .iter()
            .flat_map(|r| {
                let base = tensor.mode_indices(mode)[r.start] as usize * rank;
                r.clone().step_by(HEAVY_CHUNK).map(move |s| (base, s..(s + HEAVY_CHUNK).min(r.end)))
            })
            .collect();
        partials::run_units(heavy_units.len(), out, |u, list| {
            let (base, ref chunk) = heavy_units[u];
            let mut sum = vec![0.0f32; rank];
            let mut acc = vec![0.0f32; rank];
            for e in chunk.clone() {
                accumulate(e, &mut acc);
                simd::add_assign(&mut sum, &acc);
            }
            for (f, &s) in sum.iter().enumerate() {
                if s != 0.0 {
                    list.push((base + f, s));
                }
            }
        });

        // Light runs: one unit per run, row-local accumulation.
        partials::run_units(split.light_runs.len(), out, |u, list| {
            let r = &split.light_runs[u];
            let mut acc = vec![0.0f32; rank];
            let mut sum = vec![0.0f32; rank];
            let mut open = usize::MAX;
            let flush = |open: usize, sum: &mut [f32], list: &mut partials::UpdateList| {
                let base = open * rank;
                for (f, s) in sum.iter_mut().enumerate() {
                    if *s != 0.0 {
                        list.push((base + f, *s));
                    }
                    *s = 0.0;
                }
            };
            for e in r.clone() {
                let row = tensor.mode_indices(mode)[e] as usize;
                if row != open {
                    if open != usize::MAX {
                        flush(open, &mut sum, list);
                    }
                    open = row;
                }
                accumulate(e, &mut acc);
                simd::add_assign(&mut sum, &acc);
            }
            if open != usize::MAX {
                flush(open, &mut sum, list);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;

    fn skewed(mode: usize) -> CooTensor {
        let mut t = scalfrag_tensor::gen::zipf_slices(&[80, 60, 50], 4_000, 1.2, 5);
        t.sort_for_mode(mode);
        t
    }

    #[test]
    fn split_partitions_all_entries() {
        let t = skewed(0);
        let split = BcsfKernel::split(&t, 0, 100);
        let heavy: usize = split.heavy.iter().map(|r| r.len()).sum();
        let light: usize = split.light_runs.iter().map(|r| r.len()).sum();
        assert_eq!(heavy + light, t.nnz());
        assert!(!split.heavy.is_empty(), "a Zipf head must be heavy");
        // Every heavy range is one slice with >= threshold entries.
        let idx = t.mode_indices(0);
        for r in &split.heavy {
            assert!(r.len() >= 100);
            assert!(idx[r.clone()].iter().all(|&i| i == idx[r.start]));
        }
    }

    #[test]
    fn matches_reference_across_thresholds() {
        for mode in 0..3 {
            let t = skewed(mode);
            let f = FactorSet::random(t.dims(), 8, 9);
            let expect = mttkrp_seq(&t, &f, mode);
            for threshold in [1u32, 16, 64, 100_000] {
                let split = BcsfKernel::split(&t, mode, threshold);
                let out = AtomicF32Buffer::new(t.dims()[mode] as usize * 8);
                BcsfKernel::execute(&t, &f, mode, &split, &out);
                let m = Mat::from_vec(t.dims()[mode] as usize, 8, out.to_vec());
                assert!(
                    m.max_abs_diff(&expect) < 1e-2,
                    "mode {mode} threshold {threshold}: {}",
                    m.max_abs_diff(&expect)
                );
            }
        }
    }

    #[test]
    fn threshold_one_makes_everything_heavy() {
        let t = skewed(0);
        let split = BcsfKernel::split(&t, 0, 1);
        assert!(split.light_runs.is_empty());
        assert_eq!(split.heavy.len(), t.num_nonempty_slices(0));
    }

    #[test]
    fn huge_threshold_makes_everything_light() {
        let t = skewed(0);
        let split = BcsfKernel::split(&t, 0, u32::MAX);
        assert!(split.heavy.is_empty());
        assert_eq!(split.light_runs.len(), 1);
    }

    #[test]
    fn workload_caps_the_serial_chain() {
        let t = skewed(0);
        let stats = SegmentStats::compute(&t, 0);
        let split = BcsfKernel::split(&t, 0, 32);
        let w = BcsfKernel::workload(&stats, 16, &split);
        let csf_w =
            crate::workload::csf_fiber_workload(&stats, 16, t.num_nonempty_slices(0) as u64);
        // BCSF's per-worker chain is bounded by the threshold, far below
        // the CSF kernel's heaviest-slice chain on a skewed tensor.
        assert!(w.item_cycles < csf_w.item_cycles);
        assert!(w.work_items > csf_w.work_items / 4);
    }

    #[test]
    #[should_panic(expected = "mode-sorted")]
    fn unsorted_tensor_rejected() {
        let t = scalfrag_tensor::gen::zipf_slices(&[50, 40, 30], 2_000, 1.0, 7);
        let _ = BcsfKernel::split(&t, 0, 8);
    }
}
