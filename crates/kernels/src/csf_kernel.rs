//! The CSF fiber-parallel kernel — the tree-format alternative (§II-D,
//! BCSF/MM-CSF family). One worker owns each root slice, so output rows
//! are written without atomics; the price is slice-level load imbalance
//! (the issue BCSF exists to fix), which the cost model charges through
//! the per-slice serial chain.

use crate::atomic_buf::AtomicF32Buffer;
use crate::factors::FactorSet;
use crate::reference;
use crate::workload::{csf_fiber_workload, SegmentStats};
use scalfrag_gpusim::{Gpu, KernelWorkload, LaunchConfig, OpId, StreamId};
use scalfrag_tensor::{CooTensor, CsfTensor};
use std::sync::Arc;

/// The slice-parallel CSF MTTKRP kernel.
pub struct CsfFiberKernel;

impl CsfFiberKernel {
    /// Kernel name for reports.
    pub const NAME: &'static str = "csf-fiber";

    /// Cost-model workload for a CSF tree built from a segment with the
    /// given stats.
    pub fn workload(stats: &SegmentStats, rank: u32, num_slices: u64) -> KernelWorkload {
        csf_fiber_workload(stats, rank, num_slices)
    }

    /// Functional body: the rayon slice-parallel CSF walk, accumulated into
    /// the shared output buffer (adds are conflict-free because each slice
    /// owns its row, but the atomic buffer keeps the API uniform).
    pub fn execute(csf: &CsfTensor, factors: &FactorSet, out: &AtomicF32Buffer) {
        let mode = csf.mode_order()[0];
        let rank = factors.rank();
        assert_eq!(out.len(), csf.dims()[mode] as usize * rank, "output buffer shape mismatch");
        let m = reference::mttkrp_csf(csf, factors);
        for r in 0..m.rows() {
            let row = m.row(r);
            let base = r * rank;
            for (f, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    out.add(base + f, v);
                }
            }
        }
    }

    /// Enqueues this kernel on the simulated GPU.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        coo_segment: &CooTensor,
        csf: Arc<CsfTensor>,
        factors: Arc<FactorSet>,
        out: Arc<AtomicF32Buffer>,
        label: impl Into<String>,
    ) -> OpId {
        let mode = csf.mode_order()[0];
        let stats = SegmentStats::compute(coo_segment, mode);
        let workload = Self::workload(&stats, factors.rank() as u32, csf.num_slices() as u64);
        gpu.launch_exec(stream, config, workload, label, move || {
            Self::execute(&csf, &factors, &out);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;

    #[test]
    fn matches_reference_all_modes() {
        let t = CooTensor::random_uniform(&[18, 14, 10], 700, 1);
        let f = FactorSet::random(&[18, 14, 10], 8, 2);
        for mode in 0..3 {
            let csf = CsfTensor::from_coo(&t, mode);
            let out = AtomicF32Buffer::new(t.dims()[mode] as usize * 8);
            CsfFiberKernel::execute(&csf, &f, &out);
            let m = Mat::from_vec(t.dims()[mode] as usize, 8, out.to_vec());
            let expect = mttkrp_seq(&t, &f, mode);
            assert!(m.max_abs_diff(&expect) < 1e-3, "mode {mode}");
        }
    }

    #[test]
    fn enqueue_runs_and_matches() {
        let t = CooTensor::random_uniform(&[20, 12, 8], 500, 3);
        let f = Arc::new(FactorSet::random(&[20, 12, 8], 4, 4));
        let csf = Arc::new(CsfTensor::from_coo(&t, 1));
        let out = Arc::new(AtomicF32Buffer::new(12 * 4));
        let mut gpu = Gpu::new(scalfrag_gpusim::DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        CsfFiberKernel::enqueue(
            &mut gpu,
            s,
            LaunchConfig::new(64, 64),
            &t,
            Arc::clone(&csf),
            Arc::clone(&f),
            Arc::clone(&out),
            "csf",
        );
        let tl = gpu.synchronize();
        assert!(tl.spans[0].duration() > 0.0);
        let m = Mat::from_vec(12, 4, out.to_vec());
        let expect = mttkrp_seq(&t, &f, 1);
        assert!(m.max_abs_diff(&expect) < 1e-3);
    }
}
