//! The HiCOO block-parallel kernel (Li et al., SC'18) — §II-D's blocked
//! COO-family member, which "reduc[es] the memory required to store tensor
//! nonzeros (and hence memory bandwidth conflicts)".
//!
//! One block of threads processes one (or more) HiCOO blocks: the compact
//! `u8` local offsets shrink index traffic, and because a HiCOO block
//! spans at most `2^bits` output rows, partial sums accumulate in a small
//! local tile before a single flush per (block, row) — a natural fit for
//! the shared-memory staging that ScalFrag's tiled kernel generalises.

use crate::atomic_buf::AtomicF32Buffer;
use crate::factors::FactorSet;
use crate::workload::SegmentStats;
use crate::{partials, simd};
use scalfrag_gpusim::{Gpu, KernelWorkload, LaunchConfig, OpId, StreamId};
use scalfrag_tensor::HiCooTensor;
use std::sync::Arc;

/// The block-parallel HiCOO MTTKRP kernel.
pub struct HiCooKernel;

impl HiCooKernel {
    /// Kernel name for reports.
    pub const NAME: &'static str = "hicoo-block";

    /// Cost-model workload: compact offsets cut index bytes; the per-block
    /// tile divides atomic traffic by the in-block row reuse.
    pub fn workload(
        stats: &SegmentStats,
        rank: u32,
        avg_nnz_per_block: f64,
        block_edge: u32,
    ) -> KernelWorkload {
        // Index bytes: block coords amortised + 1 byte per entry per mode.
        let idx_bytes = stats.nnz * stats.order as u64
            + (stats.nnz as f64 / avg_nnz_per_block.max(1.0)) as u64 * stats.order as u64 * 4;
        let factor_bytes = stats.nnz * (stats.order as u64 - 1) * rank as u64 * 4;
        let reuse = avg_nnz_per_block.clamp(1.0, block_edge as f64);
        KernelWorkload {
            work_items: stats.nnz,
            flops: stats.flops(rank),
            bytes_read: idx_bytes + stats.nnz * 4 + factor_bytes,
            bytes_written: 0,
            atomic_ops: stats.nnz * rank as u64,
            atomic_hotness: stats.row_hotness,
            coalescing: 0.5,
            regs_per_thread: 48,
            shared_tile_reduction: reuse,
            item_cycles: (rank * (stats.order + 1)) as f64 * 2.0,
        }
    }

    /// Functional body: per-HiCOO-block local accumulation into a dense
    /// `block_edge × rank` tile, flushed once per touched row.
    pub fn execute(hicoo: &HiCooTensor, factors: &FactorSet, mode: usize, out: &AtomicF32Buffer) {
        let rank = factors.rank();
        assert_eq!(out.len(), hicoo.dims()[mode] as usize * rank, "output buffer shape mismatch");
        let edge = hicoo.block_edge() as usize;

        // One unit per HiCOO block, applied in block order.
        partials::run_units(hicoo.blocks().len(), out, |u, list| {
            let b = &hicoo.blocks()[u];
            // Local tile: one row of partials per in-block output row.
            let mut tile = vec![0.0f32; edge * rank];
            let mut touched = vec![false; edge];
            let mut prod = vec![0.0f32; rank];
            let row_base = (b.bidx[mode] as usize) << hicoo.block_edge().trailing_zeros();

            for e in b.start..b.end {
                let coord = hicoo.coord_in(b, e);
                simd::fill(&mut prod, hicoo.values()[e]);
                for (m, &c) in coord.iter().enumerate() {
                    if m == mode {
                        continue;
                    }
                    simd::mul_assign(&mut prod, factors.get(m).row(c as usize));
                }
                let local = coord[mode] as usize - row_base;
                touched[local] = true;
                simd::add_assign(&mut tile[local * rank..(local + 1) * rank], &prod);
            }
            for (local, &hit) in touched.iter().enumerate() {
                if hit {
                    let base = (row_base + local) * rank;
                    for f in 0..rank {
                        let v = tile[local * rank + f];
                        if v != 0.0 {
                            list.push((base + f, v));
                        }
                    }
                }
            }
        });
    }

    /// Enqueues this kernel on the simulated GPU.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        coo_stats: &SegmentStats,
        hicoo: Arc<HiCooTensor>,
        factors: Arc<FactorSet>,
        mode: usize,
        out: Arc<AtomicF32Buffer>,
        label: impl Into<String>,
    ) -> OpId {
        let workload = Self::workload(
            coo_stats,
            factors.rank() as u32,
            hicoo.avg_nnz_per_block(),
            hicoo.block_edge(),
        );
        gpu.launch_exec(stream, config, workload, label, move || {
            Self::execute(&hicoo, &factors, mode, &out);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;
    use scalfrag_tensor::CooTensor;

    fn run(t: &CooTensor, f: &FactorSet, mode: usize, bits: u32) -> Mat {
        let h = HiCooTensor::from_coo(t, bits);
        let rank = f.rank();
        let out = AtomicF32Buffer::new(t.dims()[mode] as usize * rank);
        HiCooKernel::execute(&h, f, mode, &out);
        Mat::from_vec(t.dims()[mode] as usize, rank, out.to_vec())
    }

    #[test]
    fn matches_reference_across_modes_and_block_sizes() {
        let t = CooTensor::random_uniform(&[30, 24, 18], 900, 1);
        let f = FactorSet::random(&[30, 24, 18], 8, 2);
        for mode in 0..3 {
            for bits in [2u32, 4, 6] {
                let a = run(&t, &f, mode, bits);
                let b = mttkrp_seq(&t, &f, mode);
                assert!(
                    a.max_abs_diff(&b) < 1e-3,
                    "mode {mode} bits {bits}: {}",
                    a.max_abs_diff(&b)
                );
            }
        }
    }

    #[test]
    fn clustered_tensors_get_higher_tile_reduction() {
        let clustered = scalfrag_tensor::gen::blocked(&[256, 256, 256], 4_000, 8, 16, 3);
        let uniform = scalfrag_tensor::gen::uniform(&[256, 256, 256], 4_000, 3);
        let hc = HiCooTensor::from_coo(&clustered, 4);
        let hu = HiCooTensor::from_coo(&uniform, 4);
        let sc = SegmentStats::compute(&clustered, 0);
        let su = SegmentStats::compute(&uniform, 0);
        let wc = HiCooKernel::workload(&sc, 16, hc.avg_nnz_per_block(), 16);
        let wu = HiCooKernel::workload(&su, 16, hu.avg_nnz_per_block(), 16);
        assert!(wc.shared_tile_reduction > wu.shared_tile_reduction);
        assert!(wc.bytes_read < wu.bytes_read, "clustering amortises block coords");
    }

    #[test]
    fn enqueue_runs_and_matches() {
        let t = scalfrag_tensor::gen::blocked(&[64, 64, 64], 800, 8, 8, 5);
        let f = Arc::new(FactorSet::random(&[64, 64, 64], 4, 6));
        let h = Arc::new(HiCooTensor::from_coo(&t, 3));
        let stats = SegmentStats::compute(&t, 1);
        let out = Arc::new(AtomicF32Buffer::new(64 * 4));
        let mut gpu = Gpu::new(scalfrag_gpusim::DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        HiCooKernel::enqueue(
            &mut gpu,
            s,
            LaunchConfig::new(64, 128),
            &stats,
            h,
            Arc::clone(&f),
            1,
            Arc::clone(&out),
            "hicoo",
        );
        gpu.synchronize();
        let m = Mat::from_vec(64, 4, out.to_vec());
        assert!(m.max_abs_diff(&mttkrp_seq(&t, &f, 1)) < 1e-3);
    }
}
