//! Workload characterisation: turning a tensor (segment) into the
//! [`KernelWorkload`] the gpusim cost model consumes.
//!
//! The statistics here are what couples the simulated timing to the tensor
//! structure — nnz drives traffic, the output-row concentration (a
//! Herfindahl index of the slice histogram) drives atomic contention, and
//! the average slice population bounds how much block-level pre-reduction
//! the tiled kernel can do.

use scalfrag_gpusim::KernelWorkload;
use scalfrag_tensor::{CooTensor, Idx, Val};

/// Structural statistics of one tensor segment for a target mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentStats {
    /// Non-zeros in the segment.
    pub nnz: u64,
    /// Tensor order.
    pub order: u32,
    /// Size of the output mode.
    pub mode_dim: u64,
    /// Herfindahl index of the output-row distribution:
    /// `Σ (nnz_slice / nnz)²` — the probability two random updates collide.
    pub row_hotness: f64,
    /// Mean non-zeros per non-empty output slice.
    pub avg_nnz_per_slice: f64,
}

impl SegmentStats {
    /// Computes statistics of `tensor` for `mode`.
    pub fn compute(tensor: &CooTensor, mode: usize) -> Self {
        let nnz = tensor.nnz() as u64;
        let hist = tensor.slice_nnz_histogram(mode);
        let mut hotness = 0.0f64;
        let mut nonempty = 0u64;
        for &c in &hist {
            if c > 0 {
                nonempty += 1;
                let p = c as f64 / nnz.max(1) as f64;
                hotness += p * p;
            }
        }
        Self {
            nnz,
            order: tensor.order() as u32,
            mode_dim: tensor.dims()[mode] as u64,
            row_hotness: hotness,
            avg_nnz_per_slice: if nonempty == 0 { 0.0 } else { nnz as f64 / nonempty as f64 },
        }
    }

    /// FLOPs of an MTTKRP over this segment at the given rank: per entry
    /// and rank column, `order-1` multiplies + 1 multiply by the value +
    /// 1 add.
    pub fn flops(&self, rank: u32) -> u64 {
        self.nnz * rank as u64 * (self.order as u64 + 1)
    }

    /// Bytes the kernel reads per entry: the COO indices and value, plus
    /// one factor row per non-target mode.
    pub fn bytes_read(&self, rank: u32) -> u64 {
        let idx_val = self.order as u64 * std::mem::size_of::<Idx>() as u64
            + std::mem::size_of::<Val>() as u64;
        let factor_rows = (self.order as u64 - 1) * rank as u64 * 4;
        self.nnz * (idx_val + factor_rows)
    }

    /// COO device bytes of the segment (what an H2D transfer moves).
    pub fn coo_bytes(&self) -> u64 {
        self.nnz
            * (self.order as u64 * std::mem::size_of::<Idx>() as u64
                + std::mem::size_of::<Val>() as u64)
    }

    /// Output matrix bytes (`mode_dim × rank` f32).
    pub fn output_bytes(&self, rank: u32) -> u64 {
        self.mode_dim * rank as u64 * 4
    }
}

/// Workload of the ParTI-style nnz-parallel COO kernel with per-element
/// global atomics.
pub fn coo_atomic_workload(stats: &SegmentStats, rank: u32) -> KernelWorkload {
    KernelWorkload {
        work_items: stats.nnz,
        flops: stats.flops(rank),
        bytes_read: stats.bytes_read(rank),
        bytes_written: 0, // updates are atomics, accounted separately
        atomic_ops: stats.nnz * rank as u64,
        atomic_hotness: stats.row_hotness,
        // Scattered factor-row gathers; no reuse staging.
        coalescing: 0.35,
        regs_per_thread: 40,
        shared_tile_reduction: 1.0,
        item_cycles: (rank * (stats.order + 1)) as f64 * 2.0,
    }
}

/// Workload of the ScalFrag tiled kernel: shared-memory staging of factor
/// rows (`times_mat`) and partial results (`mvals`) improves effective
/// coalescing, and block-level pre-reduction divides the global atomic
/// traffic by the average number of same-row entries a block sees.
pub fn tiled_workload(stats: &SegmentStats, rank: u32, block: u32) -> KernelWorkload {
    // A block processes ~`block` sorted entries; entries of one output row
    // are adjacent, so the block merges ~avg_nnz_per_slice of them locally
    // (capped by what fits in a block's window).
    let reduction = stats.avg_nnz_per_slice.clamp(1.0, block as f64 / 4.0);
    KernelWorkload {
        work_items: stats.nnz,
        flops: stats.flops(rank),
        bytes_read: stats.bytes_read(rank),
        bytes_written: 0,
        atomic_ops: stats.nnz * rank as u64,
        atomic_hotness: stats.row_hotness,
        // Staged factor tiles give better effective bandwidth.
        coalescing: 0.55,
        regs_per_thread: 56,
        shared_tile_reduction: reduction,
        item_cycles: (rank * (stats.order + 1)) as f64 * 2.2,
    }
}

/// Dynamic shared memory the tiled kernel requests per block: one warp-level
/// `mvals` tile plus a `times_mat` factor tile of 32 rows.
pub fn tiled_smem_bytes(rank: u32, block: u32) -> u32 {
    let mvals = (block / 32).max(1) * rank * 4;
    let times_mat = 32 * rank * 4;
    mvals + times_mat
}

/// Workload of the CSF fiber-parallel kernel: one worker per slice, no
/// atomics, but tree pointers add traffic and long slices serialise.
pub fn csf_fiber_workload(stats: &SegmentStats, rank: u32, num_slices: u64) -> KernelWorkload {
    KernelWorkload {
        work_items: num_slices.max(1),
        flops: stats.flops(rank),
        bytes_read: stats.bytes_read(rank) + stats.nnz * 8, // fptr traffic
        bytes_written: stats.output_bytes(rank),
        atomic_ops: 0,
        atomic_hotness: 0.0,
        coalescing: 0.5,
        regs_per_thread: 48,
        shared_tile_reduction: 1.0,
        // A slice's whole subtree is one serial chain.
        item_cycles: (stats.avg_nnz_per_slice.max(1.0)) * (rank * (stats.order + 1)) as f64 * 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::{kernel_duration, DeviceSpec, LaunchConfig};

    fn uniform_stats() -> SegmentStats {
        let t = scalfrag_tensor::gen::uniform(&[200, 100, 100], 10_000, 1);
        SegmentStats::compute(&t, 0)
    }

    fn skewed_stats() -> SegmentStats {
        let t = scalfrag_tensor::gen::zipf_slices(&[200, 100, 100], 10_000, 1.2, 1);
        SegmentStats::compute(&t, 0)
    }

    #[test]
    fn stats_of_known_tensor() {
        let t = CooTensor::from_entries(
            &[4, 2, 2],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 1], 1.0),
                (vec![0, 1, 0], 1.0),
                (vec![2, 1, 1], 1.0),
            ],
        );
        let s = SegmentStats::compute(&t, 0);
        assert_eq!(s.nnz, 4);
        assert_eq!(s.order, 3);
        assert_eq!(s.mode_dim, 4);
        // Hotness: (3/4)^2 + (1/4)^2 = 0.625.
        assert!((s.row_hotness - 0.625).abs() < 1e-12);
        assert!((s.avg_nnz_per_slice - 2.0).abs() < 1e-12);
        // flops = 4 nnz * rank * (3+1).
        assert_eq!(s.flops(8), 4 * 8 * 4);
        assert_eq!(s.coo_bytes(), 4 * 16);
        assert_eq!(s.output_bytes(8), 4 * 8 * 4);
    }

    #[test]
    fn skew_raises_hotness() {
        let u = uniform_stats();
        let z = skewed_stats();
        assert!(z.row_hotness > 3.0 * u.row_hotness);
        assert!(z.avg_nnz_per_slice > u.avg_nnz_per_slice * 0.9);
    }

    #[test]
    fn tiled_beats_coo_on_skewed_tensors() {
        let d = DeviceSpec::rtx3090();
        let cfg = LaunchConfig::new(2048, 256);
        let z = skewed_stats();
        let t_coo = kernel_duration(&d, &cfg, &coo_atomic_workload(&z, 16)).total;
        let cfg_t = LaunchConfig::with_shared(2048, 256, tiled_smem_bytes(16, 256));
        let t_tiled = kernel_duration(&d, &cfg_t, &tiled_workload(&z, 16, 256)).total;
        assert!(t_tiled < t_coo, "tiled {t_tiled} must beat atomic COO {t_coo} under skew");
    }

    #[test]
    fn tiled_still_wins_modestly_on_uniform_tensors() {
        let d = DeviceSpec::rtx3090();
        let cfg = LaunchConfig::new(2048, 256);
        let u = uniform_stats();
        let t_coo = kernel_duration(&d, &cfg, &coo_atomic_workload(&u, 16)).total;
        let cfg_t = LaunchConfig::with_shared(2048, 256, tiled_smem_bytes(16, 256));
        let t_tiled = kernel_duration(&d, &cfg_t, &tiled_workload(&u, 16, 256)).total;
        assert!(t_tiled < t_coo);
        // ...but the margin should be far smaller than under skew.
        let z = skewed_stats();
        let z_coo = kernel_duration(&d, &cfg, &coo_atomic_workload(&z, 16)).total;
        let z_tiled = kernel_duration(&d, &cfg_t, &tiled_workload(&z, 16, 256)).total;
        assert!(z_coo / z_tiled > t_coo / t_tiled);
    }

    #[test]
    fn smem_request_is_schedulable() {
        let d = DeviceSpec::rtx3090();
        for &block in &[64u32, 128, 256, 512, 1024] {
            for &rank in &[8u32, 16, 32, 64] {
                let smem = tiled_smem_bytes(rank, block);
                assert!(
                    smem <= d.shared_mem_per_block,
                    "block {block} rank {rank} smem {smem} too large"
                );
            }
        }
    }

    #[test]
    fn csf_workload_has_no_atomics() {
        let s = uniform_stats();
        let w = csf_fiber_workload(&s, 16, 200);
        assert_eq!(w.atomic_ops, 0);
        assert_eq!(w.work_items, 200);
        assert!(w.bytes_read > s.bytes_read(16));
    }

    #[test]
    fn empty_segment_stats() {
        let t = CooTensor::new(&[8, 8, 8]);
        let s = SegmentStats::compute(&t, 0);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.row_hotness, 0.0);
        assert_eq!(s.avg_nnz_per_slice, 0.0);
        assert_eq!(s.flops(16), 0);
    }
}
