//! SpTTM — sparse tensor times (dense) matrix, the other core sparse
//! kernel of ParTI (§VI-B: "a parallel algorithm and its GPU
//! implementation for SpTTM … parallelizing the algorithm across fibers").
//!
//! Mode-`n` SpTTM contracts the tensor's mode `n` with a `Iₙ × R` matrix:
//! `Y(i₁,…,r,…,i_N) = Σ_{iₙ} X(i₁,…,iₙ,…,i_N) · U(iₙ, r)` — the output is
//! semi-sparse (dense along mode `n` with extent `R`, sparse elsewhere).

use crate::factors::FactorSet;
use crate::workload::SegmentStats;
use rayon::prelude::*;
use scalfrag_gpusim::KernelWorkload;
use scalfrag_linalg::Mat;
use scalfrag_tensor::{semisparse::SemiSparseTensor, CooTensor, Idx};

/// Sequential CPU SpTTM — the correctness oracle.
///
/// # Panics
/// Panics if `u.rows() != dims[mode]`.
pub fn spttm_seq(tensor: &CooTensor, u: &Mat, mode: usize) -> SemiSparseTensor {
    assert!(mode < tensor.order(), "mode out of range");
    assert_eq!(u.rows(), tensor.dims()[mode] as usize, "matrix rows != mode size");
    let r = u.cols();

    // Group entries by their fiber (coordinates over modes != mode).
    let mut sorted = tensor.clone();
    // Sorting with `mode` *last* groups fibers contiguously.
    let mut order: Vec<usize> = (0..tensor.order()).filter(|&m| m != mode).collect();
    order.push(mode);
    sorted.sort_by_order(&order);

    let mut out_dims: Vec<Idx> = tensor.dims().to_vec();
    out_dims[mode] = r as Idx;
    let mut out = SemiSparseTensor::new(&out_dims, mode);

    let nnz = sorted.nnz();
    let fiber_key = |e: usize| -> Vec<Idx> {
        order[..order.len() - 1].iter().map(|&m| sorted.mode_indices(m)[e]).collect()
    };
    let mut e = 0usize;
    let mut fiber = vec![0.0f32; r];
    while e < nnz {
        let key = fiber_key(e);
        fiber.iter_mut().for_each(|x| *x = 0.0);
        while e < nnz && fiber_key(e) == key {
            let v = sorted.values()[e];
            let urow = u.row(sorted.mode_indices(mode)[e] as usize);
            for (f, &w) in fiber.iter_mut().zip(urow) {
                *f += v * w;
            }
            e += 1;
        }
        // `key` follows `order` (ascending non-target modes) which matches
        // SemiSparseTensor's sparse-coordinate convention.
        out.push_fiber(&key, &fiber);
    }
    out
}

/// Rayon-parallel SpTTM over fibers (the ParTI strategy: "parallelizing
/// across fibers"). Produces the same fibers as [`spttm_seq`].
pub fn spttm_par(tensor: &CooTensor, u: &Mat, mode: usize) -> SemiSparseTensor {
    assert!(mode < tensor.order(), "mode out of range");
    assert_eq!(u.rows(), tensor.dims()[mode] as usize, "matrix rows != mode size");
    let r = u.cols();

    let mut sorted = tensor.clone();
    let mut order: Vec<usize> = (0..tensor.order()).filter(|&m| m != mode).collect();
    order.push(mode);
    sorted.sort_by_order(&order);

    // Find fiber boundaries.
    let nnz = sorted.nnz();
    let key_at = |e: usize| -> Vec<Idx> {
        order[..order.len() - 1].iter().map(|&m| sorted.mode_indices(m)[e]).collect()
    };
    let mut starts = Vec::new();
    for e in 0..nnz {
        if e == 0 || key_at(e) != key_at(e - 1) {
            starts.push(e);
        }
    }
    starts.push(nnz);

    let fibers: Vec<(Vec<Idx>, Vec<f32>)> = starts
        .windows(2)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|w| {
            let (s, t) = (w[0], w[1]);
            let mut fiber = vec![0.0f32; r];
            for e in s..t {
                let v = sorted.values()[e];
                let urow = u.row(sorted.mode_indices(mode)[e] as usize);
                for (f, &x) in fiber.iter_mut().zip(urow) {
                    *f += v * x;
                }
            }
            (key_at(s), fiber)
        })
        .collect();

    let mut out_dims: Vec<Idx> = tensor.dims().to_vec();
    out_dims[mode] = r as Idx;
    let mut out = SemiSparseTensor::new(&out_dims, mode);
    for (key, fiber) in fibers {
        out.push_fiber(&key, &fiber);
    }
    out
}

/// Cost-model workload of a fiber-parallel SpTTM kernel on the simulated
/// GPU (reads every entry + one `U` row per entry; writes `R` floats per
/// fiber; no atomics — each fiber is owned by one worker).
pub fn spttm_workload(stats: &SegmentStats, r: u32, num_fibers: u64) -> KernelWorkload {
    KernelWorkload {
        work_items: num_fibers.max(1),
        flops: stats.nnz * r as u64 * 2,
        bytes_read: stats.coo_bytes() + stats.nnz * r as u64 * 4,
        bytes_written: num_fibers * r as u64 * 4,
        atomic_ops: 0,
        atomic_hotness: 0.0,
        coalescing: 0.5,
        regs_per_thread: 40,
        shared_tile_reduction: 1.0,
        item_cycles: (stats.nnz as f64 / num_fibers.max(1) as f64) * r as f64 * 2.0,
    }
}

/// Dense validation: SpTTM computed via the dense tensor, for tiny inputs.
pub fn spttm_dense_validation(tensor: &CooTensor, u: &Mat, mode: usize) -> Vec<f32> {
    let dims = tensor.dims();
    let dense = tensor.to_dense();
    let r = u.cols();
    let mut out_dims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
    out_dims[mode] = r;
    let out_size: usize = out_dims.iter().product();
    let mut out = vec![0.0f32; out_size];

    // Strides for row-major layouts.
    let stride = |ds: &[usize]| -> Vec<usize> {
        let mut s = vec![1usize; ds.len()];
        for i in (0..ds.len() - 1).rev() {
            s[i] = s[i + 1] * ds[i + 1];
        }
        s
    };
    let in_dims: Vec<usize> = dims.iter().map(|&d| d as usize).collect();
    let s_in = stride(&in_dims);
    let s_out = stride(&out_dims);

    let mut coord = vec![0usize; dims.len()];
    for (flat, &v) in dense.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        let mut rem = flat;
        for (m, &s) in s_in.iter().enumerate() {
            coord[m] = rem / s;
            rem %= s;
        }
        for j in 0..r {
            let mut out_flat = 0;
            for m in 0..dims.len() {
                let idx = if m == mode { j } else { coord[m] };
                out_flat += idx * s_out[m];
            }
            out[out_flat] += v * u[(coord[mode], j)];
        }
    }
    out
}

/// SpTTM against a factor set's mode matrix (convenience for chains).
pub fn spttm_with_factor(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> SemiSparseTensor {
    spttm_par(tensor, factors.get(mode), mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_matches_dense_validation() {
        let t = CooTensor::random_uniform(&[6, 5, 4], 40, 1);
        let mut rng = rand::rngs::mock::StepRng::new(3, 0x9E3779B97F4A7C15);
        for mode in 0..3 {
            let u = Mat::random(t.dims()[mode] as usize, 3, &mut rng);
            let semi = spttm_seq(&t, &u, mode);
            let expect = spttm_dense_validation(&t, &u, mode);
            let got = semi.to_coo().to_dense();
            for (a, b) in got.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-4, "mode {mode}");
            }
        }
    }

    #[test]
    fn par_matches_seq() {
        let t = CooTensor::random_uniform(&[30, 25, 20], 1_000, 5);
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x9E3779B97F4A7C15);
        for mode in 0..3 {
            let u = Mat::random(t.dims()[mode] as usize, 8, &mut rng);
            let a = spttm_seq(&t, &u, mode);
            let b = spttm_par(&t, &u, mode);
            assert_eq!(a.num_fibers(), b.num_fibers(), "mode {mode}");
            for f in 0..a.num_fibers() {
                assert_eq!(a.fiber_coord(f), b.fiber_coord(f));
                for (x, y) in a.fiber(f).iter().zip(b.fiber(f)) {
                    assert!((x - y).abs() < 1e-4);
                }
            }
        }
    }

    #[test]
    fn output_is_semisparse_with_expected_fiber_count() {
        let t = CooTensor::random_uniform(&[20, 15, 10], 300, 9);
        let u = Mat::identity(10);
        let semi = spttm_seq(&t, &u, 2);
        assert_eq!(semi.num_fibers(), t.num_fibers(2));
        assert_eq!(semi.r(), 10);
        // Identity contraction: expanding back gives the original tensor.
        let back = semi.to_coo();
        let mut sorted = t.clone();
        sorted.sort_by_order(&[0, 1, 2]);
        assert_eq!(back.to_dense(), sorted.to_dense());
    }

    #[test]
    fn works_on_4way() {
        let t = CooTensor::random_uniform(&[8, 7, 6, 5], 150, 11);
        let mut rng = rand::rngs::mock::StepRng::new(13, 0x9E3779B97F4A7C15);
        let u = Mat::random(6, 4, &mut rng);
        let semi = spttm_par(&t, &u, 2);
        let expect = spttm_dense_validation(&t, &u, 2);
        let got = semi.to_coo().to_dense();
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn workload_is_atomic_free() {
        let t = CooTensor::random_uniform(&[50, 40, 30], 2_000, 15);
        let stats = SegmentStats::compute(&t, 0);
        let w = spttm_workload(&stats, 16, t.num_fibers(0) as u64);
        assert_eq!(w.atomic_ops, 0);
        assert!(w.flops > 0 && w.bytes_written > 0);
    }

    #[test]
    #[should_panic(expected = "matrix rows")]
    fn mismatched_matrix_panics() {
        let t = CooTensor::random_uniform(&[5, 5, 5], 10, 0);
        let u = Mat::zeros(4, 2);
        let _ = spttm_seq(&t, &u, 0);
    }
}
