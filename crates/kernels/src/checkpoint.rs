//! Iteration-level checkpoint/rollback for CPD-ALS.
//!
//! A device dying mid-sweep loses that sweep's partial factor updates.
//! Rather than restarting the decomposition, [`cpd_als_checkpointed`]
//! snapshots the factor set every `k` completed sweeps and, when an MTTKRP
//! fails, rolls back to the last snapshot and re-runs from there. Because
//! the checkpointed driver and [`crate::cpd_als`] share one sweep
//! implementation ([`crate::cpd::als_sweep`]), a run that recovers from
//! failures produces *bitwise* the same factors and fit trajectory as a
//! fault-free run — rollback is invisible in the numerics, only visible in
//! the rollback counters.

use crate::backend::MttkrpBackend;
use crate::cpd::{als_sweep, tensor_norm_sq, CpdOptions, CpdResult};
use crate::factors::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

/// Why an MTTKRP call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MttkrpFailure {
    /// 0-based index of the failed MTTKRP call across the whole run.
    pub call: u64,
    /// Human-readable cause (e.g. "kernel abort", "device down").
    pub cause: String,
}

impl std::fmt::Display for MttkrpFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MTTKRP call {} failed: {}", self.call, self.cause)
    }
}

impl std::error::Error for MttkrpFailure {}

/// An MTTKRP backend whose calls can fail — the hook the fault layer plugs
/// into. Infallible backends participate via [`Reliable`].
pub trait FallibleMttkrpBackend {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Computes the mode-`mode` MTTKRP, or reports why it could not.
    fn try_mttkrp(
        &mut self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
    ) -> Result<Mat, MttkrpFailure>;
}

/// Adapts an infallible [`MttkrpBackend`] to the fallible interface (every
/// call succeeds).
pub struct Reliable<'a>(pub &'a mut dyn MttkrpBackend);

impl FallibleMttkrpBackend for Reliable<'_> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn try_mttkrp(
        &mut self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
    ) -> Result<Mat, MttkrpFailure> {
        Ok(self.0.mttkrp(tensor, factors, mode))
    }
}

/// A deterministic fault harness: wraps an inner backend and fails at the
/// scripted 0-based call indices, delegating everything else. The standard
/// way to exercise rollback in tests and benchmarks.
pub struct ScriptedFailureBackend<B> {
    inner: B,
    fail_at: Vec<u64>,
    calls: u64,
}

impl<B: MttkrpBackend> ScriptedFailureBackend<B> {
    /// Fails exactly the calls whose global index appears in `fail_at`.
    pub fn new(inner: B, fail_at: Vec<u64>) -> Self {
        Self { inner, fail_at, calls: 0 }
    }

    /// Total MTTKRP calls observed so far (failed ones included).
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl<B: MttkrpBackend> FallibleMttkrpBackend for ScriptedFailureBackend<B> {
    fn name(&self) -> &'static str {
        "scripted-failure"
    }

    fn try_mttkrp(
        &mut self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
    ) -> Result<Mat, MttkrpFailure> {
        let call = self.calls;
        self.calls += 1;
        if self.fail_at.contains(&call) {
            return Err(MttkrpFailure { call, cause: "scripted kernel abort".into() });
        }
        Ok(self.inner.mttkrp(tensor, factors, mode))
    }
}

/// Checkpointing policy for [`cpd_als_checkpointed`].
#[derive(Clone, Copy, Debug)]
pub struct CheckpointConfig {
    /// Snapshot the factors after every `every_k` completed sweeps (the
    /// initial factors always form checkpoint zero). Smaller = less work
    /// re-done per rollback, more snapshot copies.
    pub every_k: usize,
    /// Give up (returning the failure) after this many rollbacks.
    pub max_rollbacks: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self { every_k: 1, max_rollbacks: 8 }
    }
}

/// A [`CpdResult`] plus the recovery bookkeeping.
#[derive(Clone, Debug)]
pub struct CheckpointedCpdResult {
    /// The decomposition — bitwise identical to a fault-free
    /// [`crate::cpd_als`] run with the same options and backend numerics.
    pub result: CpdResult,
    /// Rollbacks performed (0 on a fault-free run).
    pub rollbacks: usize,
    /// Snapshots taken (the initial factors included).
    pub checkpoints: usize,
    /// Completed sweeps that were discarded and re-run due to rollbacks —
    /// the recovery overhead in sweep units.
    pub sweeps_redone: usize,
}

/// CPD-ALS with iteration-level checkpoint/rollback over a fallible
/// backend.
///
/// A failed MTTKRP discards the current (partially updated) sweep, rolls
/// the factors back to the last snapshot and resumes. Returns `Err` with
/// the final failure once `ckpt.max_rollbacks` rollbacks are exhausted —
/// a permanently dead backend cannot be ridden out.
///
/// # Panics
/// Panics if `opts.rank == 0`, `opts.max_iters == 0` or
/// `ckpt.every_k == 0`.
pub fn cpd_als_checkpointed(
    tensor: &CooTensor,
    opts: &CpdOptions,
    ckpt: &CheckpointConfig,
    backend: &mut dyn FallibleMttkrpBackend,
) -> Result<CheckpointedCpdResult, MttkrpFailure> {
    assert!(opts.rank > 0 && opts.max_iters > 0, "rank and max_iters must be positive");
    assert!(ckpt.every_k > 0, "checkpoint interval must be positive");
    let mut factors = FactorSet::random(tensor.dims(), opts.rank, opts.seed);
    let norm_x_sq = tensor_norm_sq(tensor);

    // Checkpoint = (factors, fit history, completed sweeps) at snapshot
    // time. The initial factors are checkpoint zero, so a failure in the
    // very first sweep rolls back to the seeded start, not garbage.
    let mut saved = (factors.clone(), Vec::new(), 0usize);
    let mut checkpoints = 1usize;
    let mut fits: Vec<f64> = Vec::new();
    let mut iters = 0usize;
    let mut rollbacks = 0usize;
    let mut sweeps_redone = 0usize;

    while iters < opts.max_iters {
        match als_sweep(tensor, &mut factors, opts, norm_x_sq, backend) {
            Ok(fit) => {
                iters += 1;
                let prev = fits.last().copied();
                fits.push(fit);
                if iters.is_multiple_of(ckpt.every_k) {
                    saved = (factors.clone(), fits.clone(), iters);
                    checkpoints += 1;
                }
                if let Some(p) = prev {
                    if (fit - p).abs() < opts.tol {
                        break;
                    }
                }
            }
            Err(failure) => {
                rollbacks += 1;
                if rollbacks > ckpt.max_rollbacks {
                    return Err(failure);
                }
                sweeps_redone += iters - saved.2;
                factors = saved.0.clone();
                fits = saved.1.clone();
                iters = saved.2;
            }
        }
    }

    Ok(CheckpointedCpdResult {
        result: CpdResult { factors, fits, iters },
        rollbacks,
        checkpoints,
        sweeps_redone,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuSequentialBackend;
    use crate::cpd::cpd_als;

    fn tensor() -> CooTensor {
        CooTensor::random_uniform(&[14, 11, 9], 500, 7)
    }

    fn opts() -> CpdOptions {
        CpdOptions { rank: 5, max_iters: 8, tol: 0.0, seed: 3, nonnegative: false }
    }

    fn bits(f: &FactorSet) -> Vec<u32> {
        (0..f.order()).flat_map(|n| f.get(n).as_slice().iter().map(|v| v.to_bits())).collect()
    }

    #[test]
    fn fault_free_checkpointed_run_matches_plain_als_bitwise() {
        let t = tensor();
        let plain = cpd_als(&t, &opts(), &mut CpuSequentialBackend);
        let mut backend = ScriptedFailureBackend::new(CpuSequentialBackend, vec![]);
        let ck = cpd_als_checkpointed(&t, &opts(), &CheckpointConfig::default(), &mut backend)
            .expect("no failures scripted");
        assert_eq!(ck.rollbacks, 0);
        assert_eq!(ck.sweeps_redone, 0);
        assert_eq!(bits(&plain.factors), bits(&ck.result.factors));
        assert_eq!(plain.fits, ck.result.fits);
        assert_eq!(plain.iters, ck.result.iters);
    }

    #[test]
    fn rollback_recovers_bitwise_identical_trajectory() {
        let t = tensor();
        let plain = cpd_als(&t, &opts(), &mut CpuSequentialBackend);
        // 3 modes per sweep: call 4 dies mid-sweep 2, call 13 mid-sweep 5
        // (indices shift as failed calls are re-run; both land mid-run).
        let mut backend = ScriptedFailureBackend::new(CpuSequentialBackend, vec![4, 13]);
        let ck = cpd_als_checkpointed(&t, &opts(), &CheckpointConfig::default(), &mut backend)
            .expect("recoverable script");
        assert_eq!(ck.rollbacks, 2);
        assert!(ck.checkpoints > 1);
        assert_eq!(
            bits(&plain.factors),
            bits(&ck.result.factors),
            "recovered factors must be bitwise identical to the fault-free run"
        );
        assert_eq!(plain.fits, ck.result.fits, "fit trajectory must match exactly");
    }

    #[test]
    fn sparse_checkpoints_redo_more_work() {
        let t = tensor();
        // Call 19 dies mid-sweep 7 (3 modes per sweep): with every-sweep
        // checkpoints the last snapshot is sweep 6 (nothing completed is
        // lost); with every-4 checkpoints it is sweep 4 (sweeps 5-6 redo).
        let dense = {
            let mut b = ScriptedFailureBackend::new(CpuSequentialBackend, vec![19]);
            cpd_als_checkpointed(
                &t,
                &opts(),
                &CheckpointConfig { every_k: 1, max_rollbacks: 8 },
                &mut b,
            )
            .unwrap()
        };
        let sparse = {
            let mut b = ScriptedFailureBackend::new(CpuSequentialBackend, vec![19]);
            cpd_als_checkpointed(
                &t,
                &opts(),
                &CheckpointConfig { every_k: 4, max_rollbacks: 8 },
                &mut b,
            )
            .unwrap()
        };
        assert_eq!(bits(&dense.result.factors), bits(&sparse.result.factors));
        assert!(
            sparse.sweeps_redone > dense.sweeps_redone,
            "a 4-sweep checkpoint interval must discard more work per rollback ({} vs {})",
            sparse.sweeps_redone,
            dense.sweeps_redone
        );
    }

    #[test]
    fn exhausted_rollback_budget_surfaces_the_failure() {
        let t = tensor();
        // Every call from 0 on fails: the budget runs out.
        let fail_all: Vec<u64> = (0..1000).collect();
        let mut backend = ScriptedFailureBackend::new(CpuSequentialBackend, fail_all);
        let err = cpd_als_checkpointed(
            &t,
            &opts(),
            &CheckpointConfig { every_k: 1, max_rollbacks: 3 },
            &mut backend,
        )
        .expect_err("a permanently failing backend must surface the error");
        assert_eq!(err.call, 3, "one failed call per rollback, then give up");
        assert_eq!(err.cause, "scripted kernel abort");
    }

    #[test]
    fn scripted_backend_counts_calls_and_formats_failures() {
        let mut b = ScriptedFailureBackend::new(CpuSequentialBackend, vec![1]);
        let t = tensor();
        let f = FactorSet::random(t.dims(), 4, 1);
        assert!(b.try_mttkrp(&t, &f, 0).is_ok());
        let err = b.try_mttkrp(&t, &f, 0).unwrap_err();
        assert_eq!(b.calls(), 2);
        let msg = format!("{err}");
        assert!(msg.contains("call 1") && msg.contains("abort"), "{msg}");
        assert_eq!(b.name(), "scripted-failure");
    }
}
