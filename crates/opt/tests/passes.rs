//! Pass-level behaviour on real builder plans: what each pass actually
//! rewrites, what the orderer picks, and the provenance machinery.
//! (Contract checks over *every* registered builder live in the repo's
//! root `tests/opt.rs`, next to the conformance suite.)

use scalfrag_exec::{run_plan, ExecMode, Plan, PlanOp, StreamRef};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_opt::passes::{BatchH2d, CoalesceH2d, DeadOpElim, OverlapStreams, SlimFactors};
use scalfrag_opt::{
    applied, check_pass, choose_pipeline, default_pipeline, materialize, optimize_chosen,
    optimize_default, Pass,
};
use scalfrag_pipeline::{build_pipelined_plan, build_sync_plan, KernelChoice, PipelinePlan};
use scalfrag_tensor::{gen, CooTensor};

const CFG: LaunchConfig = LaunchConfig { grid: 512, block: 256, shared_mem_per_block: 0 };

fn fixture() -> (CooTensor, FactorSet) {
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    (tensor, factors)
}

fn sync_plan(tensor: &CooTensor, factors: &FactorSet) -> Plan {
    let mut sorted = tensor.clone();
    sorted.sort_for_mode(0);
    build_sync_plan(&DeviceSpec::rtx3090(), &sorted, factors, 0, CFG, KernelChoice::Tiled)
}

fn single_stream_plan(tensor: &CooTensor, factors: &FactorSet) -> Plan {
    let mut sorted = tensor.clone();
    sorted.sort_for_mode(0);
    let pp = PipelinePlan::new(&sorted, 0, CFG, 4, 1);
    build_pipelined_plan(&DeviceSpec::rtx3090(), &sorted, factors, &pp, KernelChoice::Tiled)
}

fn h2d_ops(plan: &Plan) -> Vec<(StreamRef, u64)> {
    plan.devices
        .iter()
        .flat_map(|d| plan.lower_device(d))
        .filter_map(|op| match op {
            PlanOp::H2D { stream, bytes, .. } => Some((stream, bytes)),
            _ => None,
        })
        .collect()
}

#[test]
fn materialize_pins_the_program_without_changing_the_schedule() {
    let (tensor, factors) = fixture();
    let plan = sync_plan(&tensor, &factors);
    let mat = materialize(&plan);
    assert!(mat.devices.iter().all(|d| d.program.is_some()));
    let raw = run_plan(&plan, ExecMode::Dry);
    let pinned = run_plan(&mat, ExecMode::Dry);
    assert_eq!(raw.trace.fingerprint(), pinned.trace.fingerprint());
}

#[test]
fn coalesce_merges_the_sync_plans_two_copies_into_one() {
    let (tensor, factors) = fixture();
    let plan = sync_plan(&tensor, &factors);
    let before = h2d_ops(&plan);
    assert_eq!(before.len(), 2, "sync plan ships factors and tensor separately");
    let opt = CoalesceH2d.apply(&plan);
    let after = h2d_ops(&opt);
    assert_eq!(after.len(), 1, "same-stream adjacent copies must merge");
    assert_eq!(
        after[0].1,
        before.iter().map(|(_, b)| b).sum::<u64>(),
        "merged copy carries every byte"
    );
    assert!(
        run_plan(&opt, ExecMode::Dry).makespan() < run_plan(&plan, ExecMode::Dry).makespan(),
        "one PCIe latency less must show in the makespan"
    );
}

#[test]
fn slim_factors_drops_exactly_the_output_mode_rows_and_only_once() {
    let (tensor, factors) = fixture();
    let plan = sync_plan(&tensor, &factors);
    let mode_bytes = (plan.rows * plan.rank * 4) as u64;
    let once = SlimFactors.apply(&plan);
    let factors_copy = |p: &Plan| {
        p.devices
            .iter()
            .flat_map(|d| p.lower_device(d))
            .find_map(|op| match op {
                PlanOp::H2D { bytes, label, .. } if label == "factors H2D" => Some(bytes),
                _ => None,
            })
            .expect("factors copy present")
    };
    assert_eq!(factors_copy(&once), plan.factors_bytes - mode_bytes);
    assert!(applied(&once, "slim-factors"));
    // The provenance guard makes the second application a no-op rather
    // than shrinking the already-slimmed copy again.
    let twice = SlimFactors.apply(&once);
    assert_eq!(factors_copy(&twice), plan.factors_bytes - mode_bytes);
}

#[test]
fn dead_op_elim_drops_zero_byte_copies_and_degenerate_barriers() {
    let (tensor, factors) = fixture();
    let mut plan = materialize(&sync_plan(&tensor, &factors));
    let program = plan.devices[0].program.as_mut().unwrap();
    program.insert(
        0,
        PlanOp::H2D { stream: StreamRef::Worker(0), bytes: 0, label: "empty seg H2D".into() },
    );
    program.insert(
        1,
        PlanOp::Barrier { record: vec![StreamRef::Worker(0)], wait: vec![StreamRef::Worker(0)] },
    );
    let opt = DeadOpElim.apply(&plan);
    let ops = opt.devices[0].program.clone().unwrap();
    assert!(!ops.iter().any(|op| matches!(op, PlanOp::H2D { bytes: 0, .. })));
    assert!(!ops.iter().any(
        |op| matches!(op, PlanOp::Barrier { record, wait } if record == wait && record.len() == 1)
    ));
    assert_eq!(ops.len(), plan.devices[0].program.as_ref().unwrap().len() - 2);
    check_pass(&DeadOpElim, &plan).unwrap();
}

#[test]
fn overlap_streams_rewrites_a_single_stream_chain_into_real_overlap() {
    let (tensor, factors) = fixture();
    let plan = single_stream_plan(&tensor, &factors);
    assert_eq!(plan.devices[0].worker_streams, 1);
    let opt = OverlapStreams.apply(&plan);
    assert_eq!(opt.devices[0].worker_streams, 4, "four segments spread over four streams");
    let raw_s = run_plan(&plan, ExecMode::Dry).makespan();
    let opt_s = run_plan(&opt, ExecMode::Dry).makespan();
    assert!(opt_s < raw_s, "copy/compute overlap must beat the serial chain: {opt_s} vs {raw_s}");
    // Bit-identity and idempotence via the full contract check.
    check_pass(&OverlapStreams, &plan).unwrap();
}

#[test]
fn overlap_streams_leaves_registered_multi_stream_plans_alone() {
    let (tensor, factors) = fixture();
    for builder in scalfrag_pipeline::plan_builders() {
        let plan = (builder.build)(&tensor, &factors, 0);
        let opt = OverlapStreams.apply(&plan);
        for (raw_dev, opt_dev) in plan.devices.iter().zip(&opt.devices) {
            assert_eq!(raw_dev.worker_streams, opt_dev.worker_streams, "{}", builder.name);
            assert_eq!(
                plan.lower_device(raw_dev),
                opt_dev.program.clone().unwrap(),
                "{}: identity on already-streamed plans",
                builder.name
            );
        }
    }
}

#[test]
fn batch_h2d_folds_the_first_prefetch_wave_into_the_factor_upload() {
    let (tensor, factors) = fixture();
    let plan = scalfrag_oom::registry_plan(&tensor, &factors, 0);
    let raw = run_plan(&plan, ExecMode::Dry);
    let opt_plan = BatchH2d.apply(&plan);
    let opt = run_plan(&opt_plan, ExecMode::Dry);
    assert_eq!(
        opt.mem[0].prefetches + 2,
        raw.mem[0].prefetches,
        "the double-buffer's two warm-up prefetches ride the factor upload"
    );
    assert_eq!(opt.mem[0].evictions, raw.mem[0].evictions, "steady-state loop untouched");
    assert_eq!(
        opt.mem[0].staged_bytes, raw.mem[0].staged_bytes,
        "absorbed bytes ride the anchor copy instead — none go missing"
    );
    assert!(opt.mem[0].peak_bytes <= raw.mem[0].peak_bytes, "batching must not grow the peak");
    assert!(
        opt.makespan() < raw.makespan(),
        "two PCIe latencies off the critical path: {} vs {}",
        opt.makespan(),
        raw.makespan()
    );
    check_pass(&BatchH2d, &plan).unwrap();
}

#[test]
fn the_orderer_prefers_batching_for_the_streaming_plan() {
    let (tensor, factors) = fixture();
    let plan = scalfrag_oom::registry_plan(&tensor, &factors, 0);
    let choice = choose_pipeline(&plan);
    assert_eq!(choice.pipeline.name(), "batch");
    assert!(choice.est_s < choice.raw_s, "{} !< {}", choice.est_s, choice.raw_s);
    assert!(choice.speedup() > 1.0);
    assert_eq!(choice.evaluated, 4, "four candidate pipelines, one config");
    // Deterministic: same plan, same verdict.
    let again = choose_pipeline(&plan);
    assert_eq!(again.pipeline.name(), choice.pipeline.name());
    assert_eq!(again.est_s, choice.est_s);
}

#[test]
fn the_orderer_never_chooses_worse_than_raw() {
    let (tensor, factors) = fixture();
    for builder in scalfrag_pipeline::plan_builders() {
        let plan = (builder.build)(&tensor, &factors, 0);
        let choice = choose_pipeline(&plan);
        assert!(
            choice.est_s <= choice.raw_s,
            "{}: the raw pipeline is always a candidate",
            builder.name
        );
        let (optimized, _) = optimize_chosen(&plan);
        let replay = run_plan(&optimized, ExecMode::Dry).makespan();
        assert_eq!(replay, choice.est_s, "{}: the estimate is a real replay", builder.name);
    }
}

#[test]
fn provenance_accumulates_in_application_order() {
    let (tensor, factors) = fixture();
    let plan = sync_plan(&tensor, &factors);
    let opt = optimize_default(&plan);
    assert_eq!(
        opt.meta.optimizer,
        default_pipeline().pass_list(),
        "the rendered provenance is the pipeline's pass list"
    );
    assert!(opt.render().contains("optimizer: "), "the IR dump names its optimizer");
    assert!(plan.meta.optimizer.is_empty(), "the input plan is never mutated");
}

#[test]
fn optimization_reduces_op_count_without_losing_work() {
    let (tensor, factors) = fixture();
    let plan = sync_plan(&tensor, &factors);
    let opt = optimize_default(&plan);
    assert!(opt.total_ops() < plan.total_ops());
    assert_eq!(opt.total_items(), plan.total_items(), "no work unit disappears");
    let raw_out = run_plan(&plan, ExecMode::Functional).output;
    let opt_out = run_plan(&opt, ExecMode::Functional).output;
    assert_eq!(
        raw_out.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        opt_out.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "bit-identical output"
    );
}
