//! H2D transfer coalescing: merge adjacent same-stream host-to-device
//! copies of co-resident buffers into one larger copy.

use crate::pass::{rewrite_programs, Contract, NumericsEffect, Pass, TraceEffect};
use scalfrag_exec::{Plan, PlanOp};

/// Merges runs of same-stream `H2D` copies separated only by *transparent*
/// ops into a single copy, saving one PCIe latency per merged op.
///
/// An op is transparent to the scan when reordering the later copy across
/// it cannot change any observable time or dependency:
///
/// * `Alloc` — pure pool bookkeeping, no engine time. The later copy's
///   destination buffer is then charged *after* the (now earlier) bytes
///   land, but pool accounting is position-based and the peak can only
///   shrink.
/// * `Barrier`s that do not `wait` on the scanned stream — their events
///   record on *other* streams and are unaffected by the copy engine.
///
/// Anything else — a copy on a different stream, a launch, a free, an
/// eviction, a prefetch, a barrier gating this stream — ends the run:
/// merging across it could reorder a dependency or reuse a buffer early.
///
/// The merged copy keeps the *first* op's label and stream; bytes are
/// summed. Because copies of one stream share the exclusive H2D engine
/// and execute back-to-back anyway, merging only removes the per-copy
/// latency — data still arrives no later than before, and every event
/// recorded after the merged copy records at an equal-or-earlier time.
pub struct CoalesceH2d;

impl Pass for CoalesceH2d {
    fn name(&self) -> &'static str {
        "coalesce-h2d"
    }

    fn contract(&self) -> Contract {
        Contract {
            numerics: NumericsEffect::BitIdentical,
            trace: TraceEffect::Reschedules,
            commutes_with: &["slim-factors"],
        }
    }

    fn apply(&self, plan: &Plan) -> Plan {
        rewrite_programs(plan, self.name(), |_plan, _dev, mut ops| {
            let mut i = 0;
            while i < ops.len() {
                let s = match &ops[i] {
                    PlanOp::H2D { stream, .. } => *stream,
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let mut j = i + 1;
                while j < ops.len() {
                    match &ops[j] {
                        PlanOp::Alloc { .. } => j += 1,
                        PlanOp::Barrier { wait, .. } if !wait.contains(&s) => j += 1,
                        PlanOp::H2D { stream, .. } if *stream == s => {
                            let PlanOp::H2D { bytes, .. } = ops.remove(j) else {
                                unreachable!("matched H2D above")
                            };
                            if let PlanOp::H2D { bytes: total, .. } = &mut ops[i] {
                                *total += bytes;
                            }
                        }
                        _ => break,
                    }
                }
                i += 1;
            }
            ops
        })
    }
}
