//! Cross-stream H2D batching: absorb the first wave of staging copies
//! into the factor upload, paying one PCIe latency for the lot.

use crate::pass::{rewrite_programs, Contract, NumericsEffect, Pass, TraceEffect};
use scalfrag_exec::{Plan, PlanOp, StreamRef};

/// The aggressive sibling of `coalesce-h2d`: starting from the first
/// `H2D` (the factor upload — the *anchor*), the scan walks forward and
/// folds every copy that is not yet ordered behind compute into the
/// anchor, across stream boundaries:
///
/// * `H2D` on an unblocked stream — bytes fold into the anchor, op
///   removed;
/// * `Prefetch` on an unblocked stream — its copy folds into the anchor
///   and the op degenerates to the plain transient `Alloc` it wrapped;
/// * `Launch` — marks its stream *blocked* (later copies on that stream
///   feed iterations ordered behind compute; batching them would stall
///   the anchor);
/// * `Alloc`, host tasks, and barriers recording only on the anchor
///   stream are transparent;
/// * anything else — a free, an eviction (buffer reuse: the slot a later
///   copy fills may alias one not yet released), a D2H, a gating
///   barrier, a copy on a blocked stream — stops the scan.
///
/// If any copy crossed a stream boundary, one barrier
/// `record [anchor] / wait [absorbed streams]` is inserted after the
/// anchor so consumers on those streams still order after their data
/// lands. All copies shared the exclusive H2D engine anyway, so the
/// batched copy finishes no later than the last absorbed copy did —
/// every downstream op starts at an equal or earlier simulated time.
///
/// Not in the default pipeline: it trades first-iteration overlap for
/// latency, a win the cost-model orderer confirms per plan (large on the
/// out-of-core streamer, where it folds the first two segment prefetches
/// into the factor upload).
pub struct BatchH2d;

impl Pass for BatchH2d {
    fn name(&self) -> &'static str {
        "batch-h2d"
    }

    fn contract(&self) -> Contract {
        Contract {
            numerics: NumericsEffect::BitIdentical,
            trace: TraceEffect::Reschedules,
            commutes_with: &["slim-factors"],
        }
    }

    fn apply(&self, plan: &Plan) -> Plan {
        rewrite_programs(plan, self.name(), |_plan, _dev, mut ops| {
            let Some(i) = ops.iter().position(|o| matches!(o, PlanOp::H2D { .. })) else {
                return ops;
            };
            let anchor_stream = match &ops[i] {
                PlanOp::H2D { stream, .. } => *stream,
                _ => unreachable!("positioned on an H2D"),
            };
            let mut blocked: Vec<StreamRef> = Vec::new();
            let mut absorbed: Vec<StreamRef> = Vec::new();
            let mut extra = 0u64;
            let mut j = i + 1;
            while j < ops.len() {
                match &ops[j] {
                    PlanOp::Alloc { .. } | PlanOp::HostResidue { .. } => j += 1,
                    PlanOp::Barrier { record, .. }
                        if record.len() == 1 && record[0] == anchor_stream =>
                    {
                        j += 1
                    }
                    PlanOp::Launch { stream, .. } => {
                        if !blocked.contains(stream) {
                            blocked.push(*stream);
                        }
                        j += 1;
                    }
                    PlanOp::H2D { stream, .. } if !blocked.contains(stream) => {
                        let PlanOp::H2D { stream, bytes, .. } = ops.remove(j) else {
                            unreachable!("matched H2D above")
                        };
                        extra += bytes;
                        if stream != anchor_stream && !absorbed.contains(&stream) {
                            absorbed.push(stream);
                        }
                    }
                    PlanOp::Prefetch { stream, .. } if !blocked.contains(stream) => {
                        let PlanOp::Prefetch { stream, slot, bytes, what, .. } = ops.remove(j)
                        else {
                            unreachable!("matched Prefetch above")
                        };
                        extra += bytes;
                        if stream != anchor_stream && !absorbed.contains(&stream) {
                            absorbed.push(stream);
                        }
                        ops.insert(j, PlanOp::Alloc { slot, bytes, what, transient: true });
                        j += 1;
                    }
                    _ => break,
                }
            }
            if extra == 0 {
                return ops;
            }
            if let PlanOp::H2D { bytes, .. } = &mut ops[i] {
                *bytes += extra;
            }
            if !absorbed.is_empty() {
                ops.insert(i + 1, PlanOp::Barrier { record: vec![anchor_stream], wait: absorbed });
            }
            ops
        })
    }
}
