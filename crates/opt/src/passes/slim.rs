//! Factor-upload slimming: a mode-`n` MTTKRP never reads factor `n` on
//! the device, so its rows need not ride the factor upload.

use crate::pass::{
    applied, materialize, rewrite_programs, Contract, NumericsEffect, Pass, TraceEffect,
};
use scalfrag_exec::{Plan, PlanOp};

/// Shrinks every `"factors H2D"` upload by the output-mode factor's
/// bytes (`rows × rank × 4`). The kernel computes the Khatri-Rao product
/// of the *other* modes' factors and scatters into the output buffer, so
/// the mode factor is write-only device-side — uploading it is pure
/// waste the builders inherit from the naive "ship the whole factor set"
/// prologue.
///
/// The rewrite is timing-only: functional execution reads factors from
/// host memory, so numerics are untouched by construction. It is *not*
/// naturally idempotent (a second application would shrink the already
/// slimmed copy again), so it consults the plan's optimizer provenance
/// and refuses to run twice — the one pass that exercises the
/// provenance-guard half of the framework.
pub struct SlimFactors;

impl Pass for SlimFactors {
    fn name(&self) -> &'static str {
        "slim-factors"
    }

    fn contract(&self) -> Contract {
        Contract {
            numerics: NumericsEffect::BitIdentical,
            trace: TraceEffect::Reschedules,
            commutes_with: &[
                "dead-op-elim",
                "coalesce-h2d",
                "batch-h2d",
                "sink-evictions",
                "hoist-prefetch",
            ],
        }
    }

    fn apply(&self, plan: &Plan) -> Plan {
        if applied(plan, self.name()) {
            return materialize(plan);
        }
        let mode_bytes = (plan.rows * plan.rank * 4) as u64;
        rewrite_programs(plan, self.name(), |plan, _dev, ops| {
            if mode_bytes == 0 || mode_bytes >= plan.factors_bytes {
                return ops;
            }
            ops.into_iter()
                .map(|op| match op {
                    PlanOp::H2D { stream, bytes, label }
                        if label == "factors H2D" && bytes >= plan.factors_bytes =>
                    {
                        PlanOp::H2D { stream, bytes: bytes - mode_bytes, label }
                    }
                    op => op,
                })
                .collect()
        })
    }
}
