//! Dead-op elimination: drop zero-byte copies, launches of empty
//! segments, and degenerate barrier edges.

use crate::pass::{rewrite_programs, Contract, NumericsEffect, Pass, TraceEffect};
use scalfrag_exec::{Plan, PlanOp};

/// Removes ops the interpreter would execute as no-ops:
///
/// * `H2D` / `D2H` copies of zero bytes (degenerate/empty segments) —
///   they still cost a full PCIe latency in the copy engine;
/// * `Launch`es of real (non-virtual) units whose segment has no
///   nonzeros — the kernel body is a no-op but the launch overhead and
///   SM occupancy are not;
/// * barrier self-edges (`record == [s]` waiting on `s` itself — stream
///   FIFO order already guarantees it) and barriers left with an empty
///   `record` or `wait` side.
///
/// Allocations, frees, evictions and prefetches are kept even when tiny:
/// they are pool bookkeeping the leak check and memory accounting see.
pub struct DeadOpElim;

impl Pass for DeadOpElim {
    fn name(&self) -> &'static str {
        "dead-op-elim"
    }

    fn contract(&self) -> Contract {
        Contract {
            numerics: NumericsEffect::BitIdentical,
            trace: TraceEffect::Reschedules,
            commutes_with: &["slim-factors", "sink-evictions"],
        }
    }

    fn apply(&self, plan: &Plan) -> Plan {
        rewrite_programs(plan, self.name(), |_plan, dev, ops| {
            ops.into_iter()
                .filter_map(|op| match op {
                    PlanOp::H2D { bytes: 0, .. } | PlanOp::D2H { bytes: 0, .. } => None,
                    PlanOp::Launch { unit, .. }
                        if dev.units[unit].workload.is_none() && dev.units[unit].seg.nnz() == 0 =>
                    {
                        None
                    }
                    PlanOp::Barrier { record, wait } => {
                        let wait: Vec<_> = wait
                            .into_iter()
                            .filter(|w| !(record.len() == 1 && record[0] == *w))
                            .collect();
                        if record.is_empty() || wait.is_empty() {
                            None
                        } else {
                            Some(PlanOp::Barrier { record, wait })
                        }
                    }
                    op => Some(op),
                })
                .collect()
        })
    }
}
