//! Memory-op scheduling for out-of-core plans: sink clean evictions
//! late, hoist prefetches early.

use crate::pass::{rewrite_programs, Contract, NumericsEffect, Pass, TraceEffect};
use scalfrag_exec::{Plan, PlanOp, StreamRef};

fn stream_of(op: &PlanOp) -> Option<StreamRef> {
    match op {
        PlanOp::Evict { stream, .. }
        | PlanOp::Prefetch { stream, .. }
        | PlanOp::H2D { stream, .. }
        | PlanOp::Launch { stream, .. }
        | PlanOp::HostResidue { stream, .. }
        | PlanOp::D2H { stream, .. } => Some(*stream),
        _ => None,
    }
}

/// Sinks *clean* evictions (`writeback_bytes == 0` — no D2H span, the
/// slot's pool page is simply released) as late as the program allows:
/// rightward past launches, copies, host tasks, barriers and frees,
/// stopping at the next allocation-like op (`Alloc`, `Prefetch`, another
/// `Evict`) or the program end.
///
/// A clean evict is pure pool bookkeeping, so delaying it never changes
/// a single span — the contract is full trace *identity*. What it buys
/// is canonical form: every evict sits immediately before the
/// allocation that needed its page, which is what lets `hoist-prefetch`
/// and the cross-stream batcher see their real scheduling windows.
/// Evictions with a write-back are left alone — their D2H span is
/// ordered work.
pub struct SinkEvictions;

impl Pass for SinkEvictions {
    fn name(&self) -> &'static str {
        "sink-evictions"
    }

    fn contract(&self) -> Contract {
        Contract {
            numerics: NumericsEffect::BitIdentical,
            trace: TraceEffect::Identical,
            commutes_with: &["dead-op-elim", "slim-factors"],
        }
    }

    fn apply(&self, plan: &Plan) -> Plan {
        rewrite_programs(plan, self.name(), |_plan, _dev, mut ops| {
            // Right to left, so a chain of evicts settles in one sweep
            // (each stops at the next allocation-like op or a later
            // evict already in place).
            for i in (0..ops.len()).rev() {
                if !matches!(&ops[i], PlanOp::Evict { writeback_bytes: 0, .. }) {
                    continue;
                }
                let mut k = i;
                while k + 1 < ops.len()
                    && matches!(
                        &ops[k + 1],
                        PlanOp::Launch { .. }
                            | PlanOp::H2D { .. }
                            | PlanOp::D2H { .. }
                            | PlanOp::HostResidue { .. }
                            | PlanOp::Barrier { .. }
                            | PlanOp::Free { .. }
                    )
                {
                    ops.swap(k, k + 1);
                    k += 1;
                }
            }
            ops
        })
    }
}

/// Hoists `Prefetch` ops as early as the program allows: leftward past
/// launches, D2H copies and host tasks *on other streams* — those run on
/// different engines (SM, D2H, host) and different stream queues, so the
/// prefetch's H2D copy and pool charge are unaffected by the swap, and
/// the crossed ops never waited on it.
///
/// The scan stops at anything that could order against the prefetch:
/// same-stream ops (stream FIFO), barriers (event edges), other memory
/// ops (`Alloc`/`Free`/`Evict`/`H2D`/`Prefetch` — pool position matters),
/// or the program start. Simulated times are provably unchanged, but the
/// *submission* order of spans shifts, so the contract is span-multiset
/// equality rather than fingerprint identity.
pub struct HoistPrefetch;

impl Pass for HoistPrefetch {
    fn name(&self) -> &'static str {
        "hoist-prefetch"
    }

    fn contract(&self) -> Contract {
        Contract {
            numerics: NumericsEffect::BitIdentical,
            trace: TraceEffect::SameSpans,
            commutes_with: &["slim-factors"],
        }
    }

    fn apply(&self, plan: &Plan) -> Plan {
        rewrite_programs(plan, self.name(), |_plan, _dev, mut ops| {
            for i in 1..ops.len() {
                let my_stream = match &ops[i] {
                    PlanOp::Prefetch { stream, .. } => *stream,
                    _ => continue,
                };
                let mut k = i;
                while k > 0 {
                    let crossable = matches!(
                        &ops[k - 1],
                        PlanOp::Launch { .. } | PlanOp::D2H { .. } | PlanOp::HostResidue { .. }
                    ) && stream_of(&ops[k - 1]) != Some(my_stream);
                    if !crossable {
                        break;
                    }
                    ops.swap(k - 1, k);
                    k -= 1;
                }
            }
            ops
        })
    }
}
