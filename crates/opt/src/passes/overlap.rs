//! Stream re-assignment: spread a single-stream segment chain over
//! multiple worker streams so copies overlap compute.

use crate::pass::{materialize, note_pass, Contract, NumericsEffect, Pass, TraceEffect};
use scalfrag_exec::{DeviceOps, Plan, PlanOp, StreamRef};

/// Widest stream fan-out the pass introduces (the repo's pipelined
/// builders use four streams for the same reason: beyond copy/compute
/// double-buffering the returns vanish).
const MAX_STREAMS: usize = 4;

/// Rewrites devices whose entire program runs on one worker stream —
/// `N ≥ 2` segment `(Alloc, H2D, Launch)` groups in a serial chain —
/// onto `min(N, 4)` round-robin streams, so segment `i+1`'s copy
/// overlaps segment `i`'s kernel exactly as the ScalFrag pipelined
/// schedule does. The DAG is respected by construction:
///
/// * a factors barrier (`record [w0] / wait [new streams]`) is inserted
///   after the factor upload, so re-homed kernels still order after it;
/// * a join barrier (`record [all streams] / wait [w0]`) is inserted
///   before the final D2H, so the readback still orders after every
///   kernel;
/// * mid-chain `Free`s are dropped (the buffer-reuse chain is what
///   serialized the streams) and re-issued at the program end — legal
///   only when all segment buffers fit device memory at once, which the
///   pass checks against the device spec before touching anything.
///
/// Kernel *submission* order is unchanged and the SM engine is
/// exclusive, so kernels still execute back-to-back in segment order —
/// the output stays bit-identical; only the copies move. Devices with
/// barriers, evictions, prefetches, multi-stream placement or off-stream
/// copies are left untouched (the pass is a no-op on every registered
/// builder's plan — it exists for externally built or degraded
/// single-stream schedules, and the orderer prices it like any other).
pub struct OverlapStreams;

/// Returns the rewritten `(program, worker_streams)` for `dev`, or
/// `None` when the device does not match the single-stream chain shape.
fn overlap_device(dev: &DeviceOps) -> Option<(Vec<PlanOp>, usize)> {
    if dev.worker_streams != 1 {
        return None;
    }
    let ops = dev.program.as_ref()?;
    // Shape gate: worker-stream traffic only, all of it on stream 0, no
    // memory-pressure ops, and readback strictly after the last launch.
    let mut launches = 0usize;
    let mut last_launch = 0usize;
    let mut first_h2d: Option<usize> = None;
    for (idx, op) in ops.iter().enumerate() {
        match op {
            PlanOp::Barrier { .. } | PlanOp::Evict { .. } | PlanOp::Prefetch { .. } => return None,
            PlanOp::Launch { stream, .. } => {
                if *stream != StreamRef::Worker(0) {
                    return None;
                }
                launches += 1;
                last_launch = idx;
            }
            PlanOp::H2D { stream, .. } | PlanOp::D2H { stream, .. } => {
                if *stream != StreamRef::Worker(0) {
                    return None;
                }
                if matches!(op, PlanOp::H2D { .. }) && first_h2d.is_none() {
                    first_h2d = Some(idx);
                }
            }
            _ => {}
        }
    }
    let target = launches.min(MAX_STREAMS);
    if target < 2 {
        return None;
    }
    let factors_at = first_h2d?;
    if !matches!(&ops[factors_at], PlanOp::H2D { label, .. } if label == "factors H2D") {
        return None;
    }
    for (idx, op) in ops.iter().enumerate() {
        if idx > last_launch {
            if !matches!(op, PlanOp::D2H { .. } | PlanOp::Free { .. }) {
                return None;
            }
        } else if matches!(op, PlanOp::D2H { .. }) {
            return None;
        }
    }
    // Dropping mid-chain frees keeps every allocation live at once.
    let total_bytes: u64 = ops
        .iter()
        .map(|op| match op {
            PlanOp::Alloc { bytes, .. } => *bytes,
            _ => 0,
        })
        .sum();
    if total_bytes > dev.spec.global_mem_bytes {
        return None;
    }

    let mut out = Vec::with_capacity(ops.len() + 2);
    let mut transient_slots = Vec::new();
    let mut ordinal = 0usize; // launches seen so far = this op's segment group
    for (idx, op) in ops.iter().enumerate() {
        let mut op = op.clone();
        if let PlanOp::Alloc { slot, transient: true, .. } = &op {
            transient_slots.push(*slot);
        }
        match &mut op {
            PlanOp::Free { .. } => continue,
            PlanOp::H2D { stream, .. } if idx > factors_at && ordinal < launches => {
                *stream = StreamRef::Worker(ordinal % target);
            }
            PlanOp::Launch { stream, .. } => {
                *stream = StreamRef::Worker(ordinal % target);
                ordinal += 1;
            }
            PlanOp::D2H { .. } => {
                out.push(PlanOp::Barrier {
                    record: (0..target).map(StreamRef::Worker).collect(),
                    wait: vec![StreamRef::Worker(0)],
                });
            }
            _ => {}
        }
        out.push(op);
        if idx == factors_at {
            out.push(PlanOp::Barrier {
                record: vec![StreamRef::Worker(0)],
                wait: (1..target).map(StreamRef::Worker).collect(),
            });
        }
    }
    for slot in transient_slots {
        out.push(PlanOp::Free { slot });
    }
    Some((out, target))
}

impl Pass for OverlapStreams {
    fn name(&self) -> &'static str {
        "overlap-streams"
    }

    fn contract(&self) -> Contract {
        Contract {
            numerics: NumericsEffect::BitIdentical,
            trace: TraceEffect::Reschedules,
            commutes_with: &[],
        }
    }

    fn apply(&self, plan: &Plan) -> Plan {
        let mut p = materialize(plan);
        for d in 0..p.devices.len() {
            if let Some((ops, streams)) = overlap_device(&p.devices[d]) {
                p.devices[d].program = Some(ops);
                p.devices[d].worker_streams = streams;
            }
        }
        note_pass(&mut p, self.name());
        p
    }
}
