//! The pass set and the named pipelines built from it.

mod batch;
mod coalesce;
mod dead;
mod memops;
mod overlap;
mod slim;

pub use batch::BatchH2d;
pub use coalesce::CoalesceH2d;
pub use dead::DeadOpElim;
pub use memops::{HoistPrefetch, SinkEvictions};
pub use overlap::OverlapStreams;
pub use slim::SlimFactors;

use crate::pass::{Pass, Pipeline};
use std::sync::Arc;

/// Every registered pass, in canonical order (cleanup passes first,
/// copy rewrites next, the byte-level slimming last).
pub fn all_passes() -> Vec<Arc<dyn Pass>> {
    vec![
        Arc::new(DeadOpElim),
        Arc::new(SinkEvictions),
        Arc::new(HoistPrefetch),
        Arc::new(CoalesceH2d),
        Arc::new(BatchH2d),
        Arc::new(SlimFactors),
        Arc::new(OverlapStreams),
    ]
}

/// The default pipeline: the always-profitable subset, safe on every
/// builder — cleanup, memory-op canonicalization, same-stream transfer
/// coalescing, factor-upload slimming. The schedule-shape rewrites
/// (`batch-h2d`, `overlap-streams`) are deliberately left to the
/// cost-model orderer, which prices them per plan.
pub fn default_pipeline() -> Pipeline {
    Pipeline::new(
        "default",
        vec![
            Arc::new(DeadOpElim),
            Arc::new(SinkEvictions),
            Arc::new(HoistPrefetch),
            Arc::new(CoalesceH2d),
            Arc::new(SlimFactors),
        ],
    )
}

/// The candidate pipelines the cost-model orderer chooses between. The
/// raw (empty) pipeline is always a candidate, so the chosen schedule is
/// never worse than the builder's under the cost model.
pub fn candidate_pipelines() -> Vec<Pipeline> {
    vec![
        Pipeline::new("raw", vec![]),
        default_pipeline(),
        Pipeline::new(
            "batch",
            vec![
                Arc::new(DeadOpElim),
                Arc::new(SinkEvictions),
                Arc::new(HoistPrefetch),
                Arc::new(BatchH2d),
                Arc::new(SlimFactors),
            ],
        ),
        Pipeline::new(
            "overlap",
            vec![
                Arc::new(DeadOpElim),
                Arc::new(OverlapStreams),
                Arc::new(CoalesceH2d),
                Arc::new(SlimFactors),
            ],
        ),
    ]
}
