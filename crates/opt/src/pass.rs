//! The pass framework: the [`Pass`] trait, its machine-checkable safety
//! [`Contract`], pass [`Pipeline`]s, and plan materialization.
//!
//! A pass is a pure `Plan -> Plan` rewrite over the *lowered* op programs.
//! Before the first pass runs, [`materialize`] pins every device's
//! declarative schedule into an explicit [`PlanOp`] program (the form
//! `Plan::lower_device` returns verbatim), so passes compose by editing
//! op vectors. Every pass stamps its name into `PlanMeta::optimizer`, so
//! an IR dump always says which rewrites produced the schedule — and the
//! verifier (see [`crate::verify`]) can hold each pass to its declared
//! contract mechanically.

use scalfrag_exec::{Plan, PlanOp};
use std::sync::Arc;

/// How a pass is allowed to change the fault-free execution trace.
///
/// The lattice is ordered weakest-claim-last; the verifier enforces each
/// level with a different check (fingerprint equality, span-multiset
/// equality, or no trace check at all).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEffect {
    /// The dry-run trace fingerprint is unchanged: same spans, same
    /// submission order, same simulated times.
    Identical,
    /// The same set of spans at the same simulated times, but submission
    /// order (and hence the order-sensitive fingerprint) may differ.
    SameSpans,
    /// Spans may merge, vanish or move in time — the pass actually
    /// changes the schedule.
    Reschedules,
}

/// How a pass is allowed to change the functional (numeric) output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumericsEffect {
    /// The output matrix is bit-for-bit identical to the raw plan's.
    /// Every current pass claims this: none reorders kernel *submission*,
    /// and the interpreter folds partials in submission order.
    BitIdentical,
    /// The output may differ within the conformance ULP tolerance.
    UlpBounded,
}

/// A pass's machine-checkable safety contract.
///
/// `crate::verify::check_pass` enforces `trace` and `numerics` by
/// replaying raw and optimized plans through the interpreter;
/// `crate::verify::check_commutation` enforces `commutes_with` by
/// program equality of both application orders.
#[derive(Clone, Copy, Debug)]
pub struct Contract {
    /// Functional-output guarantee.
    pub numerics: NumericsEffect,
    /// Trace guarantee.
    pub trace: TraceEffect,
    /// Names of passes this one commutes with (program-identical result
    /// in either application order). The relation is kept symmetric by
    /// convention and checked pairwise in the pass-algebra tests.
    pub commutes_with: &'static [&'static str],
}

/// One plan-optimizer pass.
///
/// Implementations must be *idempotent* (`apply(apply(p))` lowers to the
/// same programs as `apply(p)`) and must uphold their [`Contract`]; both
/// are enforced in-repo by [`crate::verify::check_pass`].
pub trait Pass: Send + Sync {
    /// Stable pass name (used for provenance stamps and commutation
    /// declarations).
    fn name(&self) -> &'static str;

    /// The safety contract the verifier holds this pass to.
    fn contract(&self) -> Contract;

    /// Rewrites `plan` (materializing it first if needed) and returns
    /// the optimized plan. Never mutates its input.
    fn apply(&self, plan: &Plan) -> Plan;
}

/// Pins every device's declarative schedule into an explicit op program
/// (`DeviceOps::program`), the common ground passes rewrite on. Lowering
/// is exactly `Plan::lower_device`, so a materialized-but-unoptimized
/// plan executes identically to the raw plan.
pub fn materialize(plan: &Plan) -> Plan {
    let mut p = plan.clone();
    for d in 0..p.devices.len() {
        if p.devices[d].program.is_none() {
            let ops = p.lower_device(&p.devices[d]);
            p.devices[d].program = Some(ops);
        }
    }
    p
}

/// Whether `name` is already stamped in the plan's optimizer provenance.
pub fn applied(plan: &Plan, name: &str) -> bool {
    plan.meta.optimizer.split(',').any(|p| p == name)
}

/// Appends `name` to the plan's optimizer provenance (once).
pub(crate) fn note_pass(plan: &mut Plan, name: &str) {
    if applied(plan, name) {
        return;
    }
    if !plan.meta.optimizer.is_empty() {
        plan.meta.optimizer.push(',');
    }
    plan.meta.optimizer.push_str(name);
}

/// The shared pass skeleton: materialize, rewrite each device's op
/// program through `f(plan, device, ops)`, stamp provenance.
pub(crate) fn rewrite_programs(
    plan: &Plan,
    name: &str,
    f: impl Fn(&Plan, &scalfrag_exec::DeviceOps, Vec<PlanOp>) -> Vec<PlanOp>,
) -> Plan {
    let mut p = materialize(plan);
    for d in 0..p.devices.len() {
        let ops = p.devices[d].program.take().expect("materialized above");
        let new_ops = f(plan, &p.devices[d], ops);
        p.devices[d].program = Some(new_ops);
    }
    note_pass(&mut p, name);
    p
}

/// An ordered pass sequence applied left to right.
#[derive(Clone)]
pub struct Pipeline {
    name: &'static str,
    passes: Vec<Arc<dyn Pass>>,
}

impl Pipeline {
    /// Builds a named pipeline from an ordered pass list (empty = the
    /// raw, pass-free pipeline).
    pub fn new(name: &'static str, passes: Vec<Arc<dyn Pass>>) -> Self {
        Self { name, passes }
    }

    /// Pipeline name (stable across runs; used in reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The ordered passes.
    pub fn passes(&self) -> &[Arc<dyn Pass>] {
        &self.passes
    }

    /// Comma-separated pass names, or `"raw"` for the empty pipeline.
    pub fn pass_list(&self) -> String {
        if self.passes.is_empty() {
            "raw".to_string()
        } else {
            self.passes.iter().map(|p| p.name()).collect::<Vec<_>>().join(",")
        }
    }

    /// Runs every pass in order. The empty pipeline still materializes
    /// the plan, so `apply` always returns an explicit-program plan.
    pub fn apply(&self, plan: &Plan) -> Plan {
        let mut p = materialize(plan);
        for pass in &self.passes {
            p = pass.apply(&p);
        }
        p
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pipeline({}: {})", self.name, self.pass_list())
    }
}
