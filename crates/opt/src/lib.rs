//! # scalfrag-opt — a pass-based plan optimizer over the ScheduleIR.
//!
//! The plan builders (`pipeline`, `cluster`, `serve`, `oom`, `core`)
//! emit *correct* schedules; this crate makes them *fast* without
//! touching the builders. Every optimization is a [`Pass`]: a pure
//! `Plan -> Plan` rewrite over the lowered op programs, carrying a
//! machine-checkable safety [`Contract`] the in-repo verifier
//! ([`verify::check_pass`]) enforces by replaying raw and optimized
//! plans through the one interpreter.
//!
//! The initial pass set:
//!
//! | pass | what it does |
//! |------|--------------|
//! | [`passes::DeadOpElim`] | drops zero-byte copies, empty-segment launches, degenerate barrier edges |
//! | [`passes::SinkEvictions`] | sinks clean evictions to the allocation that needs their page |
//! | [`passes::HoistPrefetch`] | hoists prefetches over other-stream compute/readback |
//! | [`passes::CoalesceH2d`] | merges adjacent same-stream H2D copies (one PCIe latency each) |
//! | [`passes::BatchH2d`] | folds the first copy wave into the factor upload, cross-stream |
//! | [`passes::SlimFactors`] | drops the write-only output-mode factor from the upload |
//! | [`passes::OverlapStreams`] | re-streams single-stream segment chains into copy/compute overlap |
//!
//! Passes compose into [`Pipeline`]s; [`optimize_default`] runs the
//! always-profitable subset, and the cost-model orderer
//! ([`choose_pipeline`]) dry-runs every candidate pipeline through the
//! interpreter — the same analytic workload model the autotuner trains
//! on — and keeps the cheapest schedule, jointly with the launch
//! configuration ([`choose_pipeline_joint`]).

#![warn(missing_docs)]

pub mod orderer;
pub mod pass;
pub mod passes;
pub mod verify;

pub use orderer::{choose_pipeline, choose_pipeline_joint, OrderedChoice};
pub use pass::{applied, materialize, Contract, NumericsEffect, Pass, Pipeline, TraceEffect};
pub use passes::{all_passes, candidate_pipelines, default_pipeline};
pub use verify::{check_commutation, check_pass, lowered_programs, Violation};

use scalfrag_exec::Plan;

/// Runs the default pass pipeline over `plan` — the entry point the
/// conformance suite, the benchmarks and `plan_dump` use.
pub fn optimize_default(plan: &Plan) -> Plan {
    default_pipeline().apply(plan)
}

/// Runs the cost-model orderer and applies the chosen pipeline,
/// returning the optimized plan and the choice that produced it.
pub fn optimize_chosen(plan: &Plan) -> (Plan, OrderedChoice) {
    let choice = choose_pipeline(plan);
    (choice.pipeline.apply(plan), choice)
}
