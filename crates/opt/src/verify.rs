//! The contract verifier: machine-checks a pass against its declared
//! [`Contract`](crate::pass::Contract) by replaying raw and optimized
//! plans through the interpreter.
//!
//! Three obligations are enforced here; the fourth (ULP-cleanliness of
//! the full default pipeline against the differential oracle) lives in
//! the repo-level conformance tests, which run every registered builder
//! through `run_differential` with optimized backends.

use crate::pass::{NumericsEffect, Pass, TraceEffect};
use scalfrag_exec::{run_plan, ExecMode, Plan, PlanOp, PlanTrace};

/// A broken pass obligation, named precisely enough to debug from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Applying the pass twice lowered to a different program than once.
    NotIdempotent {
        /// Offending pass.
        pass: String,
    },
    /// The contract claimed [`TraceEffect::Identical`] but the dry-run
    /// trace fingerprint moved.
    TraceChanged {
        /// Offending pass.
        pass: String,
    },
    /// The contract claimed [`TraceEffect::SameSpans`] but the span
    /// multiset moved.
    SpanSetChanged {
        /// Offending pass.
        pass: String,
    },
    /// The contract claimed [`NumericsEffect::BitIdentical`] but the
    /// functional output bits moved.
    OutputChanged {
        /// Offending pass.
        pass: String,
    },
    /// A declared commutation failed: the two application orders lowered
    /// to different programs.
    NotCommuting {
        /// First pass of the pair.
        a: String,
        /// Second pass of the pair.
        b: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotIdempotent { pass } => write!(f, "{pass}: not idempotent"),
            Violation::TraceChanged { pass } => {
                write!(f, "{pass}: claims an identical trace but the fingerprint moved")
            }
            Violation::SpanSetChanged { pass } => {
                write!(f, "{pass}: claims the same spans but the span multiset moved")
            }
            Violation::OutputChanged { pass } => {
                write!(f, "{pass}: claims bit-identical output but the bits moved")
            }
            Violation::NotCommuting { a, b } => {
                write!(f, "{a} and {b} declare commutation but orders disagree")
            }
        }
    }
}

/// The lowered programs of every device — the canonical form two plans
/// are compared in (explicit programs and declarative lowering meet
/// here).
pub fn lowered_programs(plan: &Plan) -> Vec<Vec<PlanOp>> {
    plan.devices.iter().map(|d| plan.lower_device(d)).collect()
}

/// A trace as an order-insensitive span multiset (sorted tuples of
/// device, stream, kind+label, bit-exact start/end).
fn span_multiset(trace: &PlanTrace) -> Vec<(usize, u32, String, u64, u64)> {
    let mut v: Vec<_> = trace
        .events
        .iter()
        .map(|e| {
            (
                e.device,
                e.stream,
                format!("{:?} {}", e.kind, e.label),
                e.start.to_bits(),
                e.end.to_bits(),
            )
        })
        .collect();
    v.sort();
    v
}

/// Whether the plan can run functionally (virtual-workload units are
/// dry-only).
fn functional_capable(plan: &Plan) -> bool {
    plan.devices.iter().all(|d| d.units.iter().all(|u| u.workload.is_none()))
}

/// Checks one pass against one plan:
///
/// 1. **Idempotence** — `apply ∘ apply` lowers to the same programs as
///    `apply`;
/// 2. **Trace contract** — dry-runs raw vs optimized (which also runs
///    the interpreter's transient-leak check over the rewritten
///    program) and enforces the declared [`TraceEffect`];
/// 3. **Numerics contract** — functional runs raw vs optimized and
///    enforces bit-equality when the pass claims
///    [`NumericsEffect::BitIdentical`] (skipped for dry-only plans).
pub fn check_pass(pass: &dyn Pass, plan: &Plan) -> Result<(), Violation> {
    let name = || pass.name().to_string();
    let once = pass.apply(plan);
    let twice = pass.apply(&once);
    if lowered_programs(&once) != lowered_programs(&twice) {
        return Err(Violation::NotIdempotent { pass: name() });
    }
    let raw_dry = run_plan(plan, ExecMode::Dry);
    let opt_dry = run_plan(&once, ExecMode::Dry);
    match pass.contract().trace {
        TraceEffect::Identical => {
            if raw_dry.trace.fingerprint() != opt_dry.trace.fingerprint() {
                return Err(Violation::TraceChanged { pass: name() });
            }
        }
        TraceEffect::SameSpans => {
            if span_multiset(&raw_dry.trace) != span_multiset(&opt_dry.trace) {
                return Err(Violation::SpanSetChanged { pass: name() });
            }
        }
        TraceEffect::Reschedules => {}
    }
    if matches!(pass.contract().numerics, NumericsEffect::BitIdentical) && functional_capable(plan)
    {
        let raw_f = run_plan(plan, ExecMode::Functional);
        let opt_f = run_plan(&once, ExecMode::Functional);
        let raw_bits = raw_f.output.as_slice().iter().map(|v| v.to_bits());
        let opt_bits = opt_f.output.as_slice().iter().map(|v| v.to_bits());
        if !raw_bits.eq(opt_bits) {
            return Err(Violation::OutputChanged { pass: name() });
        }
    }
    Ok(())
}

/// Checks a declared commutation on one plan: `b(a(p))` and `a(b(p))`
/// must lower to identical programs. (Programs, not renders — the
/// provenance stamp legitimately records the two orders differently.)
pub fn check_commutation(a: &dyn Pass, b: &dyn Pass, plan: &Plan) -> Result<(), Violation> {
    let ab = b.apply(&a.apply(plan));
    let ba = a.apply(&b.apply(plan));
    if lowered_programs(&ab) != lowered_programs(&ba) {
        return Err(Violation::NotCommuting { a: a.name().to_string(), b: b.name().to_string() });
    }
    Ok(())
}
