//! Cost-model-guided pass ordering: dry-run every candidate pipeline
//! (and launch configuration) through the interpreter and keep the
//! cheapest schedule.
//!
//! The interpreter's dry mode *is* the analytic workload model — every
//! span is priced by the same roofline/occupancy cost functions the
//! autotuner trains on — so "run the candidate and read the makespan"
//! is exact model-guided search, not a heuristic. The enumeration is
//! [`scalfrag_autotune::joint_argmin`] over the (pipeline × config)
//! product space, which is how the predictor's search space grows a
//! pipeline axis on top of the classic `(gridSize, blockSize)` grid.

use crate::pass::Pipeline;
use crate::passes::candidate_pipelines;
use scalfrag_autotune::joint_argmin;
use scalfrag_exec::{run_plan, ExecMode, Plan};
use scalfrag_gpusim::LaunchConfig;

/// The orderer's verdict for one plan.
#[derive(Clone, Debug)]
pub struct OrderedChoice {
    /// The winning pipeline.
    pub pipeline: Pipeline,
    /// The winning launch configuration.
    pub config: LaunchConfig,
    /// Modelled seconds of the winning `(pipeline, config)` point.
    pub est_s: f64,
    /// Modelled seconds of the raw plan under its own configuration.
    pub raw_s: f64,
    /// Points evaluated.
    pub evaluated: usize,
}

impl OrderedChoice {
    /// Modelled speedup of the chosen schedule over the raw plan
    /// (≥ 1.0 whenever the raw pipeline was a candidate).
    pub fn speedup(&self) -> f64 {
        self.raw_s / self.est_s
    }
}

/// Picks the cheapest registered pipeline for `plan` under its own
/// launch configuration.
pub fn choose_pipeline(plan: &Plan) -> OrderedChoice {
    choose_pipeline_joint(plan, &[plan.config], &candidate_pipelines())
}

/// Joint search over `(pipelines × configs)`: every point is priced by
/// applying the pipeline to the re-configured plan and dry-running it.
/// Deterministic: ties keep the earliest point, and the dry interpreter
/// is itself deterministic.
///
/// # Panics
/// Panics when either axis is empty (via [`joint_argmin`]).
pub fn choose_pipeline_joint(
    plan: &Plan,
    configs: &[LaunchConfig],
    pipelines: &[Pipeline],
) -> OrderedChoice {
    let raw_s = run_plan(plan, ExecMode::Dry).makespan();
    let choice = joint_argmin(pipelines.len(), configs.len(), |pi, ci| {
        let mut candidate = plan.clone();
        candidate.config = configs[ci];
        let optimized = pipelines[pi].apply(&candidate);
        run_plan(&optimized, ExecMode::Dry).makespan()
    });
    OrderedChoice {
        pipeline: pipelines[choice.pipeline].clone(),
        config: configs[choice.config],
        est_s: choice.cost,
        raw_s,
        evaluated: choice.evaluated,
    }
}
