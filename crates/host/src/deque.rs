//! A Chase–Lev work-stealing deque (Le et al., "Correct and Efficient
//! Work-Stealing for Weak Memory Models", PPoPP 2013), specialized to
//! `Copy` tasks.
//!
//! The owner pushes and pops at the *bottom* (LIFO — newest split first,
//! for cache locality); thieves CAS the *top* (FIFO — oldest, largest
//! range first, which is what makes recursive range splitting balance).
//!
//! Restricting `T: Copy` sidesteps the classic reclamation hazard: a
//! thief that loses the top CAS has read a value it must not use, and
//! with `Copy` tasks discarding that read is free — no drop, no
//! double-free. Buffer growth keeps every retired buffer alive until the
//! deque itself drops, so a racing thief can always safely read through
//! a stale buffer pointer (it will then fail its CAS and retry).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

const INITIAL_CAP: usize = 64;

struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T: Copy> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || UnsafeCell::new(MaybeUninit::uninit()));
        Box::into_raw(Box::new(Buffer { slots: slots.into_boxed_slice() }))
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    /// # Safety
    /// The Chase–Lev protocol guarantees no concurrent write to the same
    /// slot; stale concurrent *reads* are benign because `T: Copy`.
    unsafe fn write(&self, index: isize, value: T) {
        let slot = &self.slots[index as usize & (self.cap() - 1)];
        unsafe { (*slot.get()).write(value) };
    }

    /// # Safety
    /// Caller must hold an index in `[top, bottom)` per the protocol; a
    /// racing read of a just-overwritten slot is discarded by the failed
    /// CAS that follows it.
    unsafe fn read(&self, index: isize) -> T {
        let slot = &self.slots[index as usize & (self.cap() - 1)];
        unsafe { (*slot.get()).assume_init_read() }
    }
}

struct Inner<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, freed only when the deque drops —
    /// the poor man's epoch scheme, valid because growth is rare and
    /// buffers are small.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // T: Copy implies no destructor for remaining elements.
        unsafe { drop(Box::from_raw(self.buffer.load(Ordering::Relaxed))) };
        for &ptr in self.retired.get_mut().unwrap().iter() {
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

/// Owner handle: single-threaded `push`/`pop` at the bottom.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
}

/// Thief handle: `steal` CASes the top. Clone freely.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

/// Creates a deque, returning the owner and one thief handle.
pub fn deque<T: Copy + Send>() -> (Worker<T>, Stealer<T>) {
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Buffer::<T>::alloc(INITIAL_CAP)),
        retired: Mutex::new(Vec::new()),
    });
    (Worker { inner: Arc::clone(&inner) }, Stealer { inner })
}

impl<T: Copy + Send> Worker<T> {
    /// Pushes onto the bottom. Owner-only.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(t, b);
            }
            (*buf).write(b, value);
        }
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Doubles the buffer, copying the live `[t, b)` window. Owner-only.
    fn grow(&self, t: isize, b: isize) -> *mut Buffer<T> {
        let inner = &*self.inner;
        let old = inner.buffer.load(Ordering::Relaxed);
        let new = unsafe { Buffer::<T>::alloc((*old).cap() * 2) };
        for i in t..b {
            unsafe { (*new).write(i, (*old).read(i)) };
        }
        inner.buffer.store(new, Ordering::Release);
        inner.retired.lock().unwrap().push(old);
        new
    }

    /// Pops from the bottom (LIFO). Owner-only.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            let value = unsafe { (*buf).read(b) };
            if t == b {
                // Last element: race the thieves for it.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(value)
            } else {
                Some(value)
            }
        } else {
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }
}

impl<T: Copy + Send> Stealer<T> {
    /// Steals from the top (FIFO). Any thread. `None` means empty *or*
    /// lost a race — callers treat both as "try elsewhere".
    pub fn steal(&self) -> Option<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t < b {
            let buf = inner.buffer.load(Ordering::Acquire);
            let value = unsafe { (*buf).read(t) };
            if inner.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
                return Some(value);
            }
        }
        None
    }

    /// Racy emptiness probe — good enough for park/unpark heuristics.
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        t >= b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owner_lifo_thief_fifo() {
        let (w, s) = deque::<usize>();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(s.steal(), Some(0), "thief takes the oldest");
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Some(1));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (w, s) = deque::<usize>();
        let n = INITIAL_CAP * 4 + 3;
        for i in 0..n {
            w.push(i);
        }
        // Drain half from each end and check every value arrives once.
        let mut seen = vec![false; n];
        for _ in 0..n / 2 {
            seen[s.steal().unwrap()] = true;
        }
        while let Some(v) = w.pop() {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn concurrent_steal_stress_every_task_exactly_once() {
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let (w, s) = deque::<usize>();
        let counts: Arc<Vec<AtomicUsize>> = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                let s = s.clone();
                let counts = Arc::clone(&counts);
                scope.spawn(move || {
                    let mut idle = 0u32;
                    while idle < 10_000 {
                        match s.steal() {
                            Some(v) => {
                                counts[v].fetch_add(1, Ordering::Relaxed);
                                idle = 0;
                            }
                            None => idle += 1,
                        }
                    }
                });
            }
            // Owner interleaves pushes and pops.
            for i in 0..N {
                w.push(i);
                if i % 3 == 0 {
                    if let Some(v) = w.pop() {
                        counts[v].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = w.pop() {
                counts[v].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} not executed exactly once");
        }
    }
}
