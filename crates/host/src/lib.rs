//! `scalfrag-host` — a real work-stealing thread pool (Chase–Lev deques,
//! no external deps) plus the *deterministic* parallel primitives the
//! rest of the repo builds on.
//!
//! # The determinism contract
//!
//! The pool schedules freely — pieces run wherever stealing lands them —
//! but [`par_map`] gives every unit a private output slot, so the
//! returned `Vec` is in unit order no matter the schedule. Callers then
//! fold those per-unit results **in submission order** (the same
//! chunk-indexed reduction discipline `balance-segscan` uses for its
//! carry chain). Two consequences, both load-bearing for the repo's
//! golden fingerprint pins:
//!
//! * **Thread-count invariance:** the fold order is a function of the
//!   unit decomposition only, so 1, 2, 4 and 8 workers produce
//!   bit-identical f32 outputs. [`check::thread_invariant`] is the
//!   reusable harness for asserting this.
//! * **Sequential equivalence:** with units folded in submission order,
//!   the parallel path performs the *same add sequence* as the
//!   sequential shim did, so pre-pool golden checksums survive.
//!
//! The unit decomposition itself must therefore *not* depend on
//! [`current_num_threads`] — that was the bug class behind the stale
//! `current_num_threads() == 1` assumption this crate retires (kernels
//! now use fixed chunk counts; see `scalfrag_kernels::reference`).
//!
//! # Thread-count control
//!
//! The effective worker count is resolved per call site:
//! 1. inside a pool worker → `1` (nested parallelism runs inline —
//!    deadlock-free by construction);
//! 2. innermost [`with_threads`] override on this thread, if any;
//! 3. the `SCALFRAG_THREADS` env var, if set;
//! 4. `std::thread::available_parallelism()`.
//!
//! Pools are cached per size and shared across calls, so
//! `with_threads(4, ..)` in a loop spawns threads once.

mod deque;
mod pool;

pub mod check;

pub use pool::Pool;

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    static THREAD_OVERRIDE: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn enter_worker() {
    IN_WORKER.with(|w| w.set(true));
}

/// True on a pool worker thread (where nested parallel calls run inline).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(s) = std::env::var("SCALFRAG_THREADS") {
            if let Ok(n) = s.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// The worker count parallel primitives will use *right now* on this
/// thread (see the crate docs for the resolution order).
///
/// Chunking heuristics must **not** divide work by this value if they
/// feed a bit-pinned path — decomposition must be thread-independent.
pub fn current_num_threads() -> usize {
    if in_worker() {
        return 1;
    }
    THREAD_OVERRIDE.with(|o| o.borrow().last().copied()).unwrap_or_else(default_threads)
}

/// Runs `f` with the effective thread count pinned to `n.max(1)` on this
/// thread (nestable; innermost wins). `n <= 1` selects the inline
/// sequential path — the reference the determinism tests compare against.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    THREAD_OVERRIDE.with(|o| o.borrow_mut().push(n.max(1)));
    let _guard = Guard;
    f()
}

/// Cached pools, one per size, spawned on first use and kept for the
/// process lifetime.
fn pool_for(threads: usize) -> Arc<Pool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<Pool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    Arc::clone(pools.lock().unwrap().entry(threads).or_insert_with(|| Arc::new(Pool::new(threads))))
}

/// Runs `body(start, end)` over a partition of `0..n`, parallel when the
/// effective thread count exceeds 1, inline otherwise.
///
/// **Scheduling-only splits:** piece boundaries depend on the thread
/// count and on stealing, so `body` must be *range-fold-safe* — its
/// observable effect for `(s, e)` must equal running `(s, s+1) … (e-1, e)`
/// individually. Per-index writes to disjoint slots qualify; folding a
/// range into one accumulator does not (use [`par_map`] over explicit
/// units for that).
pub fn par_for(n: usize, grain: usize, body: impl Fn(usize, usize) + Sync) {
    if n == 0 {
        return;
    }
    let threads = current_num_threads();
    if threads <= 1 || n <= grain.max(1) {
        body(0, n);
        return;
    }
    pool_for(threads).run(n, grain, &body);
}

struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    // Accessor (rather than field access) so closures capture the whole
    // wrapper — edition-2021 disjoint capture would otherwise grab the
    // raw pointer field and lose the Send/Sync impls.
    fn get(self) -> *mut T {
        self.0
    }
}

/// Maps `f` over `0..n` in parallel, returning results **in unit order**
/// regardless of the schedule — the deterministic building block.
///
/// Each unit writes a private slot, so this is exactly as deterministic
/// as `(0..n).map(f).collect()` provided `f(i)` itself only depends on
/// `i`. Fold the returned `Vec` in order and the whole pipeline is
/// bit-identical across thread counts.
pub fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let threads = current_num_threads();
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    out.resize_with(n, MaybeUninit::uninit);
    let base = SendPtr(out.as_mut_ptr());
    // Grain 1: units are coarse by construction (kernel chunks, corpus
    // cases), so per-unit tasks are the right granularity.
    pool_for(threads).run(n, 1, &move |s, e| {
        for i in s..e {
            let value = f(i);
            unsafe { (*base.get().add(i)).write(value) };
        }
    });
    // All n slots are initialized: `run` returns only after every index
    // executed, and a worker panic would have propagated above.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), out.len(), out.capacity()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_is_in_unit_order() {
        for &threads in &[1usize, 2, 4, 8] {
            let got = with_threads(threads, || par_map(1000, |i| i * 3));
            assert_eq!(got, (0..1000).map(|i| i * 3).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn with_threads_nests_innermost_wins() {
        with_threads(4, || {
            assert_eq!(current_num_threads(), 4);
            with_threads(2, || assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 4);
        });
    }

    #[test]
    fn nested_par_map_runs_inline_without_deadlock() {
        let got = with_threads(4, || {
            par_map(16, |i| {
                // Inside a worker, current_num_threads() is 1 and this
                // nested call runs inline.
                let inner: usize = par_map(8, |j| i * j).into_iter().sum();
                inner
            })
        });
        let want: Vec<usize> = (0..16).map(|i| (0..8).map(|j| i * j).sum()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_for_covers_range() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..513).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            par_for(513, 32, |s, e| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || par_map(64, |i| if i == 13 { panic!("unlucky") } else { i }))
        });
        assert!(caught.is_err());
    }

    #[test]
    fn f32_fold_bit_identical_across_thread_counts() {
        // Order-sensitive f32 payload: if units ran out of order *and*
        // were folded in completion order, bits would move.
        let fold = |threads: usize| -> u32 {
            with_threads(threads, || {
                par_map(257, |i| (i as f32 * 0.1).sin())
                    .into_iter()
                    .fold(0.0f32, |a, b| a + b)
                    .to_bits()
            })
        };
        let golden = fold(1);
        for &t in &[2usize, 4, 8] {
            assert_eq!(fold(t), golden, "{t} threads moved bits");
        }
    }
}
