//! The thread-count-invariance harness: run a computation at pool sizes
//! 1/2/4/8 and demand bit-identical results, with 1 thread (the inline
//! sequential path) as the reference.
//!
//! This is the reusable core of the determinism test net — kernel
//! formats, plan builders, and the conformance corpus runner all assert
//! invariance through it, and the pool's own mutant self-tests prove it
//! actually catches order-sensitive reductions.

/// The pool sizes every invariance property is checked at.
pub const INVARIANCE_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Runs `f` once per entry of [`INVARIANCE_THREADS`] under
/// [`crate::with_threads`] and compares each result against the 1-thread
/// reference. Returns `Err` naming the first diverging pool size.
///
/// For f32 payloads, compare **bits**: have `f` return `Vec<u32>` via
/// `to_bits()` (or any `PartialEq + Debug` encoding of the exact output).
pub fn thread_invariant<T, F>(label: &str, f: F) -> Result<(), String>
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let reference = crate::with_threads(1, &f);
    for &threads in INVARIANCE_THREADS.iter().skip(1) {
        let got = crate::with_threads(threads, &f);
        if got != reference {
            return Err(format!(
                "{label}: output at {threads} worker threads differs from the 1-thread \
                 reference\n  1 thread : {reference:?}\n  {threads} threads: {got:?}"
            ));
        }
    }
    Ok(())
}

/// Panicking wrapper over [`thread_invariant`] for direct use in tests.
pub fn assert_thread_invariant<T, F>(label: &str, f: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    if let Err(msg) = thread_invariant(label, f) {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn accepts_a_deterministic_computation() {
        assert_thread_invariant("ordered-sum", || {
            crate::par_map(100, |i| i as f32 * 1.5).into_iter().fold(0.0f32, |a, b| a + b).to_bits()
        });
    }

    #[test]
    fn reports_the_diverging_thread_count() {
        // A computation that (deterministically) changes with the thread
        // count — the harness must name the first bad pool size (2).
        let err =
            thread_invariant("threads-leak", crate::current_num_threads).expect_err("must diverge");
        assert!(err.contains("threads-leak"), "{err}");
        assert!(err.contains("2 worker threads"), "{err}");
    }

    #[test]
    fn runs_the_closure_once_per_pool_size() {
        let calls = AtomicUsize::new(0);
        assert_thread_invariant("counted", || {
            calls.fetch_add(1, Ordering::Relaxed);
            0u32
        });
        assert_eq!(calls.load(Ordering::Relaxed), INVARIANCE_THREADS.len());
    }
}
