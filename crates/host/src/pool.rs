//! The work-stealing pool: per-worker Chase–Lev deques, a mutex-guarded
//! injector for job seeding, condvar parking, and a per-job completion
//! latch.
//!
//! A job is one `run(n, grain, body)` call: the index range `0..n` is
//! seeded into the injector as one balanced slab per worker, and each
//! worker recursively halves its slab — pushing the upper half onto its
//! own deque for thieves to take — until a piece is at most `grain`
//! indices, then runs `body(start, end)` on it. Completion is counted in
//! *indices* (not tasks), so the caller's latch trips exactly when all
//! `n` indices have executed, however the range was split.
//!
//! Determinism note: the pool itself promises nothing about *order* —
//! pieces run wherever stealing lands them. Callers that need
//! bit-deterministic results use [`crate::par_map`], which gives every
//! unit a private output slot and folds afterwards in submission order.

use crate::deque::{deque, Stealer, Worker};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A contiguous index range of one job. `Copy` so the deque never needs
/// to reclaim dropped tasks.
#[derive(Clone, Copy)]
struct Task {
    job: *const JobHeader,
    start: usize,
    end: usize,
}

// The raw job pointer is valid for the task's whole life: `run` blocks
// until every index has executed, and a queued task always holds
// unexecuted indices.
unsafe impl Send for Task {}

/// Stack-allocated per-job state shared between the caller and workers.
struct JobHeader {
    /// The caller's `&dyn Fn(usize, usize)` with its lifetime erased —
    /// sound because `run` outlives every task (see `Task`'s safety note).
    body: *const (dyn Fn(usize, usize) + Sync),
    grain: usize,
    /// Indices not yet executed; the latch trips at zero.
    pending: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload from any worker, re-thrown on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

unsafe impl Send for JobHeader {}
unsafe impl Sync for JobHeader {}

struct Shared {
    injector: Mutex<VecDeque<Task>>,
    stealers: Vec<Stealer<Task>>,
    sleep: Mutex<()>,
    wake: Condvar,
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop_injected(&self) -> Option<Task> {
        self.injector.lock().unwrap().pop_front()
    }

    fn try_steal(&self, me: usize) -> Option<Task> {
        let n = self.stealers.len();
        // Fixed probe order (me+1, me+2, …): simple and sufficient — any
        // bias only shifts *which* worker runs a piece, never the result.
        for k in 1..n {
            if let Some(t) = self.stealers[(me + k) % n].steal() {
                return Some(t);
            }
        }
        None
    }

    fn work_visible(&self, me: usize) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        let n = self.stealers.len();
        (1..n).any(|k| !self.stealers[(me + k) % n].is_empty())
    }

    fn wake_all(&self) {
        let _guard = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }

    fn wake_one_if_sleeping(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep.lock().unwrap();
            self.wake.notify_one();
        }
    }
}

/// A fixed-size work-stealing thread pool.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl Pool {
    /// Spawns `threads.max(1)` workers, parked until work arrives.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut owners = Vec::with_capacity(threads);
        let mut stealers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (w, s) = deque::<Task>();
            owners.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            stealers,
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(i, own)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scalfrag-host-{i}"))
                    .spawn(move || worker_loop(i, own, shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles: Mutex::new(handles), threads }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `body(start, end)` over a partition of `0..n` on the pool,
    /// blocking until all `n` indices have executed. Pieces never exceed
    /// `grain.max(1)` indices. Worker panics are captured and the first
    /// one is re-thrown here.
    pub fn run(&self, n: usize, grain: usize, body: &(dyn Fn(usize, usize) + Sync)) {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        // Erase `body`'s lifetime for storage in the header; sound per
        // the `Task` safety note (no task outlives this call).
        let body: &'static (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(body) };
        let header = JobHeader {
            body: body as *const (dyn Fn(usize, usize) + Sync),
            grain,
            pending: AtomicUsize::new(n),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        };
        // Seed one balanced slab per worker so everyone starts local;
        // stealing only kicks in once slabs go uneven.
        let slabs = self.threads.min(n.div_ceil(grain)).max(1);
        {
            let mut injector = self.shared.injector.lock().unwrap();
            let mut start = 0;
            for k in 0..slabs {
                let end = n * (k + 1) / slabs;
                if end > start {
                    injector.push_back(Task { job: &header, start, end });
                    start = end;
                }
            }
        }
        self.shared.wake_all();

        let mut done = header.done.lock().unwrap();
        while !*done {
            done = header.done_cv.wait(done).unwrap();
        }
        drop(done);
        let payload = header.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(index: usize, own: Worker<Task>, shared: Arc<Shared>) {
    crate::enter_worker();
    loop {
        if let Some(task) = own.pop() {
            run_task(&own, &shared, task);
            continue;
        }
        if let Some(task) = shared.pop_injected() {
            run_task(&own, &shared, task);
            continue;
        }
        if let Some(task) = shared.try_steal(index) {
            run_task(&own, &shared, task);
            continue;
        }
        // Park. Producers notify under the sleep mutex's shadow via
        // `wake_*`; the re-check after locking plus a short timeout (for
        // the lock-free own-deque push path, which notifies without the
        // lock) rules out lost-wakeup hangs.
        let guard = shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.work_visible(index) {
            continue;
        }
        shared.sleepers.fetch_add(1, Ordering::Relaxed);
        let (_guard, _timeout) = shared.wake.wait_timeout(guard, Duration::from_millis(1)).unwrap();
        shared.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
}

fn run_task(own: &Worker<Task>, shared: &Shared, task: Task) {
    let header = unsafe { &*task.job };
    let (start, mut end) = (task.start, task.end);
    // Halve until at most `grain`, exposing the upper halves to thieves.
    while end - start > header.grain {
        let mid = start + (end - start).div_ceil(2);
        own.push(Task { job: task.job, start: mid, end });
        shared.wake_one_if_sleeping();
        end = mid;
    }
    let body = unsafe { &*header.body };
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(start, end))) {
        let mut slot = header.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    let finished = end - start;
    if header.pending.fetch_sub(finished, Ordering::AcqRel) == finished {
        let mut done = header.done.lock().unwrap();
        *done = true;
        header.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n, 16, &|s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn zero_len_job_returns_immediately() {
        let pool = Pool::new(2);
        pool.run(0, 1, &|_, _| panic!("must not run"));
    }

    #[test]
    fn pieces_respect_grain() {
        let pool = Pool::new(4);
        let max_seen = AtomicUsize::new(0);
        pool.run(5_000, 64, &|s, e| {
            max_seen.fetch_max(e - s, Ordering::Relaxed);
        });
        assert!(max_seen.load(Ordering::Relaxed) <= 64);
    }

    #[test]
    fn worker_panic_reaches_caller() {
        let pool = Pool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, 1, &|s, _| {
                if s == 37 {
                    panic!("boom at 37");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
        // The pool must survive a panicked job.
        pool.run(10, 1, &|_, _| {});
    }

    #[test]
    fn many_sequential_jobs_do_not_wedge() {
        let pool = Pool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(97, 8, &|s, e| {
                total.fetch_add(e - s, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 97);
    }
}
