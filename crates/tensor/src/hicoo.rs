//! HiCOO-lite: hierarchical block-compressed COO (Li et al., SC'18).
//!
//! HiCOO groups non-zeros into aligned `2^b`-edge blocks, storing one full
//! block coordinate per block and compact `u8` local offsets per entry —
//! §II-D lists it as the COO-family format that "reduces the memory
//! required to store tensor nonzeros". This implementation keeps the core
//! idea (block grouping + narrow per-entry offsets) and is used by the
//! memory-footprint comparisons and as a compaction stage for clustered
//! tensors.

use crate::{CooTensor, Idx, Val};

/// Block edge exponent limit: local offsets are stored as `u8`, so block
/// edges can be at most `2^8`.
pub const MAX_BLOCK_BITS: u32 = 8;

/// One compressed block: the base coordinate (block index per mode) plus
/// the range of entries it owns.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Block coordinate per mode (original index >> block_bits).
    pub bidx: Vec<Idx>,
    /// Entry range `[start, end)` into the offset/value arrays.
    pub start: usize,
    /// End of the entry range.
    pub end: usize,
}

/// A sparse tensor in HiCOO-lite form.
#[derive(Clone, Debug, PartialEq)]
pub struct HiCooTensor {
    dims: Vec<Idx>,
    block_bits: u32,
    blocks: Vec<Block>,
    /// Per-entry local offsets, `order` bytes each, block-major.
    offsets: Vec<u8>,
    vals: Vec<Val>,
}

impl HiCooTensor {
    /// Compresses `coo` with blocks of edge `2^block_bits`.
    ///
    /// # Panics
    /// Panics if `block_bits` is 0 or exceeds [`MAX_BLOCK_BITS`].
    pub fn from_coo(coo: &CooTensor, block_bits: u32) -> Self {
        assert!(
            (1..=MAX_BLOCK_BITS).contains(&block_bits),
            "block_bits must be in 1..={MAX_BLOCK_BITS}"
        );
        let n = coo.order();
        let nnz = coo.nnz();

        // Sort entries by block coordinate (lexicographic), then by local
        // offset — a morton order would be fancier; lexicographic suffices.
        let mut perm: Vec<usize> = (0..nnz).collect();
        let key = |e: usize| -> Vec<Idx> {
            (0..n).map(|m| coo.mode_indices(m)[e] >> block_bits).collect()
        };
        perm.sort_by(|&a, &b| {
            key(a).cmp(&key(b)).then_with(|| {
                let la: Vec<Idx> = (0..n).map(|m| coo.mode_indices(m)[a]).collect();
                let lb: Vec<Idx> = (0..n).map(|m| coo.mode_indices(m)[b]).collect();
                la.cmp(&lb)
            })
        });

        let mask = (1u32 << block_bits) - 1;
        let mut blocks: Vec<Block> = Vec::new();
        let mut offsets = Vec::with_capacity(nnz * n);
        let mut vals = Vec::with_capacity(nnz);

        for (pos, &e) in perm.iter().enumerate() {
            let bk = key(e);
            let open_new = match blocks.last() {
                None => true,
                Some(b) => b.bidx != bk,
            };
            if open_new {
                if let Some(b) = blocks.last_mut() {
                    b.end = pos;
                }
                blocks.push(Block { bidx: bk, start: pos, end: pos });
            }
            for m in 0..n {
                offsets.push((coo.mode_indices(m)[e] & mask) as u8);
            }
            vals.push(coo.values()[e]);
        }
        if let Some(b) = blocks.last_mut() {
            b.end = nnz;
        }

        Self { dims: coo.dims().to_vec(), block_bits, blocks, offsets, vals }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes.
    pub fn dims(&self) -> &[Idx] {
        &self.dims
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of non-empty blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block edge length `2^block_bits`.
    pub fn block_edge(&self) -> Idx {
        1 << self.block_bits
    }

    /// The block list.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Average non-zeros per block — HiCOO's quality metric: higher means
    /// better compression and locality.
    pub fn avg_nnz_per_block(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.blocks.len() as f64
        }
    }

    /// Bytes of the device layout: per-block coordinates (+ range) and
    /// per-entry byte offsets + values.
    pub fn byte_size(&self) -> usize {
        self.blocks.len() * (self.order() * std::mem::size_of::<Idx>() + std::mem::size_of::<u64>())
            + self.offsets.len()
            + self.vals.len() * std::mem::size_of::<Val>()
    }

    /// Entry values (block-major order, parallel to the offsets).
    pub fn values(&self) -> &[Val] {
        &self.vals
    }

    /// Reconstructs the coordinate of entry `e`, which must belong to
    /// block `b` — O(order), no block search.
    pub fn coord_in(&self, b: &Block, e: usize) -> Vec<Idx> {
        debug_assert!((b.start..b.end).contains(&e), "entry outside the given block");
        let n = self.order();
        (0..n).map(|m| (b.bidx[m] << self.block_bits) | self.offsets[e * n + m] as Idx).collect()
    }

    /// Reconstructs the full coordinate of entry `e` (searches for the
    /// owning block; prefer [`HiCooTensor::coord_in`] in kernels).
    pub fn coord(&self, e: usize) -> Vec<Idx> {
        let b = self
            .blocks
            .iter()
            .find(|b| (b.start..b.end).contains(&e))
            .expect("entry must belong to a block");
        self.coord_in(b, e)
    }

    /// Expands back to COO.
    pub fn to_coo(&self) -> CooTensor {
        let n = self.order();
        let mut inds = vec![Vec::with_capacity(self.nnz()); n];
        for b in &self.blocks {
            for e in b.start..b.end {
                for (m, col) in inds.iter_mut().enumerate() {
                    col.push((b.bidx[m] << self.block_bits) | self.offsets[e * n + m] as Idx);
                }
            }
        }
        CooTensor::from_parts(&self.dims, inds, self.vals.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_uniform() {
        let coo = CooTensor::random_uniform(&[100, 80, 60], 400, 3);
        let h = HiCooTensor::from_coo(&coo, 4);
        assert_eq!(h.nnz(), 400);
        let back = h.to_coo();
        // Same entry multiset.
        let mut a: Vec<(Vec<Idx>, Val)> =
            (0..400).map(|e| (coo.coord(e), coo.values()[e])).collect();
        let mut b: Vec<(Vec<Idx>, Val)> =
            (0..400).map(|e| (back.coord(e), back.values()[e])).collect();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a, b);
    }

    #[test]
    fn blocks_tile_entries() {
        let coo = CooTensor::random_uniform(&[64, 64, 64], 300, 8);
        let h = HiCooTensor::from_coo(&coo, 3);
        let mut covered = 0;
        for b in h.blocks() {
            assert_eq!(b.start, covered);
            assert!(b.end > b.start, "no empty blocks stored");
            covered = b.end;
        }
        assert_eq!(covered, 300);
    }

    #[test]
    fn clustered_tensor_compresses_well() {
        let clustered = crate::gen::blocked(&[512, 512, 512], 3_000, 4, 16, 1);
        let uniform = crate::gen::uniform(&[512, 512, 512], 3_000, 1);
        let hc = HiCooTensor::from_coo(&clustered, 4);
        let hu = HiCooTensor::from_coo(&uniform, 4);
        assert!(
            hc.avg_nnz_per_block() > 4.0 * hu.avg_nnz_per_block(),
            "clustered: {} vs uniform: {}",
            hc.avg_nnz_per_block(),
            hu.avg_nnz_per_block()
        );
        assert!(hc.byte_size() < clustered.byte_size(), "HiCOO should shrink clustered data");
    }

    #[test]
    fn coord_reconstruction() {
        let coo = CooTensor::from_entries(
            &[32, 32],
            &[(vec![17, 5], 1.0), (vec![17, 6], 2.0), (vec![3, 30], 3.0)],
        );
        let h = HiCooTensor::from_coo(&coo, 3);
        // Blocks of edge 8: (17,5)->block(2,0); (3,30)->block(0,3).
        assert_eq!(h.num_blocks(), 2);
        let mut coords: Vec<Vec<Idx>> = (0..3).map(|e| h.coord(e)).collect();
        coords.sort();
        assert_eq!(coords, vec![vec![3, 30], vec![17, 5], vec![17, 6]]);
    }

    #[test]
    #[should_panic(expected = "block_bits")]
    fn rejects_oversized_blocks() {
        let coo = CooTensor::random_uniform(&[8, 8], 4, 0);
        let _ = HiCooTensor::from_coo(&coo, 9);
    }

    #[test]
    fn empty_tensor_empty_blocks() {
        let coo = CooTensor::new(&[8, 8, 8]);
        let h = HiCooTensor::from_coo(&coo, 2);
        assert_eq!(h.num_blocks(), 0);
        assert_eq!(h.avg_nnz_per_block(), 0.0);
        assert_eq!(h.to_coo().nnz(), 0);
    }
}
