//! Semi-sparse tensors: sparse in all modes but one, dense along the
//! product mode — the output type of SpTTM (sparse tensor × matrix), the
//! other core ParTI operation the paper's §VI-B discusses.
//!
//! A mode-`n` semi-sparse tensor stores one dense length-`R` fiber per
//! distinct coordinate over the remaining modes.

use crate::{CooTensor, Idx, Val};

/// A tensor dense along `mode` (with size `r`) and sparse elsewhere.
#[derive(Clone, Debug, PartialEq)]
pub struct SemiSparseTensor {
    dims: Vec<Idx>,
    mode: usize,
    /// `fiber_inds[k][f]` is the mode-`other_modes[k]` index of fiber `f`.
    fiber_inds: Vec<Vec<Idx>>,
    other_modes: Vec<usize>,
    /// Fiber-major dense values: `values[f * r + j]`.
    values: Vec<Val>,
}

impl SemiSparseTensor {
    /// Creates an empty semi-sparse tensor. `dims[mode]` is the dense
    /// extent `r`.
    pub fn new(dims: &[Idx], mode: usize) -> Self {
        assert!(mode < dims.len(), "mode out of range");
        let other_modes: Vec<usize> = (0..dims.len()).filter(|&m| m != mode).collect();
        Self {
            dims: dims.to_vec(),
            mode,
            fiber_inds: vec![Vec::new(); dims.len() - 1],
            other_modes,
            values: Vec::new(),
        }
    }

    /// Appends one dense fiber at the given sparse coordinate (indices of
    /// the non-dense modes, in ascending mode order).
    ///
    /// # Panics
    /// Panics on arity or length mismatches.
    pub fn push_fiber(&mut self, sparse_coord: &[Idx], fiber: &[Val]) {
        assert_eq!(sparse_coord.len(), self.other_modes.len(), "sparse coordinate arity");
        assert_eq!(fiber.len(), self.r(), "fiber length must equal the dense extent");
        for (k, (&c, &m)) in sparse_coord.iter().zip(&self.other_modes).enumerate() {
            assert!(c < self.dims[m], "index out of range");
            self.fiber_inds[k].push(c);
        }
        self.values.extend_from_slice(fiber);
    }

    /// The dense extent along `mode`.
    pub fn r(&self) -> usize {
        self.dims[self.mode] as usize
    }

    /// The dense mode.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Mode sizes (the dense mode reports its extent).
    pub fn dims(&self) -> &[Idx] {
        &self.dims
    }

    /// Number of stored fibers.
    pub fn num_fibers(&self) -> usize {
        self.values.len() / self.r().max(1)
    }

    /// Stored value count (`num_fibers × r`).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// The dense fiber `f`.
    pub fn fiber(&self, f: usize) -> &[Val] {
        &self.values[f * self.r()..(f + 1) * self.r()]
    }

    /// Mutable dense fiber `f`.
    pub fn fiber_mut(&mut self, f: usize) -> &mut [Val] {
        let r = self.r();
        &mut self.values[f * r..(f + 1) * r]
    }

    /// Sparse coordinate of fiber `f` (ascending non-dense modes).
    pub fn fiber_coord(&self, f: usize) -> Vec<Idx> {
        self.fiber_inds.iter().map(|iv| iv[f]).collect()
    }

    /// The non-dense mode ids.
    pub fn other_modes(&self) -> &[usize] {
        &self.other_modes
    }

    /// Expands to COO, dropping explicit zeros.
    pub fn to_coo(&self) -> CooTensor {
        let mut t = CooTensor::new(&self.dims);
        let mut coord = vec![0 as Idx; self.dims.len()];
        for f in 0..self.num_fibers() {
            let sc = self.fiber_coord(f);
            for (k, &m) in self.other_modes.iter().enumerate() {
                coord[m] = sc[k];
            }
            for (j, &v) in self.fiber(f).iter().enumerate() {
                if v != 0.0 {
                    coord[self.mode] = j as Idx;
                    t.push(&coord, v);
                }
            }
        }
        t
    }

    /// Bytes of the device layout.
    pub fn byte_size(&self) -> usize {
        self.fiber_inds.len() * self.num_fibers() * std::mem::size_of::<Idx>()
            + self.values.len() * std::mem::size_of::<Val>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access_fibers() {
        let mut t = SemiSparseTensor::new(&[4, 3, 8], 2);
        t.push_fiber(&[1, 2], &[1.0; 8]);
        t.push_fiber(&[3, 0], &[2.0; 8]);
        assert_eq!(t.r(), 8);
        assert_eq!(t.num_fibers(), 2);
        assert_eq!(t.fiber_coord(1), vec![3, 0]);
        assert_eq!(t.fiber(0), &[1.0; 8]);
        assert_eq!(t.other_modes(), &[0, 1]);
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // spelled-out index maths
    fn to_coo_drops_zeros() {
        let mut t = SemiSparseTensor::new(&[2, 2, 3], 2);
        t.push_fiber(&[0, 1], &[1.0, 0.0, 2.0]);
        let coo = t.to_coo();
        assert_eq!(coo.nnz(), 2);
        let dense = coo.to_dense();
        // (0,1,0)=1, (0,1,2)=2
        assert_eq!(dense[(0 * 2 + 1) * 3], 1.0);
        assert_eq!(dense[(0 * 2 + 1) * 3 + 2], 2.0);
    }

    #[test]
    #[should_panic(expected = "fiber length")]
    fn wrong_fiber_length_panics() {
        let mut t = SemiSparseTensor::new(&[2, 2, 3], 2);
        t.push_fiber(&[0, 0], &[1.0, 2.0]);
    }

    #[test]
    fn dense_mode_zero() {
        let mut t = SemiSparseTensor::new(&[5, 3, 3], 0);
        t.push_fiber(&[2, 1], &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.r(), 5);
        assert_eq!(t.other_modes(), &[1, 2]);
        assert_eq!(t.to_coo().nnz(), 5);
    }
}
