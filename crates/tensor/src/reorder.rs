//! Slice reordering — the load-balancing trick of BCSF (Nisa et al.,
//! §II-D: "mainly optimize the load imbalance issue of CSF format").
//!
//! Sorting the target mode's slices by population groups similarly-sized
//! slices, so that slice-parallel kernels (CSF-fiber) and slice-aligned
//! segmentation see balanced work, and the heaviest slices can be peeled
//! off for special handling (e.g. the hybrid CPU split, or a dedicated
//! heavy-slice kernel as in BCSF).

use crate::{CooTensor, Idx};

/// A relabeling of one mode's indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceOrder {
    mode: usize,
    /// `new_of_old[i]` = new index of original slice `i`.
    new_of_old: Vec<Idx>,
    /// `old_of_new[j]` = original index of new slice `j`.
    old_of_new: Vec<Idx>,
}

impl SliceOrder {
    /// Builds the permutation that sorts mode-`mode` slices by descending
    /// non-zero count (heaviest slice becomes index 0).
    pub fn by_descending_population(tensor: &CooTensor, mode: usize) -> Self {
        let hist = tensor.slice_nnz_histogram(mode);
        let mut old: Vec<Idx> = (0..hist.len() as Idx).collect();
        old.sort_by(|&a, &b| hist[b as usize].cmp(&hist[a as usize]).then(a.cmp(&b)));
        let mut new_of_old = vec![0 as Idx; hist.len()];
        for (new, &o) in old.iter().enumerate() {
            new_of_old[o as usize] = new as Idx;
        }
        Self { mode, new_of_old, old_of_new: old }
    }

    /// The reordered mode.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// New index of original slice `old`.
    pub fn new_index(&self, old: Idx) -> Idx {
        self.new_of_old[old as usize]
    }

    /// Original index of new slice `new` (for mapping results back).
    pub fn old_index(&self, new: Idx) -> Idx {
        self.old_of_new[new as usize]
    }

    /// Applies the relabeling to a tensor, returning the renumbered copy.
    pub fn apply(&self, tensor: &CooTensor) -> CooTensor {
        let mut inds: Vec<Vec<Idx>> =
            (0..tensor.order()).map(|m| tensor.mode_indices(m).to_vec()).collect();
        for i in inds[self.mode].iter_mut() {
            *i = self.new_of_old[*i as usize];
        }
        CooTensor::from_parts(tensor.dims(), inds, tensor.values().to_vec())
    }

    /// Maps a result matrix computed in the reordered numbering back to
    /// the original slice order (rows are permuted in place).
    pub fn unpermute_rows(&self, reordered_rows: &[f32], rank: usize) -> Vec<f32> {
        let n = self.new_of_old.len();
        assert_eq!(reordered_rows.len(), n * rank, "row buffer shape mismatch");
        let mut out = vec![0.0f32; n * rank];
        for old in 0..n {
            let new = self.new_of_old[old] as usize;
            out[old * rank..(old + 1) * rank]
                .copy_from_slice(&reordered_rows[new * rank..(new + 1) * rank]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> CooTensor {
        crate::gen::zipf_slices(&[50, 30, 30], 2_000, 1.2, 3)
    }

    #[test]
    fn heaviest_slice_becomes_first() {
        let t = skewed();
        let order = SliceOrder::by_descending_population(&t, 0);
        let reordered = order.apply(&t);
        let hist = reordered.slice_nnz_histogram(0);
        for w in hist.windows(2) {
            assert!(w[0] >= w[1], "histogram must be non-increasing: {hist:?}");
        }
        assert_eq!(reordered.nnz(), t.nnz());
    }

    #[test]
    fn permutation_is_a_bijection() {
        let t = skewed();
        let order = SliceOrder::by_descending_population(&t, 0);
        for old in 0..50u32 {
            assert_eq!(order.old_index(order.new_index(old)), old);
        }
    }

    #[test]
    fn mttkrp_commutes_with_reordering() {
        // MTTKRP(reorder(X)) row j == MTTKRP(X) row old_index(j): verified
        // through the unpermute helper using a cheap proxy computation
        // (row sums of slice values).
        let t = skewed();
        let order = SliceOrder::by_descending_population(&t, 0);
        let reordered = order.apply(&t);

        let rank = 1usize;
        let mut direct = [0.0f32; 50];
        for e in 0..t.nnz() {
            direct[t.mode_indices(0)[e] as usize] += t.values()[e];
        }
        let mut re = vec![0.0f32; 50];
        for e in 0..reordered.nnz() {
            re[reordered.mode_indices(0)[e] as usize] += reordered.values()[e];
        }
        let back = order.unpermute_rows(&re, rank);
        for (a, b) in direct.iter().zip(&back) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn reordering_other_modes_untouched() {
        let t = skewed();
        let order = SliceOrder::by_descending_population(&t, 0);
        let reordered = order.apply(&t);
        assert_eq!(reordered.mode_indices(1), t.mode_indices(1));
        assert_eq!(reordered.mode_indices(2), t.mode_indices(2));
        assert_eq!(reordered.values(), t.values());
    }
}
