//! Chunked COO: the load-balanced layout of Nisa et al. ("Load-Balanced
//! Sparse MTTKRP on GPUs", IPDPS'19), the format behind the
//! `balance-segscan` kernel arm.
//!
//! Slice- and fiber-parallel kernels inherit the tensor's skew: one heavy
//! row serializes a whole block. This layout instead cuts the mode-sorted
//! entry stream into *fixed-size chunks of `chunk_len` non-zeros* with no
//! regard for slice or fiber boundaries, so every chunk carries identical
//! work. Rows that straddle a chunk boundary are recorded as *boundary
//! rows* with their full entry range; the companion kernel in
//! `scalfrag-balance` folds interior rows chunk-locally and resolves each
//! boundary row with a carry chain that walks its entries in storage
//! order — one strict left-to-right fold per output row, which is what
//! makes the result bit-stable across chunk counts.

use crate::{CooTensor, Idx, Val};

/// An output row cut by at least one chunk boundary, with the full
/// (contiguous, mode-sorted) entry range it owns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundaryRow {
    /// The mode-`mode` index of the cut row.
    pub row: Idx,
    /// First entry of the row.
    pub start: usize,
    /// One past the last entry of the row.
    pub end: usize,
}

/// A sparse tensor cut into fixed-nnz chunks for one target mode.
#[derive(Clone, Debug, PartialEq)]
pub struct ChunkedTensor {
    dims: Vec<Idx>,
    mode: usize,
    /// Output row of each entry (mode-sorted order).
    rows: Vec<Idx>,
    /// Original mode ids of `other_inds` rows.
    other_modes: Vec<usize>,
    /// Indices of the non-target modes, per entry.
    other_inds: Vec<Vec<Idx>>,
    vals: Vec<Val>,
    /// Entries per chunk (the kernel's fixed work unit).
    chunk_len: usize,
    /// Rows cut by a chunk boundary, ascending by `start`.
    boundary: Vec<BoundaryRow>,
}

impl ChunkedTensor {
    /// Builds the chunked representation of `coo` for `mode`, cutting the
    /// mode-sorted entry stream every `chunk_len` non-zeros.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0` or `mode` is out of range.
    pub fn from_coo(coo: &CooTensor, mode: usize, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        assert!(mode < coo.order(), "mode out of range");
        let mut sorted = coo.clone();
        sorted.sort_for_mode(mode);

        let nnz = sorted.nnz();
        let rows: Vec<Idx> = sorted.mode_indices(mode).to_vec();
        let other_modes: Vec<usize> = (0..coo.order()).filter(|&m| m != mode).collect();
        let other_inds: Vec<Vec<Idx>> =
            other_modes.iter().map(|&m| sorted.mode_indices(m).to_vec()).collect();

        // A run [s, e) of one row is cut iff it spans a chunk boundary,
        // i.e. its first and last entries land in different chunks.
        let mut boundary = Vec::new();
        let mut s = 0usize;
        for e in 0..nnz {
            if e + 1 == nnz || rows[e + 1] != rows[e] {
                if s / chunk_len != e / chunk_len {
                    boundary.push(BoundaryRow { row: rows[e], start: s, end: e + 1 });
                }
                s = e + 1;
            }
        }

        Self {
            dims: coo.dims().to_vec(),
            mode,
            rows,
            other_modes,
            other_inds,
            vals: sorted.values().to_vec(),
            chunk_len,
            boundary,
        }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes.
    pub fn dims(&self) -> &[Idx] {
        &self.dims
    }

    /// The target mode this representation is specialised for.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Non-zero count.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Entries per chunk.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.nnz().div_ceil(self.chunk_len)
    }

    /// Entry range of chunk `c`.
    pub fn chunk_range(&self, c: usize) -> std::ops::Range<usize> {
        let start = c * self.chunk_len;
        start..(start + self.chunk_len).min(self.nnz())
    }

    /// Output row of entry `e`.
    pub fn row(&self, e: usize) -> Idx {
        self.rows[e]
    }

    /// Whether chunk `c` begins mid-row (its first entry continues the
    /// previous chunk's last row, so the row is a boundary row).
    pub fn chunk_continues(&self, c: usize) -> bool {
        let start = c * self.chunk_len;
        start > 0 && start < self.nnz() && self.rows[start] == self.rows[start - 1]
    }

    /// The rows cut by chunk boundaries, ascending by entry range — the
    /// carry chain's worklist. Disjoint from every interior row.
    pub fn boundary_rows(&self) -> &[BoundaryRow] {
        &self.boundary
    }

    /// The non-target mode ids, in storage order.
    pub fn other_modes(&self) -> &[usize] {
        &self.other_modes
    }

    /// Indices of the `k`-th non-target mode.
    pub fn other_indices(&self, k: usize) -> &[Idx] {
        &self.other_inds[k]
    }

    /// Entry values.
    pub fn values(&self) -> &[Val] {
        &self.vals
    }

    /// Bytes of the device layout: the mode-sorted COO arrays plus one
    /// per-chunk carry descriptor (row id + continuation flag).
    pub fn byte_size(&self) -> usize {
        self.nnz() * (self.order() * std::mem::size_of::<Idx>() + std::mem::size_of::<Val>())
            + self.num_chunks() * 8
    }

    /// Expands back to COO (sorted for the target mode).
    pub fn to_coo(&self) -> CooTensor {
        let mut inds = vec![Vec::with_capacity(self.nnz()); self.order()];
        inds[self.mode] = self.rows.clone();
        for (k, &m) in self.other_modes.iter().enumerate() {
            inds[m] = self.other_inds[k].clone();
        }
        CooTensor::from_parts(&self.dims, inds, self.vals.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        CooTensor::from_entries(
            &[4, 3, 2],
            &[
                (vec![2, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![2, 2, 1], 3.0),
                (vec![0, 0, 0], 4.0),
                (vec![3, 1, 0], 5.0),
            ],
        )
    }

    #[test]
    fn chunks_ignore_row_boundaries() {
        // Sorted rows: 0,0,2,2,3. chunk_len 2 cuts at entries 2 and 4:
        // the cut at 2 falls between rows (0|2), the one at 4 too (2|3).
        let c = ChunkedTensor::from_coo(&sample(), 0, 2);
        assert_eq!(c.num_chunks(), 3);
        assert!(!c.chunk_continues(1));
        assert!(!c.chunk_continues(2));
        assert!(c.boundary_rows().is_empty());
        // chunk_len 3 cuts at entry 3, mid-row 2 -> row 2 is a boundary row.
        let c3 = ChunkedTensor::from_coo(&sample(), 0, 3);
        assert!(c3.chunk_continues(1));
        assert_eq!(c3.boundary_rows(), &[BoundaryRow { row: 2, start: 2, end: 4 }]);
    }

    #[test]
    fn boundary_rows_are_exactly_the_cut_runs() {
        let base = CooTensor::random_uniform(&[24, 18, 12], 800, 5);
        for mode in 0..3 {
            for chunk_len in [16usize, 64, 1024] {
                let c = ChunkedTensor::from_coo(&base, mode, chunk_len);
                let mut covered = std::collections::HashSet::new();
                for b in c.boundary_rows() {
                    assert!(b.start < b.end && b.end <= c.nnz());
                    // The range really is the row's full run.
                    assert!((b.start..b.end).all(|e| c.row(e) == b.row));
                    assert!(b.start == 0 || c.row(b.start - 1) != b.row);
                    assert!(b.end == c.nnz() || c.row(b.end) != b.row);
                    // And it really is cut.
                    assert_ne!(b.start / chunk_len, (b.end - 1) / chunk_len);
                    assert!(covered.insert(b.row), "boundary rows listed once");
                }
                // Every uncut run stays interior.
                for e in 0..c.nnz() {
                    let cut_here = e > 0 && e % chunk_len == 0 && c.row(e) == c.row(e - 1);
                    if cut_here {
                        assert!(covered.contains(&c.row(e)), "cut row must be listed");
                    }
                }
            }
        }
    }

    #[test]
    fn round_trip_matches_sorted_coo() {
        let base = CooTensor::random_uniform(&[20, 15, 10], 300, 7);
        for mode in 0..3 {
            let c = ChunkedTensor::from_coo(&base, mode, 64);
            let mut sorted = base.clone();
            sorted.sort_for_mode(mode);
            assert_eq!(c.to_coo(), sorted, "mode {mode}");
        }
    }

    #[test]
    fn chunk_ranges_tile_entries() {
        let base = CooTensor::random_uniform(&[30, 20, 10], 500, 11);
        let c = ChunkedTensor::from_coo(&base, 1, 64);
        let mut covered = 0;
        for k in 0..c.num_chunks() {
            let r = c.chunk_range(k);
            assert_eq!(r.start, covered);
            assert_eq!(r.len(), 64.min(500 - covered));
            covered = r.end;
        }
        assert_eq!(covered, 500);
    }

    #[test]
    fn works_on_4way() {
        let base = CooTensor::random_uniform(&[8, 7, 6, 5], 200, 13);
        let c = ChunkedTensor::from_coo(&base, 2, 32);
        assert_eq!(c.other_modes(), &[0, 1, 3]);
        assert_eq!(c.to_coo().nnz(), 200);
    }

    #[test]
    #[should_panic(expected = "chunk length")]
    fn zero_chunk_len_rejected() {
        let _ = ChunkedTensor::from_coo(&sample(), 0, 0);
    }
}
