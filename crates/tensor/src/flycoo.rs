//! FLYCOO: a mode-agnostic coordinate layout (after Wijeratne et al.,
//! "Dynamic Tensor Remapping for FPGA/GPU tensor decomposition"), the
//! format behind the `balance-flycoo` kernel arm.
//!
//! Mode-specialised formats (CSF, F-COO, the chunked layout) must re-sort
//! or re-tile the tensor for every MTTKRP mode, so a CPD-ALS sweep over an
//! order-`N` tensor either keeps `N` sorted copies resident or pays the
//! re-tiling on every iteration. FLYCOO keeps **one copy** of the index
//! and value arrays in their original order and adds one *remap table*
//! per mode: `remap(m)[k]` is the entry id of the `k`-th non-zero in
//! mode-`m` processing order. A kernel for mode `m` streams `k` through
//! the remap table and sees entries grouped by output row — the same
//! segmented-reduction shape as F-COO — while all modes share the entry
//! storage. For rank-`N` ALS that trades `(N−1)·(order·4+4)·nnz` bytes of
//! extra copies for `N·4·nnz` bytes of remap tables.
//!
//! Like the chunked layout, rows whose remap run straddles a partition
//! boundary are recorded per mode as boundary rows, so the companion
//! kernel can fold every output row in one strict left-to-right pass and
//! stay bit-stable across partition counts.

use crate::chunked::BoundaryRow;
use crate::{CooTensor, Idx, Val};

/// A sparse tensor in FLYCOO form: one entry copy + per-mode remap tables.
#[derive(Clone, Debug, PartialEq)]
pub struct FlycooTensor {
    dims: Vec<Idx>,
    /// `inds[m][e]`: mode-`m` coordinate of entry `e`, original order.
    inds: Vec<Vec<Idx>>,
    vals: Vec<Val>,
    /// `perms[m][k]`: entry id of the `k`-th non-zero in mode-`m` order
    /// (sorted by mode-`m` coordinate, ties by entry id — stable).
    perms: Vec<Vec<u32>>,
    /// Entries per partition (the kernel's work unit), shared by all modes.
    seg_len: usize,
    /// Per mode: rows whose remap run is cut by a partition boundary,
    /// with their full `k`-ranges (remap positions, not entry ids).
    boundary: Vec<Vec<BoundaryRow>>,
}

impl FlycooTensor {
    /// Builds the FLYCOO representation of `coo`, partitioned every
    /// `seg_len` remap positions. All modes are served by this one value.
    ///
    /// # Panics
    /// Panics if `seg_len == 0`.
    pub fn from_coo(coo: &CooTensor, seg_len: usize) -> Self {
        assert!(seg_len > 0, "segment length must be positive");
        let nnz = coo.nnz();
        assert!(nnz <= u32::MAX as usize, "remap tables are u32-indexed");
        let inds: Vec<Vec<Idx>> = (0..coo.order()).map(|m| coo.mode_indices(m).to_vec()).collect();

        let mut perms = Vec::with_capacity(coo.order());
        let mut boundary = Vec::with_capacity(coo.order());
        for mode_inds in &inds {
            let mut perm: Vec<u32> = (0..nnz as u32).collect();
            perm.sort_unstable_by_key(|&e| (mode_inds[e as usize], e));
            // Runs of one output row in remap order; cut runs become
            // boundary rows exactly as in the chunked layout.
            let mut rows_boundary = Vec::new();
            let mut s = 0usize;
            for k in 0..nnz {
                let row = mode_inds[perm[k] as usize];
                if k + 1 == nnz || mode_inds[perm[k + 1] as usize] != row {
                    if s / seg_len != k / seg_len {
                        rows_boundary.push(BoundaryRow { row, start: s, end: k + 1 });
                    }
                    s = k + 1;
                }
            }
            perms.push(perm);
            boundary.push(rows_boundary);
        }

        Self {
            dims: coo.dims().to_vec(),
            inds,
            vals: coo.values().to_vec(),
            perms,
            seg_len,
            boundary,
        }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes.
    pub fn dims(&self) -> &[Idx] {
        &self.dims
    }

    /// Non-zero count.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Partition length.
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// Number of partitions (identical for every mode).
    pub fn num_partitions(&self) -> usize {
        self.nnz().div_ceil(self.seg_len)
    }

    /// Remap-position range of partition `p`.
    pub fn partition_range(&self, p: usize) -> std::ops::Range<usize> {
        let start = p * self.seg_len;
        start..(start + self.seg_len).min(self.nnz())
    }

    /// The mode-`m` remap table: entry ids in mode-`m` processing order.
    pub fn remap(&self, m: usize) -> &[u32] {
        &self.perms[m]
    }

    /// Output row of the `k`-th remap position for mode `m`.
    pub fn row_at(&self, m: usize, k: usize) -> Idx {
        self.inds[m][self.perms[m][k] as usize]
    }

    /// Mode-`m` coordinates of all entries, original order.
    pub fn mode_indices(&self, m: usize) -> &[Idx] {
        &self.inds[m]
    }

    /// Entry values, original order.
    pub fn values(&self) -> &[Val] {
        &self.vals
    }

    /// Whether partition `p` of mode `m` begins mid-row.
    pub fn partition_continues(&self, m: usize, p: usize) -> bool {
        let start = p * self.seg_len;
        start > 0 && start < self.nnz() && self.row_at(m, start) == self.row_at(m, start - 1)
    }

    /// The mode-`m` rows cut by partition boundaries (`k`-ranges).
    pub fn boundary_rows(&self, m: usize) -> &[BoundaryRow] {
        &self.boundary[m]
    }

    /// Bytes of the device layout: one COO copy plus `order` remap tables.
    pub fn byte_size(&self) -> usize {
        self.nnz()
            * (self.order() * std::mem::size_of::<Idx>()
                + std::mem::size_of::<Val>()
                + self.order() * std::mem::size_of::<u32>())
    }

    /// Bytes an ALS sweep would need with per-mode sorted copies instead —
    /// the baseline FLYCOO's single copy competes against.
    pub fn per_mode_copies_byte_size(&self) -> usize {
        self.order()
            * self.nnz()
            * (self.order() * std::mem::size_of::<Idx>() + std::mem::size_of::<Val>())
    }

    /// Expands back to COO (original entry order).
    pub fn to_coo(&self) -> CooTensor {
        CooTensor::from_parts(&self.dims, self.inds.clone(), self.vals.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        CooTensor::from_entries(
            &[4, 3, 2],
            &[
                (vec![2, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![2, 2, 1], 3.0),
                (vec![0, 0, 0], 4.0),
                (vec![3, 1, 0], 5.0),
            ],
        )
    }

    #[test]
    fn remap_orders_every_mode_without_moving_entries() {
        let f = FlycooTensor::from_coo(&sample(), 2);
        // Entry storage untouched.
        assert_eq!(f.to_coo(), sample());
        for m in 0..3 {
            // Remap is a permutation…
            let mut seen = f.remap(m).to_vec();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4], "mode {m}");
            // …and walks the rows in nondecreasing order.
            for k in 1..f.nnz() {
                assert!(f.row_at(m, k - 1) <= f.row_at(m, k), "mode {m} position {k}");
            }
        }
        // Mode 0 order: rows 0,0,2,2,3 with stable tie-break by entry id:
        // entries 1,3 (row 0), 0,2 (row 2), 4 (row 3).
        assert_eq!(f.remap(0), &[1, 3, 0, 2, 4]);
    }

    #[test]
    fn boundary_rows_match_cut_runs_per_mode() {
        let f = FlycooTensor::from_coo(&sample(), 3);
        // Mode 0, seg_len 3: rows 0,0,2,2,3 cut at k=3 mid-row 2.
        assert!(f.partition_continues(0, 1));
        assert_eq!(f.boundary_rows(0), &[BoundaryRow { row: 2, start: 2, end: 4 }]);
        let base = CooTensor::random_uniform(&[24, 18, 12], 800, 5);
        let f = FlycooTensor::from_coo(&base, 64);
        for m in 0..3 {
            for b in f.boundary_rows(m) {
                assert!((b.start..b.end).all(|k| f.row_at(m, k) == b.row));
                assert!(b.start == 0 || f.row_at(m, b.start - 1) != b.row);
                assert!(b.end == f.nnz() || f.row_at(m, b.end) != b.row);
                assert_ne!(b.start / 64, (b.end - 1) / 64, "must really be cut");
            }
        }
    }

    #[test]
    fn one_copy_beats_per_mode_copies() {
        let base = CooTensor::random_uniform(&[100, 80, 60], 5_000, 9);
        let f = FlycooTensor::from_coo(&base, 128);
        // 3 remap tables (12 B/entry) vs 2 extra copies (32 B/entry).
        assert!(f.byte_size() < f.per_mode_copies_byte_size());
        assert_eq!(f.byte_size(), 5_000 * (3 * 4 + 4 + 3 * 4));
    }

    #[test]
    fn works_on_4way() {
        let base = CooTensor::random_uniform(&[8, 7, 6, 5], 200, 13);
        let f = FlycooTensor::from_coo(&base, 32);
        assert_eq!(f.num_partitions(), 7);
        for m in 0..4 {
            let mut seen = f.remap(m).to_vec();
            seen.sort_unstable();
            assert_eq!(seen.len(), 200);
            assert!((1..f.nnz()).all(|k| f.row_at(m, k - 1) <= f.row_at(m, k)));
        }
    }

    #[test]
    #[should_panic(expected = "segment length")]
    fn zero_seg_len_rejected() {
        let _ = FlycooTensor::from_coo(&sample(), 0);
    }
}
