//! Compressed Sparse Fiber (CSF) format.
//!
//! CSF (Smith & Karypis, §II-D / Fig. 2) compresses the sorted coordinate
//! list into a tree: level 0 holds the distinct root-mode indices (slices),
//! each inner level holds the distinct next-mode indices within its parent,
//! and the leaf level holds the final-mode indices with the values. It is
//! the tree-family representative against which the COO kernels are
//! compared, and it is what the CSF fiber-parallel simulated kernel
//! consumes.

use crate::{CooTensor, Idx, Val};

/// A sparse tensor in CSF form for one particular mode ordering.
///
/// `fids[l]` are the node indices of level `l` (level 0 = root slices,
/// level `order-1` = leaves). For every non-leaf level `l`, node `i` owns
/// the children `fptr[l][i] .. fptr[l][i+1]` of level `l+1`. `vals[j]` is
/// the value of leaf `j`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsfTensor {
    dims: Vec<Idx>,
    mode_order: Vec<usize>,
    fids: Vec<Vec<Idx>>,
    fptr: Vec<Vec<usize>>,
    vals: Vec<Val>,
}

impl CsfTensor {
    /// Compresses `coo` for mode-`mode` processing: the tree is rooted at
    /// mode `mode` with the remaining modes in ascending order (the paper's
    /// `CSF (mode 1)` of Fig. 2).
    ///
    /// The input does not need to be pre-sorted; a sorted copy is taken.
    pub fn from_coo(coo: &CooTensor, mode: usize) -> Self {
        let order = coo.mode_order(mode);
        let mut sorted = coo.clone();
        sorted.sort_by_order(&order);
        sorted.dedup_sum(&order);
        Self::from_sorted_coo(&sorted, order)
    }

    /// Compresses an already sorted COO tensor with the given mode ordering.
    /// `coo` must be sorted by `mode_order`; duplicate coordinates are
    /// merged by summation.
    pub fn from_sorted_coo(coo: &CooTensor, mode_order: Vec<usize>) -> Self {
        debug_assert!(coo.is_sorted_by_order(&mode_order));
        let n = coo.order();
        assert_eq!(mode_order.len(), n);
        let nnz = coo.nnz();

        let mut fids: Vec<Vec<Idx>> = vec![Vec::new(); n];
        let mut fptr: Vec<Vec<usize>> = vec![vec![0]; n.saturating_sub(1)];
        let mut vals: Vec<Val> = Vec::with_capacity(nnz);

        // Invariant maintained throughout: for every non-leaf level `l`,
        // `fptr[l]` has one slot per opened node plus the leading 0, and its
        // last slot equals `fids[l+1].len()` (the end of the open node's
        // child range).
        let mut prev: Option<Vec<Idx>> = None;
        for e in 0..nnz {
            let key: Vec<Idx> = mode_order.iter().map(|&m| coo.mode_indices(m)[e]).collect();
            let d = match &prev {
                None => 0,
                Some(p) => (0..n).find(|&l| p[l] != key[l]).unwrap_or(n),
            };
            if d == n {
                // Exact duplicate coordinate: merge into the open leaf.
                *vals.last_mut().expect("duplicate implies a previous leaf") += coo.values()[e];
                continue;
            }
            // Open new nodes at levels d..N-1.
            for l in d..n {
                fids[l].push(key[l]);
            }
            // The parent at level d-1 gained a child: refresh its end.
            if d > 0 {
                *fptr[d - 1].last_mut().unwrap() = fids[d].len();
            }
            // Every newly opened non-leaf node gets its own end slot,
            // currently covering exactly the one child just pushed.
            for l in d..n - 1 {
                fptr[l].push(fids[l + 1].len());
            }
            vals.push(coo.values()[e]);
            prev = Some(key);
        }
        for l in 0..n.saturating_sub(1) {
            debug_assert_eq!(fptr[l].len(), fids[l].len() + 1);
            debug_assert_eq!(*fptr[l].last().unwrap(), fids[l + 1].len());
        }

        Self { dims: coo.dims().to_vec(), mode_order, fids, fptr, vals }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes (in original mode numbering).
    pub fn dims(&self) -> &[Idx] {
        &self.dims
    }

    /// The mode permutation: `mode_order()[0]` is the root mode.
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of root slices (level-0 nodes).
    pub fn num_slices(&self) -> usize {
        self.fids[0].len()
    }

    /// Number of leaf-parent fibers (level `order-2` nodes); for an order-3
    /// tensor this is the `numFibers` feature of §IV-B.
    pub fn num_fibers(&self) -> usize {
        if self.order() < 2 {
            self.nnz()
        } else {
            self.fids[self.order() - 2].len()
        }
    }

    /// Node indices of level `l`.
    pub fn fids(&self, l: usize) -> &[Idx] {
        &self.fids[l]
    }

    /// Child pointers of non-leaf level `l` (`len == fids(l).len() + 1`).
    pub fn fptr(&self, l: usize) -> &[usize] {
        &self.fptr[l]
    }

    /// Leaf values.
    pub fn values(&self) -> &[Val] {
        &self.vals
    }

    /// Bytes of the device layout of this CSF tree.
    pub fn byte_size(&self) -> usize {
        let fid_bytes: usize = self.fids.iter().map(|f| f.len() * std::mem::size_of::<Idx>()).sum();
        let ptr_bytes: usize = self.fptr.iter().map(|p| p.len() * std::mem::size_of::<u64>()).sum();
        fid_bytes + ptr_bytes + self.vals.len() * std::mem::size_of::<Val>()
    }

    /// Expands back to COO (entries sorted by this tree's mode ordering).
    pub fn to_coo(&self) -> CooTensor {
        let n = self.order();
        let nnz = self.nnz();
        let mut inds = vec![vec![0 as Idx; nnz]; n];

        // Walk leaves; for each leaf find its ancestor chain. We do this
        // iteratively per level with ranges rather than recursion.
        // path[l] = current node index at level l.
        fn walk(
            csf: &CsfTensor,
            level: usize,
            node: usize,
            prefix: &mut Vec<Idx>,
            inds: &mut [Vec<Idx>],
        ) {
            prefix.push(csf.fids[level][node]);
            if level == csf.order() - 1 {
                let e = node; // leaf index == entry index
                for (l, &m) in csf.mode_order.iter().enumerate() {
                    inds[m][e] = prefix[l];
                }
            } else {
                for child in csf.fptr[level][node]..csf.fptr[level][node + 1] {
                    walk(csf, level + 1, child, prefix, inds);
                }
            }
            prefix.pop();
        }

        let mut prefix = Vec::with_capacity(n);
        for root in 0..self.fids[0].len() {
            walk(self, 0, root, &mut prefix, &mut inds);
        }
        CooTensor::from_parts(&self.dims, inds, self.vals.clone())
    }

    /// The entry range (leaf span) of root slice `s` — used for slice-level
    /// work partitioning.
    pub fn slice_leaf_range(&self, s: usize) -> std::ops::Range<usize> {
        // Descend the pointer arrays from level 0 to the leaf level.
        let (mut lo, mut hi) = (s, s + 1);
        for l in 0..self.order() - 1 {
            lo = self.fptr[l][lo];
            hi = self.fptr[l][hi];
        }
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_tensor() -> CooTensor {
        CooTensor::from_entries(
            &[4, 4, 2],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 2, 1], 2.0),
                (vec![1, 0, 1], 3.0),
                (vec![1, 3, 0], 4.0),
                (vec![2, 1, 0], 5.0),
                (vec![2, 1, 1], 6.0),
                (vec![3, 2, 0], 7.0),
                (vec![3, 3, 1], 8.0),
            ],
        )
    }

    #[test]
    fn structure_of_fig2_mode0() {
        let csf = CsfTensor::from_coo(&fig2_tensor(), 0);
        // 4 slices, one per i value.
        assert_eq!(csf.num_slices(), 4);
        assert_eq!(csf.fids(0), &[0, 1, 2, 3]);
        // Slice 2 has a single fiber (2,1,:) holding two leaves.
        assert_eq!(csf.fids(1).len(), 7, "7 distinct (i,j) fibers");
        assert_eq!(csf.num_fibers(), 7);
        assert_eq!(csf.nnz(), 8);
        // Pointer arrays have len = nodes + 1 and are monotone.
        for l in 0..2 {
            assert_eq!(csf.fptr(l).len(), csf.fids(l).len() + 1);
            assert!(csf.fptr(l).windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(*csf.fptr(0).last().unwrap(), csf.fids(1).len());
        assert_eq!(*csf.fptr(1).last().unwrap(), csf.nnz());
    }

    #[test]
    fn round_trip_all_modes() {
        let base = fig2_tensor();
        for mode in 0..3 {
            let csf = CsfTensor::from_coo(&base, mode);
            let back = csf.to_coo();
            assert_eq!(back.nnz(), base.nnz());
            // Compare as sorted entry sets.
            let mut a: Vec<(Vec<Idx>, Val)> =
                (0..base.nnz()).map(|e| (base.coord(e), base.values()[e])).collect();
            let mut b: Vec<(Vec<Idx>, Val)> =
                (0..back.nnz()).map(|e| (back.coord(e), back.values()[e])).collect();
            a.sort_by(|x, y| x.0.cmp(&y.0));
            b.sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(a, b, "mode {mode} round trip failed");
        }
    }

    #[test]
    fn round_trip_random_4way() {
        let base = CooTensor::random_uniform(&[9, 7, 5, 3], 200, 99);
        for mode in 0..4 {
            let csf = CsfTensor::from_coo(&base, mode);
            assert_eq!(csf.nnz(), 200);
            let back = csf.to_coo();
            assert_eq!(back.to_dense(), {
                let mut s = base.clone();
                s.sort_for_mode(mode);
                s.to_dense()
            });
        }
    }

    #[test]
    fn csf_compresses_relative_to_coo() {
        // A tensor with long fibers compresses well.
        let mut entries = Vec::new();
        for j in 0..50u32 {
            for k in 0..20u32 {
                entries.push((vec![0u32, j, k], 1.0f32));
            }
        }
        let coo = CooTensor::from_entries(&[4, 64, 32], &entries);
        let csf = CsfTensor::from_coo(&coo, 0);
        assert_eq!(csf.num_slices(), 1);
        assert_eq!(csf.num_fibers(), 50);
        assert!(csf.byte_size() < coo.byte_size() * 2, "CSF should not blow up");
    }

    #[test]
    fn slice_leaf_range_partitions_leaves() {
        let base = CooTensor::random_uniform(&[12, 10, 8], 150, 5);
        let csf = CsfTensor::from_coo(&base, 0);
        let mut covered = 0;
        for s in 0..csf.num_slices() {
            let r = csf.slice_leaf_range(s);
            assert_eq!(r.start, covered, "ranges must tile the leaves");
            covered = r.end;
        }
        assert_eq!(covered, csf.nnz());
    }

    #[test]
    fn duplicate_coordinates_are_summed() {
        let coo = CooTensor::from_entries(
            &[2, 2],
            &[(vec![1, 1], 1.0), (vec![1, 1], 2.0), (vec![0, 0], 3.0)],
        );
        let csf = CsfTensor::from_coo(&coo, 0);
        assert_eq!(csf.nnz(), 2);
        let dense = csf.to_coo().to_dense();
        assert_eq!(dense, vec![3.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn empty_tensor() {
        let coo = CooTensor::new(&[3, 3, 3]);
        let csf = CsfTensor::from_coo(&coo, 1);
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.num_slices(), 0);
        assert_eq!(csf.to_coo().nnz(), 0);
    }
}
