//! Mode-n matricization (§II-C).
//!
//! Matricization unfolds a tensor into a matrix: `X₍ₙ₎` lays out the
//! mode-`n` fibers of `X` as columns, so entry `(i₁,…,i_N)` lands at row
//! `i_n` and a column index linearised over the remaining modes. Sparse
//! MTTKRP never materialises `X₍ₙ₎`, but the mapping itself is needed to
//! (a) define the column index that the Khatri-Rao side uses and (b)
//! validate the kernels against the dense Equation (4) on small tensors.

use crate::{CooTensor, Idx};

/// The mode-`n` matricized coordinate of one tensor entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatricizedIndex {
    /// Row of `X₍ₙ₎` (the mode-`n` index).
    pub row: Idx,
    /// Column of `X₍ₙ₎` (linearised remaining modes).
    pub col: u64,
}

/// Computes the matricized column index of a coordinate for mode `n`.
///
/// The linearisation follows the Kolda-Bader convention used by
/// Equation (4): with remaining modes `m ≠ n` taken in **descending** mode
/// order (matching `A⁽ᴺ⁾ ⊙ … ⊙ A⁽ⁿ⁺¹⁾ ⊙ A⁽ⁿ⁻¹⁾ ⊙ … ⊙ A⁽¹⁾` where the
/// left operand of `⊙` varies slowest), the column is
/// `((i_N · I_{N-1} + i_{N-1}) · … )` over modes `≠ n` from highest to
/// lowest.
pub fn matricized_col(dims: &[Idx], coord: &[Idx], mode: usize) -> u64 {
    debug_assert_eq!(dims.len(), coord.len());
    let mut col: u64 = 0;
    for m in (0..dims.len()).rev() {
        if m == mode {
            continue;
        }
        col = col * dims[m] as u64 + coord[m] as u64;
    }
    col
}

/// Computes the full matricized index of entry `e` of `tensor` for `mode`.
pub fn matricize_entry(tensor: &CooTensor, e: usize, mode: usize) -> MatricizedIndex {
    let coord = tensor.coord(e);
    MatricizedIndex { row: coord[mode], col: matricized_col(tensor.dims(), &coord, mode) }
}

/// Number of columns of `X₍ₙ₎` (product of the other mode sizes).
pub fn matricized_cols(dims: &[Idx], mode: usize) -> u64 {
    dims.iter().enumerate().filter(|&(m, _)| m != mode).map(|(_, &d)| d as u64).product()
}

/// Densely matricizes a *small* tensor, returning a row-major
/// `dims[mode] × matricized_cols` matrix. Validation only.
///
/// # Panics
/// Panics if the dense matrix would exceed `1 << 24` elements.
pub fn to_dense_matricized(tensor: &CooTensor, mode: usize) -> (usize, usize, Vec<f32>) {
    let rows = tensor.dims()[mode] as usize;
    let cols = matricized_cols(tensor.dims(), mode) as usize;
    assert!(rows * cols <= 1 << 24, "matricization only for small tensors");
    let mut dense = vec![0.0f32; rows * cols];
    for e in 0..tensor.nnz() {
        let mi = matricize_entry(tensor, e, mode);
        dense[mi.row as usize * cols + mi.col as usize] += tensor.values()[e];
    }
    (rows, cols, dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_index_descending_convention() {
        // dims (I,J,K) = (2,3,4), mode 0: col = k*J + j.
        let dims = [2, 3, 4];
        assert_eq!(matricized_col(&dims, &[1, 2, 3], 0), 3 * 3 + 2);
        // mode 1: col = k*I + i.
        assert_eq!(matricized_col(&dims, &[1, 2, 3], 1), 3 * 2 + 1);
        // mode 2: col = j*I + i.
        assert_eq!(matricized_col(&dims, &[1, 2, 3], 2), 2 * 2 + 1);
    }

    #[test]
    fn cols_product() {
        assert_eq!(matricized_cols(&[2, 3, 4], 0), 12);
        assert_eq!(matricized_cols(&[2, 3, 4], 1), 8);
        assert_eq!(matricized_cols(&[2, 3, 4], 2), 6);
    }

    #[test]
    fn col_indices_are_unique_per_fiber() {
        let t = CooTensor::random_uniform(&[6, 5, 4], 60, 11);
        // Two entries with the same matricized (row, col) would be the same
        // coordinate; since generator coordinates are distinct, all
        // (row, col) pairs must be distinct.
        let mut seen: Vec<(Idx, u64)> = (0..t.nnz())
            .map(|e| {
                let mi = matricize_entry(&t, e, 1);
                (mi.row, mi.col)
            })
            .collect();
        seen.sort_unstable();
        let len = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), len);
    }

    #[test]
    fn dense_matricization_preserves_mass() {
        let t = CooTensor::random_uniform(&[4, 5, 6], 40, 9);
        for mode in 0..3 {
            let (r, c, m) = to_dense_matricized(&t, mode);
            assert_eq!(r, t.dims()[mode] as usize);
            assert_eq!(c as u64, matricized_cols(t.dims(), mode));
            let sum: f32 = m.iter().sum();
            let expect: f32 = t.values().iter().sum();
            assert!((sum - expect).abs() < 1e-3);
        }
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // spelled-out index maths
    fn matricization_matches_dense_reshape_mode0() {
        // For mode 0 with dims (I,J,K): X_(0)[i, k*J+j] = X[i,j,k].
        let t = CooTensor::from_entries(&[2, 3, 4], &[(vec![1, 2, 3], 5.0), (vec![0, 1, 0], 2.0)]);
        let (_, cols, m) = to_dense_matricized(&t, 0);
        assert_eq!(m[1 * cols + (3 * 3 + 2)], 5.0);
        assert_eq!(m[0 * cols + (0 * 3 + 1)], 2.0);
    }
}
