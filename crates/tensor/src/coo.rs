//! Coordinate (COO) sparse tensor format.
//!
//! COO stores one `(i₁, …, i_N, val)` entry per non-zero (§II-D, Fig. 2).
//! Indices are stored structure-of-arrays: one `Vec<Idx>` per mode, which is
//! exactly the layout transferred to the device by ParTI and by ScalFrag's
//! segmented pipeline, and the layout the simulated kernels read.

use crate::{Idx, Val};
use rand::Rng;

/// A sparse tensor in coordinate format.
///
/// Invariants maintained by every constructor:
/// * every index is strictly less than the corresponding mode size,
/// * `inds[m].len() == vals.len()` for every mode `m`.
///
/// Sorting/deduplication are explicit operations ([`CooTensor::sort_for_mode`],
/// [`CooTensor::dedup_sum`]) because the GPU pipeline cares about entry order.
#[derive(Clone, Debug, PartialEq)]
pub struct CooTensor {
    dims: Vec<Idx>,
    /// `inds[m][e]` is the mode-`m` coordinate of entry `e`.
    inds: Vec<Vec<Idx>>,
    vals: Vec<Val>,
}

impl CooTensor {
    /// Creates an empty tensor with the given mode sizes.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any mode size is zero.
    pub fn new(dims: &[Idx]) -> Self {
        assert!(!dims.is_empty(), "a tensor needs at least one mode");
        assert!(dims.iter().all(|&d| d > 0), "mode sizes must be positive");
        Self { dims: dims.to_vec(), inds: vec![Vec::new(); dims.len()], vals: Vec::new() }
    }

    /// Builds a tensor from parallel per-mode index vectors and values.
    ///
    /// # Panics
    /// Panics on length mismatches or out-of-range indices.
    pub fn from_parts(dims: &[Idx], inds: Vec<Vec<Idx>>, vals: Vec<Val>) -> Self {
        assert_eq!(inds.len(), dims.len(), "one index vector per mode required");
        for (m, iv) in inds.iter().enumerate() {
            assert_eq!(iv.len(), vals.len(), "mode {m} index count != value count");
            assert!(
                iv.iter().all(|&i| i < dims[m]),
                "mode {m} contains an index >= dim {}",
                dims[m]
            );
        }
        Self { dims: dims.to_vec(), inds, vals }
    }

    /// Builds a tensor from `(coordinate, value)` entries.
    ///
    /// # Panics
    /// Panics if any entry's coordinate arity differs from `dims.len()` or is
    /// out of range.
    pub fn from_entries(dims: &[Idx], entries: &[(Vec<Idx>, Val)]) -> Self {
        let mut t = Self::new(dims);
        for (coord, v) in entries {
            t.push(coord, *v);
        }
        t
    }

    /// Appends one non-zero entry.
    ///
    /// # Panics
    /// Panics if `coord.len() != order` or any index is out of range.
    pub fn push(&mut self, coord: &[Idx], val: Val) {
        assert_eq!(coord.len(), self.order(), "coordinate arity mismatch");
        for (m, (&c, &d)) in coord.iter().zip(&self.dims).enumerate() {
            assert!(c < d, "mode {m} index {c} out of range {d}");
            self.inds[m].push(c);
        }
        self.vals.push(val);
    }

    /// Number of modes (`N`, the tensor order).
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes `I₁ × … × I_N`.
    #[inline]
    pub fn dims(&self) -> &[Idx] {
        &self.dims
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The mode-`m` coordinates of all entries.
    #[inline]
    pub fn mode_indices(&self, m: usize) -> &[Idx] {
        &self.inds[m]
    }

    /// All entry values.
    #[inline]
    pub fn values(&self) -> &[Val] {
        &self.vals
    }

    /// Mutable access to values (used by tests and scaling utilities).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [Val] {
        &mut self.vals
    }

    /// The coordinate of entry `e` as a vector (allocates; prefer
    /// [`CooTensor::mode_indices`] in hot paths).
    pub fn coord(&self, e: usize) -> Vec<Idx> {
        self.inds.iter().map(|iv| iv[e]).collect()
    }

    /// Density `nnz / ∏ dims` as in Table III.
    pub fn density(&self) -> f64 {
        let cells: f64 = self.dims.iter().map(|&d| d as f64).product();
        self.nnz() as f64 / cells
    }

    /// Bytes this tensor occupies in the COO device layout
    /// (`order` index arrays + one value array).
    pub fn byte_size(&self) -> usize {
        self.nnz() * (self.order() * std::mem::size_of::<Idx>() + std::mem::size_of::<Val>())
    }

    /// The mode ordering `[mode, 0, 1, …]` (mode first, remaining modes
    /// ascending) used for mode-`n` kernels: sorting by it groups entries of
    /// the same mode-`n` slice together.
    pub fn mode_order(&self, mode: usize) -> Vec<usize> {
        assert!(mode < self.order(), "mode out of range");
        let mut order = vec![mode];
        order.extend((0..self.order()).filter(|&m| m != mode));
        order
    }

    /// Sorts entries lexicographically by the given mode ordering
    /// (e.g. `[1, 0, 2]` sorts by mode-1 index first).
    pub fn sort_by_order(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.order(), "ordering must mention every mode");
        let mut perm: Vec<usize> = (0..self.nnz()).collect();
        let inds = &self.inds;
        perm.sort_unstable_by(|&a, &b| {
            for &m in order {
                match inds[m][a].cmp(&inds[m][b]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        self.apply_permutation(&perm);
    }

    /// Sorts entries for mode-`n` processing: primary key mode `n`, then the
    /// remaining modes ascending.
    pub fn sort_for_mode(&mut self, mode: usize) {
        let order = self.mode_order(mode);
        self.sort_by_order(&order);
    }

    /// True when entries are sorted by the given mode ordering.
    pub fn is_sorted_by_order(&self, order: &[usize]) -> bool {
        (1..self.nnz()).all(|e| {
            for &m in order {
                match self.inds[m][e - 1].cmp(&self.inds[m][e]) {
                    std::cmp::Ordering::Less => return true,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Equal => continue,
                }
            }
            true
        })
    }

    /// Merges duplicate coordinates by summing their values.
    /// Requires and preserves lexicographic sorting by `order`.
    pub fn dedup_sum(&mut self, order: &[usize]) {
        debug_assert!(self.is_sorted_by_order(order));
        if self.nnz() <= 1 {
            return;
        }
        let n = self.nnz();
        let mut write = 0usize;
        for read in 1..n {
            let same = (0..self.order()).all(|m| self.inds[m][read] == self.inds[m][write]);
            if same {
                self.vals[write] += self.vals[read];
            } else {
                write += 1;
                if write != read {
                    for m in 0..self.order() {
                        self.inds[m][write] = self.inds[m][read];
                    }
                    self.vals[write] = self.vals[read];
                }
            }
        }
        let new_len = write + 1;
        for iv in &mut self.inds {
            iv.truncate(new_len);
        }
        self.vals.truncate(new_len);
    }

    fn apply_permutation(&mut self, perm: &[usize]) {
        for iv in &mut self.inds {
            let new: Vec<Idx> = perm.iter().map(|&p| iv[p]).collect();
            *iv = new;
        }
        self.vals = perm.iter().map(|&p| self.vals[p]).collect();
    }

    /// Extracts the contiguous entry range `[start, end)` as its own tensor
    /// (same dims) — the unit of work of the segmented pipeline (§IV-C).
    pub fn slice_range(&self, start: usize, end: usize) -> CooTensor {
        assert!(start <= end && end <= self.nnz(), "range out of bounds");
        CooTensor {
            dims: self.dims.clone(),
            inds: self.inds.iter().map(|iv| iv[start..end].to_vec()).collect(),
            vals: self.vals[start..end].to_vec(),
        }
    }

    /// Counts non-zeros per mode-`m` index value (`slice histogram` —
    /// the raw material of the paper's `maxNnzPerSlice` feature and of
    /// atomic-contention modelling).
    pub fn slice_nnz_histogram(&self, mode: usize) -> Vec<u32> {
        let mut hist = vec![0u32; self.dims[mode] as usize];
        for &i in &self.inds[mode] {
            hist[i as usize] += 1;
        }
        hist
    }

    /// Number of non-empty mode-`m` slices.
    pub fn num_nonempty_slices(&self, mode: usize) -> usize {
        self.slice_nnz_histogram(mode).iter().filter(|&&c| c > 0).count()
    }

    /// Counts distinct mode-`m` fibers: a fiber fixes every index except
    /// mode `m`, so this is the number of distinct coordinate tuples over
    /// the other modes.
    pub fn num_fibers(&self, mode: usize) -> usize {
        let mut keys: Vec<Vec<Idx>> = (0..self.nnz())
            .map(|e| (0..self.order()).filter(|&m| m != mode).map(|m| self.inds[m][e]).collect())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Non-zero counts per distinct mode-`m` fiber (a fiber fixes every
    /// index except mode `m`), in lexicographic fiber order — the raw
    /// material of the `maxFiberLength` imbalance features that drive the
    /// load-balanced kernel arm. `counts.len() == num_fibers(mode)` and
    /// `counts.iter().sum() == nnz`.
    pub fn fiber_nnz_counts(&self, mode: usize) -> Vec<u32> {
        assert!(mode < self.order(), "mode out of range");
        let mut keys: Vec<Vec<Idx>> = (0..self.nnz())
            .map(|e| (0..self.order()).filter(|&m| m != mode).map(|m| self.inds[m][e]).collect())
            .collect();
        keys.sort_unstable();
        let mut counts = Vec::new();
        let mut run = 0u32;
        for i in 0..keys.len() {
            run += 1;
            if i + 1 == keys.len() || keys[i + 1] != keys[i] {
                counts.push(run);
                run = 0;
            }
        }
        counts
    }

    /// A random tensor with `nnz` distinct uniform coordinates and values in
    /// `(0, 1]`. Deterministic in `seed`.
    pub fn random_uniform(dims: &[Idx], nnz: usize, seed: u64) -> Self {
        crate::gen::uniform(dims, nnz, seed)
    }

    /// Dense reconstruction as a flat row-major vector — only for tiny
    /// validation tensors.
    ///
    /// # Panics
    /// Panics if the dense size exceeds `1 << 24` elements.
    pub fn to_dense(&self) -> Vec<Val> {
        let size: usize = self.dims.iter().map(|&d| d as usize).product();
        assert!(size <= 1 << 24, "to_dense is only for small validation tensors");
        let mut dense = vec![0.0; size];
        for e in 0..self.nnz() {
            let mut flat = 0usize;
            for m in 0..self.order() {
                flat = flat * self.dims[m] as usize + self.inds[m][e] as usize;
            }
            dense[flat] += self.vals[e];
        }
        dense
    }

    /// Checks all structural invariants; returns an error string describing
    /// the first violation. Useful in tests and after I/O.
    pub fn validate(&self) -> Result<(), String> {
        if self.inds.len() != self.dims.len() {
            return Err("index vector count != order".into());
        }
        for (m, iv) in self.inds.iter().enumerate() {
            if iv.len() != self.vals.len() {
                return Err(format!("mode {m} length mismatch"));
            }
            if let Some(&bad) = iv.iter().find(|&&i| i >= self.dims[m]) {
                return Err(format!("mode {m} index {bad} >= dim {}", self.dims[m]));
            }
        }
        Ok(())
    }

    /// Random values regenerated in-place (used by generators after
    /// structural construction).
    pub(crate) fn randomize_values(&mut self, rng: &mut impl Rng) {
        for v in &mut self.vals {
            *v = rng.gen_range(0.0f32..1.0) + f32::EPSILON;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CooTensor {
        // The example tensor of Fig. 2 (4x4x2, 8 nnz), values 1..8.
        CooTensor::from_entries(
            &[4, 4, 2],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 2, 1], 2.0),
                (vec![1, 0, 1], 3.0),
                (vec![1, 3, 0], 4.0),
                (vec![2, 1, 0], 5.0),
                (vec![2, 1, 1], 6.0),
                (vec![3, 2, 0], 7.0),
                (vec![3, 3, 1], 8.0),
            ],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let t = small();
        assert_eq!(t.order(), 3);
        assert_eq!(t.dims(), &[4, 4, 2]);
        assert_eq!(t.nnz(), 8);
        assert_eq!(t.coord(3), vec![1, 3, 0]);
        assert!(t.validate().is_ok());
        assert!((t.density() - 8.0 / 32.0).abs() < 1e-12);
        assert_eq!(t.byte_size(), 8 * (3 * 4 + 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_checks_range() {
        let mut t = CooTensor::new(&[2, 2]);
        t.push(&[2, 0], 1.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn push_checks_arity() {
        let mut t = CooTensor::new(&[2, 2]);
        t.push(&[0], 1.0);
    }

    #[test]
    fn sort_for_each_mode() {
        for mode in 0..3 {
            let mut t = small();
            t.sort_for_mode(mode);
            let order = t.mode_order(mode);
            assert!(t.is_sorted_by_order(&order), "mode {mode} not sorted");
            assert!(t.validate().is_ok());
            // Sorting must preserve the multiset of entries.
            assert_eq!(t.nnz(), 8);
            let sum: f32 = t.values().iter().sum();
            assert_eq!(sum, 36.0);
        }
    }

    #[test]
    fn sort_is_stable_on_sorted_input() {
        let mut t = small();
        t.sort_for_mode(0);
        let before = t.clone();
        t.sort_for_mode(0);
        assert_eq!(t, before);
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut t = CooTensor::from_entries(
            &[2, 2],
            &[(vec![0, 1], 1.0), (vec![0, 1], 2.5), (vec![1, 0], 3.0), (vec![0, 1], 0.5)],
        );
        let order = t.mode_order(0);
        t.sort_by_order(&order);
        t.dedup_sum(&order);
        assert_eq!(t.nnz(), 2);
        let dense = t.to_dense();
        assert_eq!(dense, vec![0.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn dedup_on_empty_and_singleton() {
        let mut t = CooTensor::new(&[3, 3]);
        t.dedup_sum(&[0, 1]);
        assert_eq!(t.nnz(), 0);
        t.push(&[1, 1], 2.0);
        t.dedup_sum(&[0, 1]);
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn slice_range_extracts_contiguous_entries() {
        let mut t = small();
        t.sort_for_mode(0);
        let part = t.slice_range(2, 5);
        assert_eq!(part.nnz(), 3);
        assert_eq!(part.dims(), t.dims());
        assert_eq!(part.values(), &t.values()[2..5]);
        assert!(part.validate().is_ok());
    }

    #[test]
    fn histogram_counts_per_slice() {
        let t = small();
        assert_eq!(t.slice_nnz_histogram(0), vec![2, 2, 2, 2]);
        assert_eq!(t.slice_nnz_histogram(2), vec![4, 4]);
        assert_eq!(t.num_nonempty_slices(0), 4);
    }

    #[test]
    fn fiber_count_matches_manual() {
        let t = small();
        // Mode-2 fibers fix (i, j): (2,1) appears twice, so 7 distinct.
        assert_eq!(t.num_fibers(2), 7);
        // Mode-1 fibers fix (i, k).
        // Pairs: (0,0),(0,1),(1,1),(1,0),(2,0),(2,1),(3,0),(3,1) -> 8 distinct.
        assert_eq!(t.num_fibers(1), 8);
    }

    #[test]
    fn fiber_counts_partition_the_nnz() {
        let t = small();
        for mode in 0..3 {
            let counts = t.fiber_nnz_counts(mode);
            assert_eq!(counts.len(), t.num_fibers(mode), "mode {mode} fiber count mismatch");
            assert_eq!(counts.iter().sum::<u32>() as usize, t.nnz());
            assert!(counts.iter().all(|&c| c > 0));
        }
        // Mode-2: the (2,1) fiber holds two entries, every other fiber one.
        let mut c2 = t.fiber_nnz_counts(2);
        c2.sort_unstable();
        assert_eq!(c2, vec![1, 1, 1, 1, 1, 1, 2]);
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // spelled-out index maths
    fn to_dense_round_trip() {
        let t = small();
        let dense = t.to_dense();
        assert_eq!(dense.len(), 32);
        let total: f32 = dense.iter().sum();
        assert_eq!(total, 36.0);
        // Spot check X(1,3,0) == 4.0, flat = (1*4 + 3)*2 + 0
        assert_eq!(dense[(1 * 4 + 3) * 2], 4.0);
    }

    #[test]
    fn random_uniform_respects_bounds_and_seed() {
        let a = CooTensor::random_uniform(&[10, 20, 30], 100, 7);
        let b = CooTensor::random_uniform(&[10, 20, 30], 100, 7);
        assert_eq!(a, b, "same seed must give identical tensors");
        assert_eq!(a.nnz(), 100);
        assert!(a.validate().is_ok());
        let c = CooTensor::random_uniform(&[10, 20, 30], 100, 8);
        assert_ne!(a, c, "different seeds should differ");
    }
}
