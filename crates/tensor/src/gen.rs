//! Synthetic sparse tensor generators.
//!
//! The adaptive launching result (§IV-B) hinges on tensors *differing* in
//! size, sparsity and nnz distribution, so the generators cover three
//! structural regimes:
//!
//! * [`uniform`] — coordinates i.i.d. uniform (nell-2-like homogeneous
//!   sparsity),
//! * [`zipf_slices`] — mode-0 slice populations follow a Zipf law (the
//!   heavy-tailed slice skew of web-crawl tensors like deli/flickr),
//! * [`blocked`] — non-zeros clustered into random dense-ish blocks
//!   (co-occurrence tensors like enron).
//!
//! All generators are deterministic in their seed and deduplicate
//! coordinates, so `nnz` is exact.

use crate::{CooTensor, Idx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Maximum attempts per requested nnz before giving up on finding distinct
/// coordinates (only reachable when `nnz` approaches the dense size).
const MAX_OVERSAMPLE: usize = 64;

fn checked_budget(dims: &[Idx], nnz: usize) {
    let cells: f64 = dims.iter().map(|&d| d as f64).product();
    assert!((nnz as f64) <= cells, "requested {nnz} nnz exceeds the {cells} cells of the tensor");
}

/// Generates `nnz` distinct uniform-random coordinates.
pub fn uniform(dims: &[Idx], nnz: usize, seed: u64) -> CooTensor {
    checked_budget(dims, nnz);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1_f4a6_0000_0001);
    let mut seen = HashSet::with_capacity(nnz * 2);
    let mut t = CooTensor::new(dims);
    let mut coord = vec![0 as Idx; dims.len()];
    let mut guard = 0usize;
    while t.nnz() < nnz {
        for (c, &d) in coord.iter_mut().zip(dims) {
            *c = rng.gen_range(0..d);
        }
        if seen.insert(coord.clone()) {
            t.push(&coord, 0.0);
            guard = 0;
        } else {
            guard += 1;
            assert!(guard < MAX_OVERSAMPLE * nnz.max(1), "cannot find distinct coordinates");
        }
    }
    t.randomize_values(&mut rng);
    t
}

/// Draws one sample from a Zipf(`s`) distribution over `{0, …, n-1}` using
/// inverse-CDF on precomputed cumulative weights.
pub(crate) struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s` (s=0 → uniform,
    /// s≈1 → classic web-data skew).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // Binary search for the first cdf entry >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Generates a tensor whose mode-0 slice populations follow Zipf(`skew`):
/// a few slices hold most of the non-zeros, the long tail is near-empty.
/// The remaining modes are uniform. This is the distribution that makes
/// `maxNnzPerSlice ≫ avgNnzPerSlice` and stresses atomic contention.
pub fn zipf_slices(dims: &[Idx], nnz: usize, skew: f64, seed: u64) -> CooTensor {
    checked_budget(dims, nnz);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1_f4a6_0000_0002);
    // Randomly permute slice ranks so the "hot" slices are not simply 0,1,2…
    let n0 = dims[0] as usize;
    let mut slice_of_rank: Vec<Idx> = (0..n0 as Idx).collect();
    for i in (1..n0).rev() {
        let j = rng.gen_range(0..=i);
        slice_of_rank.swap(i, j);
    }
    let zipf = ZipfSampler::new(n0, skew);

    let mut seen = HashSet::with_capacity(nnz * 2);
    let mut t = CooTensor::new(dims);
    let mut coord = vec![0 as Idx; dims.len()];
    let mut guard = 0usize;
    while t.nnz() < nnz {
        coord[0] = slice_of_rank[zipf.sample(&mut rng)];
        for m in 1..dims.len() {
            coord[m] = rng.gen_range(0..dims[m]);
        }
        if seen.insert(coord.clone()) {
            t.push(&coord, 0.0);
            guard = 0;
        } else {
            guard += 1;
            if guard > MAX_OVERSAMPLE {
                // Hot slices saturate when nnz is large relative to the slice
                // area; place a uniform coordinate instead so generation
                // always terminates (the budget check guarantees room).
                push_uniform_fallback(&mut t, &mut seen, dims, &mut rng);
                guard = 0;
            }
        }
    }
    t.randomize_values(&mut rng);
    t
}

/// Draws uniform coordinates until an unseen one is found and pushes it —
/// the terminating fallback for generators whose primary distribution has
/// saturated. `checked_budget` guarantees free cells exist; the expected
/// number of draws is `cells / (cells - nnz)`.
fn push_uniform_fallback(
    t: &mut CooTensor,
    seen: &mut HashSet<Vec<Idx>>,
    dims: &[Idx],
    rng: &mut impl Rng,
) {
    let mut coord = vec![0 as Idx; dims.len()];
    loop {
        for (c, &d) in coord.iter_mut().zip(dims) {
            *c = rng.gen_range(0..d);
        }
        if seen.insert(coord.clone()) {
            t.push(&coord, 0.0);
            return;
        }
    }
}

/// Generates a tensor whose non-zeros are clustered into `num_blocks`
/// random axis-aligned blocks of edge `block_edge` (clipped at the mode
/// borders). Mimics co-occurrence tensors and is the regime where blocked
/// formats (HiCOO) and shared-memory tiling shine.
pub fn blocked(
    dims: &[Idx],
    nnz: usize,
    num_blocks: usize,
    block_edge: Idx,
    seed: u64,
) -> CooTensor {
    checked_budget(dims, nnz);
    assert!(num_blocks > 0 && block_edge > 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1_f4a6_0000_0003);
    // Pick block origins.
    let origins: Vec<Vec<Idx>> =
        (0..num_blocks).map(|_| dims.iter().map(|&d| rng.gen_range(0..d)).collect()).collect();

    let mut seen = HashSet::with_capacity(nnz * 2);
    let mut t = CooTensor::new(dims);
    let mut coord = vec![0 as Idx; dims.len()];
    let mut guard = 0usize;
    while t.nnz() < nnz {
        let b = &origins[rng.gen_range(0..num_blocks)];
        for (m, (&o, &d)) in b.iter().zip(dims).enumerate() {
            let span = block_edge.min(d - o).max(1);
            coord[m] = o + rng.gen_range(0..span);
        }
        if seen.insert(coord.clone()) {
            t.push(&coord, 0.0);
            guard = 0;
        } else {
            guard += 1;
            if guard > MAX_OVERSAMPLE {
                // Blocks saturated — sprinkle uniformly to reach the target.
                push_uniform_fallback(&mut t, &mut seen, dims, &mut rng);
                guard = 0;
            }
        }
    }
    t.randomize_values(&mut rng);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_exact_nnz_and_distinct() {
        let t = uniform(&[50, 60, 70], 500, 3);
        assert_eq!(t.nnz(), 500);
        assert!(t.validate().is_ok());
        let mut coords: Vec<Vec<Idx>> = (0..t.nnz()).map(|e| t.coord(e)).collect();
        coords.sort_unstable();
        coords.dedup();
        assert_eq!(coords.len(), 500, "coordinates must be distinct");
    }

    #[test]
    fn uniform_can_fill_dense() {
        // nnz == number of cells must terminate.
        let t = uniform(&[4, 4], 16, 1);
        assert_eq!(t.nnz(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overfull_request_panics() {
        let _ = uniform(&[2, 2], 5, 0);
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[70]);
        // rank 0 should dominate strongly at s=1.2
        assert!(counts[0] as f64 > 0.1 * 20_000.0 * 0.5);
    }

    #[test]
    fn zipf_sampler_uniform_at_zero_skew() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.02, "uniform expected, got {p}");
        }
    }

    #[test]
    fn zipf_slices_produces_skewed_histogram() {
        let t = zipf_slices(&[200, 100, 100], 5_000, 1.1, 17);
        assert_eq!(t.nnz(), 5_000);
        let hist = t.slice_nnz_histogram(0);
        let max = *hist.iter().max().unwrap() as f64;
        let avg = 5_000.0 / 200.0;
        assert!(max / avg > 4.0, "expected heavy skew, max/avg = {}", max / avg);
    }

    #[test]
    fn blocked_clusters_nonzeros() {
        let t = blocked(&[256, 256, 256], 2_000, 8, 16, 23);
        assert_eq!(t.nnz(), 2_000);
        assert!(t.validate().is_ok());
        // Clustering: the number of distinct 16-aligned block coordinates
        // touched should be far below nnz.
        let mut blocks: Vec<(Idx, Idx, Idx)> = (0..t.nnz())
            .map(|e| {
                let c = t.coord(e);
                (c[0] / 16, c[1] / 16, c[2] / 16)
            })
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        assert!(blocks.len() < 200, "expected clustering, got {} blocks", blocks.len());
    }

    #[test]
    fn blocked_terminates_when_blocks_saturate() {
        // 4 blocks of edge 4 hold at most 256 cells, far below the 2_000
        // requested non-zeros: the uniform fallback must fill the rest.
        let t = blocked(&[64, 64, 64], 2_000, 4, 4, 3);
        assert_eq!(t.nnz(), 2_000);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn zipf_terminates_when_hot_slices_saturate() {
        // Extreme skew on a tensor whose head slice holds only 16 cells.
        let t = zipf_slices(&[100, 4, 4], 1_000, 3.0, 5);
        assert_eq!(t.nnz(), 1_000);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            zipf_slices(&[64, 64, 64], 300, 1.0, 9),
            zipf_slices(&[64, 64, 64], 300, 1.0, 9)
        );
        assert_eq!(blocked(&[64, 64, 64], 300, 4, 8, 9), blocked(&[64, 64, 64], 300, 4, 8, 9));
    }
}
