//! Mode permutation: relabeling which tensor dimension is "mode 0".
//!
//! MTTKRP treats every mode symmetrically, so permuting modes and
//! permuting the factor order must commute with all kernels — a useful
//! metamorphic property (tested in the workspace suite) and a practical
//! preprocessing step when a storage format favours a particular root
//! mode (CSF trees, F-COO target modes).

use crate::{CooTensor, Idx};

/// A permutation of tensor modes: `perm[new_mode] = old_mode`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModePermutation {
    perm: Vec<usize>,
}

impl ModePermutation {
    /// Creates a permutation from `perm[new_mode] = old_mode`.
    ///
    /// # Panics
    /// Panics unless `perm` is a permutation of `0..perm.len()`.
    pub fn new(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(p < n, "mode {p} out of range");
            assert!(!seen[p], "mode {p} repeated");
            seen[p] = true;
        }
        Self { perm }
    }

    /// The identity permutation over `n` modes.
    pub fn identity(n: usize) -> Self {
        Self { perm: (0..n).collect() }
    }

    /// The permutation that brings `mode` to the front, keeping the other
    /// modes in ascending order — the ordering every mode-`n` format uses.
    pub fn mode_first(n: usize, mode: usize) -> Self {
        assert!(mode < n, "mode out of range");
        let mut perm = vec![mode];
        perm.extend((0..n).filter(|&m| m != mode));
        Self { perm }
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.perm.len()
    }

    /// `old_mode` for a `new_mode`.
    pub fn old_of_new(&self, new_mode: usize) -> usize {
        self.perm[new_mode]
    }

    /// `new_mode` for an `old_mode`.
    pub fn new_of_old(&self, old_mode: usize) -> usize {
        self.perm.iter().position(|&p| p == old_mode).expect("valid permutation")
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> ModePermutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old] = new;
        }
        ModePermutation { perm: inv }
    }

    /// Applies the permutation to a tensor: output mode `m` is input mode
    /// `perm[m]`.
    ///
    /// # Panics
    /// Panics if the orders disagree.
    pub fn apply(&self, tensor: &CooTensor) -> CooTensor {
        assert_eq!(tensor.order(), self.order(), "order mismatch");
        let dims: Vec<Idx> = self.perm.iter().map(|&m| tensor.dims()[m]).collect();
        let inds: Vec<Vec<Idx>> =
            self.perm.iter().map(|&m| tensor.mode_indices(m).to_vec()).collect();
        CooTensor::from_parts(&dims, inds, tensor.values().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_first_layout() {
        let p = ModePermutation::mode_first(4, 2);
        assert_eq!(p.old_of_new(0), 2);
        assert_eq!(p.old_of_new(1), 0);
        assert_eq!(p.new_of_old(2), 0);
    }

    #[test]
    fn apply_then_inverse_is_identity() {
        let t = CooTensor::random_uniform(&[6, 5, 4, 3], 100, 3);
        let p = ModePermutation::new(vec![2, 0, 3, 1]);
        let back = p.inverse().apply(&p.apply(&t));
        assert_eq!(back, t);
    }

    #[test]
    fn permutation_preserves_entries() {
        let t = CooTensor::random_uniform(&[8, 7, 6], 60, 5);
        let p = ModePermutation::new(vec![1, 2, 0]);
        let pt = p.apply(&t);
        assert_eq!(pt.dims(), &[7, 6, 8]);
        assert_eq!(pt.nnz(), t.nnz());
        for e in 0..t.nnz() {
            let c = t.coord(e);
            let pc = pt.coord(e);
            assert_eq!(pc, vec![c[1], c[2], c[0]]);
        }
    }

    #[test]
    fn identity_is_a_noop() {
        let t = CooTensor::random_uniform(&[5, 4, 3], 30, 7);
        assert_eq!(ModePermutation::identity(3).apply(&t), t);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn duplicate_modes_rejected() {
        let _ = ModePermutation::new(vec![0, 0, 1]);
    }
}
