//! Non-zero-balanced tensor segmentation (§IV-C, data preprocessing stage).
//!
//! The paper: *"we segment the COO format tensor based on the pre-designed
//! index and the number of segments with non-zero element values"* — i.e.
//! the sorted entry list is cut into contiguous ranges with (nearly) equal
//! nnz so each CUDA-stream transfer+kernel handles a similar amount of
//! work. Cuts are optionally aligned to slice boundaries so that a slice's
//! partial results never straddle two segments (avoiding cross-segment
//! reduction on the host).

use crate::{CooTensor, Idx};

/// One contiguous entry range of a segmented tensor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First entry index (inclusive).
    pub start: usize,
    /// Last entry index (exclusive).
    pub end: usize,
}

impl Segment {
    /// Number of entries in the segment.
    pub fn nnz(&self) -> usize {
        self.end - self.start
    }

    /// Bytes of the COO device layout of this segment for a tensor of the
    /// given order.
    pub fn byte_size(&self, order: usize) -> usize {
        self.nnz() * (order * std::mem::size_of::<Idx>() + std::mem::size_of::<crate::Val>())
    }
}

/// Splits `0..nnz` into at most `num_segments` contiguous ranges of
/// near-equal nnz. Returns fewer segments when `nnz < num_segments`.
///
/// # Panics
/// Panics if `num_segments == 0`.
pub fn segment_by_nnz(nnz: usize, num_segments: usize) -> Vec<Segment> {
    assert!(num_segments > 0, "need at least one segment");
    if nnz == 0 {
        return Vec::new();
    }
    let k = num_segments.min(nnz);
    let base = nnz / k;
    let extra = nnz % k;
    let mut segs = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        segs.push(Segment { start, end: start + len });
        start += len;
    }
    segs
}

/// Splits a *mode-sorted* tensor into at most `num_segments` ranges of
/// near-equal nnz whose cuts fall on mode-`mode` slice boundaries, so that
/// each output row is written by exactly one segment.
///
/// The tensor must be sorted for `mode` (see [`CooTensor::sort_for_mode`]).
///
/// # Panics
/// Panics if `num_segments == 0` or the tensor is not sorted for `mode`.
pub fn segment_on_slice_boundaries(
    tensor: &CooTensor,
    mode: usize,
    num_segments: usize,
) -> Vec<Segment> {
    assert!(num_segments > 0, "need at least one segment");
    let order = tensor.mode_order(mode);
    assert!(
        tensor.is_sorted_by_order(&order),
        "tensor must be sorted for mode {mode} before slice-aligned segmentation"
    );
    let nnz = tensor.nnz();
    if nnz == 0 {
        return Vec::new();
    }
    let target = (nnz as f64 / num_segments as f64).ceil() as usize;
    let idx = tensor.mode_indices(mode);

    let mut segs = Vec::with_capacity(num_segments);
    let mut start = 0usize;
    while start < nnz {
        let mut end = (start + target).min(nnz);
        // Advance end to the next slice boundary (entries with equal
        // mode index must stay together).
        while end < nnz && idx[end] == idx[end - 1] {
            end += 1;
        }
        segs.push(Segment { start, end });
        start = end;
    }
    segs
}

/// The inclusive `(first, last)` mode-`mode` index bounds of a segment of a
/// *mode-sorted* tensor — the output rows the segment writes. For segments
/// cut by [`segment_on_slice_boundaries`] these row ranges are disjoint
/// across segments, which is what lets a multi-device reduction skip the
/// cross-shard row merge entirely.
///
/// Returns `None` for an empty segment.
pub fn mode_index_bounds(tensor: &CooTensor, mode: usize, seg: &Segment) -> Option<(Idx, Idx)> {
    if seg.nnz() == 0 {
        return None;
    }
    let idx = tensor.mode_indices(mode);
    Some((idx[seg.start], idx[seg.end - 1]))
}

/// Materialises segments as independent [`CooTensor`] pieces (the host-side
/// staging buffers of the pipeline).
pub fn materialize_segments(tensor: &CooTensor, segs: &[Segment]) -> Vec<CooTensor> {
    segs.iter().map(|s| tensor.slice_range(s.start, s.end)).collect()
}

/// Picks a segment count that fits each segment (plus factor matrices)
/// within `device_bytes` of device memory, between 1 and `max_segments`.
/// Mirrors the paper's "reasonably allocate storage space … according to
/// the performance and storage capacity of the GPU".
pub fn auto_segment_count(
    tensor_bytes: usize,
    resident_bytes: usize,
    device_bytes: usize,
    max_segments: usize,
) -> usize {
    assert!(max_segments > 0);
    let available = device_bytes.saturating_sub(resident_bytes);
    if available == 0 {
        return max_segments;
    }
    // Need ~2 segments resident at once for overlap (one transferring, one
    // computing), so each segment should be at most available/2.
    let per_segment_cap = (available / 2).max(1);
    let needed = tensor_bytes.div_ceil(per_segment_cap);
    needed.clamp(1, max_segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_exact() {
        let segs = segment_by_nnz(100, 4);
        assert_eq!(segs.len(), 4);
        assert!(segs.iter().all(|s| s.nnz() == 25));
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs[3].end, 100);
    }

    #[test]
    fn uneven_split_distributes_remainder() {
        let segs = segment_by_nnz(10, 3);
        let sizes: Vec<usize> = segs.iter().map(Segment::nnz).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // Ranges tile.
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn more_segments_than_nnz() {
        let segs = segment_by_nnz(3, 8);
        assert_eq!(segs.len(), 3);
        assert!(segs.iter().all(|s| s.nnz() == 1));
    }

    #[test]
    fn zero_nnz_gives_no_segments() {
        assert!(segment_by_nnz(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_segments_panics() {
        let _ = segment_by_nnz(10, 0);
    }

    #[test]
    fn slice_aligned_cuts_never_split_slices() {
        let mut t = crate::gen::zipf_slices(&[50, 40, 40], 2_000, 1.0, 5);
        t.sort_for_mode(0);
        let segs = segment_on_slice_boundaries(&t, 0, 6);
        assert!(!segs.is_empty());
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, 2_000);
        let idx = t.mode_indices(0);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile");
            // Boundary: slice index changes across the cut.
            assert_ne!(idx[w[0].end - 1], idx[w[0].end], "cut splits a slice");
        }
    }

    #[test]
    fn slice_aligned_handles_one_giant_slice() {
        // All entries in one slice -> single segment regardless of request.
        let mut entries = Vec::new();
        for j in 0..30u32 {
            entries.push((vec![5u32, j], 1.0f32));
        }
        let mut t = CooTensor::from_entries(&[10, 30], &entries);
        t.sort_for_mode(0);
        let segs = segment_on_slice_boundaries(&t, 0, 4);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].nnz(), 30);
    }

    #[test]
    fn materialize_preserves_entries() {
        let mut t = CooTensor::random_uniform(&[20, 20, 20], 300, 2);
        t.sort_for_mode(0);
        let segs = segment_by_nnz(t.nnz(), 5);
        let parts = materialize_segments(&t, &segs);
        let total: usize = parts.iter().map(|p| p.nnz()).sum();
        assert_eq!(total, 300);
        let sum_vals: f32 = parts.iter().flat_map(|p| p.values()).sum();
        let expect: f32 = t.values().iter().sum();
        assert!((sum_vals - expect).abs() < 1e-3);
    }

    #[test]
    fn auto_segment_count_scales_with_pressure() {
        let gb = 1usize << 30;
        // Tensor fits easily -> 1 segment.
        assert_eq!(auto_segment_count(gb, gb, 24 * gb, 16), 1);
        // Tensor is 20 GB, 23 GB available -> needs ~2 resident halves.
        let n = auto_segment_count(20 * gb, gb, 24 * gb, 16);
        assert!(n >= 2, "expected >= 2 segments, got {n}");
        // No memory at all -> max segments.
        assert_eq!(auto_segment_count(gb, 24 * gb, 24 * gb, 16), 16);
    }

    #[test]
    fn segment_byte_size() {
        let s = Segment { start: 0, end: 10 };
        assert_eq!(s.byte_size(3), 10 * (3 * 4 + 4));
    }
}
