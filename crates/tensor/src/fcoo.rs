//! F-COO: flagged coordinate format (Liu et al., CLUSTER'17 — cited by
//! §II-D as the COO-family member that "adds flag arrays to eliminate
//! atomic operations").
//!
//! F-COO stores the non-zeros sorted by the output mode and replaces the
//! explicit mode index with two bit arrays:
//!
//! * `start_flags[e]` — entry `e` starts a new output row (a new mode-`n`
//!   index value);
//! * partition boundaries every `seg_len` entries, with `partition_starts`
//!   recording whether a partition begins mid-row (so a segmented-scan
//!   kernel knows to combine its first partial sum with the previous
//!   partition's carry).
//!
//! The companion kernel in `scalfrag-kernels::fcoo_kernel` consumes this
//! to perform MTTKRP via per-partition segmented reduction with exactly
//! one cross-partition combination per boundary instead of per-entry
//! atomics.

use crate::{CooTensor, Idx, Val};

/// A sparse tensor in F-COO form for one target mode.
#[derive(Clone, Debug, PartialEq)]
pub struct FCooTensor {
    dims: Vec<Idx>,
    mode: usize,
    /// Indices of the non-target modes, per entry: `other_inds[m][e]`
    /// where `m` ranges over the original modes except `mode`.
    other_inds: Vec<Vec<Idx>>,
    /// Original mode ids of `other_inds` rows.
    other_modes: Vec<usize>,
    /// Output row of each entry (the mode-`mode` index) — recoverable from
    /// the flags, kept explicit for O(1) random access.
    rows: Vec<Idx>,
    /// `true` when entry `e` starts a new output row.
    start_flags: Vec<bool>,
    vals: Vec<Val>,
    /// Entries per partition (the kernel's work unit).
    seg_len: usize,
}

impl FCooTensor {
    /// Builds the F-COO representation of `coo` for `mode`, partitioned
    /// every `seg_len` entries.
    ///
    /// # Panics
    /// Panics if `seg_len == 0` or `mode` is out of range.
    pub fn from_coo(coo: &CooTensor, mode: usize, seg_len: usize) -> Self {
        assert!(seg_len > 0, "segment length must be positive");
        assert!(mode < coo.order(), "mode out of range");
        let mut sorted = coo.clone();
        sorted.sort_for_mode(mode);

        let nnz = sorted.nnz();
        let rows: Vec<Idx> = sorted.mode_indices(mode).to_vec();
        let mut start_flags = vec![false; nnz];
        for e in 0..nnz {
            start_flags[e] = e == 0 || rows[e] != rows[e - 1];
        }
        let other_modes: Vec<usize> = (0..coo.order()).filter(|&m| m != mode).collect();
        let other_inds: Vec<Vec<Idx>> =
            other_modes.iter().map(|&m| sorted.mode_indices(m).to_vec()).collect();

        Self {
            dims: coo.dims().to_vec(),
            mode,
            other_inds,
            other_modes,
            rows,
            start_flags,
            vals: sorted.values().to_vec(),
            seg_len,
        }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes.
    pub fn dims(&self) -> &[Idx] {
        &self.dims
    }

    /// The target mode this representation is specialised for.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Non-zero count.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Partition length.
    pub fn seg_len(&self) -> usize {
        self.seg_len
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.nnz().div_ceil(self.seg_len)
    }

    /// Entry range of partition `p`.
    pub fn partition_range(&self, p: usize) -> std::ops::Range<usize> {
        let start = p * self.seg_len;
        start..(start + self.seg_len).min(self.nnz())
    }

    /// Output row of entry `e`.
    pub fn row(&self, e: usize) -> Idx {
        self.rows[e]
    }

    /// Whether entry `e` begins a new output row.
    pub fn starts_row(&self, e: usize) -> bool {
        self.start_flags[e]
    }

    /// Whether partition `p` begins mid-row (its first entry continues the
    /// previous partition's row) — the "bit-flag" consulted by the kernel
    /// to decide if a cross-partition combination is needed.
    pub fn partition_continues(&self, p: usize) -> bool {
        let start = p * self.seg_len;
        start > 0 && start < self.nnz() && !self.start_flags[start]
    }

    /// The non-target mode ids, in storage order.
    pub fn other_modes(&self) -> &[usize] {
        &self.other_modes
    }

    /// Indices of the `k`-th non-target mode.
    pub fn other_indices(&self, k: usize) -> &[Idx] {
        &self.other_inds[k]
    }

    /// Entry values.
    pub fn values(&self) -> &[Val] {
        &self.vals
    }

    /// Bytes of the device layout: flags packed as bits, plus indices and
    /// values (this is F-COO's storage advantage: the mode index array is
    /// replaced by `nnz/8` bytes of flags).
    pub fn byte_size(&self) -> usize {
        let flags = self.nnz().div_ceil(8);
        let inds: usize = self.other_inds.len() * self.nnz() * std::mem::size_of::<Idx>();
        flags + inds + self.nnz() * std::mem::size_of::<Val>()
    }

    /// Expands back to COO (sorted for the target mode).
    pub fn to_coo(&self) -> CooTensor {
        let mut inds = vec![Vec::with_capacity(self.nnz()); self.order()];
        inds[self.mode] = self.rows.clone();
        for (k, &m) in self.other_modes.iter().enumerate() {
            inds[m] = self.other_inds[k].clone();
        }
        CooTensor::from_parts(&self.dims, inds, self.vals.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        CooTensor::from_entries(
            &[4, 3, 2],
            &[
                (vec![2, 0, 0], 1.0),
                (vec![0, 1, 1], 2.0),
                (vec![2, 2, 1], 3.0),
                (vec![0, 0, 0], 4.0),
                (vec![3, 1, 0], 5.0),
            ],
        )
    }

    #[test]
    fn flags_mark_row_starts() {
        let f = FCooTensor::from_coo(&sample(), 0, 2);
        // Sorted rows: 0,0,2,2,3.
        assert_eq!(f.rows, vec![0, 0, 2, 2, 3]);
        assert_eq!(f.start_flags, vec![true, false, true, false, true]);
        assert_eq!(f.num_partitions(), 3);
        // Partition 1 starts at entry 2 which begins row 2 -> no carry.
        assert!(!f.partition_continues(1));
        // With seg_len 3, partition 1 starts at entry 3 (mid-row 2) -> carry.
        let f3 = FCooTensor::from_coo(&sample(), 0, 3);
        assert!(f3.partition_continues(1));
    }

    #[test]
    fn round_trip_matches_sorted_coo() {
        let base = CooTensor::random_uniform(&[20, 15, 10], 300, 7);
        for mode in 0..3 {
            let f = FCooTensor::from_coo(&base, mode, 64);
            let back = f.to_coo();
            let mut sorted = base.clone();
            sorted.sort_for_mode(mode);
            assert_eq!(back, sorted, "mode {mode}");
        }
    }

    #[test]
    fn byte_size_beats_plain_coo() {
        let base = CooTensor::random_uniform(&[100, 80, 60], 5_000, 9);
        let f = FCooTensor::from_coo(&base, 0, 256);
        // F-COO drops one 4-byte index per entry for a 1-bit flag.
        assert!(f.byte_size() < base.byte_size());
        assert!(base.byte_size() - f.byte_size() >= 5_000 * 3);
    }

    #[test]
    fn partition_ranges_tile_entries() {
        let base = CooTensor::random_uniform(&[30, 20, 10], 500, 11);
        let f = FCooTensor::from_coo(&base, 1, 64);
        let mut covered = 0;
        for p in 0..f.num_partitions() {
            let r = f.partition_range(p);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 500);
    }

    #[test]
    fn works_on_4way() {
        let base = CooTensor::random_uniform(&[8, 7, 6, 5], 200, 13);
        let f = FCooTensor::from_coo(&base, 2, 32);
        assert_eq!(f.other_modes(), &[0, 1, 3]);
        assert_eq!(f.to_coo().nnz(), 200);
    }

    #[test]
    #[should_panic(expected = "segment length")]
    fn zero_seg_len_rejected() {
        let _ = FCooTensor::from_coo(&sample(), 0, 0);
    }
}
