//! FROSTT dataset presets (Table III of the paper).
//!
//! The paper evaluates on ten real sparse tensors from the FROSTT
//! repository. Those files are multi-gigabyte downloads, so this module
//! provides *synthetic stand-ins* that preserve what the evaluation
//! actually exercises: tensor order, the relative mode sizes, density, and
//! the slice-population skew (uniform vs Zipf-heavy-tailed vs clustered).
//! Real `.tns` files can still be loaded through [`crate::io`].
//!
//! Each preset can be materialised at a `scale` divisor: non-zeros are
//! divided by `scale` and every mode size by `scale^(1/order)`, which keeps
//! the density of Table III (up to clamping of tiny modes). The default
//! [`DEFAULT_SCALE`] of 512 turns the 3–144 M-nnz originals into
//! 6 K–280 K-nnz tensors that the whole benchmark suite can sweep quickly.

use crate::{CooTensor, Idx};

/// Default down-scaling divisor applied to preset nnz counts.
pub const DEFAULT_SCALE: u64 = 512;

/// Structural regime of a dataset's non-zero distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GenKind {
    /// Homogeneous sparsity (coordinates ~ uniform).
    Uniform,
    /// Mode-0 slice populations follow Zipf with the given exponent.
    Zipf(f64),
    /// Non-zeros clustered in random blocks (blocks, edge).
    Blocked(usize, Idx),
}

/// A synthetic stand-in description for one FROSTT dataset of Table III.
#[derive(Clone, Debug)]
pub struct DatasetPreset {
    /// FROSTT dataset name as used in the paper's figures.
    pub name: &'static str,
    /// Original mode sizes from Table III.
    pub dims: Vec<u64>,
    /// Original non-zero count from Table III.
    pub nnz: u64,
    /// Structural regime used when synthesising.
    pub kind: GenKind,
}

impl DatasetPreset {
    /// Tensor order (number of modes).
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Density of the *original* dataset, `nnz / ∏ dims`.
    pub fn density(&self) -> f64 {
        self.nnz as f64 / self.dims.iter().map(|&d| d as f64).product::<f64>()
    }

    /// Non-zero count after applying `scale` (at least 64).
    pub fn scaled_nnz(&self, scale: u64) -> usize {
        (self.nnz / scale).max(64) as usize
    }

    /// Mode sizes after applying `scale`.
    ///
    /// Every mode is divided by the *largest uniform divisor `μ ≤ scale`*
    /// that still leaves at least `4 × scaled_nnz` cells. Dividing dims by
    /// the same factor as nnz preserves what the evaluation actually
    /// exercises — non-zeros per slice (atomic contention, tiling
    /// reduction) and the factor-matrix : tensor byte ratio (transfer
    /// composition) — while hyper-sparse datasets keep their character;
    /// dense datasets (vast, uber, nips) get a smaller `μ` so coordinates
    /// stay distinct. Density therefore drifts for the dense datasets,
    /// which Table III's harness reports explicitly.
    pub fn scaled_dims(&self, scale: u64) -> Vec<Idx> {
        // Density is allowed to drift upward by ~30x but never past 2%
        // (so coordinates stay distinct and the sparse character holds),
        // and never below 1e-6 (so the hyper-sparse web tensors keep their
        // slice-occupancy and transfer-composition ratios instead of being
        // diluted to satisfy an unreachable density).
        let density_cap = (30.0 * self.density()).clamp(1e-6, 0.02);
        let target_cells =
            (self.scaled_nnz(scale) as f64 / density_cap).max(4.0 * self.scaled_nnz(scale) as f64);
        let dims_at = |mu: f64| -> Vec<Idx> {
            self.dims
                .iter()
                .map(|&d| ((d as f64 / mu).round() as u64).clamp(2, Idx::MAX as u64) as Idx)
                .collect()
        };
        let cells = |dims: &[Idx]| dims.iter().map(|&d| d as f64).product::<f64>();
        // Scan μ downward over multiplicative steps until the density cap
        // is satisfied (μ = 1 always is, since the original tensor fits).
        let mut mu = scale as f64;
        while mu > 1.0 {
            let d = dims_at(mu);
            if cells(&d) >= target_cells {
                return d;
            }
            mu /= 1.25;
        }
        dims_at(1.0)
    }

    /// Materialises the synthetic tensor at the given scale divisor.
    /// Deterministic: the seed is derived from the dataset name.
    pub fn materialize(&self, scale: u64) -> CooTensor {
        let dims = self.scaled_dims(scale);
        let nnz = self.scaled_nnz(scale);
        let seed = self
            .name
            .bytes()
            .fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3));
        match self.kind {
            GenKind::Uniform => crate::gen::uniform(&dims, nnz, seed),
            GenKind::Zipf(s) => crate::gen::zipf_slices(&dims, nnz, s, seed),
            GenKind::Blocked(blocks, edge) => crate::gen::blocked(&dims, nnz, blocks, edge, seed),
        }
    }

    /// Materialises at [`DEFAULT_SCALE`].
    pub fn materialize_default(&self) -> CooTensor {
        self.materialize(DEFAULT_SCALE)
    }
}

/// All ten datasets of Table III, in the paper's order.
pub fn all_presets() -> Vec<DatasetPreset> {
    vec![
        DatasetPreset {
            // vast: 165K x 11K x 2, 26M — dense-ish event tensor, tiny mode 3.
            name: "vast",
            dims: vec![165_000, 11_000, 2],
            nnz: 26_000_000,
            kind: GenKind::Uniform,
        },
        DatasetPreset {
            // nell-2: 12K x 9K x 29K, 77M — knowledge-base triples, mild skew.
            name: "nell-2",
            dims: vec![12_000, 9_000, 29_000],
            nnz: 77_000_000,
            kind: GenKind::Zipf(0.6),
        },
        DatasetPreset {
            // flickr-3d: 320K x 28M x 2M, 113M — web tags, heavy tail.
            name: "flickr-3d",
            dims: vec![320_000, 28_000_000, 2_000_000],
            nnz: 113_000_000,
            kind: GenKind::Zipf(1.1),
        },
        DatasetPreset {
            // deli-3d: 533K x 17M x 3M, 140M — delicious bookmarks, heavy tail.
            name: "deli-3d",
            dims: vec![533_000, 17_000_000, 3_000_000],
            nnz: 140_000_000,
            kind: GenKind::Zipf(1.1),
        },
        DatasetPreset {
            // nell-1: 2.9M x 2.1M x 25M, 144M — the huge KB tensor.
            name: "nell-1",
            dims: vec![2_900_000, 2_100_000, 25_000_000],
            nnz: 144_000_000,
            kind: GenKind::Zipf(0.9),
        },
        DatasetPreset {
            // uber: 183 x 24 x 1140 x 1717, 3M — trips (date,hour,lat,lon).
            name: "uber",
            dims: vec![183, 24, 1_140, 1_717],
            nnz: 3_000_000,
            kind: GenKind::Uniform,
        },
        DatasetPreset {
            // nips: 2K x 3K x 14K x 17, 3M — papers x authors x words x years.
            name: "nips",
            dims: vec![2_000, 3_000, 14_000, 17],
            nnz: 3_000_000,
            kind: GenKind::Zipf(0.7),
        },
        DatasetPreset {
            // enron: 6K x 6K x 244K x 1K, 54M — emails, sender/receiver blocks.
            name: "enron",
            dims: vec![6_000, 6_000, 244_000, 1_000],
            nnz: 54_000_000,
            kind: GenKind::Blocked(64, 64),
        },
        DatasetPreset {
            // flickr-4d: flickr-3d plus a 731-day mode.
            name: "flickr-4d",
            dims: vec![320_000, 28_000_000, 2_000_000, 731],
            nnz: 113_000_000,
            kind: GenKind::Zipf(1.1),
        },
        DatasetPreset {
            // deli-4d: deli-3d plus a 1K-day mode.
            name: "deli-4d",
            dims: vec![533_000, 17_000_000, 3_000_000, 1_000],
            nnz: 140_000_000,
            kind: GenKind::Zipf(1.1),
        },
    ]
}

/// Looks a preset up by its paper name.
pub fn by_name(name: &str) -> Option<DatasetPreset> {
    all_presets().into_iter().find(|p| p.name == name)
}

/// The subset used in most figures: small, medium and large representatives
/// of both orders. Useful for fast test/bench loops.
pub fn small_suite() -> Vec<DatasetPreset> {
    ["vast", "nell-2", "uber", "nips"].iter().map(|n| by_name(n).expect("preset exists")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_presets_matching_table3() {
        let all = all_presets();
        assert_eq!(all.len(), 10);
        let orders: Vec<usize> = all.iter().map(|p| p.order()).collect();
        assert_eq!(orders, vec![3, 3, 3, 3, 3, 4, 4, 4, 4, 4]);
        // Densities should be within an order of magnitude of Table III.
        let vast = by_name("vast").unwrap();
        assert!((vast.density() / 6.9e-3).log10().abs() < 1.0);
        let nell1 = by_name("nell-1").unwrap();
        assert!((nell1.density() / 9.1e-13).log10().abs() < 1.0);
    }

    #[test]
    fn scaling_respects_the_density_cap() {
        for p in all_presets() {
            let dims = p.scaled_dims(512);
            let nnz = p.scaled_nnz(512) as f64;
            let cells: f64 = dims.iter().map(|&d| d as f64).product();
            assert!(cells >= 3.9 * nnz, "{}: only {cells} cells for {nnz} nnz", p.name);
        }
    }

    #[test]
    fn scaling_preserves_slice_occupancy_for_hypersparse_sets() {
        // The hyper-sparse web tensors must keep their nnz-per-slice
        // character (it drives atomic contention and tiling behaviour).
        for name in ["flickr-3d", "deli-3d", "nell-1", "deli-4d"] {
            let p = by_name(name).unwrap();
            let orig_avg = p.nnz as f64 / p.dims[0] as f64;
            let dims = p.scaled_dims(512);
            let scaled_avg = p.scaled_nnz(512) as f64 / dims[0] as f64;
            assert!(
                (scaled_avg / orig_avg).log2().abs() < 2.0,
                "{name}: avg nnz/slice drifted {orig_avg} -> {scaled_avg}"
            );
        }
    }

    #[test]
    fn scaling_preserves_factor_to_tensor_byte_ratio() {
        // Transfer composition (factor bytes vs tensor bytes) shapes the
        // Fig. 5/10 results; the scaled stand-ins must keep it roughly.
        // enron is excluded: its density (6e-9) sits between the dense and
        // hyper-sparse regimes, so the density floor necessarily dilutes
        // its mode sizes; the drift there is accepted and documented.
        for name in ["flickr-3d", "nell-1", "deli-4d"] {
            let p = by_name(name).unwrap();
            let ratio = |sum_dims: f64, nnz: f64, order: f64| {
                (sum_dims * 16.0 * 4.0) / (nnz * (order * 4.0 + 4.0))
            };
            let orig =
                ratio(p.dims.iter().map(|&d| d as f64).sum(), p.nnz as f64, p.order() as f64);
            let dims = p.scaled_dims(512);
            let scaled = ratio(
                dims.iter().map(|&d| d as f64).sum(),
                p.scaled_nnz(512) as f64,
                p.order() as f64,
            );
            assert!(
                (scaled / orig).log2().abs() < 2.0,
                "{name}: factor:tensor ratio drifted {orig} -> {scaled}"
            );
        }
    }

    #[test]
    fn materialize_small_scale_is_valid_and_deterministic() {
        // Use a large divisor to keep the test fast.
        for p in small_suite() {
            let t = p.materialize(8192);
            assert!(t.validate().is_ok(), "{} invalid", p.name);
            assert_eq!(t.order(), p.order());
            assert!(t.nnz() >= 64);
            let t2 = p.materialize(8192);
            assert_eq!(t, t2, "{} not deterministic", p.name);
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for p in all_presets() {
            assert_eq!(by_name(p.name).unwrap().name, p.name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn scaled_dims_clamped() {
        let vast = by_name("vast").unwrap();
        let dims = vast.scaled_dims(512);
        assert!(dims.iter().all(|&d| d >= 2));
    }
}
