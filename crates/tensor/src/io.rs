//! FROSTT `.tns` text format I/O.
//!
//! The FROSTT repository distributes tensors as whitespace-separated text:
//! one non-zero per line, `order` 1-based indices followed by the value.
//! Comment lines start with `#`. This reader/writer lets real datasets be
//! dropped into the benchmark harnesses in place of the synthetic presets.

use crate::{CooTensor, Idx, Val};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the `.tns` reader.
#[derive(Debug)]
pub enum TnsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed (1-based line number, message).
    Parse(usize, String),
    /// The file contained no non-zero entries.
    Empty,
}

impl std::fmt::Display for TnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TnsError::Io(e) => write!(f, "I/O error: {e}"),
            TnsError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
            TnsError::Empty => write!(f, "tensor file contains no entries"),
        }
    }
}

impl std::error::Error for TnsError {}

impl From<std::io::Error> for TnsError {
    fn from(e: std::io::Error) -> Self {
        TnsError::Io(e)
    }
}

/// Reads a `.tns` tensor from any reader. Mode sizes are inferred as the
/// maximum index seen per mode (the FROSTT convention).
pub fn read_tns(reader: impl Read) -> Result<CooTensor, TnsError> {
    let buf = BufReader::new(reader);
    let mut order: Option<usize> = None;
    let mut inds: Vec<Vec<Idx>> = Vec::new();
    let mut vals: Vec<Val> = Vec::new();
    let mut line_buf = String::new();
    let mut reader = buf;
    let mut lineno = 0usize;

    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(TnsError::Parse(lineno, "expected indices followed by a value".into()));
        }
        let n = fields.len() - 1;
        match order {
            None => {
                order = Some(n);
                inds = vec![Vec::new(); n];
            }
            Some(o) if o != n => {
                return Err(TnsError::Parse(
                    lineno,
                    format!("inconsistent arity: expected {o} indices, found {n}"),
                ));
            }
            _ => {}
        }
        for (m, f) in fields[..n].iter().enumerate() {
            let one_based: u64 =
                f.parse().map_err(|_| TnsError::Parse(lineno, format!("bad index '{f}'")))?;
            if one_based == 0 {
                return Err(TnsError::Parse(lineno, "indices are 1-based; found 0".into()));
            }
            inds[m].push((one_based - 1) as Idx);
        }
        let v: Val = fields[n]
            .parse()
            .map_err(|_| TnsError::Parse(lineno, format!("bad value '{}'", fields[n])))?;
        vals.push(v);
    }

    if vals.is_empty() {
        return Err(TnsError::Empty);
    }
    let dims: Vec<Idx> = inds.iter().map(|iv| iv.iter().copied().max().unwrap() + 1).collect();
    Ok(CooTensor::from_parts(&dims, inds, vals))
}

/// Reads a `.tns` tensor from a file path.
pub fn read_tns_file(path: impl AsRef<Path>) -> Result<CooTensor, TnsError> {
    read_tns(std::fs::File::open(path)?)
}

/// Writes a tensor in `.tns` format (1-based indices) to any writer.
pub fn write_tns(tensor: &CooTensor, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for e in 0..tensor.nnz() {
        for m in 0..tensor.order() {
            write!(w, "{} ", tensor.mode_indices(m)[e] + 1)?;
        }
        writeln!(w, "{}", tensor.values()[e])?;
    }
    w.flush()
}

/// Writes a tensor to a `.tns` file.
pub fn write_tns_file(tensor: &CooTensor, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_tns(tensor, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let text = "# a comment\n1 1 1 1.5\n2 3 1 -2.0\n\n4 2 2 0.25\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.dims(), &[4, 3, 2]);
        assert_eq!(t.coord(0), vec![0, 0, 0]);
        assert_eq!(t.values()[1], -2.0);
    }

    #[test]
    fn round_trip_through_text() {
        let orig = CooTensor::random_uniform(&[12, 9, 7], 60, 42);
        let mut buf = Vec::new();
        write_tns(&orig, &mut buf).unwrap();
        let back = read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), orig.nnz());
        assert_eq!(back.order(), orig.order());
        // Dims are inferred from max index, so they may shrink; entries match.
        let mut a: Vec<(Vec<Idx>, Val)> =
            (0..orig.nnz()).map(|e| (orig.coord(e), orig.values()[e])).collect();
        let mut b: Vec<(Vec<Idx>, Val)> =
            (0..back.nnz()).map(|e| (back.coord(e), back.values()[e])).collect();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        for ((ca, va), (cb, vb)) in a.iter().zip(&b) {
            assert_eq!(ca, cb);
            assert!((va - vb).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_zero_index() {
        let err = read_tns("0 1 2 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse(1, _)));
    }

    #[test]
    fn rejects_inconsistent_arity() {
        let err = read_tns("1 1 1 1.0\n1 1 2.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse(2, _)));
    }

    #[test]
    fn rejects_garbage_value() {
        let err = read_tns("1 1 abc\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TnsError::Parse(1, _)));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(matches!(read_tns("# only comments\n".as_bytes()), Err(TnsError::Empty)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("scalfrag_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tns");
        let orig = CooTensor::random_uniform(&[5, 5], 10, 3);
        write_tns_file(&orig, &path).unwrap();
        let back = read_tns_file(&path).unwrap();
        assert_eq!(back.nnz(), 10);
        std::fs::remove_file(&path).ok();
    }
}
