//! Tensor feature extraction for the adaptive launching strategy (§IV-B).
//!
//! The paper: *"The feature parameters we focus on mainly include tensor
//! size (dimension and number of elements) and sparsity (distribution and
//! proportion of nonzero elements). For example, the feature parameters
//! include numSlices, numFibers, sliceRatio, fiberRatio, maxNnzPerSlice,
//! …"* — this module computes exactly that set (plus the spread statistics
//! needed to characterise skew) for a given target mode, and flattens it
//! into the numeric vector consumed by the `scalfrag-autotune` models.

use crate::{CooTensor, Idx};

/// The §IV-B feature parameters of one `(tensor, mode)` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorFeatures {
    /// Tensor order `N`.
    pub order: usize,
    /// Number of non-zero entries.
    pub nnz: usize,
    /// Size of the target mode (number of possible slices).
    pub mode_dim: Idx,
    /// Product of the other mode sizes (possible fiber positions), saturated
    /// into `f64`.
    pub other_dims_product: f64,
    /// Overall density `nnz / ∏ dims`.
    pub density: f64,
    /// Non-empty mode-`n` slices (`numSlices`).
    pub num_slices: usize,
    /// Distinct mode-`n` fibers (`numFibers`).
    pub num_fibers: usize,
    /// `numSlices / mode_dim` (`sliceRatio`).
    pub slice_ratio: f64,
    /// `numFibers / other_dims_product` (`fiberRatio`).
    pub fiber_ratio: f64,
    /// Largest slice population (`maxNnzPerSlice`).
    pub max_nnz_per_slice: u32,
    /// Mean non-zeros per non-empty slice.
    pub avg_nnz_per_slice: f64,
    /// Population standard deviation of non-zeros per non-empty slice.
    pub std_nnz_per_slice: f64,
    /// Mean non-zeros per fiber.
    pub avg_nnz_per_fiber: f64,
    /// `max/avg` slice population — the load-imbalance indicator.
    pub slice_imbalance: f64,
    /// Largest fiber population (`maxFiberLength`).
    pub max_nnz_per_fiber: u32,
    /// `max/avg` fiber population — the fiber-level imbalance that
    /// serializes whole blocks in slice/fiber-parallel kernels and that
    /// the load-balanced segmented-scan arm is immune to.
    pub fiber_imbalance: f64,
    /// Gini coefficient of the non-empty slice populations in `[0, 1)`:
    /// 0 for perfectly even slices, → 1 when one slice holds everything.
    pub nnz_gini: f64,
}

/// Names of the flattened feature vector entries, in [`TensorFeatures::to_vec`]
/// order — used by model introspection and reports.
pub const FEATURE_NAMES: [&str; 14] = [
    "order",
    "log_nnz",
    "log_mode_dim",
    "log_other_dims",
    "log_density",
    "slice_ratio",
    "fiber_ratio",
    "log_max_nnz_per_slice",
    "log_avg_nnz_per_slice",
    "cv_nnz_per_slice",
    "log_avg_nnz_per_fiber",
    "slice_imbalance",
    "fiber_imbalance",
    "nnz_gini",
];

impl TensorFeatures {
    /// Extracts the features of `tensor` for mode-`mode` MTTKRP.
    ///
    /// # Panics
    /// Panics if `mode >= tensor.order()`.
    pub fn extract(tensor: &CooTensor, mode: usize) -> Self {
        assert!(mode < tensor.order(), "mode out of range");
        let nnz = tensor.nnz();
        let mode_dim = tensor.dims()[mode];
        let other_dims_product: f64 = tensor
            .dims()
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &d)| d as f64)
            .product();

        let hist = tensor.slice_nnz_histogram(mode);
        let nonempty: Vec<u32> = hist.into_iter().filter(|&c| c > 0).collect();
        let num_slices = nonempty.len();
        let max_nnz_per_slice = nonempty.iter().copied().max().unwrap_or(0);
        let avg_nnz_per_slice = if num_slices == 0 { 0.0 } else { nnz as f64 / num_slices as f64 };
        let var = if num_slices == 0 {
            0.0
        } else {
            nonempty
                .iter()
                .map(|&c| {
                    let d = c as f64 - avg_nnz_per_slice;
                    d * d
                })
                .sum::<f64>()
                / num_slices as f64
        };

        let fiber_counts = tensor.fiber_nnz_counts(mode);
        let num_fibers = fiber_counts.len();
        let avg_nnz_per_fiber = if num_fibers == 0 { 0.0 } else { nnz as f64 / num_fibers as f64 };
        let max_nnz_per_fiber = fiber_counts.iter().copied().max().unwrap_or(0);

        // Gini of the non-empty slice populations: sort ascending, then
        // G = 2·Σᵢ i·xᵢ / (n·Σx) − (n+1)/n with 1-based ranks — 0 for an
        // even histogram, → 1 − 1/n when one slice dominates.
        let nnz_gini = {
            let mut sorted = nonempty.clone();
            sorted.sort_unstable();
            let n = sorted.len() as f64;
            let total: f64 = sorted.iter().map(|&c| c as f64).sum();
            if sorted.is_empty() || total <= 0.0 {
                0.0
            } else {
                let weighted: f64 =
                    sorted.iter().enumerate().map(|(i, &c)| (i as f64 + 1.0) * c as f64).sum();
                (2.0 * weighted / (n * total) - (n + 1.0) / n).max(0.0)
            }
        };

        Self {
            order: tensor.order(),
            nnz,
            mode_dim,
            other_dims_product,
            density: tensor.density(),
            num_slices,
            num_fibers,
            slice_ratio: num_slices as f64 / mode_dim as f64,
            fiber_ratio: if other_dims_product > 0.0 {
                num_fibers as f64 / other_dims_product
            } else {
                0.0
            },
            max_nnz_per_slice,
            avg_nnz_per_slice,
            std_nnz_per_slice: var.sqrt(),
            avg_nnz_per_fiber,
            slice_imbalance: if avg_nnz_per_slice > 0.0 {
                max_nnz_per_slice as f64 / avg_nnz_per_slice
            } else {
                0.0
            },
            max_nnz_per_fiber,
            fiber_imbalance: if avg_nnz_per_fiber > 0.0 {
                max_nnz_per_fiber as f64 / avg_nnz_per_fiber
            } else {
                0.0
            },
            nnz_gini,
        }
    }

    /// Flattens into the numeric vector the ML models consume. Counts are
    /// `log10`-scaled (they span 6+ orders of magnitude across the FROSTT
    /// suite); ratios stay raw. Order matches [`FEATURE_NAMES`].
    pub fn to_vec(&self) -> Vec<f64> {
        let l = |x: f64| if x > 0.0 { x.log10() } else { -12.0 };
        vec![
            self.order as f64,
            l(self.nnz as f64),
            l(self.mode_dim as f64),
            l(self.other_dims_product),
            l(self.density),
            self.slice_ratio,
            self.fiber_ratio,
            l(self.max_nnz_per_slice as f64),
            l(self.avg_nnz_per_slice),
            if self.avg_nnz_per_slice > 0.0 {
                self.std_nnz_per_slice / self.avg_nnz_per_slice
            } else {
                0.0
            },
            l(self.avg_nnz_per_fiber),
            self.slice_imbalance,
            self.fiber_imbalance,
            self.nnz_gini,
        ]
    }

    /// Number of entries of [`TensorFeatures::to_vec`].
    pub const fn dim() -> usize {
        FEATURE_NAMES.len()
    }
}

/// A quantized, hashable summary of one `(tensor, mode, rank)` planning
/// problem — the key of the serving layer's plan cache.
///
/// Two tensors that land on the same key are close enough in every feature
/// the launch predictor and pipeline planner look at that their execution
/// plans are interchangeable (same launch configuration regime, same
/// segment-count regime). The buckets are deliberately coarse:
///
/// * counts (`nnz`, slices, fibers, mode size) are bucketed on a log₂
///   grid — quarter octaves for `nnz` (≈ ±9 % within a bucket), half
///   octaves for the rest;
/// * ratios (`sliceRatio`, `fiberRatio`) in eighths;
/// * the skew indicators (`max/avg` slice and fiber populations) in whole
///   octaves, and the slice-population Gini coefficient in eighths — the
///   imbalance axes that separate the load-balanced kernel arm's regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FeatureKey {
    /// Tensor order `N`.
    pub order: usize,
    /// Target MTTKRP mode.
    pub mode: usize,
    /// CPD rank (the launch space and shared-memory request depend on it).
    pub rank: u32,
    /// `round(4 · log2 nnz)` — quarter-octave non-zero count bucket.
    pub nnz_bucket: i32,
    /// `round(2 · log2 numSlices)` — half-octave bucket.
    pub slices_bucket: i32,
    /// `round(2 · log2 numFibers)` — half-octave bucket.
    pub fibers_bucket: i32,
    /// `round(2 · log2 mode_dim)` — half-octave bucket.
    pub mode_dim_bucket: i32,
    /// `round(8 · sliceRatio)` — eighth buckets in `[0, 1]`.
    pub slice_ratio_bucket: i32,
    /// `round(8 · fiberRatio)` — eighth buckets in `[0, 1]`.
    pub fiber_ratio_bucket: i32,
    /// `round(log2 slice_imbalance)` — whole-octave skew bucket.
    pub imbalance_bucket: i32,
    /// `round(log2 fiber_imbalance)` — whole-octave fiber-skew bucket;
    /// together with `gini_bucket` this is what flips the predictor to
    /// the load-balanced segmented-scan arm.
    pub fiber_imbalance_bucket: i32,
    /// `round(8 · nnz_gini)` — eighth buckets of the slice-population
    /// Gini coefficient in `[0, 1)`.
    pub gini_bucket: i32,
}

impl FeatureKey {
    /// Quantizes extracted features (of `mode`) into a cache key.
    pub fn quantize(f: &TensorFeatures, mode: usize, rank: u32) -> Self {
        let lb = |x: f64, scale: f64| {
            if x > 0.0 {
                (scale * x.log2()).round() as i32
            } else {
                i32::MIN
            }
        };
        Self {
            order: f.order,
            mode,
            rank,
            nnz_bucket: lb(f.nnz as f64, 4.0),
            slices_bucket: lb(f.num_slices as f64, 2.0),
            fibers_bucket: lb(f.num_fibers as f64, 2.0),
            mode_dim_bucket: lb(f.mode_dim as f64, 2.0),
            slice_ratio_bucket: (8.0 * f.slice_ratio).round() as i32,
            fiber_ratio_bucket: (8.0 * f.fiber_ratio).round() as i32,
            imbalance_bucket: lb(f.slice_imbalance.max(1.0), 1.0),
            fiber_imbalance_bucket: lb(f.fiber_imbalance.max(1.0), 1.0),
            gini_bucket: (8.0 * f.nnz_gini).round() as i32,
        }
    }

    /// Convenience: extract + quantize in one call.
    pub fn of(tensor: &CooTensor, mode: usize, rank: u32) -> Self {
        Self::quantize(&TensorFeatures::extract(tensor, mode), mode, rank)
    }

    /// Whether two planning problems may share one *batched* plan.
    ///
    /// The serving layer fuses jobs into a single ScheduleIR plan only when
    /// their keys are batch-compatible: the fused plan uploads one set of
    /// shared factor matrices and reuses one launch-configuration verdict
    /// for every member, so every feature the predictor and planner read
    /// must agree. That makes compatibility exactly key *equality* — and
    /// deliberately so: group formation partitions the queue, which needs
    /// an equivalence relation, and any "nearby bucket" slack would break
    /// transitivity (a ~ b and b ~ c without a ~ c) and let a group's
    /// representative plan drift away from its members.
    pub fn batch_compatible(&self, other: &FeatureKey) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_of_known_tensor() {
        // 3x2x2 tensor: slices 0 and 2 populated for mode 0.
        let t = CooTensor::from_entries(
            &[3, 2, 2],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 1, 0], 1.0),
                (vec![0, 1, 1], 1.0),
                (vec![2, 0, 1], 1.0),
            ],
        );
        let f = TensorFeatures::extract(&t, 0);
        assert_eq!(f.order, 3);
        assert_eq!(f.nnz, 4);
        assert_eq!(f.mode_dim, 3);
        assert_eq!(f.num_slices, 2);
        assert_eq!(f.max_nnz_per_slice, 3);
        assert!((f.slice_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((f.avg_nnz_per_slice - 2.0).abs() < 1e-12);
        assert!((f.slice_imbalance - 1.5).abs() < 1e-12);
        // Mode-0 fibers fix (j,k): distinct pairs are (0,0),(1,0),(1,1),(0,1) = 4.
        assert_eq!(f.num_fibers, 4);
        assert!((f.fiber_ratio - 1.0).abs() < 1e-12);
        assert!((f.density - 4.0 / 12.0).abs() < 1e-12);
        // Each mode-0 fiber holds exactly one entry: no fiber skew.
        assert_eq!(f.max_nnz_per_fiber, 1);
        assert!((f.fiber_imbalance - 1.0).abs() < 1e-12);
        // Slice populations {3, 1}: G = 2·(1·1 + 2·3)/(2·4) − 3/2 = 0.25.
        assert!((f.nnz_gini - 0.25).abs() < 1e-12);
    }

    #[test]
    fn vector_has_stable_layout() {
        let t = CooTensor::random_uniform(&[40, 30, 20], 200, 4);
        let f = TensorFeatures::extract(&t, 1);
        let v = f.to_vec();
        assert_eq!(v.len(), TensorFeatures::dim());
        assert_eq!(v.len(), FEATURE_NAMES.len());
        assert_eq!(v[0], 3.0);
        assert!((v[1] - (200f64).log10()).abs() < 1e-12);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn skewed_tensor_has_higher_imbalance() {
        let uni = crate::gen::uniform(&[100, 50, 50], 2_000, 7);
        let skew = crate::gen::zipf_slices(&[100, 50, 50], 2_000, 1.2, 7);
        let fu = TensorFeatures::extract(&uni, 0);
        let fs = TensorFeatures::extract(&skew, 0);
        assert!(
            fs.slice_imbalance > 2.0 * fu.slice_imbalance,
            "skewed {} vs uniform {}",
            fs.slice_imbalance,
            fu.slice_imbalance
        );
        assert!(fs.std_nnz_per_slice > fu.std_nnz_per_slice);
    }

    #[test]
    fn empty_tensor_is_safe() {
        let t = CooTensor::new(&[10, 10]);
        let f = TensorFeatures::extract(&t, 0);
        assert_eq!(f.num_slices, 0);
        assert_eq!(f.max_nnz_per_slice, 0);
        assert_eq!(f.slice_imbalance, 0.0);
        assert!(f.to_vec().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn feature_key_stable_across_resampling() {
        // Same generator, same shape, different seeds: the quantized key
        // must collapse the sampling noise.
        let a = crate::gen::zipf_slices(&[200, 120, 90], 20_000, 0.9, 11);
        let b = crate::gen::zipf_slices(&[200, 120, 90], 20_000, 0.9, 12);
        assert_eq!(FeatureKey::of(&a, 0, 16), FeatureKey::of(&b, 0, 16));
    }

    #[test]
    fn feature_key_separates_sizes_modes_and_ranks() {
        let small = crate::gen::uniform(&[100, 80, 60], 4_000, 5);
        let large = crate::gen::uniform(&[1000, 800, 600], 400_000, 5);
        assert_ne!(FeatureKey::of(&small, 0, 16), FeatureKey::of(&large, 0, 16));
        assert_ne!(FeatureKey::of(&small, 0, 16), FeatureKey::of(&small, 1, 16));
        assert_ne!(FeatureKey::of(&small, 0, 16), FeatureKey::of(&small, 0, 32));
    }

    #[test]
    fn feature_key_of_empty_tensor_is_safe() {
        let t = CooTensor::new(&[10, 10]);
        let k = FeatureKey::of(&t, 0, 8);
        assert_eq!(k.nnz_bucket, i32::MIN);
        assert_eq!(k, FeatureKey::of(&t, 0, 8));
    }

    /// Metamorphic: every log-bucketed key component is monotone in the
    /// underlying feature — growing a feature can only keep or raise its
    /// bucket, never lower it. Guards the plan cache against a requantize
    /// that would alias large tensors into small-tensor plans.
    #[test]
    fn feature_key_quantization_is_monotone() {
        let base = crate::gen::uniform(&[64, 48, 32], 1_000, 17);
        let mut f = TensorFeatures::extract(&base, 0);
        let mut prev = FeatureKey::quantize(&f, 0, 8);
        for step in 1..=12 {
            f.nnz *= 2;
            f.num_slices = (f.num_slices + step).min(f.mode_dim as usize);
            f.num_fibers += 37 * step;
            f.slice_imbalance *= 1.5;
            f.fiber_imbalance *= 1.4;
            f.nnz_gini = (f.nnz_gini + 0.05).min(0.99);
            let next = FeatureKey::quantize(&f, 0, 8);
            assert!(next.nnz_bucket > prev.nnz_bucket, "nnz bucket must strictly grow on doubling");
            assert!(next.slices_bucket >= prev.slices_bucket);
            assert!(next.fibers_bucket >= prev.fibers_bucket);
            assert!(next.imbalance_bucket >= prev.imbalance_bucket);
            assert!(next.fiber_imbalance_bucket >= prev.fiber_imbalance_bucket);
            assert!(next.gini_bucket >= prev.gini_bucket);
            prev = next;
        }
    }

    /// Metamorphic: the key is a function of the slice/fiber *histograms*,
    /// so reordering the entry storage must not move any bucket.
    #[test]
    fn feature_key_stable_under_nnz_shuffle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let t = crate::gen::zipf_slices(&[96, 64, 48], 6_000, 1.1, 23);
        let n = t.nnz();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(24);
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut shuffled = CooTensor::new(t.dims());
        for &e in &order {
            let coord: Vec<Idx> = (0..t.order()).map(|m| t.mode_indices(m)[e]).collect();
            shuffled.push(&coord, t.values()[e]);
        }
        for mode in 0..t.order() {
            assert_eq!(
                FeatureKey::of(&t, mode, 8),
                FeatureKey::of(&shuffled, mode, 8),
                "mode {mode}: key moved under entry reorder"
            );
        }
    }

    /// Metamorphic: two tensors in the same shape class — identical slice
    /// populations up to slice *relabeling*, arbitrary values — quantize
    /// to identical keys. A cache hit between them is exactly what the
    /// plan cache wants.
    #[test]
    fn feature_key_identical_for_same_shape_class() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let a = crate::gen::zipf_slices(&[80, 50, 40], 5_000, 1.0, 31);
        // Relabel mode-0 slices by a fixed permutation and rewrite every
        // value: structure preserved, content entirely different.
        let dim0 = a.dims()[0];
        let relabel: Vec<Idx> = {
            let mut p: Vec<Idx> = (0..dim0).collect();
            let mut rng = StdRng::seed_from_u64(32);
            for i in (1..p.len()).rev() {
                p.swap(i, rng.gen_range(0..=i));
            }
            p
        };
        let mut rng = StdRng::seed_from_u64(33);
        let mut b = CooTensor::new(a.dims());
        for e in 0..a.nnz() {
            let mut coord: Vec<Idx> = (0..a.order()).map(|m| a.mode_indices(m)[e]).collect();
            coord[0] = relabel[coord[0] as usize];
            b.push(&coord, rng.gen::<f32>());
        }
        assert_eq!(
            FeatureKey::of(&a, 0, 16),
            FeatureKey::of(&b, 0, 16),
            "slice relabeling + value rewrite must not change the key"
        );
    }

    /// Metamorphic: the imbalance features are functions of the slice and
    /// fiber *histograms*, so reordering the stored entries must leave
    /// their raw values (not just their buckets) exactly unchanged.
    #[test]
    fn imbalance_features_invariant_under_nnz_shuffle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let t = crate::gen::zipf_slices(&[72, 48, 36], 4_000, 1.2, 41);
        let n = t.nnz();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(42);
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut shuffled = CooTensor::new(t.dims());
        for &e in &order {
            let coord: Vec<Idx> = (0..t.order()).map(|m| t.mode_indices(m)[e]).collect();
            shuffled.push(&coord, t.values()[e]);
        }
        for mode in 0..t.order() {
            let a = TensorFeatures::extract(&t, mode);
            let b = TensorFeatures::extract(&shuffled, mode);
            assert_eq!(a.max_nnz_per_fiber, b.max_nnz_per_fiber, "mode {mode}");
            assert_eq!(a.fiber_imbalance, b.fiber_imbalance, "mode {mode}");
            assert_eq!(a.nnz_gini, b.nnz_gini, "mode {mode}");
        }
    }

    /// Metamorphic: sharpening the slice distribution (higher Zipf
    /// exponent, same shape/nnz/seed) must monotonically raise the Gini
    /// coefficient, and concentrating >50 % of the nnz into one fiber
    /// must raise the fiber imbalance far above the uniform baseline.
    #[test]
    fn imbalance_features_monotone_in_skew() {
        let ginis: Vec<f64> = [0.0f64, 0.6, 1.3]
            .iter()
            .map(|&a| {
                let t = crate::gen::zipf_slices(&[128, 64, 48], 8_000, a, 19);
                TensorFeatures::extract(&t, 0).nnz_gini
            })
            .collect();
        assert!(
            ginis[0] < ginis[1] && ginis[1] < ginis[2],
            "gini must grow with the Zipf exponent: {ginis:?}"
        );
        assert!(ginis[2] > 0.5, "strongly skewed slices have gini > 0.5, got {}", ginis[2]);

        // One mode-0 fiber (j=3, k=5) holding 60 % of the nnz.
        let uni = crate::gen::uniform(&[64, 32, 24], 2_000, 20);
        let mut heavy = CooTensor::new(&[64, 32, 24]);
        for e in 0..uni.nnz() {
            if e % 5 < 3 {
                heavy.push(&[uni.mode_indices(0)[e], 3, 5], uni.values()[e]);
            } else {
                heavy.push(&uni.coord(e), uni.values()[e]);
            }
        }
        let fu = TensorFeatures::extract(&uni, 0);
        let fh = TensorFeatures::extract(&heavy, 0);
        assert!(
            fh.fiber_imbalance > 8.0 * fu.fiber_imbalance,
            "one dominant fiber: {} vs uniform {}",
            fh.fiber_imbalance,
            fu.fiber_imbalance
        );
        assert!(fh.max_nnz_per_fiber as usize > uni.nnz() / 2);
    }

    /// Metamorphic: quantization-bucket equality ⇒ batch compatibility.
    /// Two tensors resampled from the same shape class collapse to one key,
    /// and the compatibility relation must follow the key — reflexively,
    /// symmetrically, and across the resampling.
    #[test]
    fn batch_compatible_follows_bucket_equality() {
        let a = crate::gen::zipf_slices(&[200, 120, 90], 20_000, 0.9, 11);
        let b = crate::gen::zipf_slices(&[200, 120, 90], 20_000, 0.9, 12);
        let ka = FeatureKey::of(&a, 0, 16);
        let kb = FeatureKey::of(&b, 0, 16);
        assert_eq!(ka, kb, "same shape class must collapse to one key");
        assert!(ka.batch_compatible(&kb) && kb.batch_compatible(&ka), "equal keys ⇒ compatible");
        assert!(ka.batch_compatible(&ka), "compatibility is reflexive");

        // Any bucket disagreement breaks compatibility: a 10× larger
        // tensor, a different mode, and a different rank all must refuse
        // to fuse.
        let large = crate::gen::uniform(&[1000, 800, 600], 400_000, 5);
        assert!(!ka.batch_compatible(&FeatureKey::of(&large, 0, 16)));
        assert!(!ka.batch_compatible(&FeatureKey::of(&a, 1, 16)));
        assert!(!ka.batch_compatible(&FeatureKey::of(&a, 0, 32)));
    }

    /// Metamorphic: batch compatibility is a function of the slice/fiber
    /// histograms, so reordering the entry storage must not flip it.
    #[test]
    fn batch_compatible_invariant_under_nnz_shuffle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let t = crate::gen::zipf_slices(&[96, 64, 48], 6_000, 1.1, 23);
        let n = t.nnz();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(29);
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut shuffled = CooTensor::new(t.dims());
        for &e in &order {
            let coord: Vec<Idx> = (0..t.order()).map(|m| t.mode_indices(m)[e]).collect();
            shuffled.push(&coord, t.values()[e]);
        }
        for mode in 0..t.order() {
            let k = FeatureKey::of(&t, mode, 8);
            let ks = FeatureKey::of(&shuffled, mode, 8);
            assert!(
                k.batch_compatible(&ks) && ks.batch_compatible(&k),
                "mode {mode}: shuffle flipped batch compatibility"
            );
        }
    }

    #[test]
    fn per_mode_features_differ() {
        let t = crate::gen::zipf_slices(&[200, 10, 10], 1_000, 1.0, 3);
        let f0 = TensorFeatures::extract(&t, 0);
        let f1 = TensorFeatures::extract(&t, 1);
        assert_ne!(f0.mode_dim, f1.mode_dim);
        assert_ne!(f0.num_slices, f1.num_slices);
    }
}
