//! # scalfrag-tensor
//!
//! Sparse tensor substrate for the ScalFrag reproduction: data formats,
//! synthetic dataset generators, feature extraction, segmentation and I/O.
//!
//! The paper (§II-D) works with the two classic sparse-tensor format
//! families. This crate implements representatives of both plus everything
//! the rest of the system needs:
//!
//! * [`CooTensor`] — the coordinate format, the paper's working format for
//!   the GPU kernels and the pipeline segmentation (§IV-C).
//! * [`CsfTensor`] — compressed sparse fiber (Smith & Karypis), the
//!   tree-based family representative.
//! * [`HiCooTensor`] — a HiCOO-lite block-compressed format (Li et al.).
//! * [`ChunkedTensor`] — fixed-nnz chunks with boundary-row carry metadata
//!   (Nisa et al.'s load-balanced layout) and [`FlycooTensor`] — one
//!   tensor copy plus per-mode remap tables (FLYCOO), the formats behind
//!   the `scalfrag-balance` kernel arms.
//! * [`gen`] — synthetic tensor generators (uniform, Zipf-skewed slices,
//!   block-clustered) and [`frostt`] — presets mirroring the ten FROSTT
//!   datasets of Table III (order, mode-size ratios, density, skew),
//!   scaled so the full evaluation runs on a laptop.
//! * [`TensorFeatures`] — the feature parameters of §IV-B
//!   (`numSlices`, `numFibers`, `sliceRatio`, `fiberRatio`,
//!   `maxNnzPerSlice`, …) feeding the adaptive launching model.
//! * [`segment`] — nnz-balanced segmentation of a COO tensor for the
//!   pipelined parallelism of §IV-C.
//! * [`io`] — FROSTT `.tns` text format reader/writer so real datasets can
//!   be dropped in.

pub mod chunked;
pub mod coo;
pub mod csf;
pub mod fcoo;
pub mod features;
pub mod flycoo;
pub mod frostt;
pub mod gen;
pub mod hicoo;
pub mod io;
pub mod matricize;
pub mod permute;
pub mod reorder;
pub mod segment;
pub mod semisparse;

pub use chunked::{BoundaryRow, ChunkedTensor};
pub use coo::CooTensor;
pub use csf::CsfTensor;
pub use fcoo::FCooTensor;
pub use features::{FeatureKey, TensorFeatures};
pub use flycoo::FlycooTensor;
pub use frostt::DatasetPreset;
pub use hicoo::HiCooTensor;
pub use permute::ModePermutation;
pub use segment::{segment_by_nnz, Segment};
pub use semisparse::SemiSparseTensor;

/// Index type for tensor coordinates. Mode sizes in the FROSTT datasets
/// reach 28 M (`flickr`), comfortably inside `u32`, and halving the index
/// width halves both host-device traffic and cache pressure — the same
/// reason ParTI and SPLATT default to 32-bit indices.
pub type Idx = u32;

/// Value type for tensor entries and factor matrices (the paper's kernels
/// are single precision).
pub type Val = f32;
