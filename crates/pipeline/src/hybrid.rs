//! CPU–GPU hybrid execution.
//!
//! §I: *"we put the parts with low parallelism to the CPU for execution.
//! Through this CPU-GPU heterogeneous hybrid optimization, substantial
//! efficiency improvement is achieved."* For MTTKRP the low-parallelism
//! part is the long tail of near-empty slices: each contributes a few
//! scattered entries whose GPU processing is latency-bound, while the host
//! can fold them in for free while the PCIe transfer of the bulk is in
//! flight.
//!
//! The host fold is a first-class `HostResidue` op of the lowered plan:
//! it appears in the plan trace and participates in the resilient
//! engine's retry discipline like any device op.

use crate::builders::build_hybrid_plan;
use crate::executor::{ExecMode, KernelChoice, PipelineRun};
use scalfrag_exec::run_plan_on;
use scalfrag_gpusim::{Gpu, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::CooTensor;

/// A tensor split into a GPU part (dense slices) and a host part (the
/// sparse-slice tail).
#[derive(Clone, Debug)]
pub struct HybridSplit {
    /// Entries belonging to well-populated slices (device work).
    pub gpu_part: CooTensor,
    /// Entries belonging to near-empty slices (host work).
    pub cpu_part: CooTensor,
    /// Slice-population threshold used.
    pub threshold: u32,
}

impl HybridSplit {
    /// Fraction of non-zeros assigned to the host.
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.gpu_part.nnz() + self.cpu_part.nnz();
        if total == 0 {
            0.0
        } else {
            self.cpu_part.nnz() as f64 / total as f64
        }
    }
}

/// Splits entries by the population of their mode-`mode` slice: slices
/// with fewer than `threshold` non-zeros go to the CPU.
pub fn split_by_slice_population(tensor: &CooTensor, mode: usize, threshold: u32) -> HybridSplit {
    let hist = tensor.slice_nnz_histogram(mode);
    let mut gpu_part = CooTensor::new(tensor.dims());
    let mut cpu_part = CooTensor::new(tensor.dims());
    let order = tensor.order();
    let mut coord = vec![0u32; order];
    for e in 0..tensor.nnz() {
        for (m, c) in coord.iter_mut().enumerate() {
            *c = tensor.mode_indices(m)[e];
        }
        let v = tensor.values()[e];
        if hist[coord[mode] as usize] < threshold {
            cpu_part.push(&coord, v);
        } else {
            gpu_part.push(&coord, v);
        }
    }
    HybridSplit { gpu_part, cpu_part, threshold }
}

/// Executes an MTTKRP with the hybrid schedule: the dense-slice bulk runs
/// through the segmented GPU pipeline while the sparse-slice tail runs as
/// a `HostResidue` op in parallel; the two partial outputs are summed.
///
/// `split.gpu_part` is sorted internally; `plan_segments`/`plan_streams`
/// configure the GPU-side pipeline.
#[allow(clippy::too_many_arguments)]
pub fn execute_hybrid(
    gpu: &mut Gpu,
    split: &HybridSplit,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
    plan_segments: usize,
    plan_streams: usize,
    kernel: KernelChoice,
    exec: ExecMode,
) -> PipelineRun {
    let spec = gpu.spec().clone();
    let p =
        build_hybrid_plan(&spec, split, factors, mode, config, plan_segments, plan_streams, kernel);
    let outcome = run_plan_on(gpu, &p, exec);
    PipelineRun {
        output: outcome.output,
        timeline: gpu.full_timeline().clone(),
        trace: outcome.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::DeviceSpec;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn skewed() -> (CooTensor, FactorSet) {
        let dims = [200u32, 100, 100];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 15_000, 1.1, 21);
        let f = FactorSet::random(&dims, 8, 22);
        (t, f)
    }

    #[test]
    fn split_partitions_all_entries() {
        let (t, _) = skewed();
        let split = split_by_slice_population(&t, 0, 8);
        assert_eq!(split.gpu_part.nnz() + split.cpu_part.nnz(), t.nnz());
        assert!(split.cpu_fraction() > 0.0, "a Zipf tensor has a sparse tail");
        assert!(split.cpu_fraction() < 0.5, "the bulk should stay on the GPU");
        // Every CPU entry really is in a small slice.
        let hist = t.slice_nnz_histogram(0);
        for e in 0..split.cpu_part.nnz() {
            let s = split.cpu_part.mode_indices(0)[e] as usize;
            assert!(hist[s] < 8);
        }
    }

    #[test]
    fn threshold_zero_sends_everything_to_gpu() {
        let (t, _) = skewed();
        let split = split_by_slice_population(&t, 0, 0);
        assert_eq!(split.cpu_part.nnz(), 0);
        assert_eq!(split.gpu_part.nnz(), t.nnz());
    }

    #[test]
    fn hybrid_output_matches_reference() {
        let (t, f) = skewed();
        let split = split_by_slice_population(&t, 0, 8);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_hybrid(
            &mut gpu,
            &split,
            &f,
            0,
            LaunchConfig::new(1024, 256),
            4,
            4,
            KernelChoice::Tiled,
            ExecMode::Functional,
        );
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(
            run.output.max_abs_diff(&expect) < 1e-2,
            "diff {}",
            run.output.max_abs_diff(&expect)
        );
    }

    #[test]
    fn host_work_overlaps_device_work() {
        let (t, f) = skewed();
        let split = split_by_slice_population(&t, 0, 8);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_hybrid(
            &mut gpu,
            &split,
            &f,
            0,
            LaunchConfig::new(1024, 256),
            4,
            4,
            KernelChoice::Tiled,
            ExecMode::Functional,
        );
        let host_span = run
            .timeline
            .spans
            .iter()
            .find(|s| s.engine == scalfrag_gpusim::Engine::Host)
            .expect("host span present");
        // The host task starts immediately, i.e. before the device finishes.
        assert!(host_span.start < run.timeline.makespan() * 0.5);
    }

    #[test]
    fn host_residue_appears_in_the_plan_trace() {
        let (t, f) = skewed();
        let split = split_by_slice_population(&t, 0, 8);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_hybrid(
            &mut gpu,
            &split,
            &f,
            0,
            LaunchConfig::new(1024, 256),
            4,
            4,
            KernelChoice::Tiled,
            ExecMode::Functional,
        );
        assert!(
            run.trace.events.iter().any(|e| e.label == "host tail MTTKRP"),
            "the residue must be a first-class traced op"
        );
    }
}
