//! Fault-resilient pipelined execution: segment-level retry with
//! exponential backoff over a [`FaultInjector`].
//!
//! The executor decouples *timing* from *numerics* so recovery cannot
//! perturb results:
//!
//! * **Timing** — segments are launched in waves (timing-only kernels),
//!   polling the injector before every H2D and kernel. A corrupted
//!   transfer is still charged (the checksum pass catches it), an aborted
//!   kernel pays its full cost, a down device drops the wave; failed
//!   segments retry in the next wave after an exponential-backoff stall,
//!   up to [`RetryPolicy::max_attempts`].
//! * **Numerics** — after the schedule resolves, the segments that
//!   ultimately succeeded are replayed functionally *in segment order* on
//!   a scratch device. That is exactly the accumulation order of
//!   [`crate::execute_pipelined`], so a fully recovered run is
//!   bit-identical to the fault-free run.
//!
//! Detection is modelled honestly: every transferred segment pays a
//! host-side checksum verification task (the ECC-style scan of
//! `scalfrag_faults::checksum`), fault or no fault — resilience has a
//! small cost even on clean runs.

use crate::executor::KernelChoice;
use crate::plan::PipelinePlan;
use scalfrag_faults::{FaultInjector, OpClass, OpVerdict, RecoveryAction};
use scalfrag_gpusim::{DeviceSpec, Gpu, StreamId, Timeline};
use scalfrag_kernels::{AtomicF32Buffer, FactorSet};
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

/// Segment-retry policy: capped attempts with exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per segment (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry (s).
    pub backoff_base_s: f64,
    /// Multiplier applied per further retry.
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, backoff_base_s: 5e-5, backoff_mult: 2.0 }
    }
}

impl RetryPolicy {
    /// The ablation baseline: one attempt, no recovery.
    pub fn no_retry() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// Default backoff schedule with a custom attempt cap.
    pub fn with_attempts(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        Self { max_attempts, ..Self::default() }
    }

    /// Backoff stall before `attempt` (1-based; attempt 1 pays none).
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            0.0
        } else {
            self.backoff_base_s * self.backoff_mult.powi(attempt as i32 - 2)
        }
    }
}

/// Per-segment outcome of a resilient run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentOutcome {
    /// Segment index in the plan.
    pub segment: usize,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Whether the segment's kernel ultimately completed.
    pub completed: bool,
}

/// The result of one fault-injected pipelined MTTKRP.
#[derive(Clone, Debug)]
pub struct ResilientRun {
    /// The MTTKRP output accumulated from the *completed* segments (zero
    /// rows wherever all contributing segments were lost; all-zero in dry
    /// mode).
    pub output: Mat,
    /// Timeline of the whole schedule including retries.
    pub timeline: Timeline,
    /// Per-segment attempt/completion accounting.
    pub outcomes: Vec<SegmentOutcome>,
}

impl ResilientRun {
    /// End-to-end simulated seconds.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }

    /// Segments whose work was lost despite the policy.
    pub fn failed_segments(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.completed).count()
    }

    /// Segments that completed.
    pub fn completed_segments(&self) -> usize {
        self.outcomes.iter().filter(|o| o.completed).count()
    }

    /// Total attempts across all segments.
    pub fn total_attempts(&self) -> u32 {
        self.outcomes.iter().map(|o| o.attempts).sum()
    }

    /// Whether every segment completed (the recovery success criterion).
    pub fn all_complete(&self) -> bool {
        self.outcomes.iter().all(|o| o.completed)
    }
}

/// Executes an MTTKRP under fault injection with functional numerics.
///
/// `device_id` names this device to the injector (0 for a single-GPU
/// run). When every segment recovers, the output is bit-identical to
/// [`crate::execute_pipelined`] on the same plan.
#[allow(clippy::too_many_arguments)]
pub fn execute_pipelined_resilient(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
    device_id: usize,
    injector: &mut FaultInjector,
    policy: &RetryPolicy,
) -> ResilientRun {
    execute_pipelined_resilient_impl(
        gpu, tensor, factors, plan, kernel, device_id, injector, policy, true,
    )
}

/// Timing-only variant of [`execute_pipelined_resilient`]: identical
/// schedule, retries and fault consumption, zero output.
#[allow(clippy::too_many_arguments)]
pub fn execute_pipelined_resilient_dry(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
    device_id: usize,
    injector: &mut FaultInjector,
    policy: &RetryPolicy,
) -> ResilientRun {
    execute_pipelined_resilient_impl(
        gpu, tensor, factors, plan, kernel, device_id, injector, policy, false,
    )
}

#[allow(clippy::too_many_arguments)]
fn execute_pipelined_resilient_impl(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
    device_id: usize,
    injector: &mut FaultInjector,
    policy: &RetryPolicy,
    functional: bool,
) -> ResilientRun {
    assert!(policy.max_attempts >= 1, "at least one attempt is required");
    let mode = plan.mode;
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let factors_arc = Arc::new(factors.clone());
    let n = plan.segments.len();

    let streams: Vec<StreamId> = (0..plan.num_streams).map(|_| gpu.create_stream()).collect();
    let mut allocs = vec![
        gpu.memory().alloc(factors.byte_size() as u64).expect("factors fit"),
        gpu.memory().alloc((rows * rank * 4) as u64).expect("output fits"),
    ];
    for seg in &plan.segments {
        allocs.push(
            gpu.memory()
                .alloc(seg.byte_size(tensor.order()) as u64)
                .expect("segment buffer must fit"),
        );
    }

    gpu.h2d(streams[0], factors.byte_size() as u64, "factors H2D");
    let factors_ready = gpu.record_event(streams[0]);
    for &s in &streams[1..] {
        gpu.wait_event(s, factors_ready);
    }

    let mut attempts = vec![0u32; n];
    let mut completed = vec![false; n];
    let mut pending: Vec<usize> = (0..n).collect();

    while !pending.is_empty() {
        let now = gpu.clock();
        let mut failed: Vec<usize> = Vec::new();
        // `Some(until)` once the device goes down this wave; every later
        // poll in the wave sees the same down state from the injector.
        let mut down: Option<Option<f64>> = None;
        for &i in &pending {
            let seg = &plan.segments[i];
            let stream = streams[plan.stream_of(i)];
            attempts[i] += 1;
            let attempt = attempts[i];
            if attempt > 1 {
                let backoff = policy.backoff_s(attempt);
                if backoff > 0.0 {
                    gpu.stall(stream, backoff, format!("seg{i} backoff"));
                }
                injector.record_recovery(
                    device_id,
                    now,
                    RecoveryAction::RetrySegment { shard: 0, segment: i, attempt },
                );
            }
            let bytes = seg.byte_size(tensor.order()) as u64;
            match injector.on_op(device_id, OpClass::H2D, now) {
                OpVerdict::DeviceDown { until_s } => {
                    down = Some(until_s);
                    failed.push(i);
                    continue;
                }
                verdict => {
                    gpu.h2d(stream, bytes, format!("seg{i} H2D try{attempt}"));
                    // ECC-style detection: every transfer pays a host-side
                    // checksum scan over the segment.
                    gpu.host_task(
                        stream,
                        seg.nnz() as u64,
                        bytes,
                        format!("seg{i} checksum"),
                        || {},
                    );
                    if verdict == OpVerdict::Corrupted {
                        failed.push(i);
                        continue;
                    }
                }
            }
            match injector.on_op(device_id, OpClass::Kernel, now) {
                OpVerdict::DeviceDown { until_s } => {
                    down = Some(until_s);
                    failed.push(i);
                    continue;
                }
                verdict => {
                    // Timing-only launch even in functional mode: numerics
                    // come from the deterministic replay below, so retries
                    // can never reorder the accumulation.
                    let piece = Arc::new(tensor.slice_range(seg.start, seg.end));
                    kernel.enqueue(
                        gpu,
                        stream,
                        plan.config,
                        piece,
                        Arc::clone(&factors_arc),
                        mode,
                        None,
                        format!("seg{i} kernel try{attempt}"),
                    );
                    // An aborted kernel is charged its full cost too.
                    if verdict == OpVerdict::Aborted {
                        failed.push(i);
                        continue;
                    }
                }
            }
            completed[i] = true;
        }
        gpu.synchronize();
        pending = failed.into_iter().filter(|&i| attempts[i] < policy.max_attempts).collect();
        if let Some(until) = down {
            match until {
                // Transient outage: wait it out (if anything is left to
                // retry), then resume.
                Some(u) if !pending.is_empty() => gpu.advance_to(u),
                Some(_) => {}
                // Permanent failure: everything still pending is lost.
                None => pending.clear(),
            }
        }
    }

    // One D2H of whatever the device accumulated, ordered after all work.
    let done_events: Vec<_> = streams.iter().map(|&s| gpu.record_event(s)).collect();
    for ev in done_events {
        gpu.wait_event(streams[0], ev);
    }
    gpu.d2h(streams[0], (rows * rank * 4) as u64, "output D2H");
    gpu.synchronize();
    for a in allocs {
        gpu.memory().free(a);
    }

    let output = if functional {
        replay_completed_segments(
            gpu.spec(),
            tensor,
            plan,
            kernel,
            &factors_arc,
            mode,
            &completed,
            rows,
            rank,
        )
    } else {
        Mat::zeros(rows, rank)
    };
    let outcomes = (0..n)
        .map(|i| SegmentOutcome { segment: i, attempts: attempts[i], completed: completed[i] })
        .collect();
    ResilientRun { output, timeline: gpu.full_timeline().clone(), outcomes }
}

/// Replays the completed segments functionally, in segment order, on a
/// scratch device — the same accumulation order as the fault-free
/// pipeline, so recovery is invisible to the numerics.
#[allow(clippy::too_many_arguments)]
fn replay_completed_segments(
    spec: &DeviceSpec,
    tensor: &CooTensor,
    plan: &PipelinePlan,
    kernel: KernelChoice,
    factors: &Arc<FactorSet>,
    mode: usize,
    completed: &[bool],
    rows: usize,
    rank: usize,
) -> Mat {
    let out = Arc::new(AtomicF32Buffer::new(rows * rank));
    let mut scratch = Gpu::new(spec.clone());
    let s = scratch.create_stream();
    for (i, seg) in plan.segments.iter().enumerate() {
        if !completed[i] {
            continue;
        }
        kernel.enqueue(
            &mut scratch,
            s,
            plan.config,
            Arc::new(tensor.slice_range(seg.start, seg.end)),
            Arc::clone(factors),
            mode,
            Some(Arc::clone(&out)),
            format!("replay seg{i}"),
        );
    }
    scratch.synchronize();
    Mat::from_vec(rows, rank, out.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_pipelined;
    use scalfrag_faults::{FaultKind, FaultPlan, FaultTrigger};
    use scalfrag_gpusim::LaunchConfig;

    fn setup(nnz: usize) -> (CooTensor, FactorSet) {
        let dims = [300u32, 200, 150];
        let mut t = scalfrag_tensor::gen::zipf_slices(&dims, nnz, 0.7, 11);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 12);
        (t, f)
    }

    fn pplan(t: &CooTensor) -> PipelinePlan {
        PipelinePlan::new(t, 0, LaunchConfig::new(1024, 256), 4, 2)
    }

    #[test]
    fn fault_free_resilient_is_bit_identical_to_pipelined() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let base = execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled);
        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let mut inj = FaultInjector::inert();
        let run = execute_pipelined_resilient(
            &mut g2,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
        );
        assert!(run.all_complete());
        assert_eq!(run.total_attempts(), 4, "clean run: one attempt per segment");
        assert_eq!(
            base.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            run.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fault-free resilient execution must be bit-identical"
        );
    }

    #[test]
    fn corruption_and_abort_recover_with_identical_output() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let base = execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled);

        let faults = FaultPlan::new()
            .fault(0, FaultTrigger::AtOp(2), FaultKind::TransferCorruption)
            .fault(0, FaultTrigger::AtOp(5), FaultKind::KernelAbort);
        let mut inj = FaultInjector::new(faults);
        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut g2,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
        );
        assert!(run.all_complete(), "two recoverable faults must not lose work");
        assert!(run.total_attempts() > 4, "recovery must show in the attempt count");
        assert_eq!(inj.log().injected(), 2);
        assert!(inj.log().recoveries() > 0);
        assert_eq!(
            base.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            run.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "recovered run must be bit-identical to fault-free"
        );
    }

    #[test]
    fn no_retry_loses_the_faulted_segment() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let faults =
            FaultPlan::new().fault(0, FaultTrigger::AtOp(2), FaultKind::TransferCorruption);
        let mut inj = FaultInjector::new(faults);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut gpu,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::no_retry(),
        );
        assert_eq!(run.failed_segments(), 1, "no-retry must lose exactly the faulted segment");
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let base = execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled);
        assert!(
            run.output.max_abs_diff(&base.output) > 0.0,
            "losing a segment must change the output"
        );
    }

    #[test]
    fn transient_device_failure_is_waited_out() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let faults = FaultPlan::new().fault(
            0,
            FaultTrigger::AtOp(3),
            FaultKind::DeviceFail { down_s: Some(2e-3) },
        );
        let mut inj = FaultInjector::new(faults);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut gpu,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
        );
        assert!(run.all_complete(), "transient downtime must be recoverable");
        // The downtime pushed later work past the recovery point.
        assert!(gpu.clock() >= 2e-3);
    }

    #[test]
    fn permanent_failure_loses_remaining_segments() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let faults = FaultPlan::new().fault(
            0,
            FaultTrigger::AtOp(0),
            FaultKind::DeviceFail { down_s: None },
        );
        let mut inj = FaultInjector::new(faults);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut gpu,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
        );
        assert_eq!(run.completed_segments(), 0, "a dead device completes nothing");
        assert_eq!(run.output.frob_norm(), 0.0);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let p = RetryPolicy { max_attempts: 5, backoff_base_s: 1e-4, backoff_mult: 2.0 };
        assert_eq!(p.backoff_s(1), 0.0);
        assert!((p.backoff_s(2) - 1e-4).abs() < 1e-18);
        assert!((p.backoff_s(3) - 2e-4).abs() < 1e-18);
        assert!((p.backoff_s(4) - 4e-4).abs() < 1e-18);
    }
}
