//! Fault-resilient pipelined execution: segment-level retry with
//! exponential backoff over a [`FaultInjector`].
//!
//! Since the ScheduleIR refactor this module holds no execution loop: it
//! lowers the pipeline plan (attaching the retry policy as plan metadata)
//! and hands it to the single resilient interpreter,
//! [`scalfrag_exec::run_plan_resilient_on`]. The recovery semantics live
//! there:
//!
//! * **Timing** — segments are launched in waves (timing-only kernels),
//!   polling the injector before every H2D and kernel. A corrupted
//!   transfer is still charged (the checksum pass catches it), an aborted
//!   kernel pays its full cost, a down device drops the wave; failed
//!   segments retry in the next wave after an exponential-backoff stall,
//!   up to [`RetryPolicy::max_attempts`].
//! * **Numerics** — after the schedule resolves, the segments that
//!   ultimately succeeded are replayed functionally *in segment order* on
//!   a scratch device. That is exactly the accumulation order of
//!   [`crate::execute_pipelined`], so a fully recovered run is
//!   bit-identical to the fault-free run.

use crate::builders::build_pipelined_plan;
use crate::executor::{ExecMode, KernelChoice};
use crate::plan::PipelinePlan;
pub use scalfrag_exec::RetryPolicy;
use scalfrag_exec::{run_plan_resilient_on, FaultRecoveryPolicy, RecoveryMode};
use scalfrag_faults::FaultInjector;
use scalfrag_gpusim::{Gpu, Timeline};
use scalfrag_kernels::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

/// Per-segment outcome of a resilient run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentOutcome {
    /// Segment index in the plan.
    pub segment: usize,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Whether the segment's kernel ultimately completed.
    pub completed: bool,
}

/// The result of one fault-injected pipelined MTTKRP.
#[derive(Clone, Debug)]
pub struct ResilientRun {
    /// The MTTKRP output accumulated from the *completed* segments (zero
    /// rows wherever all contributing segments were lost; all-zero in dry
    /// mode).
    pub output: Mat,
    /// Timeline of the whole schedule including retries.
    pub timeline: Timeline,
    /// Per-segment attempt/completion accounting.
    pub outcomes: Vec<SegmentOutcome>,
}

impl ResilientRun {
    /// End-to-end simulated seconds.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }

    /// Segments whose work was lost despite the policy.
    pub fn failed_segments(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.completed).count()
    }

    /// Segments that completed.
    pub fn completed_segments(&self) -> usize {
        self.outcomes.iter().filter(|o| o.completed).count()
    }

    /// Total attempts across all segments.
    pub fn total_attempts(&self) -> u32 {
        self.outcomes.iter().map(|o| o.attempts).sum()
    }

    /// Whether every segment completed (the recovery success criterion).
    pub fn all_complete(&self) -> bool {
        self.outcomes.iter().all(|o| o.completed)
    }
}

/// Executes an MTTKRP under fault injection.
///
/// `device_id` names this device to the injector (0 for a single-GPU
/// run). When every segment recovers, the functional output is
/// bit-identical to [`crate::execute_pipelined`] on the same plan.
#[allow(clippy::too_many_arguments)]
pub fn execute_pipelined_resilient(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
    device_id: usize,
    injector: &mut FaultInjector,
    policy: &RetryPolicy,
    exec: ExecMode,
) -> ResilientRun {
    let spec = gpu.spec().clone();
    let mut p = build_pipelined_plan(&spec, tensor, factors, plan, kernel);
    p.meta.retry = Some(*policy);
    let recovery = FaultRecoveryPolicy { mode: RecoveryMode::Retry, retry: *policy };
    let outcome = run_plan_resilient_on(gpu, &p, device_id, injector, &recovery, exec);
    ResilientRun {
        output: outcome.output,
        timeline: outcome.timeline,
        outcomes: outcome
            .outcomes
            .iter()
            .map(|u| SegmentOutcome {
                segment: u.segment,
                attempts: u.attempts,
                completed: u.completed,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_pipelined;
    use scalfrag_faults::{FaultKind, FaultPlan, FaultTrigger};
    use scalfrag_gpusim::{DeviceSpec, LaunchConfig};

    fn setup(nnz: usize) -> (CooTensor, FactorSet) {
        let dims = [300u32, 200, 150];
        let mut t = scalfrag_tensor::gen::zipf_slices(&dims, nnz, 0.7, 11);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 12);
        (t, f)
    }

    fn pplan(t: &CooTensor) -> PipelinePlan {
        PipelinePlan::new(t, 0, LaunchConfig::new(1024, 256), 4, 2)
    }

    #[test]
    fn fault_free_resilient_is_bit_identical_to_pipelined() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let base =
            execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Functional);
        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let mut inj = FaultInjector::inert();
        let run = execute_pipelined_resilient(
            &mut g2,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
            ExecMode::Functional,
        );
        assert!(run.all_complete());
        assert_eq!(run.total_attempts(), 4, "clean run: one attempt per segment");
        assert_eq!(
            base.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            run.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fault-free resilient execution must be bit-identical"
        );
    }

    #[test]
    fn corruption_and_abort_recover_with_identical_output() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let base =
            execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Functional);

        let faults = FaultPlan::new()
            .fault(0, FaultTrigger::AtOp(2), FaultKind::TransferCorruption)
            .fault(0, FaultTrigger::AtOp(5), FaultKind::KernelAbort);
        let mut inj = FaultInjector::new(faults);
        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut g2,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
            ExecMode::Functional,
        );
        assert!(run.all_complete(), "two recoverable faults must not lose work");
        assert!(run.total_attempts() > 4, "recovery must show in the attempt count");
        assert_eq!(inj.log().injected(), 2);
        assert!(inj.log().recoveries() > 0);
        assert_eq!(
            base.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            run.output.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "recovered run must be bit-identical to fault-free"
        );
    }

    #[test]
    fn no_retry_loses_the_faulted_segment() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let faults =
            FaultPlan::new().fault(0, FaultTrigger::AtOp(2), FaultKind::TransferCorruption);
        let mut inj = FaultInjector::new(faults);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut gpu,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::no_retry(),
            ExecMode::Functional,
        );
        assert_eq!(run.failed_segments(), 1, "no-retry must lose exactly the faulted segment");
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let base =
            execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Functional);
        assert!(
            run.output.max_abs_diff(&base.output) > 0.0,
            "losing a segment must change the output"
        );
    }

    #[test]
    fn transient_device_failure_is_waited_out() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let faults = FaultPlan::new().fault(
            0,
            FaultTrigger::AtOp(3),
            FaultKind::DeviceFail { down_s: Some(2e-3) },
        );
        let mut inj = FaultInjector::new(faults);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut gpu,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
            ExecMode::Functional,
        );
        assert!(run.all_complete(), "transient downtime must be recoverable");
        // The downtime pushed later work past the recovery point.
        assert!(gpu.clock() >= 2e-3);
    }

    #[test]
    fn permanent_failure_loses_remaining_segments() {
        let (t, f) = setup(20_000);
        let plan = pplan(&t);
        let faults = FaultPlan::new().fault(
            0,
            FaultTrigger::AtOp(0),
            FaultKind::DeviceFail { down_s: None },
        );
        let mut inj = FaultInjector::new(faults);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_pipelined_resilient(
            &mut gpu,
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
            0,
            &mut inj,
            &RetryPolicy::default(),
            ExecMode::Functional,
        );
        assert_eq!(run.completed_segments(), 0, "a dead device completes nothing");
        assert_eq!(run.output.frob_norm(), 0.0);
    }
}
