//! Pipeline execution on the simulated GPU.
//!
//! [`execute_pipelined`] implements §IV-C: per-segment asynchronous H2D
//! copies and kernel launches spread over streams, one event-ordered D2H
//! at the end. [`execute_sync`] is the ParTI-style monolithic schedule the
//! paper compares against (whole-tensor H2D → kernel → D2H on one stream).
//!
//! Both are thin wrappers: they lower the schedule to a ScheduleIR
//! [`scalfrag_exec::Plan`] and hand it to the single interpreter.
//! Timing-only runs pass [`ExecMode::Dry`] — identical schedule and
//! simulated clock, zero output.

use crate::builders::{build_pipelined_plan, build_sync_plan};
use crate::plan::PipelinePlan;
use scalfrag_exec::{run_plan_on, PlanTrace};
pub use scalfrag_exec::{ExecMode, KernelChoice};
use scalfrag_gpusim::{Gpu, LaunchConfig, Timeline};
use scalfrag_kernels::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;

/// The result of one executed MTTKRP schedule.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// The MTTKRP output matrix `M ∈ ℝ^{Iₙ × F}`.
    pub output: Mat,
    /// Timeline of this run only.
    pub timeline: Timeline,
    /// Structured trace of every executed op.
    pub trace: PlanTrace,
}

impl PipelineRun {
    /// End-to-end simulated seconds of this run.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }

    /// Fraction of busy time hidden by overlap (0 = fully serial).
    pub fn overlap_ratio(&self) -> f64 {
        self.timeline.overlap_ratio()
    }
}

/// Executes an MTTKRP with the segmented pipeline of §IV-C.
///
/// `tensor` must be sorted for `plan.mode` (the plan constructor enforced
/// that). Factors are transferred once up front (resident across the CPD
/// iteration); each segment then flows H2D → kernel on its stream, and one
/// event-ordered D2H returns the result.
pub fn execute_pipelined(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
    exec: ExecMode,
) -> PipelineRun {
    let spec = gpu.spec().clone();
    let p = build_pipelined_plan(&spec, tensor, factors, plan, kernel);
    let outcome = run_plan_on(gpu, &p, exec);
    PipelineRun { output: outcome.output, timeline: outcome.timeline, trace: outcome.trace }
}

/// Executes the ParTI-style synchronous schedule: one stream, whole-tensor
/// H2D, one kernel over all non-zeros, D2H — the §III-B baseline whose
/// "idle waiting time" motivates the pipeline.
pub fn execute_sync(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
    kernel: KernelChoice,
    exec: ExecMode,
) -> PipelineRun {
    let spec = gpu.spec().clone();
    let p = build_sync_plan(&spec, tensor, factors, mode, config, kernel);
    let outcome = run_plan_on(gpu, &p, exec);
    PipelineRun { output: outcome.output, timeline: outcome.timeline, trace: outcome.trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::DeviceSpec;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn setup(nnz: usize) -> (CooTensor, FactorSet) {
        let dims = [300u32, 200, 150];
        let mut t = scalfrag_tensor::gen::zipf_slices(&dims, nnz, 0.7, 11);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 12);
        (t, f)
    }

    #[test]
    fn pipelined_output_matches_reference() {
        let (t, f) = setup(20_000);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let plan = PipelinePlan::new(&t, 0, LaunchConfig::new(1024, 256), 4, 4);
        let run =
            execute_pipelined(&mut gpu, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Functional);
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(
            run.output.max_abs_diff(&expect) < 1e-2,
            "diff {}",
            run.output.max_abs_diff(&expect)
        );
        assert!(run.timeline.validate().is_ok());
        // Memory fully released.
        assert_eq!(gpu.memory().used(), 0);
    }

    #[test]
    fn sync_output_matches_reference() {
        let (t, f) = setup(10_000);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_sync(
            &mut gpu,
            &t,
            &f,
            0,
            LaunchConfig::parti_default(t.nnz()),
            KernelChoice::CooAtomic,
            ExecMode::Functional,
        );
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(run.output.max_abs_diff(&expect) < 1e-2);
    }

    #[test]
    fn pipelining_beats_sync_end_to_end() {
        // At paper-like scale the transfer and kernel times are comparable,
        // so overlap pays; timing-only execution keeps the test fast.
        let dims = [2_000u32, 1_500, 1_000];
        let mut t = scalfrag_tensor::gen::uniform(&dims, 400_000, 31);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 32);
        let cfg = LaunchConfig::new(2048, 256);

        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let sync = execute_sync(&mut g1, &t, &f, 0, cfg, KernelChoice::Tiled, ExecMode::Dry);

        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let plan = PipelinePlan::new(&t, 0, cfg, 4, 4);
        let piped = execute_pipelined(&mut g2, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Dry);

        assert!(
            piped.makespan() < sync.makespan(),
            "pipelined {} should beat sync {}",
            piped.makespan(),
            sync.makespan()
        );
        assert!(piped.overlap_ratio() > 0.1, "overlap {}", piped.overlap_ratio());
    }

    #[test]
    fn dry_and_functional_runs_report_identical_times_and_traces() {
        // The dry-mode regression contract: for a fault-free plan, a dry
        // run must report exactly the simulated times (and therefore the
        // trace fingerprint) of the functional run.
        let (t, f) = setup(10_000);
        let cfg = LaunchConfig::new(1024, 256);
        let plan = PipelinePlan::new(&t, 0, cfg, 4, 2);
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let wet =
            execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Functional);
        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let dry = execute_pipelined(&mut g2, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Dry);
        assert_eq!(wet.makespan(), dry.makespan());
        assert!(!wet.trace.is_empty() && !dry.trace.is_empty());
        assert_eq!(
            wet.trace.fingerprint(),
            dry.trace.fingerprint(),
            "dry and functional runs must execute the identical schedule"
        );
        assert_eq!(dry.output.frob_norm(), 0.0, "dry runs compute nothing");
    }

    #[test]
    fn single_segment_single_stream_degenerates_to_sync_shape() {
        let (t, f) = setup(5_000);
        let cfg = LaunchConfig::new(512, 256);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let plan = PipelinePlan::new(&t, 0, cfg, 1, 1);
        let run =
            execute_pipelined(&mut gpu, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Functional);
        // One segment: H2D factors, H2D seg, kernel, D2H = 4 spans.
        assert_eq!(run.timeline.spans.len(), 4);
        assert!(run.overlap_ratio() < 0.05);
    }

    #[test]
    fn works_for_every_mode_and_4way() {
        let dims = [40u32, 30, 20, 10];
        let f = FactorSet::random(&dims, 8, 5);
        for mode in 0..4 {
            let mut t = scalfrag_tensor::gen::uniform(&dims, 3_000, 9);
            t.sort_for_mode(mode);
            let mut gpu = Gpu::new(DeviceSpec::rtx3090());
            let plan = PipelinePlan::new(&t, mode, LaunchConfig::new(256, 128), 3, 2);
            let run = execute_pipelined(
                &mut gpu,
                &t,
                &f,
                &plan,
                KernelChoice::Tiled,
                ExecMode::Functional,
            );
            let expect = mttkrp_seq(&t, &f, mode);
            assert!(run.output.max_abs_diff(&expect) < 1e-2, "mode {mode}");
        }
    }

    #[test]
    fn more_streams_help_until_engines_saturate() {
        // Fig. 11's mechanism: with 8 segments, 1 stream serialises
        // everything, 4 streams overlap; beyond that gains flatten because
        // there is one H2D engine and one compute engine.
        let dims = [2_000u32, 1_500, 1_000];
        let mut t = scalfrag_tensor::gen::uniform(&dims, 400_000, 33);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 34);
        let cfg = LaunchConfig::new(2048, 256);
        let mut times = Vec::new();
        for streams in [1usize, 2, 4, 8] {
            let mut gpu = Gpu::new(DeviceSpec::rtx3090());
            let plan = PipelinePlan::new(&t, 0, cfg, 8, streams);
            let run =
                execute_pipelined(&mut gpu, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Dry);
            times.push(run.makespan());
        }
        assert!(times[1] < times[0], "2 streams should beat 1: {times:?}");
        let gain_12 = times[0] / times[1];
        let gain_48 = times[2] / times[3];
        assert!(gain_48 < gain_12, "stream gains should flatten: {times:?}");
    }

    #[test]
    fn plan_renders_a_typed_ir_dump() {
        let (t, f) = setup(5_000);
        let plan = PipelinePlan::new(&t, 0, LaunchConfig::new(512, 256), 4, 2);
        let p = crate::builders::build_pipelined_plan(
            &DeviceSpec::rtx3090(),
            &t,
            &f,
            &plan,
            KernelChoice::Tiled,
        );
        let dump = p.render();
        assert!(dump.contains("H2D"), "dump:\n{dump}");
        assert!(dump.contains("Launch"), "dump:\n{dump}");
        assert!(dump.contains("Barrier"), "dump:\n{dump}");
        assert!(dump.contains("output D2H"), "dump:\n{dump}");
    }
}
