//! Pipeline execution on the simulated GPU.
//!
//! [`execute_pipelined`] implements §IV-C: per-segment asynchronous H2D
//! copies and kernel launches spread over streams, one event-ordered D2H
//! at the end. [`execute_sync`] is the ParTI-style monolithic schedule the
//! paper compares against (whole-tensor H2D → kernel → D2H on one stream).

use crate::plan::PipelinePlan;
use scalfrag_gpusim::{Gpu, LaunchConfig, StreamId, Timeline};
use scalfrag_kernels::{AtomicF32Buffer, CooAtomicKernel, FactorSet, SegmentStats, TiledKernel};
use scalfrag_linalg::Mat;
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

/// Which kernel the executor launches per segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// ParTI-style atomic COO kernel.
    CooAtomic,
    /// ScalFrag shared-memory tiled kernel.
    Tiled,
}

impl KernelChoice {
    /// The full launch configuration (with this kernel's shared-memory
    /// request) for a base `(grid, block)`.
    pub fn full_config(&self, base: LaunchConfig, rank: u32) -> LaunchConfig {
        match self {
            KernelChoice::CooAtomic => base,
            KernelChoice::Tiled => TiledKernel::config_with_smem(base, rank),
        }
    }

    /// The cost-model workload of this kernel over a segment.
    pub fn workload(
        &self,
        stats: &SegmentStats,
        rank: u32,
        block: u32,
    ) -> scalfrag_gpusim::KernelWorkload {
        match self {
            KernelChoice::CooAtomic => scalfrag_kernels::workload::coo_atomic_workload(stats, rank),
            KernelChoice::Tiled => scalfrag_kernels::workload::tiled_workload(stats, rank, block),
        }
    }

    /// Enqueues one segment's kernel launch on `stream`: resolves the
    /// launch configuration, cost-model workload and (when `out` is given)
    /// the functional kernel body. Public so multi-device executors (the
    /// cluster crate) can drive per-segment launches with the same kernel
    /// dispatch the single-GPU pipeline uses.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        &self,
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        seg: Arc<CooTensor>,
        factors: Arc<FactorSet>,
        mode: usize,
        out: Option<Arc<AtomicF32Buffer>>,
        label: String,
    ) {
        match out {
            Some(out) => match self {
                KernelChoice::CooAtomic => {
                    CooAtomicKernel::enqueue(gpu, stream, config, seg, factors, mode, out, label);
                }
                KernelChoice::Tiled => {
                    TiledKernel::enqueue(gpu, stream, config, seg, factors, mode, out, label);
                }
            },
            None => {
                // Timing-only launch: same cost-model workload, no numerics.
                let rank = factors.rank() as u32;
                let cfg = self.full_config(config, rank);
                let stats = SegmentStats::compute(&seg, mode);
                let workload = self.workload(&stats, rank, cfg.block);
                gpu.launch(stream, cfg, workload, label);
            }
        }
    }
}

/// The result of one executed MTTKRP schedule.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// The MTTKRP output matrix `M ∈ ℝ^{Iₙ × F}`.
    pub output: Mat,
    /// Timeline of this run only.
    pub timeline: Timeline,
}

impl PipelineRun {
    /// End-to-end simulated seconds of this run.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }

    /// Fraction of busy time hidden by overlap (0 = fully serial).
    pub fn overlap_ratio(&self) -> f64 {
        self.timeline.overlap_ratio()
    }
}

/// Executes an MTTKRP with the segmented pipeline of §IV-C.
///
/// `tensor` must be sorted for `plan.mode` (the plan constructor enforced
/// that). Factors are transferred once up front (resident across the CPD
/// iteration); each segment then flows H2D → kernel on its stream, and one
/// event-ordered D2H returns the result.
pub fn execute_pipelined(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
) -> PipelineRun {
    execute_pipelined_impl(gpu, tensor, factors, plan, kernel, true)
}

/// Timing-only variant of [`execute_pipelined`]: identical schedule and
/// simulated clock, but kernels skip their numeric bodies and the returned
/// output is zero. Used by the benchmark sweeps (Fig. 10/11), which probe
/// makespans across many settings.
pub fn execute_pipelined_dry(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
) -> PipelineRun {
    execute_pipelined_impl(gpu, tensor, factors, plan, kernel, false)
}

fn execute_pipelined_impl(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
    functional: bool,
) -> PipelineRun {
    let mode = plan.mode;
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let out = Arc::new(AtomicF32Buffer::new(rows * rank));
    let factors = Arc::new(factors.clone());

    // Device allocations: factors + output + all segment buffers. The plan
    // is expected to fit (auto mode sizes segments accordingly).
    let mut allocs = Vec::new();
    let mem = |b: usize| b as u64;
    allocs.push(
        gpu.memory()
            .alloc(mem(factors.byte_size()))
            .expect("factor matrices must fit on the device"),
    );
    allocs.push(
        gpu.memory().alloc(mem(rows * rank * 4)).expect("output matrix must fit on the device"),
    );

    let streams: Vec<StreamId> = (0..plan.num_streams).map(|_| gpu.create_stream()).collect();

    // Factors travel once, on stream 0; every other stream waits for them.
    gpu.h2d(streams[0], factors.byte_size() as u64, "factors H2D");
    let factors_ready = gpu.record_event(streams[0]);
    for &s in &streams[1..] {
        gpu.wait_event(s, factors_ready);
    }

    let mut kernel_done = Vec::with_capacity(plan.segments.len());
    for (i, seg) in plan.segments.iter().enumerate() {
        let stream = streams[plan.stream_of(i)];
        let piece = Arc::new(tensor.slice_range(seg.start, seg.end));
        let bytes = seg.byte_size(tensor.order());
        allocs.push(gpu.memory().alloc(mem(bytes)).expect("segment buffer must fit"));
        gpu.h2d(stream, bytes as u64, format!("seg{i} H2D ({} nnz)", seg.nnz()));
        kernel.enqueue(
            gpu,
            stream,
            plan.config,
            piece,
            Arc::clone(&factors),
            mode,
            functional.then(|| Arc::clone(&out)),
            format!("seg{i} kernel"),
        );
        kernel_done.push(gpu.record_event(stream));
    }

    // One D2H of the output, ordered after every kernel.
    let d2h_stream = streams[0];
    for ev in kernel_done {
        gpu.wait_event(d2h_stream, ev);
    }
    gpu.d2h(d2h_stream, (rows * rank * 4) as u64, "output D2H");

    let timeline = gpu.synchronize();
    for a in allocs {
        gpu.memory().free(a);
    }
    let output = Mat::from_vec(rows, rank, out.to_vec());
    PipelineRun { output, timeline }
}

/// Executes the ParTI-style synchronous schedule: one stream, whole-tensor
/// H2D, one kernel over all non-zeros, D2H — the §III-B baseline whose
/// "idle waiting time" motivates the pipeline.
pub fn execute_sync(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
    kernel: KernelChoice,
) -> PipelineRun {
    execute_sync_impl(gpu, tensor, factors, mode, config, kernel, true)
}

/// Timing-only variant of [`execute_sync`] (see [`execute_pipelined_dry`]).
pub fn execute_sync_dry(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
    kernel: KernelChoice,
) -> PipelineRun {
    execute_sync_impl(gpu, tensor, factors, mode, config, kernel, false)
}

#[allow(clippy::too_many_arguments)]
fn execute_sync_impl(
    gpu: &mut Gpu,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
    kernel: KernelChoice,
    functional: bool,
) -> PipelineRun {
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let out = Arc::new(AtomicF32Buffer::new(rows * rank));
    let factors_arc = Arc::new(factors.clone());
    let whole = Arc::new(tensor.clone());

    let a1 = gpu.memory().alloc(factors.byte_size() as u64).expect("factors fit");
    let a2 = gpu.memory().alloc((rows * rank * 4) as u64).expect("output fits");
    let a3 = gpu.memory().alloc(tensor.byte_size() as u64).expect("tensor fits");

    let s = gpu.create_stream();
    gpu.h2d(s, factors.byte_size() as u64, "factors H2D");
    gpu.h2d(s, tensor.byte_size() as u64, "tensor H2D");
    kernel.enqueue(
        gpu,
        s,
        config,
        whole,
        factors_arc,
        mode,
        functional.then(|| Arc::clone(&out)),
        "kernel".to_string(),
    );
    gpu.d2h(s, (rows * rank * 4) as u64, "output D2H");

    let timeline = gpu.synchronize();
    gpu.memory().free(a1);
    gpu.memory().free(a2);
    gpu.memory().free(a3);
    let output = Mat::from_vec(rows, rank, out.to_vec());
    PipelineRun { output, timeline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::DeviceSpec;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn setup(nnz: usize) -> (CooTensor, FactorSet) {
        let dims = [300u32, 200, 150];
        let mut t = scalfrag_tensor::gen::zipf_slices(&dims, nnz, 0.7, 11);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 12);
        (t, f)
    }

    #[test]
    fn pipelined_output_matches_reference() {
        let (t, f) = setup(20_000);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let plan = PipelinePlan::new(&t, 0, LaunchConfig::new(1024, 256), 4, 4);
        let run = execute_pipelined(&mut gpu, &t, &f, &plan, KernelChoice::Tiled);
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(
            run.output.max_abs_diff(&expect) < 1e-2,
            "diff {}",
            run.output.max_abs_diff(&expect)
        );
        assert!(run.timeline.validate().is_ok());
        // Memory fully released.
        assert_eq!(gpu.memory().used(), 0);
    }

    #[test]
    fn sync_output_matches_reference() {
        let (t, f) = setup(10_000);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let run = execute_sync(
            &mut gpu,
            &t,
            &f,
            0,
            LaunchConfig::parti_default(t.nnz()),
            KernelChoice::CooAtomic,
        );
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(run.output.max_abs_diff(&expect) < 1e-2);
    }

    #[test]
    fn pipelining_beats_sync_end_to_end() {
        // At paper-like scale the transfer and kernel times are comparable,
        // so overlap pays; timing-only execution keeps the test fast.
        let dims = [2_000u32, 1_500, 1_000];
        let mut t = scalfrag_tensor::gen::uniform(&dims, 400_000, 31);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 32);
        let cfg = LaunchConfig::new(2048, 256);

        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let sync = execute_sync_dry(&mut g1, &t, &f, 0, cfg, KernelChoice::Tiled);

        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let plan = PipelinePlan::new(&t, 0, cfg, 4, 4);
        let piped = execute_pipelined_dry(&mut g2, &t, &f, &plan, KernelChoice::Tiled);

        assert!(
            piped.makespan() < sync.makespan(),
            "pipelined {} should beat sync {}",
            piped.makespan(),
            sync.makespan()
        );
        assert!(piped.overlap_ratio() > 0.1, "overlap {}", piped.overlap_ratio());
    }

    #[test]
    fn dry_and_functional_schedules_have_identical_makespans() {
        let (t, f) = setup(10_000);
        let cfg = LaunchConfig::new(1024, 256);
        let plan = PipelinePlan::new(&t, 0, cfg, 4, 2);
        let mut g1 = Gpu::new(DeviceSpec::rtx3090());
        let wet = execute_pipelined(&mut g1, &t, &f, &plan, KernelChoice::Tiled);
        let mut g2 = Gpu::new(DeviceSpec::rtx3090());
        let dry = execute_pipelined_dry(&mut g2, &t, &f, &plan, KernelChoice::Tiled);
        assert_eq!(wet.makespan(), dry.makespan());
        assert_eq!(dry.output.frob_norm(), 0.0, "dry runs compute nothing");
    }

    #[test]
    fn single_segment_single_stream_degenerates_to_sync_shape() {
        let (t, f) = setup(5_000);
        let cfg = LaunchConfig::new(512, 256);
        let mut gpu = Gpu::new(DeviceSpec::rtx3090());
        let plan = PipelinePlan::new(&t, 0, cfg, 1, 1);
        let run = execute_pipelined(&mut gpu, &t, &f, &plan, KernelChoice::Tiled);
        // One segment: H2D factors, H2D seg, kernel, D2H = 4 spans.
        assert_eq!(run.timeline.spans.len(), 4);
        assert!(run.overlap_ratio() < 0.05);
    }

    #[test]
    fn works_for_every_mode_and_4way() {
        let dims = [40u32, 30, 20, 10];
        let f = FactorSet::random(&dims, 8, 5);
        for mode in 0..4 {
            let mut t = scalfrag_tensor::gen::uniform(&dims, 3_000, 9);
            t.sort_for_mode(mode);
            let mut gpu = Gpu::new(DeviceSpec::rtx3090());
            let plan = PipelinePlan::new(&t, mode, LaunchConfig::new(256, 128), 3, 2);
            let run = execute_pipelined(&mut gpu, &t, &f, &plan, KernelChoice::Tiled);
            let expect = mttkrp_seq(&t, &f, mode);
            assert!(run.output.max_abs_diff(&expect) < 1e-2, "mode {mode}");
        }
    }

    #[test]
    fn more_streams_help_until_engines_saturate() {
        // Fig. 11's mechanism: with 8 segments, 1 stream serialises
        // everything, 4 streams overlap; beyond that gains flatten because
        // there is one H2D engine and one compute engine.
        let dims = [2_000u32, 1_500, 1_000];
        let mut t = scalfrag_tensor::gen::uniform(&dims, 400_000, 33);
        t.sort_for_mode(0);
        let f = FactorSet::random(&dims, 16, 34);
        let cfg = LaunchConfig::new(2048, 256);
        let mut times = Vec::new();
        for streams in [1usize, 2, 4, 8] {
            let mut gpu = Gpu::new(DeviceSpec::rtx3090());
            let plan = PipelinePlan::new(&t, 0, cfg, 8, streams);
            let run = execute_pipelined_dry(&mut gpu, &t, &f, &plan, KernelChoice::Tiled);
            times.push(run.makespan());
        }
        assert!(times[1] < times[0], "2 streams should beat 1: {times:?}");
        let gain_12 = times[0] / times[1];
        let gain_48 = times[2] / times[3];
        assert!(gain_48 < gain_12, "stream gains should flatten: {times:?}");
    }
}
