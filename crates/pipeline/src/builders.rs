//! Plan builders: lower the pipeline crate's schedules (sync baseline,
//! segmented pipeline, CPU–GPU hybrid) into ScheduleIR [`Plan`]s for the
//! `scalfrag-exec` interpreter. Pure construction — no simulated time
//! passes here.

use crate::hybrid::HybridSplit;
use crate::plan::PipelinePlan;
use scalfrag_exec::{
    DeviceOps, KernelChoice, Plan, PlanBuilder, PlanMeta, Reduce, ResidueWork, ShardDesc,
    ShardWork, WorkUnit,
};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::{FactorSet, SegmentStats};
use scalfrag_tensor::{segment::Segment, CooTensor};
use std::sync::Arc;

/// Lowers the ParTI-style synchronous schedule: one stream, whole-tensor
/// H2D, one kernel over all non-zeros, D2H (the §III-B baseline).
pub fn build_sync_plan(
    spec: &DeviceSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
    kernel: KernelChoice,
) -> Plan {
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let order = tensor.order();
    let factors_bytes = factors.byte_size() as u64;
    let out_bytes = (rows * rank * 4) as u64;
    let tensor_bytes = tensor.byte_size() as u64;
    let seg = Segment { start: 0, end: tensor.nnz() };
    let units = vec![WorkUnit {
        shard: 0,
        segment: 0,
        seg: seg.clone(),
        stream: Some(0),
        alloc: None, // the prologue charged the whole tensor
        h2d_bytes: tensor_bytes,
        h2d_label: "tensor H2D".to_string(),
        kernel_label: "kernel".to_string(),
        workload: None,
    }];
    Plan {
        name: "scalfrag-sync",
        mode,
        rank,
        rows,
        order,
        config,
        kernel,
        factors: Arc::new(factors.clone()),
        factors_bytes,
        shards: vec![ShardDesc { index: 0, tensor: Arc::new(tensor.clone()), rows: None }],
        seg_lists: vec![vec![seg]],
        devices: vec![DeviceOps {
            device: 0,
            name: spec.name,
            spec: spec.clone(),
            host: None,
            worker_streams: 1,
            dedicated_d2h: false,
            residue: None,
            prologue_allocs: vec![
                (factors_bytes, "factors fit"),
                (out_bytes, "output fits"),
                (tensor_bytes, "tensor fits"),
            ],
            shard_work: vec![ShardWork { shard: 0, output_alloc: None, units: vec![0], d2h: None }],
            units,
            final_d2h: Some((out_bytes, "output D2H")),
            shard_list: vec![0],
            skip_if_idle: false,
            program: None,
        }],
        reduce: Reduce::Single,
        reduction_s: 0.0,
        peer_reduce: false,
        replay_spec: spec.clone(),
        cluster: None,
        sync_after_prologue: false,
        resilient_prologue: vec![
            (factors_bytes, "factors fit"),
            (out_bytes, "output fits"),
            (tensor_bytes, "tensor fits"),
        ],
        seg_alloc_what: "segment buffer must fit",
        static_streams: Some(vec![vec![0]]),
        tag_shards: false,
        meta: PlanMeta {
            segment_map: "monolithic (1 segment, 1 stream)".to_string(),
            predictor: "fixed config".to_string(),
            retry: None,
            optimizer: String::new(),
            batch_jobs: 0,
        },
    }
}

/// Lowers the segmented pipeline of §IV-C over a *mode-sorted* tensor:
/// per-segment H2D + kernel spread over `plan.num_streams` streams, one
/// event-ordered D2H at the end.
pub fn build_pipelined_plan(
    spec: &DeviceSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    plan: &PipelinePlan,
    kernel: KernelChoice,
) -> Plan {
    let mode = plan.mode;
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let order = tensor.order();
    let factors_bytes = factors.byte_size() as u64;
    let out_bytes = (rows * rank * 4) as u64;
    let units: Vec<WorkUnit> = plan
        .segments
        .iter()
        .enumerate()
        .map(|(i, seg)| WorkUnit {
            shard: 0,
            segment: i,
            seg: seg.clone(),
            stream: Some(plan.stream_of(i)),
            alloc: Some((seg.byte_size(order) as u64, "segment buffer must fit")),
            h2d_bytes: seg.byte_size(order) as u64,
            h2d_label: format!("seg{i} H2D ({} nnz)", seg.nnz()),
            kernel_label: format!("seg{i} kernel"),
            workload: None,
        })
        .collect();
    let unit_ids: Vec<usize> = (0..units.len()).collect();
    let static_streams = vec![(0..plan.segments.len()).map(|i| plan.stream_of(i)).collect()];
    Plan {
        name: "scalfrag-pipelined",
        mode,
        rank,
        rows,
        order,
        config: plan.config,
        kernel,
        factors: Arc::new(factors.clone()),
        factors_bytes,
        shards: vec![ShardDesc { index: 0, tensor: Arc::new(tensor.clone()), rows: None }],
        seg_lists: vec![plan.segments.clone()],
        devices: vec![DeviceOps {
            device: 0,
            name: spec.name,
            spec: spec.clone(),
            host: None,
            worker_streams: plan.num_streams,
            dedicated_d2h: false,
            residue: None,
            prologue_allocs: vec![
                (factors_bytes, "factor matrices must fit on the device"),
                (out_bytes, "output matrix must fit on the device"),
            ],
            shard_work: vec![ShardWork {
                shard: 0,
                output_alloc: None,
                units: unit_ids,
                d2h: None,
            }],
            units,
            final_d2h: Some((out_bytes, "output D2H")),
            shard_list: vec![0],
            skip_if_idle: false,
            program: None,
        }],
        reduce: Reduce::Single,
        reduction_s: 0.0,
        peer_reduce: false,
        replay_spec: spec.clone(),
        cluster: None,
        sync_after_prologue: false,
        resilient_prologue: vec![(factors_bytes, "factors fit"), (out_bytes, "output fits")],
        seg_alloc_what: "segment buffer must fit",
        static_streams: Some(static_streams),
        tag_shards: false,
        meta: PlanMeta {
            segment_map: format!(
                "{} slice-aligned segment(s) over {} stream(s)",
                plan.segments.len(),
                plan.num_streams
            ),
            predictor: "fixed config".to_string(),
            retry: None,
            optimizer: String::new(),
            batch_jobs: 0,
        },
    }
}

/// Lowers the hybrid schedule of §I: the dense-slice bulk goes through
/// the segmented pipeline, the sparse-slice tail becomes a `HostResidue`
/// op folded concurrently on the host stream.
#[allow(clippy::too_many_arguments)]
pub fn build_hybrid_plan(
    spec: &DeviceSpec,
    split: &HybridSplit,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
    plan_segments: usize,
    plan_streams: usize,
    kernel: KernelChoice,
) -> Plan {
    let mut gpu_tensor = split.gpu_part.clone();
    gpu_tensor.sort_for_mode(mode);
    let pipeline = PipelinePlan::new(&gpu_tensor, mode, config, plan_segments, plan_streams);
    let mut plan = build_pipelined_plan(spec, &gpu_tensor, factors, &pipeline, kernel);
    plan.name = "scalfrag-hybrid";
    if split.cpu_part.nnz() > 0 {
        let rank = factors.rank() as u32;
        let stats = SegmentStats::compute(&split.cpu_part, mode);
        plan.devices[0].residue = Some(ResidueWork {
            tensor: Arc::new(split.cpu_part.clone()),
            flops: stats.flops(rank),
            bytes: stats.bytes_read(rank),
            label: "host tail MTTKRP",
        });
    }
    plan.meta.segment_map = format!(
        "{} (host tail: {} nnz below threshold {})",
        plan.meta.segment_map,
        split.cpu_part.nnz(),
        split.threshold
    );
    plan
}

/// Lowers the load-balanced segmented-scan schedule: the monolithic sync
/// shape (one stream, whole-tensor H2D) but with the `balance-segscan`
/// kernel folding fixed-nnz chunks, immune to slice/fiber skew.
pub fn build_balance_segscan_plan(
    spec: &DeviceSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
) -> Plan {
    let mut plan = build_sync_plan(spec, tensor, factors, mode, config, KernelChoice::Balanced);
    plan.name = "balance-segscan";
    plan.meta.segment_map =
        format!("monolithic; {}-nnz balanced chunks + carry chain", scalfrag_balance::CHUNK_LEN);
    plan
}

/// Lowers the FLYCOO mode-agnostic schedule: one *unsorted* tensor copy is
/// shipped once and the `balance-flycoo` kernel walks the per-mode remap
/// table — no re-sorting or re-tiling per mode.
pub fn build_balance_flycoo_plan(
    spec: &DeviceSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    config: LaunchConfig,
) -> Plan {
    let mut plan = build_sync_plan(spec, tensor, factors, mode, config, KernelChoice::ModeAgnostic);
    plan.name = "balance-flycoo";
    plan.meta.segment_map = format!(
        "monolithic; mode-agnostic remap, {}-nnz partitions",
        scalfrag_balance::FLYCOO_SEG_LEN
    );
    plan
}

/// One job's slice of a batch-fused serving plan: a stable id (drives the
/// span labels the serving layer splits per-job timing out of) and its
/// *mode-sorted* tensor.
#[derive(Clone, Debug)]
pub struct BatchedJobSpec {
    /// Stable job id — appears in every span label of this job.
    pub id: u64,
    /// The job's tensor, already sorted for the target mode.
    pub tensor: Arc<CooTensor>,
}

/// Lowers a batch of FeatureKey-compatible serving jobs into ONE plan:
/// the shared factor matrices ride a single H2D on worker stream 0 (the
/// generic lowering's factors-once + barrier prologue), then each job
/// fans out as its own shard — one whole-tensor H2D + one kernel launch
/// on a round-robin worker stream, one per-job D2H on the dedicated
/// return stream. `Reduce::PerJob` keeps every job in its own buffer, so
/// a group of N is bit-identical per job to N solo single-launch runs —
/// the ULP-cleanliness contract of the batch-fused serving path.
///
/// All jobs must share the factor set, mode, and dims (group formation in
/// `serve::batch` guarantees it); the per-job transient tensor buffers
/// are recycled per stream by the lowering, so device memory holds the
/// factors, N output buffers, and at most `streams` staged tensors.
pub fn build_batched_plan(
    spec: &DeviceSpec,
    jobs: &[BatchedJobSpec],
    factors: Arc<FactorSet>,
    mode: usize,
    config: LaunchConfig,
    kernel: KernelChoice,
    streams: usize,
) -> Plan {
    assert!(!jobs.is_empty(), "a batched plan needs at least one job");
    let dims = jobs[0].tensor.dims().to_vec();
    for j in &jobs[1..] {
        assert_eq!(j.tensor.dims(), &dims[..], "batched jobs must share tensor dims");
    }
    let rank = factors.rank();
    let rows = dims[mode] as usize;
    let order = jobs[0].tensor.order();
    let factors_bytes = factors.byte_size() as u64;
    let out_bytes = (rows * rank * 4) as u64;
    let worker_streams = streams.max(1).min(jobs.len());

    let mut units = Vec::with_capacity(jobs.len());
    let mut shard_work = Vec::with_capacity(jobs.len());
    let mut shards = Vec::with_capacity(jobs.len());
    let mut seg_lists = Vec::with_capacity(jobs.len());
    let mut static_streams = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        let seg = Segment { start: 0, end: job.tensor.nnz() };
        let tensor_bytes = job.tensor.byte_size() as u64;
        let s = j % worker_streams;
        units.push(WorkUnit {
            shard: j,
            segment: 0,
            seg: seg.clone(),
            stream: Some(s),
            alloc: Some((tensor_bytes, "job tensor must fit")),
            h2d_bytes: tensor_bytes,
            h2d_label: format!("job{} H2D ({} nnz)", job.id, seg.nnz()),
            kernel_label: format!("job{} kernel", job.id),
            workload: None,
        });
        shard_work.push(ShardWork {
            shard: j,
            output_alloc: Some((out_bytes, "job output must fit")),
            units: vec![j],
            d2h: Some((out_bytes, format!("job{} output D2H", job.id))),
        });
        shards.push(ShardDesc { index: j, tensor: Arc::clone(&job.tensor), rows: None });
        seg_lists.push(vec![seg]);
        static_streams.push(vec![s]);
    }
    Plan {
        name: "serve-batched",
        mode,
        rank,
        rows,
        order,
        config,
        kernel,
        factors,
        factors_bytes,
        shards,
        seg_lists,
        devices: vec![DeviceOps {
            device: 0,
            name: spec.name,
            spec: spec.clone(),
            host: None,
            worker_streams,
            dedicated_d2h: true,
            residue: None,
            prologue_allocs: vec![(factors_bytes, "factor matrices must fit on the device")],
            units,
            shard_work,
            final_d2h: None,
            shard_list: (0..jobs.len()).collect(),
            skip_if_idle: false,
            program: None,
        }],
        reduce: Reduce::PerJob,
        reduction_s: 0.0,
        peer_reduce: false,
        replay_spec: spec.clone(),
        cluster: None,
        sync_after_prologue: false,
        resilient_prologue: vec![(factors_bytes, "factor matrices must fit on the device")],
        seg_alloc_what: "job tensor must fit",
        static_streams: Some(static_streams),
        tag_shards: true,
        meta: PlanMeta {
            segment_map: format!(
                "batched ×{}: shared factor upload, per-job H2D/launch/D2H over {} stream(s)",
                jobs.len(),
                worker_streams
            ),
            predictor: "fixed config".to_string(),
            retry: None,
            optimizer: String::new(),
            batch_jobs: jobs.len(),
        },
    }
}

/// The batch-fused serving builder, registered separately so the
/// conformance registry can append it after every earlier builder without
/// disturbing pinned fold orders. The registry shape is one tensor, so
/// the builder synthesizes a deterministic three-job batch (three fused
/// copies of the input) over two worker streams — enough to exercise the
/// shared factor upload, the round-robin fan-out, and the per-job D2H.
pub fn batched_plan_builders() -> Vec<PlanBuilder> {
    let cfg = LaunchConfig::new(512, 256);
    vec![PlanBuilder::new("serve-batched", move |tensor, factors, mode| {
        let mut t = tensor.clone();
        t.sort_for_mode(mode);
        let t = Arc::new(t);
        let jobs: Vec<BatchedJobSpec> =
            (0..3).map(|id| BatchedJobSpec { id, tensor: Arc::clone(&t) }).collect();
        build_batched_plan(
            &DeviceSpec::rtx3090(),
            &jobs,
            Arc::new(factors.clone()),
            mode,
            cfg,
            KernelChoice::Tiled,
            2,
        )
    })]
}

/// The pipeline crate's registered plan builders.
pub fn plan_builders() -> Vec<PlanBuilder> {
    let cfg = LaunchConfig::new(512, 256);
    vec![
        PlanBuilder::new("scalfrag-sync", move |tensor, factors, mode| {
            let mut t = tensor.clone();
            t.sort_for_mode(mode);
            build_sync_plan(&DeviceSpec::rtx3090(), &t, factors, mode, cfg, KernelChoice::Tiled)
        }),
        PlanBuilder::new("scalfrag-pipelined", move |tensor, factors, mode| {
            let split = crate::hybrid::split_by_slice_population(tensor, mode, 4);
            build_hybrid_plan(
                &DeviceSpec::rtx3090(),
                &split,
                factors,
                mode,
                cfg,
                4,
                4,
                KernelChoice::Tiled,
            )
        }),
    ]
}

/// The load-imbalance-immune builders of `scalfrag-balance`, registered
/// separately so the conformance registry can append them after the seed
/// builders without disturbing pinned fold orders.
pub fn balance_plan_builders() -> Vec<PlanBuilder> {
    let cfg = LaunchConfig::new(512, 256);
    vec![
        PlanBuilder::new("balance-segscan", move |tensor, factors, mode| {
            let mut t = tensor.clone();
            t.sort_for_mode(mode);
            build_balance_segscan_plan(&DeviceSpec::rtx3090(), &t, factors, mode, cfg)
        }),
        PlanBuilder::new("balance-flycoo", move |tensor, factors, mode| {
            // Deliberately unsorted: the remap table is the sort.
            build_balance_flycoo_plan(&DeviceSpec::rtx3090(), tensor, factors, mode, cfg)
        }),
    ]
}
