//! Pipeline planning: how many segments, how many streams, which launch
//! configuration.

use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_tensor::{segment, CooTensor, Segment};

/// Upper bound on segments/streams exposed to auto mode; the paper's
/// Fig. 11 sweeps 1–16.
pub const MAX_SEGMENTS: usize = 16;

/// An executable pipeline plan for one MTTKRP.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelinePlan {
    /// Target MTTKRP mode.
    pub mode: usize,
    /// Kernel launch configuration (base; the tiled kernel adds its
    /// shared-memory request).
    pub config: LaunchConfig,
    /// Number of CUDA streams to spread segments over.
    pub num_streams: usize,
    /// Slice-aligned entry ranges (over the mode-sorted tensor).
    pub segments: Vec<Segment>,
    /// Explicit segment→stream assignment; `None` = round-robin.
    assignment: Option<Vec<usize>>,
}

impl PipelinePlan {
    /// Plans `num_segments` slice-aligned segments over a *mode-sorted*
    /// tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not sorted for `mode`, or either count is 0.
    pub fn new(
        tensor: &CooTensor,
        mode: usize,
        config: LaunchConfig,
        num_segments: usize,
        num_streams: usize,
    ) -> Self {
        assert!(num_streams > 0, "need at least one stream");
        let segments = segment::segment_on_slice_boundaries(tensor, mode, num_segments);
        Self { mode, config, num_streams, segments, assignment: None }
    }

    /// Auto mode: picks the segment count from the device memory budget
    /// (the paper "empirically determine[s] the appropriate number of
    /// segments"; 4 segments / 4 streams is its Fig. 11 default operating
    /// point, used whenever memory pressure does not force more).
    pub fn auto(
        tensor: &CooTensor,
        mode: usize,
        config: LaunchConfig,
        device: &DeviceSpec,
        resident_bytes: usize,
    ) -> Self {
        let by_memory = segment::auto_segment_count(
            tensor.byte_size(),
            resident_bytes,
            device.global_mem_bytes as usize,
            MAX_SEGMENTS,
        );
        let num_segments = by_memory.clamp(4, MAX_SEGMENTS);
        let num_streams = num_segments.min(4);
        Self::new(tensor, mode, config, num_segments, num_streams)
    }

    /// Number of planned segments (may be fewer than requested when slices
    /// are coarse).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total non-zeros covered by the plan.
    pub fn total_nnz(&self) -> usize {
        self.segments.iter().map(Segment::nnz).sum()
    }

    /// The stream index segment `i` is assigned to (round-robin by default,
    /// as in the paper's "each stream is responsible for … one or more
    /// specific data segments"; [`PipelinePlan::balance_streams`] switches
    /// to a size-balanced assignment).
    pub fn stream_of(&self, segment_idx: usize) -> usize {
        match &self.assignment {
            Some(a) => a[segment_idx],
            None => segment_idx % self.num_streams,
        }
    }

    /// Replaces round-robin with an LPT (longest-processing-time-first)
    /// size-balanced assignment: segments are sorted by nnz descending and
    /// each goes to the currently lightest stream. With slice-aligned cuts
    /// on skewed tensors, segment sizes can differ a lot; balancing evens
    /// the per-stream byte totals so no stream becomes the straggler.
    pub fn balance_streams(&mut self) {
        let mut order: Vec<usize> = (0..self.segments.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.segments[i].nnz()));
        let mut load = vec![0usize; self.num_streams];
        let mut assignment = vec![0usize; self.segments.len()];
        for i in order {
            let s = (0..self.num_streams).min_by_key(|&s| load[s]).unwrap_or(0);
            assignment[i] = s;
            load[s] += self.segments[i].nnz();
        }
        self.assignment = Some(assignment);
    }

    /// Per-stream total nnz under the current assignment.
    pub fn stream_loads(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.num_streams];
        for (i, s) in self.segments.iter().enumerate() {
            load[self.stream_of(i)] += s.nnz();
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_tensor() -> CooTensor {
        let mut t = scalfrag_tensor::gen::zipf_slices(&[100, 60, 60], 5_000, 0.8, 3);
        t.sort_for_mode(0);
        t
    }

    #[test]
    fn plan_covers_all_nnz() {
        let t = sorted_tensor();
        let p = PipelinePlan::new(&t, 0, LaunchConfig::new(1024, 256), 6, 3);
        assert_eq!(p.total_nnz(), 5_000);
        assert!(p.num_segments() >= 1 && p.num_segments() <= 7);
        assert_eq!(p.stream_of(0), 0);
        assert_eq!(p.stream_of(4), 1);
    }

    #[test]
    fn auto_plan_defaults_to_four_segments_when_memory_is_ample() {
        let t = sorted_tensor();
        let d = DeviceSpec::rtx3090();
        let p = PipelinePlan::auto(&t, 0, LaunchConfig::new(1024, 256), &d, 1 << 20);
        assert!(p.num_segments() >= 2, "got {}", p.num_segments());
        assert!(p.num_streams <= 4);
    }

    #[test]
    fn auto_plan_scales_segments_under_memory_pressure() {
        let t = sorted_tensor();
        // A tiny device forces many segments.
        let mut d = DeviceSpec::rtx3090();
        d.global_mem_bytes = (t.byte_size() / 3) as u64;
        let p = PipelinePlan::auto(&t, 0, LaunchConfig::new(1024, 256), &d, 0);
        assert!(p.num_segments() > 4, "got {}", p.num_segments());
    }

    #[test]
    fn balanced_assignment_evens_stream_loads() {
        // A heavily skewed tensor with slice-aligned cuts produces very
        // uneven segments; LPT must beat round-robin on max stream load.
        let mut t = scalfrag_tensor::gen::zipf_slices(&[60, 80, 80], 8_000, 1.3, 9);
        t.sort_for_mode(0);
        let mut p = PipelinePlan::new(&t, 0, LaunchConfig::new(512, 256), 8, 3);
        let rr_loads = p.stream_loads();
        let rr_max = *rr_loads.iter().max().unwrap();
        p.balance_streams();
        let lpt_loads = p.stream_loads();
        let lpt_max = *lpt_loads.iter().max().unwrap();
        assert_eq!(
            rr_loads.iter().sum::<usize>(),
            lpt_loads.iter().sum::<usize>(),
            "total work must be preserved"
        );
        assert!(lpt_max <= rr_max, "LPT {lpt_max} must not exceed round-robin {rr_max}");
        // Every segment still maps to a valid stream.
        for i in 0..p.num_segments() {
            assert!(p.stream_of(i) < p.num_streams);
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_tensor_rejected() {
        let t = scalfrag_tensor::gen::zipf_slices(&[100, 60, 60], 5_000, 0.8, 3);
        // zipf tensors are generated in insertion order — almost surely
        // unsorted for mode 0.
        let _ = PipelinePlan::new(&t, 0, LaunchConfig::new(64, 64), 4, 4);
    }
}
