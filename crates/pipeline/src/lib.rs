//! # scalfrag-pipeline
//!
//! The pipelined parallel processing of ScalFrag (§IV-C) plus the hybrid
//! CPU–GPU execution of §I.
//!
//! The paper's flow, reproduced stage by stage:
//!
//! 1. **Data preprocessing** — the COO tensor is sorted for the target
//!    mode and segmented on slice boundaries into nnz-balanced chunks
//!    ([`plan`]).
//! 2. **Storage allocation** — segment buffers, factors and the output are
//!    charged against the simulated 24 GB device pool; the segment count
//!    adapts to what fits ([`PipelinePlan::auto`]).
//! 3. **Streamed transfer + compute** — each segment's H2D copy and kernel
//!    launch are issued on one of `num_streams` CUDA-style streams, so
//!    segment *k+1* transfers while segment *k* computes ([`executor`]).
//! 4. **Result synchronisation** — a single D2H copy, ordered after every
//!    kernel through events, returns the output matrix.
//! 5. **Hybrid execution** — optionally, the low-parallelism slices run on
//!    the host CPU while the device processes the bulk ([`hybrid`]).

pub mod executor;
pub mod hybrid;
pub mod plan;
pub mod resilient;

pub use executor::{
    execute_pipelined, execute_pipelined_dry, execute_sync, execute_sync_dry, KernelChoice,
    PipelineRun,
};
pub use hybrid::{execute_hybrid, split_by_slice_population, HybridSplit};
pub use plan::PipelinePlan;
pub use resilient::{
    execute_pipelined_resilient, execute_pipelined_resilient_dry, ResilientRun, RetryPolicy,
    SegmentOutcome,
};
