//! # scalfrag-pipeline
//!
//! The pipelined parallel processing of ScalFrag (§IV-C) plus the hybrid
//! CPU–GPU execution of §I.
//!
//! The paper's flow, reproduced stage by stage:
//!
//! 1. **Data preprocessing** — the COO tensor is sorted for the target
//!    mode and segmented on slice boundaries into nnz-balanced chunks
//!    ([`plan`]).
//! 2. **Storage allocation** — segment buffers, factors and the output are
//!    charged against the simulated 24 GB device pool; the segment count
//!    adapts to what fits ([`PipelinePlan::auto`]).
//! 3. **Streamed transfer + compute** — each segment's H2D copy and kernel
//!    launch are issued on one of `num_streams` CUDA-style streams, so
//!    segment *k+1* transfers while segment *k* computes ([`executor`]).
//! 4. **Result synchronisation** — a single D2H copy, ordered after every
//!    kernel through events, returns the output matrix.
//! 5. **Hybrid execution** — optionally, the low-parallelism slices run on
//!    the host CPU while the device processes the bulk ([`hybrid`]).
//!
//! Since the ScheduleIR refactor this crate is a *plan builder*: every
//! schedule lowers to a [`scalfrag_exec::Plan`] ([`builders`]) and the
//! single interpreter in `scalfrag-exec` executes it. Dry runs are the
//! interpreter's [`ExecMode::Dry`]; fault injection is its resilient
//! mode.

pub mod builders;
pub mod executor;
pub mod hybrid;
pub mod plan;
pub mod resilient;

pub use builders::{
    balance_plan_builders, batched_plan_builders, build_balance_flycoo_plan,
    build_balance_segscan_plan, build_batched_plan, build_hybrid_plan, build_pipelined_plan,
    build_sync_plan, plan_builders, BatchedJobSpec,
};
pub use executor::{execute_pipelined, execute_sync, ExecMode, KernelChoice, PipelineRun};
pub use hybrid::{execute_hybrid, split_by_slice_population, HybridSplit};
pub use plan::PipelinePlan;
pub use resilient::{execute_pipelined_resilient, ResilientRun, RetryPolicy, SegmentOutcome};
