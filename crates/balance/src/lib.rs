//! # scalfrag-balance
//!
//! The load-imbalance-immune MTTKRP kernel arms of the adaptive launcher.
//!
//! ScalFrag's slice/fiber-parallel kernels inherit the tensor's skew: on a
//! Zipf-distributed tensor one heavy slice serializes a whole block (and
//! concentrates the atomic traffic onto one output row). This crate adds
//! the two kernels that don't:
//!
//! * [`BalancedKernel`] (`balance-segscan`) — Nisa et al.'s load-balanced
//!   strategy: the mode-sorted non-zeros are cut into fixed-size chunks of
//!   [`CHUNK_LEN`] entries *regardless of slice or fiber boundaries*
//!   ([`ChunkedTensor`]), every chunk folds its interior rows locally, and
//!   rows cut by chunk boundaries are resolved by a carry chain that walks
//!   each cut row's entries in storage order. Every output row is thus one
//!   strict left-to-right fold over its entries in mode-sorted order — the
//!   same fold for *any* chunk count, so results are bit-stable across
//!   chunk counts (asserted in this crate's tests).
//! * [`FlycooKernel`] (`balance-flycoo`) — a FLYCOO-style mode-agnostic
//!   kernel: one copy of the entries plus per-mode remap tables
//!   ([`FlycooTensor`]) serve *every* MTTKRP mode of a CPD-ALS sweep with
//!   no re-sorting or re-tiling between modes, at the cost of one extra
//!   index gather per entry.
//!
//! Both kernels flush with `atomic_hotness = 0`: their write traffic is
//! spread across chunk-exclusive rows and per-chunk carry cells, so the
//! cost model's contention penalty — the term that scales with the
//! Herfindahl index of the row distribution and makes the COO/tiled arms
//! collapse on skew — simply does not apply. That is the modelled speedup
//! the `balance_bench` gate measures.

pub mod flycoo_kernel;
pub mod segscan;

pub use flycoo_kernel::FlycooKernel;
pub use segscan::BalancedKernel;

use scalfrag_gpusim::KernelWorkload;
use scalfrag_kernels::SegmentStats;

/// Entries per chunk of the load-balanced kernel. 256 matches the
/// BCSF heavy-chunk granularity: big enough that carry traffic is ≪ 1 %
/// of the entry traffic, small enough that even a single heavy slice
/// spreads over many workers.
pub const CHUNK_LEN: usize = 256;

/// Entries per partition of the FLYCOO kernel's remap walk (the same
/// granularity the F-COO differential backend uses).
pub const FLYCOO_SEG_LEN: usize = 128;

/// [`BalancedKernel`] workload at the crate's fixed [`CHUNK_LEN`] — the
/// form the execution layer and the autotune sweep consume.
pub fn balanced_workload(stats: &SegmentStats, rank: u32) -> KernelWorkload {
    BalancedKernel::workload(stats, rank, stats.nnz.div_ceil(CHUNK_LEN as u64))
}

/// [`FlycooKernel`] workload at the crate's fixed [`FLYCOO_SEG_LEN`].
pub fn flycoo_workload(stats: &SegmentStats, rank: u32) -> KernelWorkload {
    FlycooKernel::workload(stats, rank, stats.nnz.div_ceil(FLYCOO_SEG_LEN as u64))
}
