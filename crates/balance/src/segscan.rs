//! The load-balanced segmented-scan MTTKRP kernel (Nisa et al.,
//! "Load-Balanced Sparse MTTKRP on GPUs").
//!
//! One worker per fixed-size chunk of [`CHUNK_LEN`](crate::CHUNK_LEN)
//! non-zeros, cut without regard for slice or fiber boundaries — so a
//! single heavy slice that would serialize a fiber-parallel kernel is
//! spread evenly over `⌈slice_nnz / CHUNK_LEN⌉` workers. Two phases:
//!
//! 1. **Interior fold** (chunk-parallel): each chunk folds the rows that
//!    lie wholly inside it, in entry order, and flushes one partial per
//!    row. Rows cut by a chunk boundary are *skipped* — their partial is
//!    conceptually handed to the chunk's exclusive carry cell.
//! 2. **Carry chain** (the carry-resolution worker): every cut row is
//!    folded left-to-right over its *full* entry range, in entry order —
//!    exactly the fold an uncut row receives.
//!
//! Every output row is therefore one strict left-to-right fold over its
//! entries in mode-sorted order, independent of the chunk count — the
//! bit-stability contract `bit_stable_across_chunk_counts` asserts.

use scalfrag_gpusim::{Gpu, KernelWorkload, LaunchConfig, OpId, StreamId};
use scalfrag_kernels::{partials, simd, AtomicF32Buffer, FactorSet, SegmentStats};
use scalfrag_tensor::ChunkedTensor;
use std::sync::Arc;

/// The load-balanced segmented-scan MTTKRP kernel.
pub struct BalancedKernel;

impl BalancedKernel {
    /// Kernel name for reports and the conformance registries.
    pub const NAME: &'static str = "balance-segscan";

    /// Cost-model workload: perfectly even work per thread and **zero
    /// atomic hotness** — interior rows are chunk-exclusive and carries
    /// go to per-chunk cells, so no output word is contended no matter
    /// how skewed the row distribution is. The price: scan bookkeeping
    /// (higher per-item cycles) and carry traffic, which is why the
    /// tiled kernel still wins on uniform tensors.
    pub fn workload(stats: &SegmentStats, rank: u32, num_chunks: u64) -> KernelWorkload {
        KernelWorkload {
            work_items: stats.nnz,
            flops: stats.flops(rank),
            // COO indices + values + factor rows, plus per-chunk carry
            // descriptors (row id + continuation flag).
            bytes_read: stats.bytes_read(rank) + num_chunks * 8,
            // One row flush per (chunk, interior row) — bounded by chunks
            // plus distinct rows — and one carry cell per chunk.
            bytes_written: (2 * num_chunks + stats.nnz / stats.avg_nnz_per_slice.max(1.0) as u64)
                * rank as u64
                * 4,
            // Carry handoff + boundary-row resolution only.
            atomic_ops: 2 * num_chunks * rank as u64,
            atomic_hotness: 0.0,
            // Chunked streaming is contiguous, but the carry metadata and
            // double-flush path cost a little effective bandwidth.
            coalescing: 0.5,
            regs_per_thread: 48,
            shared_tile_reduction: 1.0,
            // The segmented scan spends extra cycles on flag handling.
            item_cycles: (rank * (stats.order + 2)) as f64 * 2.1,
        }
    }

    /// Functional body: interior fold + carry chain (see module docs).
    pub fn execute(chunked: &ChunkedTensor, factors: &FactorSet, out: &AtomicF32Buffer) {
        let rank = factors.rank();
        let mode = chunked.mode();
        assert_eq!(out.len(), chunked.dims()[mode] as usize * rank, "output shape mismatch");
        if chunked.nnz() == 0 {
            return;
        }

        // Phase 1: chunk-parallel fold of interior rows, partials applied
        // in chunk order (the submission-order discipline the host pool's
        // determinism contract rests on).
        partials::run_units(chunked.num_chunks(), out, |c, list| {
            let range = chunked.chunk_range(c);
            let head_cut = chunked.chunk_continues(c);
            let tail_cut = chunked.chunk_continues(c + 1);
            let tail_row = chunked.row(range.end - 1);
            let mut acc = vec![0.0f32; rank];
            let mut prod = vec![0.0f32; rank];
            let mut open = chunked.row(range.start);
            let mut open_cut = head_cut || (tail_cut && open == tail_row);
            for e in range.clone() {
                let row = chunked.row(e);
                if row != open {
                    if !open_cut {
                        flush_list(list, open as usize * rank, &mut acc);
                    }
                    open = row;
                    open_cut = tail_cut && open == tail_row;
                }
                if open_cut {
                    // Cut row: the carry chain owns its entire fold.
                    continue;
                }
                accumulate(chunked, factors, e, &mut prod, &mut acc);
            }
            if !open_cut {
                flush_list(list, open as usize * rank, &mut acc);
            }
        });

        // Phase 2: the carry chain. Each cut row is folded over its full
        // entry range in entry order — the same left fold an uncut row
        // gets, which is what makes the result chunk-count-invariant.
        let mut acc = vec![0.0f32; rank];
        let mut prod = vec![0.0f32; rank];
        for b in chunked.boundary_rows() {
            for e in b.start..b.end {
                accumulate(chunked, factors, e, &mut prod, &mut acc);
            }
            flush(out, b.row as usize * rank, &mut acc);
        }
    }

    /// Enqueues this kernel on the simulated GPU.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        coo_stats: &SegmentStats,
        chunked: Arc<ChunkedTensor>,
        factors: Arc<FactorSet>,
        out: Arc<AtomicF32Buffer>,
        label: impl Into<String>,
    ) -> OpId {
        let workload =
            Self::workload(coo_stats, factors.rank() as u32, chunked.num_chunks() as u64);
        gpu.launch_exec(stream, config, workload, label, move || {
            Self::execute(&chunked, &factors, &out);
        })
    }
}

#[inline]
fn accumulate(
    chunked: &ChunkedTensor,
    factors: &FactorSet,
    e: usize,
    prod: &mut [f32],
    acc: &mut [f32],
) {
    simd::fill(prod, chunked.values()[e]);
    for (k, &m) in chunked.other_modes().iter().enumerate() {
        simd::mul_assign(prod, factors.get(m).row(chunked.other_indices(k)[e] as usize));
    }
    simd::add_assign(acc, prod);
}

#[inline]
fn flush(out: &AtomicF32Buffer, base: usize, acc: &mut [f32]) {
    for (f, a) in acc.iter_mut().enumerate() {
        if *a != 0.0 {
            out.add(base + f, *a);
        }
        *a = 0.0;
    }
}

#[inline]
fn flush_list(list: &mut partials::UpdateList, base: usize, acc: &mut [f32]) {
    for (f, a) in acc.iter_mut().enumerate() {
        if *a != 0.0 {
            list.push((base + f, *a));
        }
        *a = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_kernels::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;
    use scalfrag_tensor::{gen, CooTensor};

    fn run(t: &CooTensor, f: &FactorSet, mode: usize, chunk_len: usize) -> Mat {
        let chunked = ChunkedTensor::from_coo(t, mode, chunk_len);
        let rank = f.rank();
        let out = AtomicF32Buffer::new(t.dims()[mode] as usize * rank);
        BalancedKernel::execute(&chunked, f, &out);
        Mat::from_vec(t.dims()[mode] as usize, rank, out.to_vec())
    }

    #[test]
    fn matches_reference_across_modes_and_chunk_lens() {
        let t = CooTensor::random_uniform(&[25, 20, 15], 1_200, 1);
        let f = FactorSet::random(&[25, 20, 15], 8, 2);
        for mode in 0..3 {
            for chunk_len in [1usize, 7, 64, 4096] {
                let a = run(&t, &f, mode, chunk_len);
                let b = mttkrp_seq(&t, &f, mode);
                assert!(
                    a.max_abs_diff(&b) < 1e-3,
                    "mode {mode} chunk {chunk_len}: {}",
                    a.max_abs_diff(&b)
                );
            }
        }
    }

    /// The tentpole contract: the same tensor through different chunk
    /// counts gives the *bit-identical* output — the carry chain restores
    /// exactly the fold order an unchunked pass would use.
    #[test]
    fn bit_stable_across_chunk_counts() {
        let t = gen::zipf_slices(&[60, 40, 30], 5_000, 1.3, 9);
        let f = FactorSet::random(&[60, 40, 30], 16, 10);
        for mode in 0..3 {
            let golden: Vec<u32> =
                run(&t, &f, mode, 1).as_slice().iter().map(|v| v.to_bits()).collect();
            for chunk_len in [3usize, 17, 64, 256, 1_000, 1 << 20] {
                let got: Vec<u32> =
                    run(&t, &f, mode, chunk_len).as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(golden, got, "mode {mode}: chunk_len {chunk_len} moved output bits");
            }
        }
    }

    #[test]
    fn matches_reference_on_heavy_skew() {
        // One slice holds half the entries — the shape the kernel exists for.
        let t = gen::zipf_slices(&[40, 30, 20], 4_000, 1.6, 5);
        let f = FactorSet::random(&[40, 30, 20], 8, 6);
        let a = run(&t, &f, 0, 256);
        let b = mttkrp_seq(&t, &f, 0);
        assert!(a.max_abs_diff(&b) < 1e-2, "{}", a.max_abs_diff(&b));
    }

    #[test]
    fn matches_reference_4way() {
        let t = CooTensor::random_uniform(&[10, 9, 8, 7], 500, 3);
        let f = FactorSet::random(&[10, 9, 8, 7], 4, 4);
        for mode in 0..4 {
            let a = run(&t, &f, mode, 37);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-3, "mode {mode}");
        }
    }

    #[test]
    fn workload_is_hotness_free_with_few_atomics() {
        let t = gen::zipf_slices(&[100, 80, 60], 10_000, 1.4, 5);
        let stats = SegmentStats::compute(&t, 0);
        let w = BalancedKernel::workload(&stats, 16, 40);
        let coo_w = scalfrag_kernels::workload::coo_atomic_workload(&stats, 16);
        assert_eq!(w.atomic_hotness, 0.0);
        assert!(coo_w.atomic_hotness > 0.0);
        assert!(w.atomic_ops < coo_w.atomic_ops / 100);
        assert_eq!(w.work_items, stats.nnz);
    }

    #[test]
    fn enqueue_runs() {
        let t = CooTensor::random_uniform(&[20, 15, 10], 400, 7);
        let f = Arc::new(FactorSet::random(&[20, 15, 10], 4, 8));
        let stats = SegmentStats::compute(&t, 0);
        let chunked = Arc::new(ChunkedTensor::from_coo(&t, 0, 64));
        let out = Arc::new(AtomicF32Buffer::new(20 * 4));
        let mut gpu = Gpu::new(scalfrag_gpusim::DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        BalancedKernel::enqueue(
            &mut gpu,
            s,
            LaunchConfig::new(64, 64),
            &stats,
            chunked,
            Arc::clone(&f),
            Arc::clone(&out),
            "balanced",
        );
        gpu.synchronize();
        let m = Mat::from_vec(20, 4, out.to_vec());
        assert!(m.max_abs_diff(&mttkrp_seq(&t, &f, 0)) < 1e-3);
    }

    #[test]
    fn empty_tensor_is_noop() {
        let t = CooTensor::new(&[5, 5, 5]);
        let f = FactorSet::random(&[5, 5, 5], 4, 0);
        let chunked = ChunkedTensor::from_coo(&t, 0, 16);
        let out = AtomicF32Buffer::new(5 * 4);
        BalancedKernel::execute(&chunked, &f, &out);
        assert!(out.to_vec().iter().all(|&x| x == 0.0));
    }
}
