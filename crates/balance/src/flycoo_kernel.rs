//! The FLYCOO-style mode-agnostic MTTKRP kernel (after Wijeratne et al.).
//!
//! One [`FlycooTensor`] — a single entry copy plus per-mode remap tables —
//! serves *every* MTTKRP mode of a CPD-ALS sweep: the kernel takes the
//! mode at call time and streams remap positions `k`, gathering entry
//! `remap(mode)[k]` from the shared storage. No re-sorting or re-tiling
//! happens between modes; the price is one extra index gather per entry.
//!
//! The reduction discipline is the same segmented fold as the
//! `balance-segscan` kernel: fixed-size partitions of remap positions,
//! interior rows folded partition-locally in remap order, rows cut by a
//! partition boundary resolved by a carry chain walking their full remap
//! range — one strict left-to-right fold per output row, bit-stable
//! across partition counts.

use scalfrag_gpusim::{Gpu, KernelWorkload, LaunchConfig, OpId, StreamId};
use scalfrag_kernels::{partials, simd, AtomicF32Buffer, FactorSet, SegmentStats};
use scalfrag_tensor::FlycooTensor;
use std::sync::Arc;

/// The FLYCOO mode-agnostic MTTKRP kernel.
pub struct FlycooKernel;

impl FlycooKernel {
    /// Kernel name for reports and the conformance registries.
    pub const NAME: &'static str = "balance-flycoo";

    /// Cost-model workload. Like the segscan arm: even partitions and
    /// zero atomic hotness. Unlike it: every entry costs one extra
    /// remap-table gather, and the gathered accesses stride the original
    /// entry order, so effective coalescing is lower.
    pub fn workload(stats: &SegmentStats, rank: u32, num_partitions: u64) -> KernelWorkload {
        KernelWorkload {
            work_items: stats.nnz,
            flops: stats.flops(rank),
            // COO traffic + the remap gather (4 B/entry) + per-partition
            // carry descriptors.
            bytes_read: stats.bytes_read(rank) + stats.nnz * 4 + num_partitions * 8,
            bytes_written: (2 * num_partitions
                + stats.nnz / stats.avg_nnz_per_slice.max(1.0) as u64)
                * rank as u64
                * 4,
            atomic_ops: 2 * num_partitions * rank as u64,
            atomic_hotness: 0.0,
            // The remap indirection scatters value/index loads.
            coalescing: 0.42,
            regs_per_thread: 50,
            shared_tile_reduction: 1.0,
            item_cycles: (rank * (stats.order + 2)) as f64 * 2.3,
        }
    }

    /// Functional body for one MTTKRP mode over the shared storage.
    pub fn execute(fly: &FlycooTensor, factors: &FactorSet, mode: usize, out: &AtomicF32Buffer) {
        let rank = factors.rank();
        assert!(mode < fly.order(), "mode out of range");
        assert_eq!(out.len(), fly.dims()[mode] as usize * rank, "output shape mismatch");
        if fly.nnz() == 0 {
            return;
        }

        // Phase 1: partition-parallel fold of interior rows (remap order),
        // partials applied in partition order.
        partials::run_units(fly.num_partitions(), out, |p, list| {
            let range = fly.partition_range(p);
            let head_cut = fly.partition_continues(mode, p);
            let tail_cut = fly.partition_continues(mode, p + 1);
            let tail_row = fly.row_at(mode, range.end - 1);
            let mut acc = vec![0.0f32; rank];
            let mut prod = vec![0.0f32; rank];
            let mut open = fly.row_at(mode, range.start);
            let mut open_cut = head_cut || (tail_cut && open == tail_row);
            for k in range.clone() {
                let row = fly.row_at(mode, k);
                if row != open {
                    if !open_cut {
                        flush_list(list, open as usize * rank, &mut acc);
                    }
                    open = row;
                    open_cut = tail_cut && open == tail_row;
                }
                if open_cut {
                    continue;
                }
                accumulate(fly, factors, mode, k, &mut prod, &mut acc);
            }
            if !open_cut {
                flush_list(list, open as usize * rank, &mut acc);
            }
        });

        // Phase 2: carry chain over the cut rows, full remap range each.
        let mut acc = vec![0.0f32; rank];
        let mut prod = vec![0.0f32; rank];
        for b in fly.boundary_rows(mode) {
            for k in b.start..b.end {
                accumulate(fly, factors, mode, k, &mut prod, &mut acc);
            }
            flush(out, b.row as usize * rank, &mut acc);
        }
    }

    /// Enqueues this kernel for one mode on the simulated GPU.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue(
        gpu: &mut Gpu,
        stream: StreamId,
        config: LaunchConfig,
        coo_stats: &SegmentStats,
        fly: Arc<FlycooTensor>,
        mode: usize,
        factors: Arc<FactorSet>,
        out: Arc<AtomicF32Buffer>,
        label: impl Into<String>,
    ) -> OpId {
        let workload =
            Self::workload(coo_stats, factors.rank() as u32, fly.num_partitions() as u64);
        gpu.launch_exec(stream, config, workload, label, move || {
            Self::execute(&fly, &factors, mode, &out);
        })
    }
}

#[inline]
fn accumulate(
    fly: &FlycooTensor,
    factors: &FactorSet,
    mode: usize,
    k: usize,
    prod: &mut [f32],
    acc: &mut [f32],
) {
    let e = fly.remap(mode)[k] as usize;
    simd::fill(prod, fly.values()[e]);
    for m in 0..fly.order() {
        if m == mode {
            continue;
        }
        simd::mul_assign(prod, factors.get(m).row(fly.mode_indices(m)[e] as usize));
    }
    simd::add_assign(acc, prod);
}

#[inline]
fn flush(out: &AtomicF32Buffer, base: usize, acc: &mut [f32]) {
    for (f, a) in acc.iter_mut().enumerate() {
        if *a != 0.0 {
            out.add(base + f, *a);
        }
        *a = 0.0;
    }
}

#[inline]
fn flush_list(list: &mut partials::UpdateList, base: usize, acc: &mut [f32]) {
    for (f, a) in acc.iter_mut().enumerate() {
        if *a != 0.0 {
            list.push((base + f, *a));
        }
        *a = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_kernels::reference::mttkrp_seq;
    use scalfrag_linalg::Mat;
    use scalfrag_tensor::{gen, CooTensor};

    fn run(fly: &FlycooTensor, f: &FactorSet, mode: usize) -> Mat {
        let rank = f.rank();
        let out = AtomicF32Buffer::new(fly.dims()[mode] as usize * rank);
        FlycooKernel::execute(fly, f, mode, &out);
        Mat::from_vec(fly.dims()[mode] as usize, rank, out.to_vec())
    }

    /// The mode-agnostic contract: one FLYCOO value, built once, serves
    /// every mode of the sweep and matches the reference on each.
    #[test]
    fn one_tensor_serves_all_modes_without_retiling() {
        let t = CooTensor::random_uniform(&[25, 20, 15], 1_200, 21);
        let f = FactorSet::random(&[25, 20, 15], 8, 22);
        let fly = FlycooTensor::from_coo(&t, crate::FLYCOO_SEG_LEN);
        for mode in 0..3 {
            let a = run(&fly, &f, mode);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-3, "mode {mode}: {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn bit_stable_across_partition_counts() {
        let t = gen::zipf_slices(&[50, 35, 25], 4_000, 1.2, 31);
        let f = FactorSet::random(&[50, 35, 25], 16, 32);
        for mode in 0..3 {
            let golden: Vec<u32> = run(&FlycooTensor::from_coo(&t, 1), &f, mode)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            for seg_len in [5usize, 64, 128, 911, 1 << 20] {
                let got: Vec<u32> = run(&FlycooTensor::from_coo(&t, seg_len), &f, mode)
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(golden, got, "mode {mode}: seg_len {seg_len} moved output bits");
            }
        }
    }

    #[test]
    fn matches_reference_on_heavy_skew_all_modes() {
        let t = gen::zipf_slices(&[40, 30, 20], 4_000, 1.6, 35);
        let f = FactorSet::random(&[40, 30, 20], 8, 36);
        let fly = FlycooTensor::from_coo(&t, 128);
        for mode in 0..3 {
            let a = run(&fly, &f, mode);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-2, "mode {mode}");
        }
    }

    #[test]
    fn matches_reference_4way() {
        let t = CooTensor::random_uniform(&[10, 9, 8, 7], 500, 41);
        let f = FactorSet::random(&[10, 9, 8, 7], 4, 42);
        let fly = FlycooTensor::from_coo(&t, 33);
        for mode in 0..4 {
            let a = run(&fly, &f, mode);
            let b = mttkrp_seq(&t, &f, mode);
            assert!(a.max_abs_diff(&b) < 1e-3, "mode {mode}");
        }
    }

    #[test]
    fn workload_is_hotness_free_but_pays_the_gather() {
        let t = gen::zipf_slices(&[100, 80, 60], 10_000, 1.4, 45);
        let stats = SegmentStats::compute(&t, 0);
        let w = FlycooKernel::workload(&stats, 16, 79);
        let seg_w = crate::balanced_workload(&stats, 16);
        assert_eq!(w.atomic_hotness, 0.0);
        // The remap gather shows up as extra read traffic vs the segscan arm.
        assert!(w.bytes_read > seg_w.bytes_read);
        assert!(w.coalescing < seg_w.coalescing);
    }

    #[test]
    fn enqueue_runs() {
        let t = CooTensor::random_uniform(&[20, 15, 10], 400, 51);
        let f = Arc::new(FactorSet::random(&[20, 15, 10], 4, 52));
        let stats = SegmentStats::compute(&t, 1);
        let fly = Arc::new(FlycooTensor::from_coo(&t, 64));
        let out = Arc::new(AtomicF32Buffer::new(15 * 4));
        let mut gpu = Gpu::new(scalfrag_gpusim::DeviceSpec::rtx3090());
        let s = gpu.create_stream();
        FlycooKernel::enqueue(
            &mut gpu,
            s,
            LaunchConfig::new(64, 64),
            &stats,
            fly,
            1,
            Arc::clone(&f),
            Arc::clone(&out),
            "flycoo",
        );
        gpu.synchronize();
        let m = Mat::from_vec(15, 4, out.to_vec());
        assert!(m.max_abs_diff(&mttkrp_seq(&t, &f, 1)) < 1e-3);
    }

    #[test]
    fn empty_tensor_is_noop() {
        let t = CooTensor::new(&[5, 5, 5]);
        let f = FactorSet::random(&[5, 5, 5], 4, 0);
        let fly = FlycooTensor::from_coo(&t, 16);
        let out = AtomicF32Buffer::new(5 * 4);
        FlycooKernel::execute(&fly, &f, 0, &out);
        assert!(out.to_vec().iter().all(|&x| x == 0.0));
    }
}
