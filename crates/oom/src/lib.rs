//! `scalfrag-oom` — out-of-core streaming MTTKRP under a device-memory
//! budget.
//!
//! Every other execution path assumes the tensor fits in device memory.
//! This crate lowers the opposite regime: the COO entry list is cut into
//! segments sized so that **two** segment staging buffers plus the
//! persistent working set (factor matrices + output) fit inside a
//! configurable byte budget. Segments then stream through a two-slot
//! double buffer — while slot A's kernel runs on stream 0, slot B's
//! `Prefetch` overlaps on stream 1; once a slot's kernel has drained, a
//! clean `Evict` releases its pool page for the next resident segment.
//! Eviction and re-staging are first-class ScheduleIR ops, so they
//! participate in dry runs, trace fingerprints and the interpreter's
//! leak check like any `H2D` or `Launch`.
//!
//! The budget is enforced physically: the plan's device spec caps
//! `global_mem_bytes` at the budget, so the pooled allocator rejects any
//! schedule that would exceed it — there is no separate accounting to
//! drift. Infeasible budgets are rejected at *build* time with a typed
//! [`StreamError`] instead.
//!
//! [`SyntheticPreset`] scales the same machinery past what host memory
//! can materialise (a ~1B-nnz tensor is ~16 GB): virtual plans carry the
//! analytic kernel workload per segment and execute dry-only, with the
//! identical op schedule a materialised run would have.

#![warn(missing_docs)]

mod preset;
mod stream;

pub use preset::SyntheticPreset;
pub use stream::{build_streaming_plan, registry_budget, registry_plan, StreamError, MAX_SEGMENTS};

use scalfrag_exec::PlanBuilder;

/// The oom crate's registered plan builders.
pub fn plan_builders() -> Vec<PlanBuilder> {
    vec![PlanBuilder::new("oom-stream", |tensor, factors, mode| {
        registry_plan(tensor, factors, mode)
    })]
}
