//! Synthetic scaled-up presets, including tensors far past what host
//! memory can materialise.
//!
//! A ~1B-nnz COO tensor is ~16 GB of entries — generating it to prove
//! the streaming schedule works would be absurd. Instead a preset
//! describes the tensor analytically (dims, nnz, rank, skew) and builds
//! a **virtual** streaming plan: the identical op program a materialised
//! run would lower to, with each segment's kernel carried as an analytic
//! cost-model workload ([`scalfrag_gpusim::KernelWorkload`]) instead of
//! sliced entry data. Virtual plans are dry-only; small presets can also
//! [`SyntheticPreset::materialize`] for functional differential checks.

use crate::stream::{assemble_plan, layout, StreamError};
use scalfrag_exec::{KernelChoice, Plan, WorkUnit};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::{FactorSet, SegmentStats};
use scalfrag_tensor::segment::{segment_by_nnz, Segment};
use scalfrag_tensor::{gen, CooTensor, Idx};
use std::sync::Arc;

/// A synthetic third-order tensor described analytically.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyntheticPreset {
    /// Preset name (printed by the bench tool).
    pub name: &'static str,
    /// Mode sizes.
    pub dims: [Idx; 3],
    /// Non-zero count.
    pub nnz: u64,
    /// Factor rank.
    pub rank: usize,
    /// Zipf skew of the slice population (used when materialising).
    pub skew: f64,
    /// Generator seed.
    pub seed: u64,
}

/// Bytes per COO entry of a third-order tensor (three indices + value).
const ENTRY_BYTES: u64 = 3 * 4 + 4;

impl SyntheticPreset {
    /// The ~1B-nnz headline preset: ~16 GB of entries, far past any
    /// single materialisation, modest 16.8 MB output (2^18 rows).
    pub fn billion() -> Self {
        Self {
            name: "zipf-1b",
            dims: [1 << 18, 1 << 18, 1 << 18],
            nnz: 1_000_000_000,
            rank: 16,
            skew: 1.1,
            seed: 71,
        }
    }

    /// A scaled-down sibling of [`SyntheticPreset::billion`] that *can*
    /// materialise, for functional (oracle-checked) streaming runs.
    pub fn scaled() -> Self {
        Self {
            name: "zipf-200k",
            dims: [512, 384, 256],
            nnz: 200_000,
            rank: 16,
            skew: 1.1,
            seed: 71,
        }
    }

    /// COO bytes of the full entry list.
    pub fn tensor_bytes(&self) -> u64 {
        self.nnz * ENTRY_BYTES
    }

    /// Factor-matrix bytes at the preset rank.
    pub fn factors_bytes(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64 * self.rank as u64 * 4).sum()
    }

    /// Output bytes for a mode-0 MTTKRP.
    pub fn out_bytes(&self) -> u64 {
        self.dims[0] as u64 * self.rank as u64 * 4
    }

    /// Total device footprint an in-core run would need: entries +
    /// factors + output.
    pub fn footprint_bytes(&self) -> u64 {
        self.tensor_bytes() + self.factors_bytes() + self.out_bytes()
    }

    /// Generates the preset's tensor (only sensible for small presets —
    /// the caller owns that judgement; ~16 bytes/nnz of host memory).
    pub fn materialize(&self) -> CooTensor {
        gen::zipf_slices(&self.dims, self.nnz as usize, self.skew, self.seed)
    }

    /// Fabricates the analytic per-segment statistics a mode-sorted
    /// Zipf-ish segment of `seg_nnz` entries would have: every entry of
    /// an output row lands in one segment (sorted order), and a segment
    /// cannot touch more distinct rows than it has entries.
    fn segment_stats(&self, seg_nnz: u64) -> SegmentStats {
        let mode_dim = self.dims[0] as u64;
        let nonempty = seg_nnz.min(mode_dim).max(1);
        SegmentStats {
            nnz: seg_nnz,
            order: 3,
            mode_dim,
            row_hotness: 1.0 / nonempty as f64,
            avg_nnz_per_slice: seg_nnz as f64 / nonempty as f64,
        }
    }

    /// Builds the **virtual** streaming plan for a mode-0 MTTKRP under
    /// `budget` bytes: the exact double-buffered op program of
    /// [`crate::build_streaming_plan`], with each segment's kernel as an
    /// analytic workload. Dry-only — a functional run panics in the
    /// interpreter (there is no entry data to compute on).
    pub fn virtual_plan(&self, budget: u64) -> Result<Plan, StreamError> {
        let config = LaunchConfig::new(512, 256);
        let kernel = KernelChoice::Tiled;
        let persistent = self.factors_bytes() + self.out_bytes();
        let lay = layout(self.nnz, ENTRY_BYTES, budget, persistent)?;
        let segments: Vec<Segment> =
            if lay.k == 0 { Vec::new() } else { segment_by_nnz(self.nnz as usize, lay.k) };
        let rank = self.rank;
        let cfg = kernel.full_config(config, rank as u32);
        let units: Vec<WorkUnit> = segments
            .iter()
            .enumerate()
            .map(|(i, seg)| WorkUnit {
                shard: 0,
                segment: i,
                seg: seg.clone(),
                stream: Some(i % 2),
                alloc: None,
                h2d_bytes: seg.byte_size(3) as u64,
                h2d_label: format!("seg{i} H2D (prefetch)"),
                kernel_label: format!("seg{i} kernel"),
                workload: Some(kernel.workload(
                    &self.segment_stats(seg.nnz() as u64),
                    rank as u32,
                    cfg.block,
                )),
            })
            .collect();
        // The shard tensor carries dims only — virtual units never slice
        // it, and the factor matrices are real (dry mode ignores them,
        // but the plan type is uniform).
        let shard = Arc::new(CooTensor::new(&self.dims));
        let factors = Arc::new(FactorSet::random(&self.dims, rank, self.seed));
        Ok(assemble_plan(
            &DeviceSpec::rtx3090(),
            shard,
            factors,
            0,
            self.dims[0] as usize,
            3,
            budget,
            segments,
            units,
            config,
            kernel,
            &lay,
        ))
    }
}
