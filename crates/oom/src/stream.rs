//! The streaming plan builder: two-slot double-buffered segment staging
//! under a byte budget, lowered as an explicit ScheduleIR op program.

use scalfrag_exec::{
    DeviceOps, KernelChoice, Plan, PlanMeta, PlanOp, Reduce, ShardDesc, ShardWork, StreamRef,
    WorkUnit,
};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::segment::{segment_by_nnz, Segment};
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

/// Upper bound on the segment count a budget may induce: past this the
/// per-segment launch overhead dominates and the schedule degenerates
/// into a transfer benchmark — pick a larger budget instead.
pub const MAX_SEGMENTS: u64 = 4096;

/// Why a streaming plan could not be built for a budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The budget cannot hold the persistent working set (factors +
    /// output) plus two one-entry staging slots.
    BudgetTooSmall {
        /// The rejected budget in bytes.
        budget: u64,
        /// The minimum feasible budget for this problem.
        required: u64,
    },
    /// The budget is feasible but would cut the tensor into more than
    /// [`MAX_SEGMENTS`] segments.
    TooManySegments {
        /// Segments the budget would induce.
        needed: u64,
        /// The allowed maximum.
        max: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::BudgetTooSmall { budget, required } => write!(
                f,
                "memory budget of {budget} bytes cannot hold the working set: \
                 at least {required} bytes are required (factors + output + two staging slots)"
            ),
            StreamError::TooManySegments { needed, max } => write!(
                f,
                "memory budget would cut the tensor into {needed} segments \
                 (maximum {max}); increase the budget"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// The segmentation a budget induces: `k` segments of at most
/// `entries_per_slot` entries each, staged through two slots of
/// `slot_bytes`.
pub(crate) struct StreamLayout {
    pub k: usize,
    pub entries_per_slot: u64,
    pub slot_bytes: u64,
    pub persistent_bytes: u64,
}

/// Computes the slot split for a budget, or the typed reason it cannot
/// work. `nnz == 0` yields `k == 0` (prologue-only plan).
pub(crate) fn layout(
    nnz: u64,
    entry_bytes: u64,
    budget: u64,
    persistent_bytes: u64,
) -> Result<StreamLayout, StreamError> {
    let min_budget = persistent_bytes + 2 * entry_bytes;
    if nnz == 0 {
        if budget < persistent_bytes {
            return Err(StreamError::BudgetTooSmall { budget, required: persistent_bytes });
        }
        return Ok(StreamLayout { k: 0, entries_per_slot: 0, slot_bytes: 0, persistent_bytes });
    }
    let slot_bytes = budget.saturating_sub(persistent_bytes) / 2;
    let entries_per_slot = slot_bytes / entry_bytes;
    if entries_per_slot == 0 {
        return Err(StreamError::BudgetTooSmall { budget, required: min_budget });
    }
    let k = nnz.div_ceil(entries_per_slot);
    if k > MAX_SEGMENTS {
        return Err(StreamError::TooManySegments { needed: k, max: MAX_SEGMENTS });
    }
    Ok(StreamLayout { k: k as usize, entries_per_slot, slot_bytes, persistent_bytes })
}

/// Slot ids of the explicit program: two persistent slots, two staging
/// slots that alternate across the worker streams.
const SLOT_FACTORS: usize = 0;
const SLOT_OUTPUT: usize = 1;
const SLOT_STAGE: usize = 2;

/// Assembles the double-buffered op program over per-segment byte sizes.
/// Segment `i` runs on worker stream `i % 2` in staging slot
/// `SLOT_STAGE + i % 2`; before its `Prefetch`, segment `i - 2` (the
/// slot's previous occupant, whose kernel the stream's FIFO has already
/// drained past) is evicted clean — MTTKRP segments are read-only, so no
/// write-back bytes move.
pub(crate) fn assemble_program(
    factors_bytes: u64,
    out_bytes: u64,
    seg_bytes: &[u64],
    cfg: LaunchConfig,
) -> Vec<PlanOp> {
    let mut ops = Vec::with_capacity(seg_bytes.len() * 3 + 8);
    ops.push(PlanOp::Alloc {
        slot: SLOT_FACTORS,
        bytes: factors_bytes,
        what: "factor matrices must fit in the memory budget",
        transient: false,
    });
    ops.push(PlanOp::Alloc {
        slot: SLOT_OUTPUT,
        bytes: out_bytes,
        what: "output matrix must fit in the memory budget",
        transient: false,
    });
    ops.push(PlanOp::H2D {
        stream: StreamRef::Worker(0),
        bytes: factors_bytes,
        label: "factors H2D".to_string(),
    });
    ops.push(PlanOp::Barrier {
        record: vec![StreamRef::Worker(0)],
        wait: vec![StreamRef::Worker(1)],
    });
    for (i, &bytes) in seg_bytes.iter().enumerate() {
        let s = i % 2;
        let slot = SLOT_STAGE + s;
        if i >= 2 {
            ops.push(PlanOp::Evict {
                stream: StreamRef::Worker(s),
                slot,
                writeback_bytes: 0,
                label: format!("evict seg{}", i - 2),
            });
        }
        ops.push(PlanOp::Prefetch {
            stream: StreamRef::Worker(s),
            slot,
            bytes,
            what: "segment must fit in the memory budget",
            label: format!("seg{i} H2D (prefetch)"),
        });
        ops.push(PlanOp::Launch {
            stream: StreamRef::Worker(s),
            unit: i,
            grid: cfg.grid,
            block: cfg.block,
            label: format!("seg{i} kernel"),
        });
    }
    ops.push(PlanOp::Barrier {
        record: vec![StreamRef::Worker(0), StreamRef::Worker(1)],
        wait: vec![StreamRef::Worker(0)],
    });
    ops.push(PlanOp::D2H {
        stream: StreamRef::Worker(0),
        bytes: out_bytes,
        label: "output D2H".to_string(),
    });
    // The last (up to) two resident segments leave cleanly.
    for i in (0..seg_bytes.len()).rev().take(2) {
        ops.push(PlanOp::Free { slot: SLOT_STAGE + i % 2 });
    }
    ops
}

/// Assembles the full [`Plan`] around an explicit streaming program. The
/// device spec's `global_mem_bytes` is capped at the budget, so the
/// pooled allocator itself enforces the limit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_plan(
    spec: &DeviceSpec,
    shard: Arc<CooTensor>,
    factors: Arc<FactorSet>,
    mode: usize,
    rows: usize,
    order: usize,
    budget: u64,
    segments: Vec<Segment>,
    units: Vec<WorkUnit>,
    config: LaunchConfig,
    kernel: KernelChoice,
    layout: &StreamLayout,
) -> Plan {
    let rank = factors.rank();
    let factors_bytes = factors.byte_size() as u64;
    let out_bytes = (rows * rank * 4) as u64;
    let cfg = kernel.full_config(config, rank as u32);
    let seg_bytes: Vec<u64> = segments.iter().map(|s| s.byte_size(order) as u64).collect();
    let program = assemble_program(factors_bytes, out_bytes, &seg_bytes, cfg);

    let mut capped = spec.clone();
    capped.global_mem_bytes = capped.global_mem_bytes.min(budget);

    let k = segments.len();
    let static_streams = vec![(0..k).map(|i| i % 2).collect()];
    Plan {
        name: "oom-stream",
        mode,
        rank,
        rows,
        order,
        config,
        kernel,
        factors,
        factors_bytes,
        shards: vec![ShardDesc { index: 0, tensor: shard, rows: None }],
        seg_lists: vec![segments],
        devices: vec![DeviceOps {
            device: 0,
            name: spec.name,
            spec: capped.clone(),
            host: None,
            worker_streams: 2,
            dedicated_d2h: false,
            residue: None,
            prologue_allocs: vec![
                (factors_bytes, "factor matrices must fit in the memory budget"),
                (out_bytes, "output matrix must fit in the memory budget"),
            ],
            shard_work: vec![ShardWork {
                shard: 0,
                output_alloc: None,
                units: (0..k).collect(),
                d2h: None,
            }],
            units,
            final_d2h: Some((out_bytes, "output D2H")),
            shard_list: vec![0],
            skip_if_idle: false,
            program: Some(program),
        }],
        reduce: Reduce::Single,
        reduction_s: 0.0,
        peer_reduce: false,
        replay_spec: capped,
        cluster: None,
        sync_after_prologue: false,
        resilient_prologue: vec![
            (factors_bytes, "factor matrices must fit in the memory budget"),
            (out_bytes, "output matrix must fit in the memory budget"),
        ],
        seg_alloc_what: "segment must fit in the memory budget",
        static_streams: Some(static_streams),
        tag_shards: false,
        meta: PlanMeta {
            segment_map: format!(
                "{k} segment(s) of <= {} nnz through 2 staging slot(s) of {} B \
                 (budget {budget} B, persistent {} B)",
                layout.entries_per_slot, layout.slot_bytes, layout.persistent_bytes
            ),
            predictor: "fixed config".to_string(),
            retry: None,
            optimizer: String::new(),
            batch_jobs: 0,
        },
    }
}

/// Builds the out-of-core streaming plan for a materialised tensor: the
/// mode-sorted entry list is cut into the fewest segments whose staging
/// fits a two-slot double buffer inside `budget` bytes alongside the
/// factor matrices and the output.
///
/// A fixed budget is bitwise deterministic: the interpreter runs
/// functional kernel bodies in submission order over the same cut.
/// Shrinking the budget re-cuts the sorted entry list, which reassociates
/// the in-row accumulation — outputs across budgets agree to the oracle's
/// ULP tolerance, not bit-for-bit.
pub fn build_streaming_plan(
    spec: &DeviceSpec,
    tensor: &CooTensor,
    factors: &FactorSet,
    mode: usize,
    budget: u64,
    config: LaunchConfig,
    kernel: KernelChoice,
) -> Result<Plan, StreamError> {
    let rank = factors.rank();
    let rows = tensor.dims()[mode] as usize;
    let order = tensor.order();
    let entry_bytes = (order * 4 + 4) as u64;
    let factors_bytes = factors.byte_size() as u64;
    let out_bytes = (rows * rank * 4) as u64;
    let persistent = factors_bytes + out_bytes;
    let lay = layout(tensor.nnz() as u64, entry_bytes, budget, persistent)?;

    let mut sorted = tensor.clone();
    sorted.sort_for_mode(mode);
    let segments = if lay.k == 0 { Vec::new() } else { segment_by_nnz(sorted.nnz(), lay.k) };
    let units: Vec<WorkUnit> = segments
        .iter()
        .enumerate()
        .map(|(i, seg)| WorkUnit {
            shard: 0,
            segment: i,
            seg: seg.clone(),
            stream: Some(i % 2),
            alloc: None, // the explicit program stages via Prefetch/Evict
            h2d_bytes: seg.byte_size(order) as u64,
            h2d_label: format!("seg{i} H2D (prefetch)"),
            kernel_label: format!("seg{i} kernel"),
            workload: None,
        })
        .collect();
    Ok(assemble_plan(
        spec,
        Arc::new(sorted),
        Arc::new(factors.clone()),
        mode,
        rows,
        order,
        budget,
        segments,
        units,
        config,
        kernel,
        &lay,
    ))
}

/// The deterministic budget the registry/conformance entry uses: the
/// persistent working set plus a quarter of the tensor, floored at two
/// one-entry slots — small enough that every non-trivial corpus tensor
/// actually streams (multiple segments, evictions), large enough to be
/// feasible for any input.
pub fn registry_budget(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> u64 {
    let entry_bytes = (tensor.order() * 4 + 4) as u64;
    let out_bytes = (tensor.dims()[mode] as usize * factors.rank() * 4) as u64;
    let persistent = factors.byte_size() as u64 + out_bytes;
    persistent + (tensor.byte_size() as u64 / 4).max(2 * entry_bytes)
}

/// The registry entry: a streaming plan under [`registry_budget`].
pub fn registry_plan(tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Plan {
    build_streaming_plan(
        &DeviceSpec::rtx3090(),
        tensor,
        factors,
        mode,
        registry_budget(tensor, factors, mode),
        LaunchConfig::new(512, 256),
        KernelChoice::Tiled,
    )
    .expect("the registry budget is feasible by construction")
}
