//! Criterion bench: training and inference latency of the launch-selection
//! model zoo (the §IV-B "training < 0.5 s, inference negligible" claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalfrag_autotune::trainer::{generate_corpus, select_config, to_samples};
use scalfrag_autotune::{
    AdaBoostR2, BaggingForest, DecisionTree, KnnRegressor, Regressor, RidgeRegression,
};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};

fn bench_models(c: &mut Criterion) {
    let device = DeviceSpec::rtx3090();
    let space = LaunchConfig::coarse_sweep_space(&device);
    let corpus = generate_corpus(&device, 16, &space, &[3_000, 15_000, 60_000], 7);
    let (x, y) = to_samples(&corpus);

    let mut group = c.benchmark_group("autotune_train");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("fit", "DecisionTree"), |b| {
        b.iter(|| {
            let mut t = DecisionTree::default_params();
            t.fit(&x, &y);
            t
        })
    });
    group.bench_function(BenchmarkId::new("fit", "Bagging"), |b| {
        b.iter(|| {
            let mut m = BaggingForest::default_params();
            m.fit(&x, &y);
            m
        })
    });
    group.bench_function(BenchmarkId::new("fit", "AdaBoost"), |b| {
        b.iter(|| {
            let mut m = AdaBoostR2::default_params();
            m.fit(&x, &y);
            m
        })
    });
    group.bench_function(BenchmarkId::new("fit", "kNN"), |b| {
        b.iter(|| {
            let mut m = KnnRegressor::default_params();
            m.fit(&x, &y);
            m
        })
    });
    group.bench_function(BenchmarkId::new("fit", "Ridge"), |b| {
        b.iter(|| {
            let mut m = RidgeRegression::default_params();
            m.fit(&x, &y);
            m
        })
    });
    group.finish();

    // Selection latency: one full argmin over the launch space.
    let mut tree = DecisionTree::default_params();
    tree.fit(&x, &y);
    let features = &corpus[0].features;
    let full_space = LaunchConfig::sweep_space(&device);
    let mut group = c.benchmark_group("autotune_select");
    group.bench_function("tree_select_config", |b| {
        b.iter(|| select_config(&tree, features, &full_space))
    });
    group.bench_function("tree_single_predict", |b| {
        let probe = scalfrag_autotune::model_features(features, 1024, 256);
        b.iter(|| tree.predict(&probe))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
