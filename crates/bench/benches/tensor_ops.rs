//! Criterion bench: tensor-side preprocessing hot paths — sorting, format
//! construction, feature extraction, segmentation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalfrag_tensor::{segment, CooTensor, CsfTensor, HiCooTensor, TensorFeatures};

fn tensor() -> CooTensor {
    scalfrag_tensor::gen::zipf_slices(&[2_000, 1_500, 800], 200_000, 0.9, 5)
}

fn bench_ops(c: &mut Criterion) {
    let t = tensor();
    let mut sorted = t.clone();
    sorted.sort_for_mode(0);

    let mut group = c.benchmark_group("tensor_ops");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("sort_for_mode", "200k"), &t, |b, t| {
        b.iter(|| {
            let mut c = t.clone();
            c.sort_for_mode(0);
            c
        })
    });
    group.bench_with_input(BenchmarkId::new("csf_build", "200k"), &t, |b, t| {
        b.iter(|| CsfTensor::from_coo(t, 0))
    });
    group.bench_with_input(BenchmarkId::new("hicoo_build", "200k"), &t, |b, t| {
        b.iter(|| HiCooTensor::from_coo(t, 4))
    });
    group.bench_with_input(BenchmarkId::new("features", "200k"), &t, |b, t| {
        b.iter(|| TensorFeatures::extract(t, 0))
    });
    group.bench_with_input(BenchmarkId::new("segment_slice_aligned", "200k"), &sorted, |b, t| {
        b.iter(|| segment::segment_on_slice_boundaries(t, 0, 8))
    });
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
