//! Criterion bench: cost of the pipeline machinery itself — planning and
//! resolving a full simulated schedule (dry run, no numeric kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalfrag_gpusim::{DeviceSpec, Gpu, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_pipeline::{execute_pipelined, ExecMode, KernelChoice, PipelinePlan};
use scalfrag_tensor::CooTensor;

fn setup() -> (CooTensor, FactorSet) {
    let dims = [2_000u32, 1_500, 800];
    let mut t = scalfrag_tensor::gen::uniform(&dims, 150_000, 9);
    t.sort_for_mode(0);
    let f = FactorSet::random(&dims, 16, 10);
    (t, f)
}

fn bench_pipeline(c: &mut Criterion) {
    let (t, f) = setup();
    let cfg = LaunchConfig::new(2048, 256);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("plan_8_segments", |b| b.iter(|| PipelinePlan::new(&t, 0, cfg, 8, 4)));
    for segs in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("dry_execute", segs), &segs, |b, &segs| {
            let plan = PipelinePlan::new(&t, 0, cfg, segs, 4.min(segs));
            b.iter(|| {
                let mut gpu = Gpu::new(DeviceSpec::rtx3090());
                execute_pipelined(&mut gpu, &t, &f, &plan, KernelChoice::Tiled, ExecMode::Dry)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
