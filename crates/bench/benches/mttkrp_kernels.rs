//! Criterion bench: wall-clock cost of the MTTKRP kernel implementations
//! (the functional bodies, not the simulated clock) across formats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalfrag_kernels::{
    reference, AtomicF32Buffer, CooAtomicKernel, FCooKernel, FactorSet, HiCooKernel, TiledKernel,
};
use scalfrag_tensor::{CooTensor, CsfTensor, FCooTensor, HiCooTensor};

const RANK: usize = 16;

fn tensors() -> Vec<(&'static str, CooTensor)> {
    vec![
        ("uniform-50k", scalfrag_tensor::gen::uniform(&[800, 600, 400], 50_000, 1)),
        ("zipf-50k", scalfrag_tensor::gen::zipf_slices(&[800, 600, 400], 50_000, 1.0, 2)),
    ]
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp_kernels");
    for (name, tensor) in tensors() {
        let mut sorted = tensor.clone();
        sorted.sort_for_mode(0);
        let factors = FactorSet::random(tensor.dims(), RANK, 3);
        let rows = tensor.dims()[0] as usize;
        let csf = CsfTensor::from_coo(&tensor, 0);

        group.bench_with_input(BenchmarkId::new("cpu-seq", name), &tensor, |b, t| {
            b.iter(|| reference::mttkrp_seq(t, &factors, 0))
        });
        group.bench_with_input(BenchmarkId::new("cpu-par", name), &tensor, |b, t| {
            b.iter(|| reference::mttkrp_par(t, &factors, 0))
        });
        group.bench_with_input(BenchmarkId::new("coo-atomic", name), &tensor, |b, t| {
            b.iter(|| {
                let out = AtomicF32Buffer::new(rows * RANK);
                CooAtomicKernel::execute(t, &factors, 0, &out);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("tiled", name), &sorted, |b, t| {
            b.iter(|| {
                let out = AtomicF32Buffer::new(rows * RANK);
                TiledKernel::execute(t, &factors, 0, 256, &out);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("csf-fiber", name), &csf, |b, t| {
            b.iter(|| reference::mttkrp_csf(t, &factors))
        });

        let fcoo = FCooTensor::from_coo(&tensor, 0, 1024);
        group.bench_with_input(BenchmarkId::new("fcoo-segreduce", name), &fcoo, |b, t| {
            b.iter(|| {
                let out = AtomicF32Buffer::new(rows * RANK);
                FCooKernel::execute(t, &factors, &out);
                out
            })
        });

        let hicoo = HiCooTensor::from_coo(&tensor, 4);
        group.bench_with_input(BenchmarkId::new("hicoo-block", name), &hicoo, |b, t| {
            b.iter(|| {
                let out = AtomicF32Buffer::new(rows * RANK);
                HiCooKernel::execute(t, &factors, 0, &out);
                out
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
