//! Minimal SVG chart rendering for the figure harnesses — grouped bar
//! charts (Figs. 9/10) and heatmaps (Fig. 4) written as standalone `.svg`
//! files, with no external dependencies.

// The renderer emits one SVG element per `write!`, each terminated by a
// literal newline inside the format string; `writeln!` would scatter the
// line structure of the multi-line templates.
#![allow(clippy::write_with_newline)]

use std::fmt::Write as _;

/// Chart margins and geometry.
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 70.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// A grouped bar chart: one group per category (x axis), one bar per
/// series within each group.
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Category names (one group each).
    pub categories: Vec<String>,
    /// `(series name, per-category values)`; all series must match
    /// `categories` in length.
    pub series: Vec<(String, Vec<f64>)>,
}

impl BarChart {
    /// Renders the chart as an SVG document.
    ///
    /// # Panics
    /// Panics if a series' length differs from the category count or the
    /// chart is empty.
    pub fn render(&self, width: u32, height: u32) -> String {
        assert!(!self.categories.is_empty() && !self.series.is_empty(), "empty chart");
        for (name, vals) in &self.series {
            assert_eq!(vals.len(), self.categories.len(), "series '{name}' length mismatch");
        }
        let (w, h) = (width as f64, height as f64);
        let plot_w = w - MARGIN_L - MARGIN_R;
        let plot_h = h - MARGIN_T - MARGIN_B;
        let max_v = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(1e-12);

        let palette = ["#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4"];
        let mut svg = String::new();
        let _ = write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" font-family=\"sans-serif\">\n"
        );
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"22\" font-size=\"15\" text-anchor=\"middle\">{}</text>\n",
            w / 2.0,
            esc(&self.title)
        );
        // Y axis with 5 gridlines.
        for i in 0..=5 {
            let v = max_v * i as f64 / 5.0;
            let y = MARGIN_T + plot_h * (1.0 - i as f64 / 5.0);
            let _ = write!(
                svg,
                "<line x1=\"{MARGIN_L}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>\n",
                w - MARGIN_R
            );
            let _ = write!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{}</text>\n",
                MARGIN_L - 6.0,
                y + 3.0,
                format_value(v)
            );
        }
        let _ = write!(
            svg,
            "<text x=\"14\" y=\"{:.1}\" font-size=\"11\" transform=\"rotate(-90 14 {:.1})\" text-anchor=\"middle\">{}</text>\n",
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            esc(&self.y_label)
        );

        // Bars.
        let group_w = plot_w / self.categories.len() as f64;
        let bar_w = (group_w * 0.8) / self.series.len() as f64;
        for (ci, cat) in self.categories.iter().enumerate() {
            let gx = MARGIN_L + ci as f64 * group_w;
            for (si, (_, vals)) in self.series.iter().enumerate() {
                let v = vals[ci];
                let bh = plot_h * v / max_v;
                let x = gx + group_w * 0.1 + si as f64 * bar_w;
                let y = MARGIN_T + plot_h - bh;
                let _ = write!(
                    svg,
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{bh:.1}\" fill=\"{}\"><title>{}: {}</title></rect>\n",
                    bar_w.max(1.0) - 1.0,
                    palette[si % palette.len()],
                    esc(cat),
                    format_value(v)
                );
            }
            let _ = write!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\" transform=\"rotate(-35 {:.1} {:.1})\">{}</text>\n",
                gx + group_w / 2.0,
                h - MARGIN_B + 14.0,
                gx + group_w / 2.0,
                h - MARGIN_B + 14.0,
                esc(cat)
            );
        }
        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            let lx = MARGIN_L + si as f64 * 130.0;
            let ly = h - 18.0;
            let _ = write!(
                svg,
                "<rect x=\"{lx:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n",
                ly - 9.0,
                palette[si % palette.len()]
            );
            let _ = write!(
                svg,
                "<text x=\"{:.1}\" y=\"{ly:.1}\" font-size=\"11\">{}</text>\n",
                lx + 14.0,
                esc(name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// A heatmap over a regular grid (Fig. 4 panels).
pub struct HeatMap {
    /// Chart title.
    pub title: String,
    /// Row labels (y axis, top to bottom).
    pub row_labels: Vec<String>,
    /// Column labels (x axis).
    pub col_labels: Vec<String>,
    /// Row-major values (`rows × cols`).
    pub values: Vec<f64>,
}

impl HeatMap {
    /// Renders as an SVG document with a white→blue colour ramp and the
    /// maximum cell outlined.
    ///
    /// # Panics
    /// Panics if `values.len() != rows * cols` or the map is empty.
    pub fn render(&self, width: u32, height: u32) -> String {
        let (rows, cols) = (self.row_labels.len(), self.col_labels.len());
        assert!(rows > 0 && cols > 0, "empty heatmap");
        assert_eq!(self.values.len(), rows * cols, "value grid shape mismatch");
        let (w, h) = (width as f64, height as f64);
        let plot_w = w - MARGIN_L - MARGIN_R;
        let plot_h = h - MARGIN_T - MARGIN_B;
        let cell_w = plot_w / cols as f64;
        let cell_h = plot_h / rows as f64;
        let max_v = self.values.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        let argmax = self
            .values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);

        let mut svg = String::new();
        let _ = write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" font-family=\"sans-serif\">\n"
        );
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"22\" font-size=\"15\" text-anchor=\"middle\">{}</text>\n",
            w / 2.0,
            esc(&self.title)
        );
        for r in 0..rows {
            for c in 0..cols {
                let v = self.values[r * cols + c];
                let t = (v / max_v).clamp(0.0, 1.0);
                let shade = (255.0 * (1.0 - t)) as u8;
                let x = MARGIN_L + c as f64 * cell_w;
                let y = MARGIN_T + r as f64 * cell_h;
                let outline = if r * cols + c == argmax {
                    " stroke=\"#d62728\" stroke-width=\"2\""
                } else {
                    " stroke=\"#fff\" stroke-width=\"0.5\""
                };
                let _ = write!(
                    svg,
                    "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{cell_w:.1}\" height=\"{cell_h:.1}\" fill=\"rgb({shade},{shade},255)\"{outline}><title>{}/{}: {}</title></rect>\n",
                    esc(&self.row_labels[r]),
                    esc(&self.col_labels[c]),
                    format_value(v)
                );
                if cell_w > 34.0 && cell_h > 13.0 {
                    let _ = write!(
                        svg,
                        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"middle\" fill=\"{}\">{}</text>\n",
                        x + cell_w / 2.0,
                        y + cell_h / 2.0 + 3.0,
                        if t > 0.6 { "#fff" } else { "#333" },
                        format_value(v)
                    );
                }
            }
        }
        for (r, label) in self.row_labels.iter().enumerate() {
            let _ = write!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"end\">{}</text>\n",
                MARGIN_L - 6.0,
                MARGIN_T + (r as f64 + 0.5) * cell_h + 3.0,
                esc(label)
            );
        }
        for (c, label) in self.col_labels.iter().enumerate() {
            let _ = write!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" text-anchor=\"middle\">{}</text>\n",
                MARGIN_L + (c as f64 + 0.5) * cell_w,
                h - MARGIN_B + 16.0,
                esc(label)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn format_value(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar() -> BarChart {
        BarChart {
            title: "kernel GFLOP/s".into(),
            y_label: "GFLOP/s".into(),
            categories: vec!["vast".into(), "nips".into()],
            series: vec![
                ("ParTI".into(), vec![108.0, 91.6]),
                ("ScalFrag".into(), vec![155.5, 131.6]),
            ],
        }
    }

    #[test]
    fn bar_chart_is_wellformed_svg() {
        let svg = bar().render(640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 2 categories x 2 series = 4 bars + legend swatches (2).
        assert_eq!(svg.matches("<rect").count(), 6);
        assert!(svg.contains("ScalFrag"));
        assert_eq!(svg.matches('<').count(), svg.matches('>').count());
    }

    #[test]
    fn bar_heights_scale_with_values() {
        let svg = bar().render(640, 400);
        // The tallest bar (155.5) should use (nearly) the full plot height.
        let heights: Vec<f64> = svg
            .split("height=\"")
            .skip(2) // skip svg + first non-bar
            .filter_map(|s| s.split('"').next()?.parse().ok())
            .collect();
        let max = heights.iter().copied().fold(0.0, f64::max);
        assert!(max > 200.0, "expected a tall bar, got {heights:?}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_series_rejected() {
        let mut b = bar();
        b.series[0].1.pop();
        let _ = b.render(400, 300);
    }

    #[test]
    fn heatmap_marks_the_maximum() {
        let hm = HeatMap {
            title: "fig4".into(),
            row_labels: vec!["32".into(), "64".into()],
            col_labels: vec!["32".into(), "64".into(), "128".into()],
            values: vec![1.0, 2.0, 3.0, 4.0, 9.0, 5.0],
        };
        let svg = hm.render(500, 300);
        assert_eq!(svg.matches("<rect").count(), 6);
        assert_eq!(svg.matches("#d62728").count(), 1, "exactly one max outline");
        assert!(svg.contains("64/64: 9.0"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = BarChart {
            title: "a<b & \"c\"".into(),
            y_label: "y".into(),
            categories: vec!["<cat>".into()],
            series: vec![("s".into(), vec![1.0])],
        }
        .render(300, 200);
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!svg.contains("<cat>"));
    }
}
