//! # scalfrag-bench
//!
//! Benchmark harnesses regenerating every table and figure of the ScalFrag
//! paper's evaluation (§V). One binary per exhibit:
//!
//! | Exhibit  | Binary                  | What it prints                          |
//! |----------|-------------------------|-----------------------------------------|
//! | Table II | `table2`                | simulated hardware specification        |
//! | Table III| `table3`                | dataset inventory (original + scaled)   |
//! | Fig. 4   | `fig4_heatmap`          | GFLOPs heatmaps over grid × block       |
//! | Fig. 5   | `fig5_breakdown`        | H2D / kernel / D2H time breakdown       |
//! | Fig. 9   | `fig9_kernel`           | kernel GFLOPs, ScalFrag vs ParTI        |
//! | Fig. 10  | `fig10_e2e`             | end-to-end time, ScalFrag vs ParTI      |
//! | Fig. 11  | `fig11_segments_streams`| segment/stream count sensitivity        |
//! | §IV-B    | `model_eval`            | model zoo MAPE / train / infer times    |
//! | Fig. 12  | `fig12_multi_gpu`       | multi-GPU scaling + scheduling (ext.)   |
//!
//! Criterion benches (`cargo bench`) measure the wall-clock hot paths of
//! the implementation itself (kernels, models, tensor ops, scheduling).

pub mod svg;

use scalfrag_kernels::FactorSet;
use scalfrag_tensor::{frostt, CooTensor};

/// The CPD rank every harness uses (the paper's kernels run at a small
/// fixed rank; 16 is the conventional choice in the MTTKRP literature).
pub const RANK: usize = 16;

/// Down-scaling divisor applied to the FROSTT presets so the whole suite
/// regenerates in minutes on a laptop. See `DatasetPreset::materialize`.
pub const SCALE: u64 = 64;

/// Minimum scaled nnz. Below this, fixed per-operation costs (PCIe
/// latency, kernel launch) dominate in a way they never do at paper scale,
/// so the smallest datasets get a gentler divisor than [`SCALE`].
pub const MIN_SCALED_NNZ: u64 = 250_000;

/// The scale divisor actually applied to one preset.
pub fn effective_scale(p: &frostt::DatasetPreset) -> u64 {
    (p.nnz / MIN_SCALED_NNZ).clamp(1, SCALE)
}

/// Materialises the full ten-dataset suite of Table III.
pub fn scaled_suite() -> Vec<(String, CooTensor)> {
    frostt::all_presets()
        .into_iter()
        .map(|p| {
            let s = effective_scale(&p);
            (p.name.to_string(), p.materialize(s))
        })
        .collect()
}

/// Materialises the fast four-dataset subset.
pub fn scaled_small_suite() -> Vec<(String, CooTensor)> {
    frostt::small_suite()
        .into_iter()
        .map(|p| {
            let s = effective_scale(&p);
            (p.name.to_string(), p.materialize(s))
        })
        .collect()
}

/// Deterministic rank-[`RANK`] factors for a tensor.
pub fn factors_for(tensor: &CooTensor) -> FactorSet {
    FactorSet::random(tensor.dims(), RANK, 0xFAC70)
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&mut out, &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Writes an SVG document under `results/` (created if needed), returning
/// the path written. Harness binaries call this so every figure also
/// exists as an image.
pub fn write_svg(name: &str, svg: &str) -> std::io::Result<String> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.svg");
    std::fs::write(&path, svg)?;
    Ok(path)
}

/// Formats seconds adaptively (`µs` / `ms` / `s`).
pub fn fmt_time(seconds: f64) -> String {
    let seconds = seconds + 0.0; // normalise -0.0 so it never prints a sign
    if seconds < 1e-3 {
        format!("{:.1}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_materialises() {
        let suite = scaled_small_suite();
        assert_eq!(suite.len(), 4);
        for (name, t) in &suite {
            assert!(t.nnz() >= 64, "{name} too small");
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn table_rendering_aligns() {
        let s = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "22".into()]],
        );
        assert!(s.contains("long-name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(5e-6), "5.0µs");
        assert_eq!(fmt_time(0.0123), "12.300ms");
        assert_eq!(fmt_time(2.5), "2.500s");
    }
}
