//! Fig. 10 — end-to-end MTTKRP performance: ScalFrag vs ParTI.
//!
//! Measures the full transfer + compute + return path: ParTI synchronous
//! vs ScalFrag's segmented pipeline (adaptive launch + tiled kernel +
//! stream overlap). Paper claims to check: 1.3×–2.0× speedups, largest on
//! the small tensors (vast ≈ 2.0×) and still ≥ 1.3× when the transfer
//! cannot be fully hidden (flickr-3d).
//!
//! Pass `--ablate` to add a pipeline-off column (kernel improvements only).
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin fig10_e2e`.

use scalfrag_bench::{factors_for, fmt_time, render_table, scaled_suite};
use scalfrag_core::{Parti, ScalFrag};

fn main() {
    let ablate = std::env::args().any(|a| a == "--ablate");
    println!("Fig. 10: end-to-end MTTKRP performance, ScalFrag vs ParTI\n");

    let parti = Parti::rtx3090();
    let scal = ScalFrag::builder().build();
    let no_pipeline = ScalFrag::builder().pipelined(false).build();

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut cats = Vec::new();
    let mut parti_ms = Vec::new();
    let mut scal_ms = Vec::new();
    for (name, tensor) in scaled_suite() {
        let factors = factors_for(&tensor);
        let r_parti = parti.mttkrp_dry(&tensor, &factors, 0);
        let r_scal = scal.mttkrp_dry(&tensor, &factors, 0);
        let speedup = r_parti.timing.total_s / r_scal.timing.total_s;
        speedups.push((name.clone(), speedup, tensor.nnz()));
        cats.push(name.clone());
        parti_ms.push(r_parti.timing.total_s * 1e3);
        scal_ms.push(r_scal.timing.total_s * 1e3);

        let mut row = vec![
            name,
            tensor.nnz().to_string(),
            fmt_time(r_parti.timing.total_s),
            fmt_time(r_scal.timing.total_s),
            format!("{speedup:.2}x"),
            format!("{}", r_scal.segments),
            format!("{}", r_scal.streams),
            format!("{:.0}%", r_scal.overlap_ratio * 100.0),
        ];
        if ablate {
            let r_np = no_pipeline.mttkrp_dry(&tensor, &factors, 0);
            row.push(format!("{:.2}x", r_parti.timing.total_s / r_np.timing.total_s));
        }
        rows.push(row);
    }

    let mut headers =
        vec!["Tensor", "nnz", "ParTI e2e", "ScalFrag e2e", "Speedup", "Segs", "Streams", "Overlap"];
    if ablate {
        headers.push("NoPipe");
    }
    println!("{}", render_table(&headers, &rows));

    let chart = scalfrag_bench::svg::BarChart {
        title: "Fig. 10: end-to-end MTTKRP time (ms, lower is better)".into(),
        y_label: "ms".into(),
        categories: cats,
        series: vec![("ParTI".into(), parti_ms), ("ScalFrag".into(), scal_ms)],
    };
    if let Ok(path) = scalfrag_bench::write_svg("fig10_e2e", &chart.render(860, 420)) {
        println!("(SVG written to {path})");
    }

    let min = speedups.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
    let max = speedups.iter().map(|s| s.1).fold(0.0f64, f64::max);
    println!("Speedup range: {min:.2}x – {max:.2}x  (paper: 1.3x – 2.0x)");

    let mut by_size = speedups.clone();
    by_size.sort_by_key(|s| s.2);
    println!(
        "Smallest tensor ({}) speedup {:.2}x; largest ({}) {:.2}x (paper: small tensors overlap best)",
        by_size[0].0,
        by_size[0].1,
        by_size.last().unwrap().0,
        by_size.last().unwrap().1
    );
}
