//! Sparse-format / kernel-strategy comparison across the dataset suite:
//! the COO-family (plain atomic, F-COO segmented-reduction, HiCOO
//! blocked, ScalFrag tiled) versus the tree-family (CSF fiber-parallel),
//! in simulated kernel time and in storage footprint — the §II-D design
//! space that format-selection work like SpTFS (cited in §VI-A) searches.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin format_compare`.

use scalfrag_bench::{render_table, scaled_suite, RANK};
use scalfrag_gpusim::{kernel_duration, DeviceSpec, LaunchConfig};
use scalfrag_kernels::workload::{coo_atomic_workload, tiled_smem_bytes, tiled_workload};
use scalfrag_kernels::{CsfFiberKernel, FCooKernel, HiCooKernel, SegmentStats};
use scalfrag_tensor::{CsfTensor, FCooTensor, HiCooTensor};

fn main() {
    let device = DeviceSpec::rtx3090();
    let cfg = LaunchConfig::new(4096, 256);
    println!("Format/kernel comparison (simulated kernel time, rank {RANK}, mode 0)\n");

    let mut time_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for (name, tensor) in scaled_suite() {
        let stats = SegmentStats::compute(&tensor, 0);
        let t_coo = kernel_duration(&device, &cfg, &coo_atomic_workload(&stats, RANK as u32)).total;
        let tiled_cfg = LaunchConfig::with_shared(
            cfg.grid,
            cfg.block,
            tiled_smem_bytes(RANK as u32, cfg.block),
        );
        let t_tiled =
            kernel_duration(&device, &tiled_cfg, &tiled_workload(&stats, RANK as u32, cfg.block))
                .total;

        let fcoo = FCooTensor::from_coo(&tensor, 0, 1024);
        let t_fcoo = kernel_duration(
            &device,
            &cfg,
            &FCooKernel::workload(&stats, RANK as u32, fcoo.num_partitions() as u64),
        )
        .total;

        let hicoo = HiCooTensor::from_coo(&tensor, 4);
        let t_hicoo = kernel_duration(
            &device,
            &cfg,
            &HiCooKernel::workload(&stats, RANK as u32, hicoo.avg_nnz_per_block(), 16),
        )
        .total;

        let csf = CsfTensor::from_coo(&tensor, 0);
        let t_csf = kernel_duration(
            &device,
            &cfg,
            &CsfFiberKernel::workload(&stats, RANK as u32, csf.num_slices() as u64),
        )
        .total;

        let best =
            [t_coo, t_fcoo, t_hicoo, t_tiled, t_csf].into_iter().fold(f64::INFINITY, f64::min);
        let mark = |t: f64| {
            if (t - best).abs() < 1e-12 {
                format!("{:.1}µs *", t * 1e6)
            } else {
                format!("{:.1}µs", t * 1e6)
            }
        };
        time_rows.push(vec![
            name.clone(),
            mark(t_coo),
            mark(t_fcoo),
            mark(t_hicoo),
            mark(t_tiled),
            mark(t_csf),
        ]);

        let mb = |b: usize| format!("{:.2}MB", b as f64 / 1e6);
        mem_rows.push(vec![
            name,
            mb(tensor.byte_size()),
            mb(fcoo.byte_size()),
            mb(hicoo.byte_size()),
            mb(csf.byte_size()),
        ]);
    }

    println!("Simulated kernel time (* = fastest):");
    println!(
        "{}",
        render_table(
            &["Tensor", "COO-atomic", "F-COO", "HiCOO", "ScalFrag-tiled", "CSF-fiber"],
            &time_rows
        )
    );
    println!("Storage footprint:");
    println!("{}", render_table(&["Tensor", "COO", "F-COO", "HiCOO", "CSF"], &mem_rows));
    println!("Expected shape: the tiled kernel leads on skewed tensors (atomic");
    println!("relief); CSF/F-COO win when slices are long and balanced; HiCOO");
    println!("compresses the clustered tensors (enron) best.");
}
