//! Fig. 4 — GFLOPs of the MTTKRP kernel under different launch settings.
//!
//! For four representative tensors, sweeps the `gridSize × blockSize`
//! space and prints a text heatmap of achieved GFLOP/s (mode-0 MTTKRP,
//! plain COO kernel, as in the motivation section). The paper's claims to
//! check: performance is poor at small settings, improves, then declines
//! past a tensor-dependent optimum; and the optimum location differs
//! between tensors.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin fig4_heatmap`.

use scalfrag_autotune::sweep::{sweep_tensor, KernelFlavor};
use scalfrag_bench::{scaled_small_suite, RANK};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};

fn main() {
    let device = DeviceSpec::rtx3090();
    let space = LaunchConfig::sweep_space(&device);
    let grids: Vec<u32> = {
        let mut g: Vec<u32> = space.iter().map(|c| c.grid).collect();
        g.sort_unstable();
        g.dedup();
        g
    };
    let blocks: Vec<u32> = {
        let mut b: Vec<u32> = space.iter().map(|c| c.block).collect();
        b.sort_unstable();
        b.dedup();
        b
    };

    println!("Fig. 4: GFLOPs of the MTTKRP kernel with different launch settings");
    println!("(simulated RTX 3090, rank {RANK}, mode-0, COO atomic kernel)\n");

    // The paper's four panels span a wide size range (3 M – 77 M nnz);
    // two smaller synthetic tensors restore that spread at laptop scale so
    // the tensor-dependence of the optimum is visible.
    let mut panels = scaled_small_suite();
    panels.push((
        "synthetic-20K".to_string(),
        scalfrag_tensor::gen::uniform(&[400, 300, 200], 20_000, 4),
    ));
    panels.push((
        "synthetic-skewed-80K".to_string(),
        scalfrag_tensor::gen::zipf_slices(&[200, 800, 600], 80_000, 1.1, 5),
    ));

    for (name, tensor) in panels {
        let sweep = sweep_tensor(&device, KernelFlavor::CooAtomic, &tensor, 0, RANK as u32, &space);
        let lookup = |g: u32, b: u32| -> f64 {
            sweep
                .entries
                .iter()
                .find(|(c, _)| c.grid == g && c.block == b)
                .map(|&(_, t)| sweep.gflops_at(t))
                .unwrap_or(0.0)
        };
        let (best_cfg, best_t) = sweep.best();
        println!(
            "## {name}  ({} nnz, order {})  best {} at {:.1} GFLOP/s",
            tensor.nnz(),
            tensor.order(),
            best_cfg,
            sweep.gflops_at(best_t)
        );
        print!("{:>9} |", "grid\\blk");
        for &b in &blocks {
            print!("{b:>8}");
        }
        println!();
        println!("{}", "-".repeat(11 + 8 * blocks.len()));
        for &g in &grids {
            print!("{g:>9} |");
            for &b in &blocks {
                print!("{:>8.1}", lookup(g, b));
            }
            println!();
        }
        println!();

        let hm = scalfrag_bench::svg::HeatMap {
            title: format!("Fig. 4 panel: {name} (GFLOP/s, grid x block)"),
            row_labels: grids.iter().map(|g| g.to_string()).collect(),
            col_labels: blocks.iter().map(|b| b.to_string()).collect(),
            values: grids
                .iter()
                .flat_map(|&g| blocks.iter().map(move |&b| (g, b)))
                .map(|(g, b)| lookup(g, b))
                .collect(),
        };
        let _ = scalfrag_bench::write_svg(&format!("fig4_{name}"), &hm.render(680, 560));
    }
    println!("(per-panel SVG heatmaps written to results/fig4_<tensor>.svg)");

    println!("Expected shape (paper): low GFLOPs at small grid/block, a plateau,");
    println!("then decline at the largest grids for small tensors; the optimum");
    println!("cell differs per tensor.");
}
