//! Fig. 5 — time breakdown of (synchronous, ParTI-style) MTTKRP
//! processing: H2D transfer vs kernel vs D2H per dataset.
//!
//! The paper's claim to check: "transferring data from the host to the
//! device (H2D) takes a lot of time … the vast majority of the time",
//! kernel and D2H being much smaller.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin fig5_breakdown`.

use scalfrag_bench::{factors_for, fmt_time, render_table, scaled_suite};
use scalfrag_core::Parti;

fn main() {
    println!("Fig. 5: time breakdown of MTTKRP processing (synchronous schedule)\n");
    let parti = Parti::rtx3090();
    let mut rows = Vec::new();
    for (name, tensor) in scaled_suite() {
        let factors = factors_for(&tensor);
        let r = parti.mttkrp_dry(&tensor, &factors, 0);
        let total = r.timing.h2d_s + r.timing.kernel_s + r.timing.d2h_s;
        rows.push(vec![
            name,
            fmt_time(r.timing.h2d_s),
            fmt_time(r.timing.kernel_s),
            fmt_time(r.timing.d2h_s),
            format!("{:.0}%", 100.0 * r.timing.h2d_s / total),
            format!("{:.0}%", 100.0 * r.timing.kernel_s / total),
            format!("{:.0}%", 100.0 * r.timing.d2h_s / total),
        ]);
    }
    println!(
        "{}",
        render_table(&["Tensor", "H2D", "Kernel", "D2H", "H2D%", "Kernel%", "D2H%"], &rows)
    );
    println!("Expected shape (paper): H2D dominates the end-to-end time on every");
    println!("tensor, kernel second, D2H smallest — which motivates pipelining.");
}
