//! Plan-optimizer bench: every registered builder, raw vs optimized,
//! written to `results/BENCH_opt.json`.
//!
//! Per builder over the seeded bench tensor:
//!
//! * **op budget** — lowered op count raw vs default-optimized (the
//!   coalescer and dead-op eliminator only remove or merge ops);
//! * **modelled time** — dry-run makespan raw, under the default
//!   pipeline, and under the cost-model orderer's chosen pipeline
//!   (which may pick the cross-stream batcher where it wins);
//! * **peak memory** — raw vs chosen (the passes must never grow it on
//!   these plans);
//! * **bit identity** — the chosen plan's functional output compared
//!   bit-for-bit against the raw plan's.
//!
//! `opt_bench --smoke` (CI) asserts the acceptance gate: a nonzero
//! op-count reduction with bit-identical output on the pipelined
//! builder, and a modelled-time speedup > 1 on both the pipelined and
//! the out-of-core streaming builders.

use scalfrag_conformance::all_plan_builders;
use scalfrag_exec::{run_plan, ExecMode, Plan};
use scalfrag_kernels::FactorSet;
use scalfrag_opt::{choose_pipeline, optimize_default};
use scalfrag_tensor::gen;

struct Row {
    builder: &'static str,
    raw_ops: usize,
    opt_ops: usize,
    raw_s: f64,
    default_s: f64,
    chosen_s: f64,
    chosen_pipeline: &'static str,
    raw_peak: u64,
    chosen_peak: u64,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.raw_s / self.chosen_s
    }
}

fn bits(plan: &Plan) -> Vec<u32> {
    run_plan(plan, ExecMode::Functional).output.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn peak(plan: &Plan) -> u64 {
    run_plan(plan, ExecMode::Dry).mem.iter().map(|m| m.peak_bytes).max().unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    println!("seed tensor: {:?}, {} nnz, rank {}\n", tensor.dims(), tensor.nnz(), factors.rank());

    let mut rows = Vec::new();
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>12} {:>8}  {:<8} bit-id",
        "builder", "ops", "raw s", "default s", "chosen s", "speedup", "pipeline"
    );
    for b in all_plan_builders() {
        let plan = (b.build)(&tensor, &factors, 0);
        let default = optimize_default(&plan);
        let choice = choose_pipeline(&plan);
        let chosen = choice.pipeline.apply(&plan);
        let row = Row {
            builder: b.name,
            raw_ops: plan.total_ops(),
            opt_ops: default.total_ops(),
            raw_s: choice.raw_s,
            default_s: run_plan(&default, ExecMode::Dry).makespan(),
            chosen_s: choice.est_s,
            chosen_pipeline: choice.pipeline.name(),
            raw_peak: peak(&plan),
            chosen_peak: peak(&chosen),
            bit_identical: bits(&plan) == bits(&chosen),
        };
        println!(
            "{:<22} {:>4}→{:<4} {:>12.6e} {:>12.6e} {:>12.6e} {:>7.3}x  {:<8} {}",
            row.builder,
            row.raw_ops,
            row.opt_ops,
            row.raw_s,
            row.default_s,
            row.chosen_s,
            row.speedup(),
            row.chosen_pipeline,
            if row.bit_identical { "yes" } else { "NO" }
        );
        rows.push(row);
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"tensor\": {{\"dims\": [{}, {}, {}], \"nnz\": {}, \"rank\": {}}},\n",
        dims[0],
        dims[1],
        dims[2],
        tensor.nnz(),
        factors.rank()
    ));
    json.push_str("  \"builders\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"builder\": \"{}\", \"raw_ops\": {}, \"opt_ops\": {}, \"op_reduction\": {}, \
             \"raw_s\": {:.9e}, \"default_s\": {:.9e}, \"chosen_s\": {:.9e}, \
             \"chosen_pipeline\": \"{}\", \"speedup\": {:.4}, \"raw_peak_bytes\": {}, \
             \"chosen_peak_bytes\": {}, \"bit_identical\": {}}}{}\n",
            r.builder,
            r.raw_ops,
            r.opt_ops,
            r.raw_ops - r.opt_ops,
            r.raw_s,
            r.default_s,
            r.chosen_s,
            r.chosen_pipeline,
            r.speedup(),
            r.raw_peak,
            r.chosen_peak,
            r.bit_identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_opt.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");

    // The acceptance gate, asserted in smoke and full runs alike.
    let mut ok = true;
    let mut gate = |cond: bool, what: &str| {
        if !cond {
            println!("opt_bench: FAIL — {what}");
            ok = false;
        }
    };
    for r in &rows {
        gate(r.bit_identical, &format!("{}: chosen plan output not bit-identical", r.builder));
        gate(
            r.opt_ops <= r.raw_ops,
            &format!("{}: the default pipeline grew the op count", r.builder),
        );
        gate(
            r.chosen_s <= r.raw_s,
            &format!("{}: the orderer chose a slower schedule than raw", r.builder),
        );
    }
    let by_name = |name: &str| rows.iter().find(|r| r.builder == name).expect("builder present");
    let pipelined = by_name("scalfrag-pipelined");
    gate(pipelined.raw_ops > pipelined.opt_ops, "pipelined: no op-count reduction");
    gate(pipelined.speedup() > 1.0, "pipelined: no modelled speedup");
    let oom = by_name("oom-stream");
    gate(oom.speedup() > 1.0, "oom-stream: no modelled speedup");

    if ok {
        println!(
            "opt_bench: PASS (op reduction on pipelined, speedup on pipelined + oom-stream, all \
             bit-identical){}",
            if smoke { " [smoke]" } else { "" }
        );
    } else {
        std::process::exit(1);
    }
}
