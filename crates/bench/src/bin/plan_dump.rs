//! ScheduleIR plan inspector: lowers every registered plan builder over a
//! seeded tensor — the core sync/pipelined/multi-stream paths, the
//! streamer, and the two balance arms (`balance-segscan`,
//! `balance-flycoo`) — interprets the plans dry — raw and through the
//! default optimizer pipeline — and prints the typed IR dump plus the
//! structured trace each path scheduled.
//!
//! Two depths:
//!
//! * `plan_dump --smoke` (CI) — builds and dry-runs every builder twice,
//!   raw and optimized, asserting each trace is non-empty and its
//!   fingerprint is stable within the process; prints the
//!   one-line-per-builder digest table with raw→optimized op count,
//!   modelled time and peak-memory columns.
//! * `plan_dump` (full) — additionally prints each plan's IR dump (the
//!   optimized dump names its passes in the `optimizer:` line) and the
//!   full op-by-op trace table.
//!
//! The process exits nonzero when a trace is empty or unstable, so the
//! smoke invocation is a CI gate as-is.

use scalfrag_conformance::all_plan_builders;
use scalfrag_exec::{run_plan, ExecMode};
use scalfrag_kernels::FactorSet;
use scalfrag_opt::optimize_default;
use scalfrag_tensor::gen;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dims = [80u32, 56, 40];
    let tensor = gen::zipf_slices(&dims, 6_000, 1.1, 61);
    let factors = FactorSet::random(&dims, 8, 62);
    println!("seed tensor: {:?}, {} nnz, rank {}\n", tensor.dims(), tensor.nnz(), factors.rank());

    let mut ok = true;
    println!(
        "{:<22} {:>9} {:>22} {:>21} {:>7} {:>18}  stable",
        "builder", "ops", "est s (raw->opt)", "peak mem B", "evict", "trace fingerprint"
    );
    for b in all_plan_builders() {
        let plan = (b.build)(&tensor, &factors, 0);
        let opt_plan = optimize_default(&plan);
        let a = run_plan(&plan, ExecMode::Dry);
        let again = run_plan(&plan, ExecMode::Dry);
        let o = run_plan(&opt_plan, ExecMode::Dry);
        let o_again = run_plan(&opt_plan, ExecMode::Dry);
        let stable = a.trace.fingerprint() == again.trace.fingerprint()
            && o.trace.fingerprint() == o_again.trace.fingerprint();
        let nonempty = !a.trace.is_empty() && !o.trace.is_empty();
        ok &= stable && nonempty;
        let peak =
            |m: &scalfrag_exec::ExecOutcome| m.mem.iter().map(|m| m.peak_bytes).max().unwrap_or(0);
        let evictions: u64 = a.mem.iter().map(|m| m.evictions).sum();
        println!(
            "{:<22} {:>4}→{:<4} {:>10.4e}→{:<10.4e} {:>10}→{:<10} {:>7} 0x{:016x}  {}",
            b.name,
            plan.total_ops(),
            opt_plan.total_ops(),
            a.makespan(),
            o.makespan(),
            peak(&a),
            peak(&o),
            evictions,
            a.trace.fingerprint(),
            if !nonempty {
                "EMPTY"
            } else if stable {
                "yes"
            } else {
                "NO"
            }
        );
        if !smoke {
            println!("\n-- {} IR (raw) --\n{}", b.name, plan.render());
            println!("-- {} IR (optimized) --\n{}", b.name, opt_plan.render());
            println!("-- {} trace (raw) --\n{}", b.name, a.trace.render());
            println!("-- {} trace (optimized) --\n{}", b.name, o.trace.render());
        }
    }

    if ok {
        println!(
            "\nplan_dump: PASS (every builder lowered raw + optimized, non-empty stable traces)"
        );
    } else {
        println!("\nplan_dump: FAIL");
        std::process::exit(1);
    }
}
