//! Out-of-core streaming bench: the ~1B-nnz synthetic preset executed
//! under device-memory budgets far below its footprint.
//!
//! Three measurements, all written to `results/BENCH_oom_stream.json`:
//!
//! * **peak-memory vs budget curve** — the virtual 1B-nnz plan dry-run at
//!   budgets of footprint/{16, 8, 4, 2, 1} (smoke: /8 only), recording
//!   segments, evictions, peak live bytes and simulated staging GB/s
//!   (bytes staged through `Prefetch`/`H2D` over the simulated makespan);
//! * **plans/sec** — wall-clock throughput of `build_streaming_plan` over
//!   the materialised scaled preset (the serving layer's planning ceiling
//!   for streaming jobs);
//! * **oracle conformance** — the scaled preset run *functionally*
//!   through the streaming path at footprint/8, checked ULP-clean against
//!   the `f64` oracle and bitwise identical to a footprint/4 run.
//!
//! `oom_stream --smoke` (CI) additionally asserts the acceptance gate:
//! the 1B-nnz preset completes under a budget ≥8× smaller than its
//! footprint with a bit-stable trace fingerprint and evictions actually
//! occurring.

use scalfrag_conformance::{max_ulp, oracle_mttkrp, tolerance_for};
use scalfrag_exec::{run_plan, ExecMode, KernelChoice};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_oom::{build_streaming_plan, SyntheticPreset};

struct CurvePoint {
    divisor: u64,
    budget: u64,
    segments: usize,
    evictions: u64,
    peak_bytes: u64,
    staged_bytes: u64,
    makespan_s: f64,
}

impl CurvePoint {
    fn staged_gbps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.staged_bytes as f64 / self.makespan_s / 1e9
    }
}

/// Dry-runs the virtual 1B-nnz plan at one budget, asserting trace
/// stability and the budget being physically respected.
fn sweep_point(preset: &SyntheticPreset, divisor: u64) -> CurvePoint {
    let budget = preset.footprint_bytes() / divisor;
    let plan = preset
        .virtual_plan(budget)
        .unwrap_or_else(|e| panic!("{}: budget footprint/{divisor} infeasible: {e}", preset.name));
    let a = run_plan(&plan, ExecMode::Dry);
    let b = run_plan(&plan, ExecMode::Dry);
    assert_eq!(
        a.trace.fingerprint(),
        b.trace.fingerprint(),
        "virtual streaming plan must be bit-stable across dry runs"
    );
    let mem = a.mem[0];
    assert!(
        mem.peak_bytes <= budget,
        "peak live bytes {} exceed the {budget} B budget",
        mem.peak_bytes
    );
    CurvePoint {
        divisor,
        budget,
        segments: plan.seg_lists[0].len(),
        evictions: mem.evictions,
        peak_bytes: mem.peak_bytes,
        staged_bytes: mem.staged_bytes,
        makespan_s: a.timeline.makespan(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let preset = SyntheticPreset::billion();
    let footprint = preset.footprint_bytes();
    println!(
        "preset {}: dims {:?}, {} nnz, rank {}, footprint {:.2} GB\n",
        preset.name,
        preset.dims,
        preset.nnz,
        preset.rank,
        footprint as f64 / 1e9
    );

    // Peak-memory vs budget curve over the virtual 1B-nnz plan.
    let divisors: &[u64] = if smoke { &[8] } else { &[16, 8, 4, 2, 1] };
    println!(
        "{:>10} {:>12} {:>9} {:>9} {:>12} {:>12} {:>9}",
        "budget", "bytes", "segments", "evicted", "peak B", "staged GB", "GB/s"
    );
    let mut curve = Vec::new();
    for &d in divisors {
        let p = sweep_point(&preset, d);
        println!(
            "{:>10} {:>12} {:>9} {:>9} {:>12} {:>12.2} {:>9.1}",
            format!("1/{d}"),
            p.budget,
            p.segments,
            p.evictions,
            p.peak_bytes,
            p.staged_bytes as f64 / 1e9,
            p.staged_gbps()
        );
        curve.push(p);
    }
    let gate = &curve[0];
    assert!(footprint / gate.budget >= 8 || !smoke, "smoke gate runs at footprint/8");
    assert!(gate.evictions > 0, "a budget 8x under footprint must evict");

    // Planning throughput over the materialised scaled preset.
    let scaled = SyntheticPreset::scaled();
    let tensor = scaled.materialize();
    let factors = FactorSet::random(&scaled.dims, scaled.rank, 72);
    let spec = DeviceSpec::rtx3090();
    let cfg = LaunchConfig::new(512, 256);
    let plan_budget = scaled.footprint_bytes() / 8;
    let iters = if smoke { 10 } else { 100 };
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        let plan = build_streaming_plan(
            &spec,
            &tensor,
            &factors,
            0,
            plan_budget,
            cfg,
            KernelChoice::Tiled,
        )
        .expect("scaled preset streams at footprint/8");
        std::hint::black_box(plan);
    }
    let plans_per_s = iters as f64 / t0.elapsed().as_secs_f64();
    println!(
        "\nplanning: {plans_per_s:.0} streaming plans/sec ({} nnz, {iters} iters)",
        tensor.nnz()
    );

    // Functional conformance: the scaled preset streamed at footprint/8
    // must be bit-identical across repeated runs (the budget gate's
    // "bit-stable results") and ULP-clean vs the f64 oracle at every
    // budget — re-cutting segments reassociates the in-row accumulation,
    // so different budgets may differ in low bits but never in ULP terms.
    let run_at = |budget: u64| {
        let plan =
            build_streaming_plan(&spec, &tensor, &factors, 0, budget, cfg, KernelChoice::Tiled)
                .expect("scaled preset streams under every checked budget");
        run_plan(&plan, ExecMode::Functional).output
    };
    let tight = run_at(plan_budget);
    assert_eq!(
        tight.as_slice(),
        run_at(plan_budget).as_slice(),
        "the same budget must reproduce the output bit-for-bit"
    );
    let oracle = oracle_mttkrp(&tensor, &factors, 0);
    let tol = tolerance_for(&tensor, 0);
    let worst = max_ulp(oracle.as_slice(), tight.as_slice());
    assert!(
        worst.max_ulp <= tol,
        "streaming output diverges from the f64 oracle: {} ulp > {tol}",
        worst.max_ulp
    );
    let loose_worst = max_ulp(oracle.as_slice(), run_at(scaled.footprint_bytes() / 4).as_slice());
    assert!(
        loose_worst.max_ulp <= tol,
        "footprint/4 streaming output diverges from the f64 oracle: {} ulp > {tol}",
        loose_worst.max_ulp
    );
    println!("oracle: max {} ulp (budget {tol}) at footprint/8 — PASS", worst.max_ulp);

    // Perf-trajectory artifact.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"preset\": \"{}\",\n", preset.name));
    json.push_str(&format!("  \"nnz\": {},\n", preset.nnz));
    json.push_str(&format!("  \"footprint_bytes\": {footprint},\n"));
    json.push_str(&format!("  \"plans_per_sec\": {plans_per_s:.1},\n"));
    json.push_str(&format!("  \"oracle_max_ulp\": {},\n", worst.max_ulp));
    json.push_str("  \"budget_curve\": [\n");
    for (i, p) in curve.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"budget_divisor\": {}, \"budget_bytes\": {}, \"segments\": {}, \
             \"evictions\": {}, \"peak_bytes\": {}, \"staged_bytes\": {}, \
             \"simulated_staged_gbps\": {:.2}}}{}\n",
            p.divisor,
            p.budget,
            p.segments,
            p.evictions,
            p.peak_bytes,
            p.staged_bytes,
            p.staged_gbps(),
            if i + 1 < curve.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "results/BENCH_oom_stream.json";
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(path, json).expect("write bench json");
    println!("wrote {path}");

    println!(
        "\noom_stream: PASS (1B-nnz streamed at footprint/8, bit-stable, \
         {} evictions, peak {:.2} GB <= {:.2} GB budget)",
        gate.evictions,
        gate.peak_bytes as f64 / 1e9,
        gate.budget as f64 / 1e9
    );
}
