//! Conformance runner: differential kernel/path oracle + race-checker
//! self-test, with a one-line-per-backend PASS/FAIL table.
//!
//! Two depths:
//!
//! * `conformance --smoke` (CI) — the 6-case smoke corpus through every
//!   kernel format, a 2-case subset through every execution path, and the
//!   race-checker self-test (the plain-store COO mutant must be caught,
//!   every shipped kernel must trace clean).
//! * `conformance` (full) — the ≥20-case corpus through every kernel
//!   format and a 6-case subset through every execution path.
//!
//! The process exits nonzero on any FAIL, so either invocation is a CI
//! gate as-is.

use scalfrag_conformance::{
    corpus, kernel_backends, path_backends, race_self_test, run_differential, smoke_corpus,
    ConformanceReport, TensorCase,
};

const SEED: u64 = 0x5ca1_f4a6;

fn report_section(title: &str, report: &ConformanceReport) -> bool {
    println!("== {title} ({} cases) ==", report.cases);
    print!("{}", report.table());
    println!();
    report.all_pass()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut ok = true;

    // Race checker first: a broken checker would make clean kernel traces
    // below meaningless.
    match race_self_test() {
        Ok(()) => println!("race checker self-test: PASS (mutant caught, shipped kernels clean)\n"),
        Err(e) => {
            ok = false;
            println!("race checker self-test: FAIL — {e}\n");
        }
    }

    let cases = if smoke { smoke_corpus(SEED) } else { corpus(SEED) };
    let kernels = run_differential(&kernel_backends(), &cases, SEED);
    ok &= report_section("kernel formats vs oracle", &kernels);

    // Execution paths build whole facades per case — run them over a
    // structurally diverse subset.
    let path_cases: Vec<TensorCase> = if smoke {
        smoke_corpus(SEED).into_iter().take(2).collect()
    } else {
        corpus(SEED)
            .into_iter()
            .filter(|c| {
                matches!(c.name.as_str(), "zipf-s1.2" | "uniform-64x64x64-r8" | "dup-light")
                    || c.name.starts_with("fiber")
                    || c.name == "one-slice"
            })
            .collect()
    };
    let paths = run_differential(&path_backends(), &path_cases, SEED ^ 1);
    ok &= report_section("execution paths vs oracle", &paths);

    if ok {
        println!("conformance OK: every backend within ULP budget, race checker sound");
    } else {
        println!("conformance FAILED — see tables above");
        std::process::exit(1);
    }
}
