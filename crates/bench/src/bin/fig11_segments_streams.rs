//! Fig. 11 — MTTKRP performance under different segment and stream
//! settings.
//!
//! Two sweeps, as in the paper: the number of CUDA streams with segments
//! fixed at 4, and the number of segments with streams fixed at 4. Paper
//! claims to check: the settings matter but the differences are modest,
//! with a broad optimum (neither 1 nor the maximum is best).
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin fig11_segments_streams`.

use scalfrag_bench::{factors_for, fmt_time, render_table, scaled_suite};
use scalfrag_core::ScalFrag;

fn main() {
    println!("Fig. 11: MTTKRP performance with different segment/stream settings\n");
    let counts = [1usize, 2, 4, 8, 16];

    // The paper plots one dataset per panel; we sweep a representative
    // subset (one small, one medium, one large).
    let chosen = ["uber", "nell-2", "flickr-3d"];
    let suite: Vec<_> =
        scaled_suite().into_iter().filter(|(n, _)| chosen.contains(&n.as_str())).collect();

    println!("-- streams sweep (segments fixed at 4) --");
    let mut rows = Vec::new();
    for (name, tensor) in &suite {
        let factors = factors_for(tensor);
        let mut row = vec![name.clone()];
        for &streams in &counts {
            let ctx = ScalFrag::builder()
                .fixed_config(scalfrag_gpusim::LaunchConfig::new(4096, 256))
                .segments(4)
                .streams(streams)
                .build();
            let r = ctx.mttkrp_dry(tensor, &factors, 0);
            row.push(fmt_time(r.timing.total_s));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Tensor".to_string())
        .chain(counts.iter().map(|c| format!("{c} stream(s)")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));

    println!("-- segments sweep (streams fixed at 4) --");
    let mut rows = Vec::new();
    for (name, tensor) in &suite {
        let factors = factors_for(tensor);
        let mut row = vec![name.clone()];
        for &segments in &counts {
            let ctx = ScalFrag::builder()
                .fixed_config(scalfrag_gpusim::LaunchConfig::new(4096, 256))
                .segments(segments)
                .streams(4.min(segments))
                .build();
            let r = ctx.mttkrp_dry(tensor, &factors, 0);
            row.push(fmt_time(r.timing.total_s));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Tensor".to_string())
        .chain(counts.iter().map(|c| format!("{c} segment(s)")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&headers_ref, &rows));

    println!("Expected shape (paper): 1 segment/stream is worst (no overlap); the");
    println!("curve flattens around 4 and can tick back up at 16 (per-transfer");
    println!("latency), so the differences among 2–16 stay modest.");
}
