//! Serving-layer load test: an open-loop, bursty, multi-tenant MTTKRP
//! request stream against the `scalfrag-serve` scheduler, in six runs:
//!
//! 1. **Steady state** (~60 % utilisation) — headline throughput, latency
//!    percentiles and plan-cache hit rate on a skewed 200-job workload.
//! 2. **Cache-off ablation** — the identical stream with plan caching
//!    disabled; the total planning time ratio is the cache's payoff.
//! 3. **2× overload** — the arrival rate doubled past pool capacity;
//!    admission control must answer with typed rejections while the
//!    latency of admitted jobs stays bounded.
//! 4. **Batching A/B** — a factor-heavy burst (rank 64, small nnz, one
//!    shared factor set) served with `max_batch` 8 versus 1; fusing the
//!    group uploads the factors once, so throughput must rise ≥ 1.5×.
//! 5. **Snapshot warm start** — run 1's plan cache is serialized and
//!    restored into a fresh server; the same stream must then hit the
//!    cache ≥ 80 % (in fact: never miss).
//! 6. **Seeded load** — a 1,000,000-job stream (2,000 under `--smoke`)
//!    against an autoscaled pool with per-tenant rate limits and a batch
//!    window: p50/p99/p999, rejection rate and the batch-occupancy curve
//!    land in `results/BENCH_serve.json`.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin serve_load`
//! (the full 1M-job run takes minutes). CI runs `serve_load --smoke`,
//! which additionally asserts the acceptance thresholds (hit rate ≥ 80 %,
//! plan time ≥ 5× down, batching ≥ 1.5×, warm-start hit rate ≥ 80 %,
//! typed rejections with bounded p99 under overload, deterministic
//! replay of the load run).

use scalfrag_gpusim::DeviceSpec;
use scalfrag_kernels::FactorSet;
use scalfrag_serve::{
    synthesize, workload::mean_service_estimate_s, AdmissionPolicy, AutoscalePolicy, DevicePool,
    MttkrpJob, QosConfig, ScalFragServer, ServeReport, WorkloadSpec,
};
use scalfrag_tensor::CooTensor;
use std::sync::Arc;

const DEVICES: usize = 2;
const JOBS: usize = 200;
const BATCH_AB_JOBS: usize = 48;
const TRAIN_TIERS: [usize; 2] = [3_000, 12_000];

fn spec(seed: u64, mean_interarrival_s: f64) -> WorkloadSpec {
    WorkloadSpec {
        jobs: JOBS,
        tenants: 4,
        shape_classes: 12,
        variants_per_class: 3,
        skew: 1.0,
        mean_interarrival_s,
        burstiness: 3.0,
        rank: 16,
        base_nnz: 3_000,
        seed,
    }
}

fn server(pool: DevicePool, caching: bool, server0: Option<&ScalFragServer>) -> ScalFragServer {
    let mut b = ScalFragServer::builder()
        .pool(pool)
        .plan_caching(caching)
        .snapshot_cache(caching)
        .train_tiers(TRAIN_TIERS.to_vec())
        .admission(AdmissionPolicy { max_queue_depth: 32, makespan_budget_s: 0.05 });
    // Every run shares one trained predictor, so training cost never
    // skews the plan-time comparison.
    if let Some(s) = server0 {
        b = b.predictor(s.trained_predictor().clone());
    }
    b.build()
}

/// A factor-heavy burst: every job reads the *same* tensor under the
/// *same* rank-64 factor handle, all submitted at t = 0. The factor
/// matrices (~1 MB) dwarf the 600-nnz tensor payload, so a fused group
/// amortises the dominant transfer — the regime batching exists for.
fn batching_burst() -> Vec<MttkrpJob> {
    let dims = [1_600u32, 1_200, 900];
    let tensor = Arc::new(CooTensor::random_uniform(&dims, 600, 0xab5));
    let factors = Arc::new(FactorSet::random(&dims, 64, 0xfac7));
    (0..BATCH_AB_JOBS as u64)
        .map(|i| {
            let tenant = format!("tenant-{}", i % 2);
            MttkrpJob::new(i, &tenant, Arc::clone(&tensor), Arc::clone(&factors), 0).at(0.0)
        })
        .collect()
}

fn batching_server(max_batch: usize, server0: &ScalFragServer) -> ScalFragServer {
    ScalFragServer::builder()
        .device(DeviceSpec::rtx3090())
        .max_batch(max_batch)
        .admission(AdmissionPolicy { max_queue_depth: 4_096, makespan_budget_s: 100.0 })
        .predictor(server0.trained_predictor().clone())
        .build()
}

fn load_spec(jobs: usize, mean_interarrival_s: f64) -> WorkloadSpec {
    WorkloadSpec {
        jobs,
        tenants: 6,
        shape_classes: 12,
        variants_per_class: 3,
        skew: 1.0,
        mean_interarrival_s,
        burstiness: 3.0,
        rank: 16,
        base_nnz: 3_000,
        seed: 0x10ad,
    }
}

/// The load-run server: a 4-device pool that *starts* with two active
/// devices (the autoscaler attaches the rest under sustained backlog),
/// per-tenant token buckets, a batch window half an interarrival wide,
/// and snapshotting enabled so the cache state is part of the artifact.
fn load_server(gap: f64, server0: &ScalFragServer) -> ScalFragServer {
    ScalFragServer::builder()
        .pool(DevicePool::homogeneous(DeviceSpec::rtx3090(), 4))
        .max_batch(8)
        .batch_window_s(0.5 * gap)
        .qos(QosConfig {
            rate_jobs_per_s: Some(0.4 / gap),
            burst: 8.0,
            tenant_weights: vec![("tenant-0".into(), 2.0)],
        })
        .autoscale(AutoscalePolicy {
            min_devices: 2,
            high_watermark: 12,
            low_watermark: 2,
            sustain_s: 40.0 * gap,
            attach_delay_s: 10.0 * gap,
        })
        .admission(AdmissionPolicy { max_queue_depth: 64, makespan_budget_s: 0.05 })
        .predictor(server0.trained_predictor().clone())
        .build()
}

fn print_run(title: &str, report: &ServeReport) {
    println!("--- {title} ---");
    print!("{}", report.render());
    println!();
}

fn occupancy_json(report: &ServeReport) -> String {
    let buckets: Vec<String> = report
        .batch_occupancy_curve()
        .iter()
        .map(|(size, groups)| format!("[{size}, {groups}]"))
        .collect();
    format!("[{}]", buckets.join(", "))
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    steady: &ServeReport,
    plan_ratio: f64,
    overload: &ServeReport,
    solo: &ServeReport,
    batched: &ServeReport,
    batch_speedup: f64,
    warm: &ServeReport,
    load: &ServeReport,
    load_jobs: usize,
    smoke: bool,
) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"devices\": {DEVICES},\n  \"steady\": {{\"jobs\": {}, \"throughput_jobs_per_s\": \
         {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"hit_rate\": {:.4}}},\n",
        steady.completed.len(),
        steady.throughput_jobs_per_s(),
        steady.p50_latency_s() * 1e3,
        steady.p99_latency_s() * 1e3,
        steady.cache.hit_rate(),
    ));
    json.push_str(&format!("  \"plan_time_ratio\": {plan_ratio:.2},\n"));
    json.push_str(&format!(
        "  \"overload\": {{\"rejection_rate\": {:.4}, \"p99_ms\": {:.4}, \"peak_queue_depth\": \
         {}}},\n",
        overload.rejection_rate(),
        overload.p99_latency_s() * 1e3,
        overload.peak_queue_depth,
    ));
    json.push_str(&format!(
        "  \"batching\": {{\"jobs\": {BATCH_AB_JOBS}, \"solo_jobs_per_s\": {:.3}, \
         \"batched_jobs_per_s\": {:.3}, \"speedup\": {:.3}, \"mean_occupancy\": {:.3}, \
         \"occupancy_curve\": {}}},\n",
        solo.throughput_jobs_per_s(),
        batched.throughput_jobs_per_s(),
        batch_speedup,
        batched.mean_batch_occupancy(),
        occupancy_json(batched),
    ));
    json.push_str(&format!(
        "  \"warm_start\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n",
        warm.cache.hits,
        warm.cache.misses,
        warm.cache.hit_rate(),
    ));
    json.push_str(&format!(
        "  \"load\": {{\"jobs\": {load_jobs}, \"smoke\": {smoke}, \"completed\": {}, \
         \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \"rejection_rate\": {:.4}, \
         \"rate_limited\": {}, \"mean_occupancy\": {:.3}, \"dispatch_groups\": {}, \
         \"device_attaches\": {}, \"device_detaches\": {}, \"occupancy_curve\": {}, \
         \"fingerprint\": \"{:#018x}\"}}\n",
        load.completed.len(),
        load.p50_latency_s() * 1e3,
        load.p99_latency_s() * 1e3,
        load.p999_latency_s() * 1e3,
        load.rejection_rate(),
        load.rate_limited_rejections(),
        load.mean_batch_occupancy(),
        load.dispatch_groups,
        load.device_attaches,
        load.device_detaches,
        occupancy_json(load),
        load.fingerprint(),
    ));
    json.push_str("}\n");
    json
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let device = DeviceSpec::rtx3090();
    let pool = DevicePool::homogeneous(device.clone(), DEVICES);
    println!(
        "ScalFrag serving load test: {JOBS} jobs, 12 shape classes (zipf popularity), \
         4 tenants, {DEVICES}x {}\n",
        device.name
    );

    // Calibrate the arrival rate against the admission-time service
    // estimate: steady state at ~60 % utilisation, overload at 2x capacity.
    let probe = synthesize(&spec(7, 1.0));
    let mean_est = mean_service_estimate_s(&probe, &device);
    let steady_gap = mean_est / (0.6 * DEVICES as f64);
    let overload_gap = mean_est / (2.0 * DEVICES as f64);
    println!(
        "mean service estimate {:.3}ms -> interarrival {:.3}ms steady / {:.3}ms overload\n",
        mean_est * 1e3,
        steady_gap * 1e3,
        overload_gap * 1e3
    );

    let steady_jobs = synthesize(&spec(7, steady_gap));
    let srv = server(pool.clone(), true, None);
    let steady = srv.run(steady_jobs.clone());
    print_run("steady state (plan cache on)", &steady);

    let srv_nocache = server(pool.clone(), false, Some(&srv));
    let nocache = srv_nocache.run(steady_jobs.clone());
    print_run("cache-off ablation", &nocache);

    let srv_overload = server(pool, true, Some(&srv));
    let overload = srv_overload.run(synthesize(&spec(7, overload_gap)));
    print_run("2x overload", &overload);

    let plan_ratio = nocache.total_plan_s() / steady.total_plan_s().max(1e-12);
    println!("plan-time ratio (cache off / on): {plan_ratio:.1}x");
    println!(
        "overload: {} rejected ({:.0}%), p99 of admitted {:.3}ms (steady p99 {:.3}ms)",
        overload.rejected.len(),
        overload.rejection_rate() * 100.0,
        overload.p99_latency_s() * 1e3,
        steady.p99_latency_s() * 1e3,
    );

    // Batching A/B: the identical factor-heavy burst with fusion off
    // (max_batch 1) and on (max_batch 8).
    let solo = batching_server(1, &srv).run(batching_burst());
    print_run("batching off (max_batch 1)", &solo);
    let batched = batching_server(8, &srv).run(batching_burst());
    print_run("batching on (max_batch 8)", &batched);
    let batch_speedup = batched.throughput_jobs_per_s() / solo.throughput_jobs_per_s().max(1e-12);
    println!(
        "batching: {:.1} -> {:.1} jobs/s ({batch_speedup:.2}x), mean occupancy {:.2}\n",
        solo.throughput_jobs_per_s(),
        batched.throughput_jobs_per_s(),
        batched.mean_batch_occupancy(),
    );

    // Snapshot warm start: restore run 1's serialized cache into a fresh
    // server and replay the same stream — every lookup should hit.
    let snapshot = steady.cache_snapshot.clone().expect("steady server snapshots its cache");
    let warm_srv = ScalFragServer::builder()
        .pool(DevicePool::homogeneous(device.clone(), DEVICES))
        .train_tiers(TRAIN_TIERS.to_vec())
        .admission(AdmissionPolicy { max_queue_depth: 32, makespan_budget_s: 0.05 })
        .warm_snapshot(snapshot)
        .predictor(srv.trained_predictor().clone())
        .build();
    let warm = warm_srv.run(steady_jobs);
    println!(
        "warm start: {} hits / {} misses (hit rate {:.0}%)\n",
        warm.cache.hits,
        warm.cache.misses,
        warm.cache.hit_rate() * 100.0
    );

    // Seeded load run: 1M jobs (2k under --smoke) against the autoscaled,
    // rate-limited, batch-windowed pool at ~1.5x the initially-active
    // capacity, so the run shows rejections AND attaches.
    let load_jobs_n = if smoke { 2_000 } else { 1_000_000 };
    let load_gap = mean_est / (1.5 * 2.0);
    let load_jobs = synthesize(&load_spec(load_jobs_n, load_gap));
    let load = load_server(load_gap, &srv).run(load_jobs);
    print_run(&format!("seeded load ({load_jobs_n} jobs, autoscaled pool)"), &load);

    let json = write_bench_json(
        &steady,
        plan_ratio,
        &overload,
        &solo,
        &batched,
        batch_speedup,
        &warm,
        &load,
        load_jobs_n,
        smoke,
    );
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_serve.json";
    std::fs::write(path, json).expect("write bench json");
    println!("wrote {path}");

    if smoke {
        // Steady state: every job admitted, the skewed working set mostly
        // hits the cache, and caching pays >= 5x on planning time.
        assert!(steady.rejected.is_empty(), "steady state must admit everything");
        assert_eq!(steady.completed.len(), JOBS);
        assert!(steady.throughput_jobs_per_s() > 0.0);
        assert!(
            steady.cache.hit_rate() >= 0.80,
            "hit rate {:.3} below the 0.80 acceptance floor",
            steady.cache.hit_rate()
        );
        assert!(
            plan_ratio >= 5.0,
            "plan caching must cut total plan time >= 5x, got {plan_ratio:.2}x"
        );
        // Determinism: same seed + same stream -> identical report.
        let replay =
            server(DevicePool::homogeneous(DeviceSpec::rtx3090(), DEVICES), true, Some(&srv))
                .run(synthesize(&spec(7, steady_gap)));
        assert_eq!(replay.fingerprint(), steady.fingerprint(), "replay must be bit-identical");

        // Overload: typed rejections, bounded queue, bounded p99 of the
        // jobs that were admitted.
        assert!(!overload.rejected.is_empty(), "2x overload must produce rejections");
        assert!(overload.peak_queue_depth <= 32, "queue depth must respect the cap");
        for r in &overload.rejected {
            assert!(
                r.retry_after_s.is_finite() && r.retry_after_s > 0.0,
                "rejection must carry a usable retry hint: {r}"
            );
        }
        let budget = 0.05;
        let p99_cap = budget + 20.0 * mean_est;
        assert!(
            overload.p99_latency_s() <= p99_cap,
            "admitted p99 {:.4}s exceeds bound {:.4}s under overload",
            overload.p99_latency_s(),
            p99_cap
        );

        // Batching: the fused path must clear the 1.5x acceptance gate on
        // the factor-heavy burst, with no job lost in either arm.
        assert_eq!(solo.completed.len(), BATCH_AB_JOBS, "solo arm must complete the burst");
        assert_eq!(batched.completed.len(), BATCH_AB_JOBS, "batched arm must complete the burst");
        assert!(
            batch_speedup >= 1.5,
            "batched serving must deliver >= 1.5x throughput, got {batch_speedup:.2}x"
        );
        assert!(
            batched.mean_batch_occupancy() > 1.0,
            "the batched arm must actually fuse groups (mean occupancy {:.2})",
            batched.mean_batch_occupancy()
        );

        // Warm start: the restored snapshot must serve the stream >= 80 %
        // from cache (by construction it never misses).
        assert!(
            warm.cache.hit_rate() >= 0.80,
            "warm-start hit rate {:.3} below the 0.80 acceptance floor",
            warm.cache.hit_rate()
        );
        assert_eq!(warm.cache.misses, 0, "a snapshot of the same stream must never miss");

        // Load run: conservation, fused dispatch, deterministic replay.
        assert_eq!(load.completed.len() + load.rejected.len(), load_jobs_n, "no job lost silently");
        assert!(
            load.mean_batch_occupancy() > 1.0,
            "the load run must form batches (mean occupancy {:.2})",
            load.mean_batch_occupancy()
        );
        let load_replay =
            load_server(load_gap, &srv).run(synthesize(&load_spec(load_jobs_n, load_gap)));
        assert_eq!(
            load_replay.fingerprint(),
            load.fingerprint(),
            "load replay must be bit-identical"
        );
        println!("\nsmoke assertions passed.");
    }
}
