//! Serving-layer load test: an open-loop, bursty, multi-tenant MTTKRP
//! request stream against the `scalfrag-serve` scheduler, in three runs:
//!
//! 1. **Steady state** (~60 % utilisation) — headline throughput, latency
//!    percentiles and plan-cache hit rate on a skewed 200-job workload.
//! 2. **Cache-off ablation** — the identical stream with plan caching
//!    disabled; the total planning time ratio is the cache's payoff.
//! 3. **2× overload** — the arrival rate doubled past pool capacity;
//!    admission control must answer with typed rejections while the
//!    latency of admitted jobs stays bounded.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin serve_load`.
//! CI runs `serve_load --smoke`, which additionally asserts the acceptance
//! thresholds (hit rate ≥ 80 %, plan time ≥ 5× down, typed rejections with
//! bounded p99 under overload).

use scalfrag_gpusim::DeviceSpec;
use scalfrag_serve::{
    synthesize, workload::mean_service_estimate_s, AdmissionPolicy, DevicePool, ScalFragServer,
    ServeReport, WorkloadSpec,
};

const DEVICES: usize = 2;
const JOBS: usize = 200;
const TRAIN_TIERS: [usize; 2] = [3_000, 12_000];

fn spec(seed: u64, mean_interarrival_s: f64) -> WorkloadSpec {
    WorkloadSpec {
        jobs: JOBS,
        tenants: 4,
        shape_classes: 12,
        variants_per_class: 3,
        skew: 1.0,
        mean_interarrival_s,
        burstiness: 3.0,
        rank: 16,
        base_nnz: 3_000,
        seed,
    }
}

fn server(pool: DevicePool, caching: bool, server0: Option<&ScalFragServer>) -> ScalFragServer {
    let mut b = ScalFragServer::builder()
        .pool(pool)
        .plan_caching(caching)
        .train_tiers(TRAIN_TIERS.to_vec())
        .admission(AdmissionPolicy { max_queue_depth: 32, makespan_budget_s: 0.05 });
    // Every run shares one trained predictor, so training cost never
    // skews the plan-time comparison.
    if let Some(s) = server0 {
        b = b.predictor(s.trained_predictor().clone());
    }
    b.build()
}

fn print_run(title: &str, report: &ServeReport) {
    println!("--- {title} ---");
    print!("{}", report.render());
    println!();
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let device = DeviceSpec::rtx3090();
    let pool = DevicePool::homogeneous(device.clone(), DEVICES);
    println!(
        "ScalFrag serving load test: {JOBS} jobs, 12 shape classes (zipf popularity), \
         4 tenants, {DEVICES}x {}\n",
        device.name
    );

    // Calibrate the arrival rate against the admission-time service
    // estimate: steady state at ~60 % utilisation, overload at 2x capacity.
    let probe = synthesize(&spec(7, 1.0));
    let mean_est = mean_service_estimate_s(&probe, &device);
    let steady_gap = mean_est / (0.6 * DEVICES as f64);
    let overload_gap = mean_est / (2.0 * DEVICES as f64);
    println!(
        "mean service estimate {:.3}ms -> interarrival {:.3}ms steady / {:.3}ms overload\n",
        mean_est * 1e3,
        steady_gap * 1e3,
        overload_gap * 1e3
    );

    let steady_jobs = synthesize(&spec(7, steady_gap));
    let srv = server(pool.clone(), true, None);
    let steady = srv.run(steady_jobs.clone());
    print_run("steady state (plan cache on)", &steady);

    let srv_nocache = server(pool.clone(), false, Some(&srv));
    let nocache = srv_nocache.run(steady_jobs);
    print_run("cache-off ablation", &nocache);

    let srv_overload = server(pool, true, Some(&srv));
    let overload = srv_overload.run(synthesize(&spec(7, overload_gap)));
    print_run("2x overload", &overload);

    let plan_ratio = nocache.total_plan_s() / steady.total_plan_s().max(1e-12);
    println!("plan-time ratio (cache off / on): {plan_ratio:.1}x");
    println!(
        "overload: {} rejected ({:.0}%), p99 of admitted {:.3}ms (steady p99 {:.3}ms)",
        overload.rejected.len(),
        overload.rejection_rate() * 100.0,
        overload.p99_latency_s() * 1e3,
        steady.p99_latency_s() * 1e3,
    );

    if smoke {
        // Steady state: every job admitted, the skewed working set mostly
        // hits the cache, and caching pays >= 5x on planning time.
        assert!(steady.rejected.is_empty(), "steady state must admit everything");
        assert_eq!(steady.completed.len(), JOBS);
        assert!(steady.throughput_jobs_per_s() > 0.0);
        assert!(
            steady.cache.hit_rate() >= 0.80,
            "hit rate {:.3} below the 0.80 acceptance floor",
            steady.cache.hit_rate()
        );
        assert!(
            plan_ratio >= 5.0,
            "plan caching must cut total plan time >= 5x, got {plan_ratio:.2}x"
        );
        // Determinism: same seed + same stream -> identical report.
        let replay =
            server(DevicePool::homogeneous(DeviceSpec::rtx3090(), DEVICES), true, Some(&srv))
                .run(synthesize(&spec(7, steady_gap)));
        assert_eq!(replay.fingerprint(), steady.fingerprint(), "replay must be bit-identical");

        // Overload: typed rejections, bounded queue, bounded p99 of the
        // jobs that were admitted.
        assert!(!overload.rejected.is_empty(), "2x overload must produce rejections");
        assert!(overload.peak_queue_depth <= 32, "queue depth must respect the cap");
        for r in &overload.rejected {
            assert!(
                r.retry_after_s.is_finite() && r.retry_after_s > 0.0,
                "rejection must carry a usable retry hint: {r}"
            );
        }
        let budget = 0.05;
        let p99_cap = budget + 20.0 * mean_est;
        assert!(
            overload.p99_latency_s() <= p99_cap,
            "admitted p99 {:.4}s exceeds bound {:.4}s under overload",
            overload.p99_latency_s(),
            p99_cap
        );
        println!("\nsmoke assertions passed.");
    }
}
