//! Balance-arm bench: the load-balanced segmented scan and the FLYCOO
//! mode-agnostic arm against the COO/tiled baselines across the skew axis.
//!
//! Sweeps Zipf exponent × kernel arm (plus the dominant-slice synthetic —
//! the regime plain Zipf cannot reach, see `scalfrag_autotune::arms`) and
//! records, per preset: the modelled duration of every arm, the
//! cost-model argmin, the [`predict_arm`] verdict and the imbalance
//! feature buckets it fired on. Also reports the FLYCOO storage story:
//! one tensor copy + per-mode remap tables vs one re-tiled copy per mode.
//!
//! All measurements land in `results/BENCH_balance.json`.
//!
//! `balance_bench --smoke` (CI) asserts the acceptance gates:
//!
//! * the predictor picks the **Balanced** arm on the skewed preset, the
//!   cost model agrees, and the modelled speedup over the best previous
//!   arm (min of COO and tiled) is ≥ 1.2×;
//! * the predictor keeps the **Tiled** baseline on the uniform preset
//!   (and on every plain-Zipf point — the tile reduction soaks Zipf skew);
//! * the FLYCOO copy is smaller than re-tiling for every mode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scalfrag_autotune::arms::{predict_arm, MttkrpObjective};
use scalfrag_autotune::sweep::KernelFlavor;
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::SegmentStats;
use scalfrag_tensor::{gen, CooTensor, FeatureKey, FlycooTensor};

/// A dominant slice (`pct` % of nnz in one mode-0 row) over a uniform
/// sparse tail — the `one-fiber-heavy` / `dense-slice` corpus regime and
/// the balanced arm's win case.
fn heavy_slice(dims: &[u32], nnz: usize, pct: usize, seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(dims);
    let hot = rng.gen_range(0..dims[0]);
    for i in 0..nnz {
        let v = rng.gen::<f32>() * 0.999 + 1e-3;
        let mut c: Vec<u32> = dims.iter().map(|&d| rng.gen_range(0..d)).collect();
        if i * 100 < nnz * pct {
            c[0] = hot;
        }
        t.push(&c, v);
    }
    t
}

const ARMS: [KernelFlavor; 4] = [
    KernelFlavor::CooAtomic,
    KernelFlavor::Tiled,
    KernelFlavor::Balanced,
    KernelFlavor::ModeAgnostic,
];

fn arm_name(f: KernelFlavor) -> &'static str {
    match f {
        KernelFlavor::CooAtomic => "coo-atomic",
        KernelFlavor::Tiled => "tiled",
        KernelFlavor::Balanced => "balanced",
        KernelFlavor::ModeAgnostic => "mode-agnostic",
    }
}

struct PresetRow {
    name: &'static str,
    zipf: Option<f64>,
    durations: Vec<(KernelFlavor, f64)>,
    predicted: KernelFlavor,
    reason: &'static str,
    key: FeatureKey,
    speedup_vs_best_prev: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let device = DeviceSpec::rtx3090();
    let base = LaunchConfig::new(1024, 256);
    let rank = 16u32;
    let dims = [20_000u32, 200, 200];
    let nnz = 100_000;

    let mut presets: Vec<(&'static str, Option<f64>, CooTensor)> =
        vec![("uniform", None, gen::uniform(&dims, nnz, 5))];
    let exponents: &[(&str, f64)] = if smoke {
        &[("zipf-1.1", 1.1), ("zipf-1.6", 1.6)]
    } else {
        &[
            ("zipf-0.8", 0.8),
            ("zipf-1.1", 1.1),
            ("zipf-1.4", 1.4),
            ("zipf-1.6", 1.6),
            ("zipf-2.0", 2.0),
        ]
    };
    for &(name, e) in exponents {
        presets.push((name, Some(e), gen::zipf_slices(&dims, nnz, e, 5)));
    }
    presets.push(("heavy-slice-60", None, heavy_slice(&dims, nnz, 60, 5)));

    println!(
        "{:<16} {:>11} {:>11} {:>11} {:>11}  {:<14} {:>8}",
        "preset", "coo", "tiled", "balanced", "flycoo", "predicted", "speedup"
    );
    let mut rows = Vec::new();
    for (name, zipf, tensor) in &presets {
        let stats = SegmentStats::compute(tensor, 0);
        let key = FeatureKey::of(tensor, 0, rank);
        let durations: Vec<(KernelFlavor, f64)> =
            ARMS.iter().map(|&f| (f, f.duration(&device, &stats, rank, base))).collect();
        let verdict = predict_arm(&key, MttkrpObjective::SingleMode);
        let get = |f: KernelFlavor| durations.iter().find(|&&(g, _)| g == f).unwrap().1;
        let best_prev = get(KernelFlavor::CooAtomic).min(get(KernelFlavor::Tiled));
        let speedup = best_prev / get(KernelFlavor::Balanced);
        println!(
            "{:<16} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e}  {:<14} {:>7.2}x",
            name,
            get(KernelFlavor::CooAtomic),
            get(KernelFlavor::Tiled),
            get(KernelFlavor::Balanced),
            get(KernelFlavor::ModeAgnostic),
            arm_name(verdict.flavor),
            speedup
        );
        rows.push(PresetRow {
            name,
            zipf: *zipf,
            durations,
            predicted: verdict.flavor,
            reason: verdict.reason,
            key,
            speedup_vs_best_prev: speedup,
        });
    }

    // The adaptive-launch gates: the predictor must flip exactly where the
    // cost model flips — Balanced on the dominant-slice preset (by the
    // margin the acceptance criteria demand), Tiled everywhere else.
    let skewed = rows.iter().find(|r| r.name == "heavy-slice-60").unwrap();
    assert_eq!(
        skewed.predicted,
        KernelFlavor::Balanced,
        "predictor must pick the load-balanced arm on the skewed preset"
    );
    assert!(
        skewed.speedup_vs_best_prev >= 1.2,
        "balanced arm's modelled speedup {:.2}x on the skewed preset is below the 1.2x gate",
        skewed.speedup_vs_best_prev
    );
    for r in rows.iter().filter(|r| r.name != "heavy-slice-60") {
        assert_eq!(
            r.predicted,
            KernelFlavor::Tiled,
            "{}: the tiled baseline must stay chosen off the dominant-slice regime",
            r.name
        );
        let (argmin, _) = r
            .durations
            .iter()
            .filter(|&&(f, _)| f != KernelFlavor::ModeAgnostic)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(*argmin, KernelFlavor::Tiled, "{}: cost-model argmin disagrees", r.name);
    }

    // The FLYCOO storage story: one entry copy plus per-mode remap tables
    // must undercut keeping one re-tiled copy per mode.
    let sample = &presets.last().unwrap().2;
    let fly = FlycooTensor::from_coo(sample, 128);
    let (one_copy, per_mode) = (fly.byte_size(), fly.per_mode_copies_byte_size());
    assert!(
        one_copy < per_mode,
        "FLYCOO copy ({one_copy} B) must undercut per-mode re-tiling ({per_mode} B)"
    );
    println!(
        "\nflycoo storage: {:.1} MB one copy + remaps vs {:.1} MB re-tiled per mode ({:.2}x smaller)",
        one_copy as f64 / 1e6,
        per_mode as f64 / 1e6,
        per_mode as f64 / one_copy as f64
    );

    // Perf-trajectory artifact.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rank\": {rank},\n  \"nnz\": {nnz},\n"));
    json.push_str(&format!(
        "  \"flycoo_bytes\": {one_copy},\n  \"per_mode_copies_bytes\": {per_mode},\n"
    ));
    json.push_str("  \"presets\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let durs: Vec<String> =
            r.durations.iter().map(|&(f, d)| format!("\"{}\": {d:.6e}", arm_name(f))).collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"zipf\": {}, \"predicted\": \"{}\", \"reason\": \"{}\", \
             \"gini_bucket\": {}, \"fiber_imbalance_bucket\": {}, \"imbalance_bucket\": {}, \
             \"speedup_vs_best_prev\": {:.3}, {}}}{}\n",
            r.name,
            r.zipf.map_or("null".into(), |z| format!("{z}")),
            arm_name(r.predicted),
            r.reason,
            r.key.gini_bucket,
            r.key.fiber_imbalance_bucket,
            r.key.imbalance_bucket,
            r.speedup_vs_best_prev,
            durs.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "results/BENCH_balance.json";
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(path, json).expect("write bench json");
    println!("wrote {path}");

    println!(
        "\nbalance_bench: PASS (balanced arm picked on the skewed preset at {:.2}x modelled \
         speedup; tiled baseline kept on uniform and every Zipf point)",
        skewed.speedup_vs_best_prev
    );
}
