//! §IV-B — model comparison for the adaptive launching strategy.
//!
//! Trains the full zoo (DecisionTree, Bagging, AdaBoost, kNN, Ridge) on a
//! sweep-labelled synthetic corpus and evaluates on held-out tensors.
//! Paper claims to check: the DecisionTree regressor reaches the lowest
//! MAPE (< 15 %), trains in under 0.5 s, and its inference cost is < 1 %
//! of an MTTKRP.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin model_eval`.

use scalfrag_autotune::trainer::{generate_corpus, train_and_evaluate};
use scalfrag_bench::{factors_for, render_table, scaled_suite, RANK};
use scalfrag_core::ScalFrag;
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};

fn main() {
    let device = DeviceSpec::rtx3090();
    let space = LaunchConfig::coarse_sweep_space(&device);

    println!("SS IV-B: launch-parameter selection model comparison\n");
    println!("Corpus: synthetic tensors across sizes/orders/sparsity regimes,");
    println!("labelled by full launch-space sweeps (Fig. 7 pipeline).\n");

    let train =
        generate_corpus(&device, RANK as u32, &space, scalfrag_autotune::trainer::DEFAULT_TIERS, 1);
    let test = generate_corpus(&device, RANK as u32, &space, &[8_000, 120_000, 600_000], 0xdead);
    println!(
        "train: {} tensor-mode pairs x {} configs; test: {} pairs\n",
        train.len(),
        space.len(),
        test.len()
    );

    let trained = train_and_evaluate(&train, &test, &space);
    let rows: Vec<Vec<String>> = trained
        .evals
        .iter()
        .map(|e| {
            vec![
                e.name.to_string(),
                format!("{:.1}%", e.mape_time),
                format!("{:.3}", e.r2_log),
                format!("{:.3}s", e.train_time_s),
                format!("{:.0}µs", e.select_time_us),
                format!("{:.3}", e.selection_ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Model", "MAPE(time)", "R²(log t)", "Train", "Select", "t(sel)/t(opt)"],
            &rows
        )
    );
    let best = &trained.evals[trained.best_index()];
    println!("Best model by selection quality: {}\n", best.name);

    // Tensor-level 4-fold cross-validation of the winning family, and the
    // features the tree actually splits on.
    let cv = scalfrag_autotune::cross_validate(&train, 4, || {
        Box::new(scalfrag_autotune::DecisionTree::default_params())
    });
    println!(
        "DecisionTree 4-fold CV: mean MAPE {:.1}% (worst fold {:.1}%), mean R² {:.3}\n",
        cv.mean_mape(),
        cv.worst_mape(),
        cv.mean_r2()
    );
    let (x, y) = scalfrag_autotune::trainer::to_samples(&train);
    let mut tree = scalfrag_autotune::DecisionTree::default_params();
    use scalfrag_autotune::Regressor;
    tree.fit(&x, &y);
    let mut names: Vec<&str> = scalfrag_tensor::features::FEATURE_NAMES.to_vec();
    names.push("log2_grid");
    names.push("log2_block");
    let imp = scalfrag_autotune::tree_importance(&tree, names.len());
    println!("DecisionTree feature importance (top splits):");
    println!("{}", imp.render(&names));

    // Inference cost relative to one MTTKRP (the paper: "inference time is
    // less than 1% of the MTTKRP computation").
    let (name, tensor) = scaled_suite().into_iter().find(|(n, _)| n == "nell-2").unwrap();
    let factors = factors_for(&tensor);
    let ctx = ScalFrag::builder().build();
    let r = ctx.mttkrp_dry(&tensor, &factors, 0);
    let tree = trained.evals.iter().find(|e| e.name == "DecisionTree").unwrap();
    let frac = tree.select_time_us * 1e-6 / r.timing.total_s * 100.0;
    println!(
        "DecisionTree selection time vs one simulated {} MTTKRP ({}): {:.2}%  (paper: < 1%)",
        name,
        scalfrag_bench::fmt_time(r.timing.total_s),
        frac
    );
    println!("DecisionTree training time: {:.3}s  (paper: < 0.5 s, one-off)", tree.train_time_s);
}
