//! Host-executor bench: the first *real wall-clock* perf trajectory in
//! the repo. Everything else here measures the analytic cost model; this
//! harness times the work-stealing pool itself — the conformance corpus
//! runner, the plan interpreter and every kernel format — at pool sizes
//! 1/2/4/8 and records the speedup curve plus the bit-identity verdict.
//!
//! All measurements land in `results/BENCH_host.json`.
//!
//! `host_bench --smoke` (CI) asserts the acceptance gates:
//!
//! * **bit-identity (unconditional):** every kernel format and the
//!   corpus runner produce bit-identical results at every pool size —
//!   the determinism contract the golden fingerprint pins rest on;
//! * **speedup (cores-gated):** the parallel corpus runner at 4 threads
//!   beats 1 thread by ≥ 1.5×. Only enforced when the machine actually
//!   has ≥ 4 cores; on smaller boxes the gate is recorded as SKIP with
//!   the core count, never silently dropped.

use scalfrag_conformance::{kernel_backends, run_differential_parallel, smoke_corpus};
use scalfrag_exec::{run_plan, ExecMode};
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::gen;
use std::time::Instant;

const SEED: u64 = 0x405f_be9c;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const SPEEDUP_GATE: f64 = 1.5;

struct KernelRow {
    name: String,
    runs_per_s: f64,
    gflops_equiv: f64,
}

struct ThreadRow {
    threads: usize,
    corpus_s: f64,
    comparisons: usize,
    plans_per_s: f64,
    speedup_vs_1: f64,
    bit_identical: bool,
    kernels: Vec<KernelRow>,
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cases: Vec<_> = smoke_corpus(SEED).into_iter().filter(|c| c.tensor.nnz() > 0).collect();
    let backends = kernel_backends();
    let builders = scalfrag_conformance::all_plan_builders();

    // The kernel-throughput tensor: Zipf skew so units are uneven and the
    // pool actually has stealing to do.
    let t = gen::zipf_slices(&[80, 60, 40], if smoke { 8_000 } else { 40_000 }, 1.2, 77);
    let f = FactorSet::random(t.dims(), 16, 78);
    // FLOP-equivalents per MTTKRP run: one fma per (entry, other-mode,
    // rank lane) plus the accumulate.
    let flops_per_run = (t.nnz() * 16 * (t.order() - 1) * 2) as f64;
    let kernel_iters = if smoke { 3 } else { 10 };

    // Warm the pools (thread spawn + first-touch) outside the timers.
    for &n in &THREADS {
        scalfrag_host::with_threads(n, || scalfrag_host::par_map(64, |i| i).len());
    }

    let mut rows: Vec<ThreadRow> = Vec::new();
    let mut reference_report = None;
    let mut reference_kernel_bits: Vec<Vec<u32>> = Vec::new();
    for &n in &THREADS {
        scalfrag_host::with_threads(n, || {
            let (corpus_s, report) = time(|| run_differential_parallel(&backends, &cases, SEED));
            assert!(report.all_pass(), "corpus failed at {n} threads:\n{}", report.table());
            let comparisons: usize = report.verdicts.iter().map(|v| v.comparisons).sum();

            let (plans_s, _) = time(|| {
                for b in &builders {
                    let plan = (b.build)(&t, &f, 0);
                    std::hint::black_box(run_plan(&plan, ExecMode::Functional));
                }
            });

            let mut kernels = Vec::new();
            let mut kernel_bits = Vec::new();
            for b in &backends {
                let (dt, out) = time(|| {
                    let mut last = (b.run)(&t, &f, 0);
                    for _ in 1..kernel_iters {
                        last = (b.run)(&t, &f, 0);
                    }
                    last
                });
                let per_run = dt / kernel_iters as f64;
                kernels.push(KernelRow {
                    name: b.name.to_string(),
                    runs_per_s: 1.0 / per_run,
                    gflops_equiv: flops_per_run / per_run / 1e9,
                });
                kernel_bits.push(out.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>());
            }

            let bit_identical = match &reference_report {
                None => {
                    reference_report = Some(report);
                    reference_kernel_bits = kernel_bits;
                    true
                }
                Some(reference) => *reference == report && reference_kernel_bits == kernel_bits,
            };
            rows.push(ThreadRow {
                threads: n,
                corpus_s,
                comparisons,
                plans_per_s: builders.len() as f64 / plans_s,
                speedup_vs_1: rows.first().map_or(1.0, |r| r.corpus_s / corpus_s),
                bit_identical,
                kernels,
            });
        });
    }

    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>9}  bit-identical",
        "threads", "corpus-s", "cmp/s", "plans/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<8} {:>10.3} {:>12.1} {:>10.2} {:>8.2}x  {}",
            r.threads,
            r.corpus_s,
            r.comparisons as f64 / r.corpus_s,
            r.plans_per_s,
            r.speedup_vs_1,
            r.bit_identical
        );
    }

    // Gates. Bit-identity is unconditional: determinism must not depend
    // on how many cores the box has.
    let determinism_ok = rows.iter().all(|r| r.bit_identical);
    assert!(determinism_ok, "output bits moved with the pool size — determinism broken");
    let at4 = rows.iter().find(|r| r.threads == 4).expect("4-thread row");
    let speedup_gate = if cores >= 4 {
        assert!(
            !smoke || at4.speedup_vs_1 >= SPEEDUP_GATE,
            "corpus-runner speedup {:.2}x at 4 threads is below the {SPEEDUP_GATE}x gate",
            at4.speedup_vs_1
        );
        format!("PASS ({:.2}x at 4 threads on {cores} cores)", at4.speedup_vs_1)
    } else {
        format!(
            "SKIP ({cores} core(s) available; gate needs >=4 — measured {:.2}x)",
            at4.speedup_vs_1
        )
    };

    // Perf-trajectory artifact.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"cores\": {cores},\n  \"corpus_cases\": {},\n  \"speedup_gate\": \"{speedup_gate}\",\n  \
         \"determinism_gate\": \"PASS\",\n",
        cases.len()
    ));
    json.push_str("  \"threads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let kernels: Vec<String> = r
            .kernels
            .iter()
            .map(|k| {
                format!(
                    "{{\"name\": \"{}\", \"runs_per_s\": {:.3}, \"gflops_equiv\": {:.4}}}",
                    k.name, k.runs_per_s, k.gflops_equiv
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"threads\": {}, \"corpus_s\": {:.6}, \"comparisons_per_s\": {:.2}, \
             \"plans_per_s\": {:.3}, \"speedup_vs_1\": {:.3}, \"bit_identical\": {}, \
             \"kernels\": [{}]}}{}\n",
            r.threads,
            r.corpus_s,
            r.comparisons as f64 / r.corpus_s,
            r.plans_per_s,
            r.speedup_vs_1,
            r.bit_identical,
            kernels.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "results/BENCH_host.json";
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(path, json).expect("write bench json");
    println!("wrote {path}");

    println!("\nhost_bench: PASS (bit-identical at every pool size; speedup gate: {speedup_gate})");
}
