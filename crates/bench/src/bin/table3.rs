//! Table III — the tensors used for evaluation: the original FROSTT
//! figures next to the synthetic stand-ins this reproduction materialises.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin table3`.

use scalfrag_bench::{effective_scale, render_table};
use scalfrag_tensor::frostt;

fn fmt_dims(dims: &[u64]) -> String {
    dims.iter().map(|d| human(*d)).collect::<Vec<_>>().join(" x ")
}

fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn main() {
    println!(
        "Table III: tensors used for evaluation (paper originals vs scaled synthetic stand-ins)\n"
    );
    let mut rows = Vec::new();
    for p in frostt::all_presets() {
        let scale = effective_scale(&p);
        let t = p.materialize(scale);
        let scaled_dims: Vec<u64> = t.dims().iter().map(|&d| d as u64).collect();
        rows.push(vec![
            p.name.to_string(),
            format!("1/{scale}"),
            p.order().to_string(),
            fmt_dims(&p.dims),
            human(p.nnz),
            format!("{:.1e}", p.density()),
            fmt_dims(&scaled_dims),
            human(t.nnz() as u64),
            format!("{:.1e}", t.density()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Tensor",
                "Scale",
                "Order",
                "Dimensions (paper)",
                "#nnz",
                "Density",
                "Dimensions (scaled)",
                "#nnz",
                "Density",
            ],
            &rows
        )
    );
    println!("Generators: uniform (vast, uber), Zipf-skewed slices (nell-*, flickr-*, deli-*, nips), block-clustered (enron).");
}
