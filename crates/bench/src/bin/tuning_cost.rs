//! Tuning-cost comparison — the abstract's claim that ScalFrag "is able
//! to find more suitable kernel launch parameter configurations in a
//! short time": model-guided selection vs random search vs an exhaustive
//! sweep, scored by configuration quality and by how much measuring each
//! strategy had to pay.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin tuning_cost`.

use scalfrag_autotune::tuner::{tune, TuningStrategy};
use scalfrag_autotune::LaunchPredictor;
use scalfrag_bench::{render_table, scaled_suite, RANK};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};

fn main() {
    let device = DeviceSpec::rtx3090();
    let space = LaunchConfig::sweep_space(&device);
    println!("Tuning-strategy comparison (tiled kernel, rank {RANK}, mode 0)\n");
    eprintln!("training the launch predictor (one-off)...");
    let predictor = LaunchPredictor::train_default(&device, RANK as u32, 1);

    let strategies = [
        TuningStrategy::ModelGuided,
        TuningStrategy::Random(8),
        TuningStrategy::Random(32),
        TuningStrategy::CoarseToFine,
        TuningStrategy::Exhaustive,
    ];

    let mut rows = Vec::new();
    let mut quality_sums = vec![0.0f64; strategies.len()];
    let mut cost_sums = vec![0.0f64; strategies.len()];
    let suite = scaled_suite();
    for (name, tensor) in &suite {
        for (si, &strat) in strategies.iter().enumerate() {
            let o = tune(&device, tensor, 0, RANK as u32, &space, strat, Some(&predictor));
            quality_sums[si] += o.quality();
            cost_sums[si] += o.measure_cost_s;
            if si == 0 {
                rows.push(vec![
                    name.clone(),
                    format!("{}", o.chosen),
                    format!("{:.3}x", o.quality()),
                ]);
            }
        }
    }
    println!("Per-tensor model-guided selections:");
    println!("{}", render_table(&["Tensor", "Model-chosen launch", "t(sel)/t(opt)"], &rows));

    println!("Suite summary (lower is better):");
    let mut srows = Vec::new();
    for (si, strat) in strategies.iter().enumerate() {
        srows.push(vec![
            strat.name(),
            format!("{:.3}x", quality_sums[si] / suite.len() as f64),
            format!("{:.3}ms", cost_sums[si] * 1e3),
        ]);
    }
    println!("{}", render_table(&["Strategy", "Mean quality", "Total measuring cost"], &srows));
    println!("Expected shape: the model reaches near-exhaustive quality at zero");
    println!("measuring cost; random search needs many samples to close the gap.");
}
