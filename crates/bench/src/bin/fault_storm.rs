//! Fault-storm benchmark: MTBF sweep × recovery-policy ablation for the
//! resilient multi-GPU MTTKRP executor, plus a faulted serving-layer demo.
//!
//! Three recovery policies run the same seeded fault storms on a 3-GPU
//! node:
//!
//! * **no-retry** — faults fail segments outright (the lost-work
//!   baseline);
//! * **retry** — segment-level retries with exponential backoff ride out
//!   corruption, aborts and transient outages, but a dead device's shards
//!   stay lost;
//! * **retry+re-shard** — retries plus mid-execution re-placement of a
//!   dead device's shards onto the survivors.
//!
//! Because partial outputs fold in shard-index order, any run that
//! completes every segment is *bitwise* identical to the fault-free run —
//! the `ok` column checks exactly that.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin
//! fault_storm`. CI runs `fault_storm --smoke`: a fixed script (1
//! transient device failure + 1 straggler + 2 transfer corruptions) where
//! retry+re-shard must complete everything bit-exactly, no-retry must
//! demonstrably lose work, and the fault log must be deterministic.

use scalfrag_cluster::execute_cluster_resilient;
use scalfrag_cluster::{
    execute_cluster, ClusterOptions, ExecMode, FaultRecoveryPolicy, NodeSpec, ResilientClusterRun,
};
use scalfrag_faults::{mat_checksum, FaultInjector, FaultKind, FaultPlan, FaultTrigger};
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_serve::{synthesize, DevicePool, ScalFragServer, WorkloadSpec};
use scalfrag_tensor::{gen, CooTensor};

const DEVICES: usize = 3;
const RANK: usize = 16;

fn node() -> NodeSpec {
    NodeSpec::homogeneous(DeviceSpec::rtx3090(), DEVICES)
}

fn workload() -> (CooTensor, FactorSet) {
    let dims = [160u32, 120, 90];
    let tensor = gen::zipf_slices(&dims, 24_000, 0.9, 71);
    let factors = FactorSet::random(&dims, RANK, 72);
    (tensor, factors)
}

fn opts() -> ClusterOptions {
    ClusterOptions::new(LaunchConfig::new(512, 256), 6)
}

/// The fixed smoke script: one transient device failure, one straggler,
/// two transfer corruptions.
fn smoke_plan() -> FaultPlan {
    FaultPlan::new()
        .fault(1, FaultTrigger::AtOp(3), FaultKind::DeviceFail { down_s: Some(2e-3) })
        .fault(2, FaultTrigger::AtTime(0.0), FaultKind::Straggler { derate: 2.0 })
        .fault(0, FaultTrigger::AtOp(2), FaultKind::TransferCorruption)
        .fault(0, FaultTrigger::AtOp(5), FaultKind::TransferCorruption)
}

struct PolicyRow {
    name: &'static str,
    run: ResilientClusterRun,
    log_fingerprint: u64,
}

fn run_policies(tensor: &CooTensor, factors: &FactorSet, plan: &FaultPlan) -> Vec<PolicyRow> {
    let policies = [
        ("no-retry", FaultRecoveryPolicy::no_retry()),
        ("retry", FaultRecoveryPolicy::retry()),
        ("retry+re-shard", FaultRecoveryPolicy::retry_reshard()),
    ];
    policies
        .into_iter()
        .map(|(name, policy)| {
            let mut inj = FaultInjector::new(plan.clone());
            let run = execute_cluster_resilient(
                &node(),
                tensor,
                factors,
                0,
                &opts(),
                &mut inj,
                &policy,
                ExecMode::Functional,
            );
            PolicyRow { name, run, log_fingerprint: inj.log().fingerprint() }
        })
        .collect()
}

fn print_table(rows: &[PolicyRow], clean_sum: u64) {
    println!(
        "  {:<16} {:>6} {:>6} {:>9} {:>8} {:>6} {:>11} {:>4}",
        "policy", "done", "lost", "replaced", "retries", "dead", "makespan", "ok"
    );
    for r in rows {
        println!(
            "  {:<16} {:>6} {:>6} {:>9} {:>8} {:>6} {:>9.3}ms {:>4}",
            r.name,
            r.run.completed_segments,
            r.run.failed_segments,
            r.run.replaced_segments,
            r.run.retries,
            r.run.dead_devices.len(),
            r.run.makespan() * 1e3,
            if mat_checksum(&r.run.output) == clean_sum { "yes" } else { "NO" },
        );
    }
}

fn smoke(tensor: &CooTensor, factors: &FactorSet, clean_sum: u64) {
    let rows = run_policies(tensor, factors, &smoke_plan());
    print_table(&rows, clean_sum);

    let no_retry = &rows[0];
    assert!(
        no_retry.run.failed_segments > 0,
        "smoke: the no-retry baseline must demonstrably lose work"
    );
    let reshard = &rows[2];
    assert!(
        reshard.run.all_complete(),
        "smoke: retry+re-shard must complete every segment ({} lost)",
        reshard.run.failed_segments
    );
    assert_eq!(
        mat_checksum(&reshard.run.output),
        clean_sum,
        "smoke: the recovered output must match the fault-free checksum"
    );

    // Determinism: the same plan replayed gives the same fault log and the
    // same recovered bits.
    let replay = run_policies(tensor, factors, &smoke_plan());
    for (a, b) in rows.iter().zip(&replay) {
        assert_eq!(
            a.log_fingerprint, b.log_fingerprint,
            "smoke: fault log must be deterministic for policy {}",
            a.name
        );
        assert_eq!(
            mat_checksum(&a.run.output),
            mat_checksum(&b.run.output),
            "smoke: outputs must be bit-reproducible for policy {}",
            a.name
        );
    }
    println!("\nsmoke OK: re-shard recovered bit-exactly, no-retry lost work, logs deterministic");
}

fn mtbf_sweep(tensor: &CooTensor, factors: &FactorSet, clean_sum: u64) {
    // Horizon sized to the op count of a clean run: 6 shards x 2 segments
    // x (H2D + kernel) across 3 devices is ~8 ops per device.
    for &mtbf in &[3u64, 6, 12, 24] {
        let plan = FaultPlan::seeded_storm(0xfa_17 ^ mtbf, DEVICES, mtbf, 16, true);
        println!("\nMTBF {mtbf} ops, {} scheduled faults (recoverable storm):", plan.len());
        let rows = run_policies(tensor, factors, &plan);
        print_table(&rows, clean_sum);
    }
}

fn serve_demo() {
    println!("\n--- faulted serving demo: transient outage + straggler, retries on ---");
    let jobs = synthesize(&WorkloadSpec {
        jobs: 40,
        shape_classes: 4,
        variants_per_class: 2,
        base_nnz: 3_000,
        ..Default::default()
    });
    let server = ScalFragServer::builder()
        .pool(DevicePool::homogeneous(DeviceSpec::rtx3090(), 2))
        .train_tiers(vec![3_000, 12_000])
        .max_retries(2)
        .build();
    let mut inj = FaultInjector::new(
        FaultPlan::new()
            .fault(0, FaultTrigger::AtTime(5e-3), FaultKind::DeviceFail { down_s: Some(1e-2) })
            .fault(1, FaultTrigger::AtTime(0.0), FaultKind::Straggler { derate: 1.5 }),
    );
    let report = server.run_with_faults(jobs, &mut inj);
    print!("{}", report.render());
    print!("{}", inj.log().render());
}

fn main() {
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let (tensor, factors) = workload();
    let clean = execute_cluster(&node(), &tensor, &factors, 0, &opts(), ExecMode::Functional);
    let clean_sum = mat_checksum(&clean.output);
    println!(
        "ScalFrag fault storm: {} nnz, rank {RANK}, {DEVICES}x {} | fault-free makespan {:.3}ms, checksum {clean_sum:#018x}\n",
        tensor.nnz(),
        DeviceSpec::rtx3090().name,
        clean.makespan() * 1e3,
    );

    println!("fixed smoke script (1 transient fail + 1 straggler + 2 corruptions):");
    smoke(&tensor, &factors, clean_sum);

    if smoke_mode {
        return;
    }

    mtbf_sweep(&tensor, &factors, clean_sum);
    serve_demo();
}
