//! Table II — hardware specifications of the simulated platform.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin table2`.

use scalfrag_bench::render_table;
use scalfrag_gpusim::{DeviceSpec, HostSpec};

fn main() {
    let cpu = HostSpec::i7_11700k();
    let gpu = DeviceSpec::rtx3090();

    println!("Table II: hardware specifications (simulated substrate)\n");
    let rows = vec![
        vec!["Model".into(), cpu.name.into(), gpu.name.into()],
        vec![
            "Frequency".into(),
            format!("{:.1}GHz", cpu.clock_ghz),
            format!("{:.1}GHz", gpu.clock_ghz),
        ],
        vec![
            "Processing Units".into(),
            format!("{}C{}T", cpu.cores, cpu.threads),
            format!("{} ({} SMs)", gpu.num_sms * gpu.cores_per_sm, gpu.num_sms),
        ],
        vec![
            "Cache".into(),
            "80KB L1, 512KB L2, 16MB L3".into(),
            format!(
                "{}KB L1 (per SM), {}MB L2",
                gpu.shared_mem_per_sm / 1024,
                gpu.l2_bytes / (1024 * 1024)
            ),
        ],
        vec![
            "Memory".into(),
            "32GB".into(),
            format!("{}GB", gpu.global_mem_bytes / (1024 * 1024 * 1024)),
        ],
        vec![
            "Bandwidth".into(),
            format!("{:.1} GB/s", cpu.mem_bandwidth_gbs),
            format!("{:.1} GB/s", gpu.mem_bandwidth_gbs),
        ],
        vec![
            "PCIe (measured, §III-B)".into(),
            format!("{:.1} GB/s", gpu.pcie_h2d_gbs),
            format!("{:.1} GB/s", gpu.pcie_d2h_gbs),
        ],
    ];
    println!("{}", render_table(&["", "CPU", "GPU"], &rows));
    println!(
        "Peak FP32: CPU {:.0} GFLOP/s, GPU {:.0} GFLOP/s",
        cpu.peak_gflops(),
        gpu.peak_gflops()
    );
}
