//! Fig. 12 — multi-GPU sharded MTTKRP: strong scaling and
//! interconnect-aware scheduling.
//!
//! Three exhibits:
//!
//! 1. **Strong scaling** — 1/2/4 × RTX 3090 behind a shared host link
//!    (the commodity regime: every extra device derates the per-link H2D
//!    bandwidth, 24.3 → 15.6 → 7.8 GB/s), fixed 8 shards so the numeric
//!    output is identical at every node size. Expect > 1× but clearly
//!    sub-linear speedups.
//! 2. **Heterogeneous scheduling** — RTX 3090 + RTX 3060: speed-weighted
//!    LPT vs round-robin. Round-robin makes the 3060 the straggler; LPT
//!    shifts nnz toward the 3090 until both finish together.
//! 3. **Interconnect × shard policy** — where the reduction cost goes:
//!    slice-aligned shards reduce for free; nnz-balanced shards pay a
//!    D2H + host add, unless peer links carry the partials.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin fig12_multi_gpu`.

use scalfrag_bench::{factors_for, fmt_time, render_table, scaled_small_suite};
use scalfrag_cluster::{DeviceScheduler, Interconnect, NodeSpec, ShardPolicy};
use scalfrag_core::ClusterScalFrag;
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::FactorSet;

/// Shard count pinned across node sizes (bitwise-comparable outputs).
const SHARDS: usize = 8;

fn homogeneous(n: usize) -> ClusterScalFrag {
    ClusterScalFrag::builder()
        .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), n))
        .shards(SHARDS)
        .build()
}

fn main() {
    println!("Fig. 12: multi-GPU sharded MTTKRP with interconnect-aware scheduling\n");

    // ---- Exhibit 1: strong scaling on 1/2/4 × RTX 3090 (shared host link).
    println!("Strong scaling, N x RTX 3090, shared-host interconnect, {SHARDS} shards, mode 0:");
    let suite = scaled_small_suite();
    let ctxs: Vec<(usize, ClusterScalFrag)> =
        [1usize, 2, 4].into_iter().map(|n| (n, homogeneous(n))).collect();
    let mut rows = Vec::new();
    let mut cats = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> =
        ctxs.iter().map(|(n, _)| (format!("{n} GPU"), Vec::new())).collect();
    let mut all_speedups: Vec<(usize, f64)> = Vec::new();
    for (name, tensor) in &suite {
        let factors = factors_for(tensor);
        let mut row = vec![name.clone(), tensor.nnz().to_string()];
        let mut base = 0.0;
        for (i, (n, ctx)) in ctxs.iter().enumerate() {
            let r = ctx.mttkrp_dry(tensor, &factors, 0);
            if *n == 1 {
                base = r.total_s;
                row.push(fmt_time(r.total_s));
            } else {
                let speedup = base / r.total_s;
                all_speedups.push((*n, speedup));
                row.push(format!("{} ({speedup:.2}x)", fmt_time(r.total_s)));
            }
            series[i].1.push(r.total_s * 1e3);
        }
        cats.push(name.clone());
        rows.push(row);
    }
    println!("{}", render_table(&["Tensor", "nnz", "1 GPU", "2 GPUs", "4 GPUs"], &rows));
    let agg = |n: usize| {
        let v: Vec<f64> = all_speedups.iter().filter(|(m, _)| *m == n).map(|(_, s)| *s).collect();
        (v.iter().copied().fold(f64::INFINITY, f64::min), v.iter().sum::<f64>() / v.len() as f64)
    };
    let (min2, mean2) = agg(2);
    let (min4, mean4) = agg(4);
    println!("2-GPU speedup: mean {mean2:.2}x (min {min2:.2}x); ideal 2.00x");
    println!("4-GPU speedup: mean {mean4:.2}x (min {min4:.2}x); ideal 4.00x");
    println!(
        "Sub-linear as expected: the shared host link derates per-device H2D \
         24.3 -> {:.1} -> {:.1} GB/s at N=2,4.\n",
        31.2 / 2.0,
        31.2 / 4.0
    );

    // ---- Exhibit 2: heterogeneous node, LPT vs round-robin.
    //
    // Rank 64 makes the kernel (memory-bandwidth bound, 936 vs 360 GB/s)
    // the binding resource; at small ranks both cards are limited by
    // their identical host links and placement barely matters. A fixed
    // launch configuration isolates the scheduler as the only variable.
    println!("Heterogeneous node (RTX 3090 + RTX 3060), LPT vs round-robin, rank 64, mode 0:");
    let hetero = |sched: DeviceScheduler| {
        ClusterScalFrag::builder()
            .node(NodeSpec::heterogeneous(vec![DeviceSpec::rtx3090(), DeviceSpec::rtx3060()]))
            .shards(SHARDS)
            .scheduler(sched)
            .fixed_config(LaunchConfig::new(1024, 256))
            .build()
    };
    let rr_ctx = hetero(DeviceScheduler::RoundRobin);
    let lpt_ctx = hetero(DeviceScheduler::Lpt);
    let mut rows = Vec::new();
    let mut lpt_wins = 0usize;
    for (name, tensor) in &suite {
        let factors = FactorSet::random(tensor.dims(), 64, 0xFAC70);
        let rr = rr_ctx.mttkrp_dry(tensor, &factors, 0);
        let lpt = lpt_ctx.mttkrp_dry(tensor, &factors, 0);
        let gain = rr.total_s / lpt.total_s;
        if lpt.total_s < rr.total_s {
            lpt_wins += 1;
        }
        let lpt_3090_shards = lpt.assignments[0].len();
        rows.push(vec![
            name.clone(),
            fmt_time(rr.total_s),
            fmt_time(lpt.total_s),
            format!("{gain:.2}x"),
            format!("{}/{}", lpt_3090_shards, SHARDS),
        ]);
    }
    println!(
        "{}",
        render_table(&["Tensor", "RoundRobin", "LPT", "LPT gain", "3090 shards (LPT)"], &rows)
    );
    println!(
        "LPT beats round-robin on {lpt_wins}/{} datasets (round-robin leaves the \
         3060 as the straggler).\n",
        suite.len()
    );

    // ---- Exhibit 3: interconnect × shard policy on the largest tensor.
    let (name, tensor) = suite.iter().max_by_key(|(_, t)| t.nnz()).expect("suite is non-empty");
    let factors = factors_for(tensor);
    println!("Interconnect x shard policy, 4 x RTX 3090, {name} (mode 0):");
    let interconnects = [
        ("shared-host", Interconnect::SharedHost { total_gbs: 31.2 }),
        ("per-link-pcie", Interconnect::PerLinkPcie),
        ("peer-links-300", Interconnect::PeerLinks { peer_gbs: 300.0 }),
    ];
    let mut rows = Vec::new();
    for (ic_name, ic) in interconnects {
        for policy in [ShardPolicy::SliceAligned, ShardPolicy::NnzBalanced] {
            let ctx = ClusterScalFrag::builder()
                .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), 4).with_interconnect(ic))
                .shards(SHARDS)
                .shard_policy(policy)
                .build();
            let r = ctx.mttkrp_dry(tensor, &factors, 0);
            let h2d: f64 = r.per_device.iter().map(|p| p.h2d_s).sum();
            let kernel: f64 = r.per_device.iter().map(|p| p.kernel_s).sum();
            let d2h: f64 = r.per_device.iter().map(|p| p.d2h_s).sum();
            rows.push(vec![
                ic_name.to_string(),
                format!("{policy:?}"),
                fmt_time(h2d),
                fmt_time(kernel),
                fmt_time(d2h),
                fmt_time(r.reduction_s),
                fmt_time(r.total_s),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["Interconnect", "Policy", "H2D(sum)", "Kernel(sum)", "D2H(sum)", "Reduce", "Total"],
            &rows
        )
    );
    println!(
        "Slice-aligned shards reduce for free; nnz-balanced shards pay D2H + host \
         adds unless peer links carry the partials."
    );

    let chart = scalfrag_bench::svg::BarChart {
        title: "Fig. 12: multi-GPU MTTKRP strong scaling (ms, lower is better)".into(),
        y_label: "ms".into(),
        categories: cats,
        series,
    };
    if let Ok(path) = scalfrag_bench::write_svg("fig12_multi_gpu", &chart.render(860, 420)) {
        println!("(SVG written to {path})");
    }
}
