//! Fig. 9 — MTTKRP *kernel* performance: ScalFrag vs ParTI.
//!
//! For every Table III tensor, runs the ParTI strategy (atomic COO kernel,
//! heuristic launch) and the ScalFrag strategy (tiled kernel, adaptive
//! launch) and reports kernel-only GFLOP/s. Paper claims to check:
//! ScalFrag wins everywhere, with the largest speedups on the smaller
//! tensors (nips ≈ 2.2×, vast ≈ 1.2×).
//!
//! Pass `--ablate` to add adaptive-launch-only and tiling-only columns.
//!
//! Regenerate with `cargo run --release -p scalfrag-bench --bin fig9_kernel`.

use scalfrag_bench::{factors_for, render_table, scaled_suite};
use scalfrag_core::{Parti, ScalFrag};

fn main() {
    let ablate = std::env::args().any(|a| a == "--ablate");
    println!("Fig. 9: MTTKRP kernel performance, ScalFrag vs ParTI (GFLOP/s)\n");

    let parti = Parti::rtx3090();
    // SS V-B compares the *kernels*, so ScalFrag runs unsegmented here
    // (one launch over the whole tensor); Fig. 10 adds the pipeline.
    let scal = ScalFrag::builder().pipelined(false).build();
    // Ablations: adaptive launch with the plain COO kernel, and the tiled
    // kernel at ParTI's fixed launch.
    let adaptive_only = ScalFrag::builder().pipelined(false).tiled_kernel(false).build();
    let tiled_only = ScalFrag::builder().pipelined(false).adaptive_launch(false).build();

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut cats = Vec::new();
    let mut parti_g = Vec::new();
    let mut scal_g = Vec::new();
    for (name, tensor) in scaled_suite() {
        let factors = factors_for(&tensor);
        let r_parti = parti.mttkrp_dry(&tensor, &factors, 0);
        let r_scal = scal.mttkrp_dry(&tensor, &factors, 0);
        let g_parti = r_parti.kernel_gflops();
        let g_scal = r_scal.kernel_gflops();
        cats.push(name.clone());
        parti_g.push(g_parti);
        scal_g.push(g_scal);
        let speedup = r_parti.timing.kernel_s / r_scal.timing.kernel_s;
        speedups.push((name.clone(), speedup, tensor.nnz()));

        let mut row = vec![
            name,
            tensor.nnz().to_string(),
            format!("{g_parti:.1}"),
            format!("{g_scal:.1}"),
            format!("{speedup:.2}x"),
            format!("{}", r_scal.config),
        ];
        if ablate {
            let r_a = adaptive_only.mttkrp_dry(&tensor, &factors, 0);
            let r_t = tiled_only.mttkrp_dry(&tensor, &factors, 0);
            row.push(format!("{:.2}x", r_parti.timing.kernel_s / r_a.timing.kernel_s));
            row.push(format!("{:.2}x", r_parti.timing.kernel_s / r_t.timing.kernel_s));
        }
        rows.push(row);
    }

    let mut headers =
        vec!["Tensor", "nnz", "ParTI GF/s", "ScalFrag GF/s", "Speedup", "Chosen launch"];
    if ablate {
        headers.push("AdaptOnly");
        headers.push("TiledOnly");
    }
    println!("{}", render_table(&headers, &rows));

    let chart = scalfrag_bench::svg::BarChart {
        title: "Fig. 9: MTTKRP kernel performance (GFLOP/s)".into(),
        y_label: "GFLOP/s".into(),
        categories: cats,
        series: vec![("ParTI".into(), parti_g), ("ScalFrag".into(), scal_g)],
    };
    if let Ok(path) = scalfrag_bench::write_svg("fig9_kernel", &chart.render(860, 420)) {
        println!("(SVG written to {path})");
    }

    let min = speedups.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
    let max = speedups.iter().map(|s| s.1).fold(0.0f64, f64::max);
    println!("Speedup range: {min:.2}x – {max:.2}x  (paper: ~1.2x on vast … ~2.2x on nips)");

    let mut by_size = speedups.clone();
    by_size.sort_by_key(|s| s.2);
    let small_avg: f64 = by_size[..3].iter().map(|s| s.1).sum::<f64>() / 3.0;
    let large_avg: f64 = by_size[by_size.len() - 3..].iter().map(|s| s.1).sum::<f64>() / 3.0;
    println!("Mean speedup, 3 smallest tensors: {small_avg:.2}x; 3 largest: {large_avg:.2}x");
    println!("(Paper attributes the spread to tensor size; in this reproduction the");
    println!("spread tracks slice skew — the atomic relief of the tiled kernel — which");
    println!("correlates with the same dataset split. See EXPERIMENTS.md.)");
}
