//! The ParTI baseline (§V-A3).
//!
//! ParTI's GPU SpMTTKRP divides work by tensor non-zeros and updates
//! output slices with atomic operations; transfers are synchronous. The
//! baseline here follows the library's suggested configuration (256
//! threads per block, one thread per non-zero) and runs the atomic COO
//! kernel on the same simulated device as ScalFrag — making the Fig. 9/10
//! comparisons strategy-vs-strategy on identical hardware.

use crate::report::{MttkrpReport, PhaseTiming};
use scalfrag_exec::PlanBuilder;
use scalfrag_gpusim::{DeviceSpec, Gpu, LaunchConfig};
use scalfrag_kernels::{FactorSet, MttkrpBackend, SegmentStats};
use scalfrag_linalg::Mat;
use scalfrag_pipeline::{build_sync_plan, execute_sync, ExecMode, KernelChoice};
use scalfrag_tensor::CooTensor;

/// The ParTI baseline framework.
pub struct Parti {
    device: DeviceSpec,
}

impl Parti {
    /// A baseline bound to the given device.
    pub fn new(device: DeviceSpec) -> Self {
        Self { device }
    }

    /// A baseline on the paper's RTX 3090.
    pub fn rtx3090() -> Self {
        Self::new(DeviceSpec::rtx3090())
    }

    /// The simulated device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The launch heuristic ParTI uses for a tensor.
    pub fn launch_config(tensor: &CooTensor) -> LaunchConfig {
        LaunchConfig::parti_default(tensor.nnz())
    }

    /// Runs one end-to-end MTTKRP (functional).
    pub fn mttkrp(&self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> MttkrpReport {
        self.run(tensor, factors, mode, true)
    }

    /// Timing-only variant for sweeps.
    pub fn mttkrp_dry(&self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> MttkrpReport {
        self.run(tensor, factors, mode, false)
    }

    fn run(
        &self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
        functional: bool,
    ) -> MttkrpReport {
        let cfg = Self::launch_config(tensor);
        let mut gpu = Gpu::new(self.device.clone());
        let stats = SegmentStats::compute(tensor, mode);
        let exec = if functional { ExecMode::Functional } else { ExecMode::Dry };
        let run = execute_sync(&mut gpu, tensor, factors, mode, cfg, KernelChoice::CooAtomic, exec);
        MttkrpReport {
            backend: "parti",
            mode,
            rank: factors.rank(),
            config: cfg,
            segments: 1,
            streams: 1,
            flops: stats.flops(factors.rank() as u32),
            timing: PhaseTiming::from_timeline(&run.timeline),
            overlap_ratio: run.timeline.overlap_ratio(),
            output: run.output,
        }
    }

    /// An [`MttkrpBackend`] view (for CPD-ALS comparisons).
    pub fn backend(&self) -> PartiBackend<'_> {
        PartiBackend { ctx: self, simulated_seconds: 0.0 }
    }
}

/// The core crate's registered plan builders: the ParTI baseline as a
/// ScheduleIR plan (synchronous atomic-COO on the paper's RTX 3090,
/// heuristic launch config).
pub fn plan_builders() -> Vec<PlanBuilder> {
    vec![PlanBuilder::new("parti", |tensor, factors, mode| {
        let device = DeviceSpec::rtx3090();
        let cfg = LaunchConfig::parti_default(tensor.nnz());
        let mut p = build_sync_plan(&device, tensor, factors, mode, cfg, KernelChoice::CooAtomic);
        p.name = "parti";
        p
    })]
}

/// CPD-ALS backend adapter for [`Parti`].
pub struct PartiBackend<'a> {
    ctx: &'a Parti,
    /// Total simulated device time over all MTTKRP calls.
    pub simulated_seconds: f64,
}

impl MttkrpBackend for PartiBackend<'_> {
    fn name(&self) -> &'static str {
        "parti"
    }

    fn mttkrp(&mut self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
        let report = self.ctx.mttkrp(tensor, factors, mode);
        self.simulated_seconds += report.timing.total_s;
        report.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalfrag::ScalFrag;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn tensors() -> Vec<(CooTensor, FactorSet)> {
        let mk = |dims: &[u32], nnz: usize, skew: f64, seed: u64| {
            let t = if skew > 0.0 {
                scalfrag_tensor::gen::zipf_slices(dims, nnz, skew, seed)
            } else {
                scalfrag_tensor::gen::uniform(dims, nnz, seed)
            };
            let f = FactorSet::random(dims, 16, seed + 1);
            (t, f)
        };
        vec![
            mk(&[200, 150, 100], 10_000, 0.0, 61),
            mk(&[300, 200, 150], 12_000, 1.0, 63),
            mk(&[60, 50, 40, 30], 6_000, 0.7, 65),
        ]
    }

    #[test]
    fn parti_output_matches_reference() {
        for (t, f) in tensors() {
            let parti = Parti::rtx3090();
            let r = parti.mttkrp(&t, &f, 0);
            let expect = mttkrp_seq(&t, &f, 0);
            assert!(r.output.max_abs_diff(&expect) < 1e-2);
            assert_eq!(r.segments, 1);
            assert_eq!(r.config.block, 256);
        }
    }

    #[test]
    fn scalfrag_beats_parti_end_to_end() {
        // The Fig. 10 claim, in miniature, on timing-only runs at a scale
        // where transfer and compute are comparable.
        let dims = [2_000u32, 1_500, 1_000];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 300_000, 0.9, 67);
        let f = FactorSet::random(&dims, 16, 68);

        let parti = Parti::rtx3090();
        let r_parti = parti.mttkrp_dry(&t, &f, 0);

        let scal =
            ScalFrag::builder().fixed_config(LaunchConfig::new(4096, 256)).segments(4).build();
        let r_scal = scal.mttkrp_dry(&t, &f, 0);

        let speedup = r_parti.timing.total_s / r_scal.timing.total_s;
        assert!(
            speedup > 1.1,
            "ScalFrag should beat ParTI end-to-end, got {speedup}x\n  parti: {}\n  scal:  {}",
            r_parti.summary(),
            r_scal.summary()
        );
    }

    #[test]
    fn h2d_dominates_parti_breakdown() {
        // The §III-B motivation (Fig. 5): H2D is the largest phase.
        let dims = [2_000u32, 1_500, 1_000];
        let t = scalfrag_tensor::gen::uniform(&dims, 200_000, 71);
        let f = FactorSet::random(&dims, 16, 72);
        let r = Parti::rtx3090().mttkrp_dry(&t, &f, 0);
        assert!(
            r.timing.h2d_s > r.timing.kernel_s,
            "H2D {} should exceed kernel {}",
            r.timing.h2d_s,
            r.timing.kernel_s
        );
        assert!(r.timing.h2d_s > r.timing.d2h_s);
        assert!(r.timing.h2d_fraction() > 0.4);
    }

    #[test]
    fn parti_backend_drives_cpd() {
        let (t, _) = &tensors()[0];
        let parti = Parti::rtx3090();
        let mut backend = parti.backend();
        let opts = scalfrag_kernels::CpdOptions {
            rank: 4,
            max_iters: 2,
            tol: 0.0,
            seed: 9,
            nonnegative: false,
        };
        let res = scalfrag_kernels::cpd_als(t, &opts, &mut backend);
        assert_eq!(res.iters, 2);
        assert!(backend.simulated_seconds > 0.0);
    }
}
