//! The multi-GPU ScalFrag facade: the [`ScalFrag`](crate::ScalFrag)
//! builder pattern lifted onto a [`NodeSpec`] of simulated devices.

use crate::report::PhaseTiming;
use scalfrag_autotune::TrainedPredictor;
use scalfrag_cluster::{
    execute_cluster, execute_cluster_resilient, ClusterOptions, ClusterRun, DeviceScheduler,
    ExecMode, FaultRecoveryPolicy, NodeSpec, ResilientClusterRun, ShardPolicy,
};
use scalfrag_faults::FaultInjector;
use scalfrag_gpusim::{DeviceSpec, LaunchConfig};
use scalfrag_kernels::FactorSet;
use scalfrag_linalg::Mat;
use scalfrag_pipeline::KernelChoice;
use scalfrag_tensor::{CooTensor, TensorFeatures};

/// Feature toggles of the cluster stack — the multi-GPU ablation surface.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Pick the launch configuration with the trained predictor (per
    /// shard-sized tensor features); otherwise use `fixed_config` or the
    /// ParTI heuristic.
    pub adaptive_launch: bool,
    /// Launch the shared-memory tiled kernel instead of the atomic COO
    /// kernel.
    pub tiled_kernel: bool,
    /// How the tensor is cut into shards.
    pub shard_policy: ShardPolicy,
    /// How shards are placed on devices.
    pub scheduler: DeviceScheduler,
    /// Shard count override. `None` = `2 × num_devices`. Pin this
    /// explicitly when comparing node sizes: the numeric output is bitwise
    /// stable across device counts only for a fixed shard count.
    pub shards: Option<usize>,
    /// Pipeline segments per shard.
    pub segments_per_shard: usize,
    /// Streams per device.
    pub streams_per_device: usize,
    /// Launch configuration override used when `adaptive_launch` is off.
    pub fixed_config: Option<LaunchConfig>,
    /// Seed for predictor training.
    pub train_seed: u64,
    /// Non-zero tiers for predictor training (`None` = autotune defaults).
    pub train_tiers: Option<Vec<usize>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            adaptive_launch: true,
            tiled_kernel: true,
            shard_policy: ShardPolicy::SliceAligned,
            scheduler: DeviceScheduler::Lpt,
            shards: None,
            segments_per_shard: 2,
            streams_per_device: 2,
            fixed_config: None,
            train_seed: 0x5ca1,
            train_tiers: None,
        }
    }
}

/// Builder for [`ClusterScalFrag`].
pub struct ClusterScalFragBuilder {
    node: NodeSpec,
    config: ClusterConfig,
    predictor: Option<TrainedPredictor>,
}

impl ClusterScalFragBuilder {
    /// Sets the node (default: 2 × RTX 3090 with shared-host contention).
    pub fn node(mut self, node: NodeSpec) -> Self {
        self.node = node;
        self
    }

    /// Enables/disables the adaptive launching strategy.
    pub fn adaptive_launch(mut self, on: bool) -> Self {
        self.config.adaptive_launch = on;
        self
    }

    /// Enables/disables the tiled kernel.
    pub fn tiled_kernel(mut self, on: bool) -> Self {
        self.config.tiled_kernel = on;
        self
    }

    /// Sets the shard policy.
    pub fn shard_policy(mut self, p: ShardPolicy) -> Self {
        self.config.shard_policy = p;
        self
    }

    /// Sets the device scheduler.
    pub fn scheduler(mut self, s: DeviceScheduler) -> Self {
        self.config.scheduler = s;
        self
    }

    /// Pins the shard count (required for bitwise-stable comparisons
    /// across different device counts).
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = Some(n);
        self
    }

    /// Sets pipeline segments per shard.
    pub fn segments(mut self, n: usize) -> Self {
        self.config.segments_per_shard = n;
        self
    }

    /// Sets streams per device.
    pub fn streams(mut self, n: usize) -> Self {
        self.config.streams_per_device = n;
        self
    }

    /// Overrides the nnz tiers used to train the launch predictor.
    pub fn train_tiers(mut self, tiers: Vec<usize>) -> Self {
        self.config.train_tiers = Some(tiers);
        self
    }

    /// Pins a fixed launch configuration (implies `adaptive_launch(false)`).
    pub fn fixed_config(mut self, c: LaunchConfig) -> Self {
        self.config.fixed_config = Some(c);
        self.config.adaptive_launch = false;
        self
    }

    /// Shares an already-created [`TrainedPredictor`] handle instead of
    /// training privately (see [`crate::ScalFragBuilder::predictor`]).
    pub fn predictor(mut self, handle: TrainedPredictor) -> Self {
        self.predictor = Some(handle);
        self
    }

    /// Finalises the framework instance.
    pub fn build(self) -> ClusterScalFrag {
        let predictor = self.predictor.unwrap_or_else(|| {
            // Train against the node's first device; the launch space is
            // shared by all devices in the node.
            TrainedPredictor::train_once(
                &self.node.devices[0],
                self.config.train_seed,
                self.config.train_tiers.clone(),
            )
        });
        ClusterScalFrag { node: self.node, config: self.config, predictor }
    }
}

/// The multi-GPU ScalFrag framework: shard → schedule → per-device
/// pipeline → reduce, behind the same builder/report surface as the
/// single-GPU [`ScalFrag`](crate::ScalFrag).
pub struct ClusterScalFrag {
    node: NodeSpec,
    config: ClusterConfig,
    predictor: TrainedPredictor,
}

impl ClusterScalFrag {
    /// Starts a builder with the defaults: 2 × RTX 3090 behind a shared
    /// host link, slice-aligned shards, LPT placement, everything on.
    pub fn builder() -> ClusterScalFragBuilder {
        ClusterScalFragBuilder {
            node: NodeSpec::homogeneous(DeviceSpec::rtx3090(), 2),
            config: ClusterConfig::default(),
            predictor: None,
        }
    }

    /// The node model.
    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The shared trained-predictor handle.
    pub fn trained_predictor(&self) -> &TrainedPredictor {
        &self.predictor
    }

    /// Selects the launch configuration for `(tensor, mode)`.
    pub fn select_config(&self, tensor: &CooTensor, mode: usize, rank: u32) -> LaunchConfig {
        if self.config.adaptive_launch {
            let features = TensorFeatures::extract(tensor, mode).to_vec();
            self.predictor.for_rank(rank).predict_from_features(&features)
        } else {
            self.config.fixed_config.unwrap_or_else(|| LaunchConfig::parti_default(tensor.nnz()))
        }
    }

    fn options(&self, cfg: LaunchConfig) -> ClusterOptions {
        let num_shards = self.config.shards.unwrap_or(2 * self.node.num_devices());
        ClusterOptions {
            kernel: if self.config.tiled_kernel {
                KernelChoice::Tiled
            } else {
                KernelChoice::CooAtomic
            },
            policy: self.config.shard_policy,
            scheduler: self.config.scheduler,
            num_shards,
            segments_per_shard: self.config.segments_per_shard,
            streams_per_device: self.config.streams_per_device,
            config: cfg,
        }
    }

    /// Runs one end-to-end multi-device MTTKRP (functional).
    pub fn mttkrp(
        &self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
    ) -> ClusterMttkrpReport {
        self.run(tensor, factors, mode, true)
    }

    /// Timing-only variant for benchmark sweeps.
    pub fn mttkrp_dry(
        &self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
    ) -> ClusterMttkrpReport {
        self.run(tensor, factors, mode, false)
    }

    /// Runs one multi-device MTTKRP under injected faults, recovering per
    /// `policy` (segment retries, transient-outage waits and — in
    /// re-shard mode — placement of a dead device's shards onto the
    /// survivors). When the run completes fully, the output is bitwise
    /// identical to [`ClusterScalFrag::mttkrp`] on the same inputs.
    pub fn mttkrp_resilient(
        &self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
        injector: &mut FaultInjector,
        policy: &FaultRecoveryPolicy,
    ) -> ResilientClusterMttkrpReport {
        let rank = factors.rank();
        let cfg = self.select_config(tensor, mode, rank as u32);
        let opts = self.options(cfg);
        let stats = scalfrag_kernels::SegmentStats::compute(tensor, mode);
        let run = execute_cluster_resilient(
            &self.node,
            tensor,
            factors,
            mode,
            &opts,
            injector,
            policy,
            ExecMode::Functional,
        );
        let report = ClusterMttkrpReport {
            mode,
            rank,
            config: opts.kernel.full_config(cfg, rank as u32),
            num_shards: run.num_shards,
            per_device: run
                .devices
                .iter()
                .map(|d| PhaseTiming::from_timeline(&d.timeline))
                .collect(),
            device_names: run.devices.iter().map(|d| d.device_name).collect(),
            assignments: run.devices.iter().map(|d| d.shard_indices.clone()).collect(),
            reduction_s: run.reduction_s,
            total_s: run.makespan(),
            flops: stats.flops(rank as u32),
            output: run.output.clone(),
        };
        ResilientClusterMttkrpReport::new(report, &run)
    }

    fn run(
        &self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
        functional: bool,
    ) -> ClusterMttkrpReport {
        let rank = factors.rank();
        let cfg = self.select_config(tensor, mode, rank as u32);
        let opts = self.options(cfg);
        let stats = scalfrag_kernels::SegmentStats::compute(tensor, mode);
        let exec = if functional { ExecMode::Functional } else { ExecMode::Dry };
        let run = execute_cluster(&self.node, tensor, factors, mode, &opts, exec);
        ClusterMttkrpReport::new(
            &run,
            mode,
            rank,
            opts.kernel.full_config(cfg, rank as u32),
            stats.flops(rank as u32),
        )
    }
}

/// The result of one multi-device MTTKRP.
#[derive(Clone, Debug)]
pub struct ClusterMttkrpReport {
    /// Target mode.
    pub mode: usize,
    /// CPD rank.
    pub rank: usize,
    /// The launch configuration the kernels ran with.
    pub config: LaunchConfig,
    /// Number of shards the tensor was cut into.
    pub num_shards: usize,
    /// Per-device phase breakdowns, index-aligned with the node's device
    /// list (idle devices report zeros).
    pub per_device: Vec<PhaseTiming>,
    /// Device names, index-aligned with `per_device`.
    pub device_names: Vec<&'static str>,
    /// Global shard indices each device executed.
    pub assignments: Vec<Vec<usize>>,
    /// Simulated seconds of the cross-shard reduction stage.
    pub reduction_s: f64,
    /// Cluster makespan: slowest device + reduction (s).
    pub total_s: f64,
    /// MTTKRP FLOPs.
    pub flops: u64,
    /// The MTTKRP output (zeros for dry runs).
    pub output: Mat,
}

impl ClusterMttkrpReport {
    fn new(run: &ClusterRun, mode: usize, rank: usize, config: LaunchConfig, flops: u64) -> Self {
        Self {
            mode,
            rank,
            config,
            num_shards: run.num_shards,
            per_device: run
                .devices
                .iter()
                .map(|d| PhaseTiming::from_timeline(&d.timeline))
                .collect(),
            device_names: run.devices.iter().map(|d| d.device_name).collect(),
            assignments: run.devices.iter().map(|d| d.shard_indices.clone()).collect(),
            reduction_s: run.reduction_s,
            total_s: run.makespan(),
            flops,
            output: run.output.clone(),
        }
    }

    /// Number of devices in the node (including idle ones).
    pub fn num_devices(&self) -> usize {
        self.per_device.len()
    }

    /// End-to-end achieved GFLOP/s across the node.
    pub fn e2e_gflops(&self) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.total_s / 1e9
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let busiest = self.per_device.iter().map(|p| p.total_s).fold(0.0, f64::max);
        format!(
            "cluster   mode-{} {} gpus={} shards={} | busiest {:.3}ms reduce {:.3}ms | total {:.3}ms ({:.1} GF/s e2e)",
            self.mode,
            self.config,
            self.num_devices(),
            self.num_shards,
            busiest * 1e3,
            self.reduction_s * 1e3,
            self.total_s * 1e3,
            self.e2e_gflops(),
        )
    }
}

/// A [`ClusterMttkrpReport`] plus the fault-recovery bookkeeping of the
/// run that produced it.
#[derive(Clone, Debug)]
pub struct ResilientClusterMttkrpReport {
    /// The usual cluster report (output, per-device timings, makespan).
    pub report: ClusterMttkrpReport,
    /// Segments permanently lost (0 when recovery succeeded everywhere).
    pub failed_segments: usize,
    /// Segments that completed somewhere.
    pub completed_segments: usize,
    /// Segments rescued by re-sharding onto a surviving device.
    pub replaced_segments: usize,
    /// Total segment retry attempts beyond the first.
    pub retries: usize,
    /// Devices that died permanently during the run.
    pub dead_devices: Vec<usize>,
}

impl ResilientClusterMttkrpReport {
    fn new(report: ClusterMttkrpReport, run: &ResilientClusterRun) -> Self {
        Self {
            report,
            failed_segments: run.failed_segments,
            completed_segments: run.completed_segments,
            replaced_segments: run.replaced_segments,
            retries: run.retries,
            dead_devices: run.dead_devices.clone(),
        }
    }

    /// True when every segment completed despite the faults.
    pub fn all_complete(&self) -> bool {
        self.failed_segments == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn small() -> (CooTensor, FactorSet) {
        let dims = [150u32, 100, 80];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 8_000, 0.9, 51);
        let f = FactorSet::random(&dims, 16, 52);
        (t, f)
    }

    #[test]
    fn cluster_facade_matches_reference() {
        let (t, f) = small();
        let ctx = ClusterScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).build();
        let r = ctx.mttkrp(&t, &f, 0);
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(r.output.max_abs_diff(&expect) < 1e-2, "diff {}", r.output.max_abs_diff(&expect));
        assert_eq!(r.num_devices(), 2);
        assert_eq!(r.num_shards, 4, "default shards = 2 × devices");
        assert!(r.total_s > 0.0);
        assert_eq!(r.reduction_s, 0.0, "slice-aligned default reduces for free");
    }

    #[test]
    fn more_devices_cut_the_makespan() {
        let (t, f) = small();
        let run = |n: usize| {
            ClusterScalFrag::builder()
                .node(NodeSpec::homogeneous(DeviceSpec::rtx3090(), n))
                .fixed_config(LaunchConfig::new(1024, 256))
                .shards(4)
                .build()
                .mttkrp_dry(&t, &f, 0)
                .total_s
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "2 GPUs ({two}s) must beat 1 GPU ({one}s)");
    }

    #[test]
    fn adaptive_launch_trains_once_per_rank() {
        let (t, f) = small();
        let ctx = ClusterScalFrag::builder().train_tiers(vec![3_000, 12_000]).build();
        let c1 = ctx.select_config(&t, 0, f.rank() as u32);
        let c2 = ctx.select_config(&t, 0, f.rank() as u32);
        assert_eq!(c1, c2, "cached predictor must be deterministic");
        assert!(c1.validate(&ctx.node().devices[0]).is_ok());
    }

    #[test]
    fn resilient_facade_recovers_a_dead_device_bit_exactly() {
        use scalfrag_faults::{FaultKind, FaultPlan, FaultTrigger};
        let (t, f) = small();
        let ctx =
            ClusterScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).shards(4).build();
        let clean = ctx.mttkrp(&t, &f, 0);
        let mut inj = FaultInjector::new(FaultPlan::new().fault(
            1,
            FaultTrigger::AtOp(2),
            FaultKind::DeviceFail { down_s: None },
        ));
        let r = ctx.mttkrp_resilient(&t, &f, 0, &mut inj, &FaultRecoveryPolicy::retry_reshard());
        assert!(r.all_complete(), "re-sharding must rescue the dead device's shards");
        assert_eq!(r.dead_devices, vec![1]);
        assert!(r.replaced_segments > 0);
        let same = clean
            .output
            .as_slice()
            .iter()
            .zip(r.report.output.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "recovered output must be bitwise identical to the fault-free run");
    }

    #[test]
    fn report_summary_mentions_the_node_shape() {
        let (t, f) = small();
        let ctx =
            ClusterScalFrag::builder().fixed_config(LaunchConfig::new(512, 256)).shards(3).build();
        let r = ctx.mttkrp_dry(&t, &f, 1);
        let s = r.summary();
        assert!(s.contains("gpus=2") && s.contains("shards=3"), "{s}");
    }
}
