//! End-to-end MTTKRP execution reports — the measurements every figure of
//! the evaluation section is drawn from.

use scalfrag_gpusim::{LaunchConfig, Timeline};
use scalfrag_linalg::Mat;

/// Per-phase busy times of one MTTKRP execution (the Fig. 5 bars).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTiming {
    /// Host→device transfer busy time (s).
    pub h2d_s: f64,
    /// Kernel busy time (s).
    pub kernel_s: f64,
    /// Device→host transfer busy time (s).
    pub d2h_s: f64,
    /// Host-CPU task busy time (s).
    pub host_s: f64,
    /// Time spent queued before execution started (s) — zero for one-shot
    /// runs; the serving layer fills it in. Queue wait is *not* busy time:
    /// it is excluded from [`PhaseTiming::busy_s`] and
    /// [`PhaseTiming::h2d_fraction`] but included in
    /// [`PhaseTiming::total`].
    pub queue_s: f64,
    /// Time spent waiting for a batch group to close after leaving the
    /// queue (s) — zero for solo dispatch; the batch-fused serving layer
    /// fills it in for every member of a fused group. Like `queue_s` it is
    /// idle time: excluded from [`PhaseTiming::busy_s`] and
    /// [`PhaseTiming::h2d_fraction`], included in [`PhaseTiming::total`].
    pub batch_wait_s: f64,
    /// Execution makespan (s), from first phase start to last phase end —
    /// smaller than the busy sum when phases overlap. Excludes queue wait
    /// and batch wait.
    pub total_s: f64,
}

impl PhaseTiming {
    /// Extracts phase timing from a timeline (queue wait zero).
    pub fn from_timeline(t: &Timeline) -> Self {
        let (h2d_s, kernel_s, d2h_s, host_s) = t.breakdown();
        Self {
            h2d_s,
            kernel_s,
            d2h_s,
            host_s,
            queue_s: 0.0,
            batch_wait_s: 0.0,
            total_s: t.makespan(),
        }
    }

    /// Returns `self` with the queue wait filled in.
    pub fn with_queue(mut self, queue_s: f64) -> Self {
        self.queue_s = queue_s;
        self
    }

    /// Returns `self` with the batch-formation wait filled in.
    pub fn with_batch_wait(mut self, batch_wait_s: f64) -> Self {
        self.batch_wait_s = batch_wait_s;
        self
    }

    /// Sum of all busy phases — H2D + kernel + D2H + host. Every phase is
    /// accounted for here; queue wait is idle time and deliberately not
    /// part of the sum.
    pub fn busy_s(&self) -> f64 {
        self.h2d_s + self.kernel_s + self.d2h_s + self.host_s
    }

    /// End-to-end latency: queue wait plus batch-formation wait plus
    /// execution makespan.
    pub fn total(&self) -> f64 {
        self.queue_s + self.batch_wait_s + self.total_s
    }

    /// Fraction of total busy time spent in H2D — the §III-B observation
    /// that "H2D takes up the vast majority of the time".
    pub fn h2d_fraction(&self) -> f64 {
        let busy = self.busy_s();
        if busy <= 0.0 {
            0.0
        } else {
            self.h2d_s / busy
        }
    }

    /// Structural consistency check: every phase is non-negative and
    /// finite, and the makespan is bounded below by the busiest single
    /// engine (engines are exclusive, so no engine can be busy longer than
    /// the whole execution) and above by the serialized busy sum plus
    /// dependency slack.
    pub fn check_consistency(&self) -> Result<(), String> {
        const EPS: f64 = 1e-9;
        let phases = [
            ("h2d_s", self.h2d_s),
            ("kernel_s", self.kernel_s),
            ("d2h_s", self.d2h_s),
            ("host_s", self.host_s),
            ("queue_s", self.queue_s),
            ("batch_wait_s", self.batch_wait_s),
            ("total_s", self.total_s),
        ];
        for (name, v) in phases {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} = {v} is not a finite non-negative time"));
            }
        }
        let busiest = self.h2d_s.max(self.kernel_s).max(self.d2h_s).max(self.host_s);
        if self.total_s + EPS < busiest {
            return Err(format!("makespan {} shorter than busiest engine {busiest}", self.total_s));
        }
        Ok(())
    }
}

/// The result of one end-to-end MTTKRP through a framework backend.
#[derive(Clone, Debug)]
pub struct MttkrpReport {
    /// Framework name (`"scalfrag"` / `"parti"`).
    pub backend: &'static str,
    /// Target mode.
    pub mode: usize,
    /// CPD rank.
    pub rank: usize,
    /// The launch configuration the kernel ran with.
    pub config: LaunchConfig,
    /// Number of pipeline segments used (1 = synchronous).
    pub segments: usize,
    /// Number of streams used.
    pub streams: usize,
    /// MTTKRP FLOPs.
    pub flops: u64,
    /// Phase breakdown.
    pub timing: PhaseTiming,
    /// Overlap ratio of the schedule (0 = serial).
    pub overlap_ratio: f64,
    /// The MTTKRP output (zeros for dry runs).
    pub output: Mat,
}

impl MttkrpReport {
    /// Kernel-only achieved GFLOP/s (the Fig. 9 metric).
    pub fn kernel_gflops(&self) -> f64 {
        if self.timing.kernel_s <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.timing.kernel_s / 1e9
        }
    }

    /// End-to-end achieved GFLOP/s (the Fig. 10 metric).
    pub fn e2e_gflops(&self) -> f64 {
        if self.timing.total_s <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.timing.total_s / 1e9
        }
    }

    /// One-line human-readable summary. The host phase used to be silently
    /// dropped from the breakdown; it now shows whenever a hybrid run put
    /// work on the CPU.
    pub fn summary(&self) -> String {
        let host = if self.timing.host_s > 0.0 {
            format!(" host {:.3}ms", self.timing.host_s * 1e3)
        } else {
            String::new()
        };
        format!(
            "{:<9} mode-{} {} segs={} streams={} | H2D {:.3}ms kernel {:.3}ms D2H {:.3}ms{host} | total {:.3}ms ({:.1} GF/s kernel, {:.1} GF/s e2e, overlap {:.0}%)",
            self.backend,
            self.mode,
            self.config,
            self.segments,
            self.streams,
            self.timing.h2d_s * 1e3,
            self.timing.kernel_s * 1e3,
            self.timing.d2h_s * 1e3,
            self.timing.total_s * 1e3,
            self.kernel_gflops(),
            self.e2e_gflops(),
            self.overlap_ratio * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::{Engine, Span, SpanKind};

    fn span(engine: Engine, start: f64, end: f64) -> Span {
        Span { op: 0, stream: 0, engine, kind: SpanKind::Kernel, label: String::new(), start, end }
    }

    #[test]
    fn phase_timing_from_timeline() {
        let t = Timeline {
            spans: vec![
                span(Engine::H2D, 0.0, 3.0),
                span(Engine::Compute, 3.0, 4.0),
                span(Engine::D2H, 4.0, 4.5),
            ],
        };
        let p = PhaseTiming::from_timeline(&t);
        assert_eq!(p.h2d_s, 3.0);
        assert_eq!(p.kernel_s, 1.0);
        assert_eq!(p.d2h_s, 0.5);
        assert_eq!(p.total_s, 4.5);
        assert!((p.h2d_fraction() - 3.0 / 4.5).abs() < 1e-12);
    }

    #[test]
    fn gflops_and_summary() {
        let r = MttkrpReport {
            backend: "scalfrag",
            mode: 0,
            rank: 16,
            config: LaunchConfig::new(1024, 256),
            segments: 4,
            streams: 4,
            flops: 2_000_000_000,
            timing: PhaseTiming {
                h2d_s: 0.01,
                kernel_s: 0.004,
                d2h_s: 0.001,
                host_s: 0.0,
                queue_s: 0.0,
                batch_wait_s: 0.0,
                total_s: 0.012,
            },
            overlap_ratio: 0.2,
            output: Mat::zeros(1, 1),
        };
        assert!((r.kernel_gflops() - 500.0).abs() < 1e-9);
        assert!((r.e2e_gflops() - 2_000.0 / 12.0).abs() < 1e-6);
        let s = r.summary();
        assert!(s.contains("scalfrag") && s.contains("segs=4"));
    }

    #[test]
    fn zero_time_is_safe() {
        let p = PhaseTiming::default();
        assert_eq!(p.h2d_fraction(), 0.0);
        assert!(p.check_consistency().is_ok());
    }

    #[test]
    fn queue_wait_extends_total_but_not_busy() {
        let t =
            Timeline { spans: vec![span(Engine::H2D, 0.0, 2.0), span(Engine::Compute, 2.0, 3.0)] };
        let p = PhaseTiming::from_timeline(&t).with_queue(1.5);
        assert_eq!(p.queue_s, 1.5);
        assert_eq!(p.busy_s(), 3.0, "queue wait is not busy time");
        assert_eq!(p.total_s, 3.0);
        assert_eq!(p.total(), 4.5, "end-to-end latency includes the wait");
        assert!((p.h2d_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(p.check_consistency().is_ok());
    }

    #[test]
    fn consistency_check_catches_impossible_timings() {
        // Makespan shorter than the busiest engine is impossible.
        let bad = PhaseTiming { h2d_s: 3.0, total_s: 2.0, ..Default::default() };
        assert!(bad.check_consistency().is_err());
        let negative = PhaseTiming { kernel_s: -1.0, ..Default::default() };
        assert!(negative.check_consistency().is_err());
        let nan = PhaseTiming { queue_s: f64::NAN, ..Default::default() };
        assert!(nan.check_consistency().is_err());
        // The batch-formation wait is a phase like any other: negative or
        // non-finite values must fail the structural check.
        let neg_batch = PhaseTiming { batch_wait_s: -0.5, ..Default::default() };
        assert!(neg_batch.check_consistency().is_err());
        let inf_batch = PhaseTiming { batch_wait_s: f64::INFINITY, ..Default::default() };
        assert!(inf_batch.check_consistency().is_err());
    }

    #[test]
    fn batch_wait_extends_total_but_not_busy() {
        let t =
            Timeline { spans: vec![span(Engine::H2D, 0.0, 2.0), span(Engine::Compute, 2.0, 3.0)] };
        let p = PhaseTiming::from_timeline(&t).with_queue(1.0).with_batch_wait(0.5);
        assert_eq!(p.batch_wait_s, 0.5);
        assert_eq!(p.busy_s(), 3.0, "batch wait is idle time, not busy time");
        assert_eq!(p.total_s, 3.0, "makespan excludes the batch wait");
        assert_eq!(p.total(), 4.5, "end-to-end latency includes queue and batch waits");
        assert!((p.h2d_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(p.check_consistency().is_ok());
    }

    #[test]
    fn hybrid_host_phase_shows_in_summary() {
        let mut r = MttkrpReport {
            backend: "scalfrag",
            mode: 0,
            rank: 16,
            config: LaunchConfig::new(1024, 256),
            segments: 4,
            streams: 4,
            flops: 1_000,
            timing: PhaseTiming {
                h2d_s: 0.01,
                kernel_s: 0.004,
                d2h_s: 0.001,
                host_s: 0.002,
                queue_s: 0.0,
                batch_wait_s: 0.0,
                total_s: 0.012,
            },
            overlap_ratio: 0.0,
            output: Mat::zeros(1, 1),
        };
        assert!(r.summary().contains("host"), "host phase must not be silently dropped");
        r.timing.host_s = 0.0;
        assert!(!r.summary().contains("host"));
    }
}
