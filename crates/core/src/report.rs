//! End-to-end MTTKRP execution reports — the measurements every figure of
//! the evaluation section is drawn from.

use scalfrag_gpusim::{LaunchConfig, Timeline};
use scalfrag_linalg::Mat;

/// Per-phase busy times of one MTTKRP execution (the Fig. 5 bars).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTiming {
    /// Host→device transfer busy time (s).
    pub h2d_s: f64,
    /// Kernel busy time (s).
    pub kernel_s: f64,
    /// Device→host transfer busy time (s).
    pub d2h_s: f64,
    /// Host-CPU task busy time (s).
    pub host_s: f64,
    /// End-to-end makespan (s) — smaller than the sum when phases overlap.
    pub total_s: f64,
}

impl PhaseTiming {
    /// Extracts phase timing from a timeline.
    pub fn from_timeline(t: &Timeline) -> Self {
        let (h2d_s, kernel_s, d2h_s, host_s) = t.breakdown();
        Self { h2d_s, kernel_s, d2h_s, host_s, total_s: t.makespan() }
    }

    /// Fraction of total busy time spent in H2D — the §III-B observation
    /// that "H2D takes up the vast majority of the time".
    pub fn h2d_fraction(&self) -> f64 {
        let busy = self.h2d_s + self.kernel_s + self.d2h_s + self.host_s;
        if busy <= 0.0 {
            0.0
        } else {
            self.h2d_s / busy
        }
    }
}

/// The result of one end-to-end MTTKRP through a framework backend.
#[derive(Clone, Debug)]
pub struct MttkrpReport {
    /// Framework name (`"scalfrag"` / `"parti"`).
    pub backend: &'static str,
    /// Target mode.
    pub mode: usize,
    /// CPD rank.
    pub rank: usize,
    /// The launch configuration the kernel ran with.
    pub config: LaunchConfig,
    /// Number of pipeline segments used (1 = synchronous).
    pub segments: usize,
    /// Number of streams used.
    pub streams: usize,
    /// MTTKRP FLOPs.
    pub flops: u64,
    /// Phase breakdown.
    pub timing: PhaseTiming,
    /// Overlap ratio of the schedule (0 = serial).
    pub overlap_ratio: f64,
    /// The MTTKRP output (zeros for dry runs).
    pub output: Mat,
}

impl MttkrpReport {
    /// Kernel-only achieved GFLOP/s (the Fig. 9 metric).
    pub fn kernel_gflops(&self) -> f64 {
        if self.timing.kernel_s <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.timing.kernel_s / 1e9
        }
    }

    /// End-to-end achieved GFLOP/s (the Fig. 10 metric).
    pub fn e2e_gflops(&self) -> f64 {
        if self.timing.total_s <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.timing.total_s / 1e9
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<9} mode-{} {} segs={} streams={} | H2D {:.3}ms kernel {:.3}ms D2H {:.3}ms | total {:.3}ms ({:.1} GF/s kernel, {:.1} GF/s e2e, overlap {:.0}%)",
            self.backend,
            self.mode,
            self.config,
            self.segments,
            self.streams,
            self.timing.h2d_s * 1e3,
            self.timing.kernel_s * 1e3,
            self.timing.d2h_s * 1e3,
            self.timing.total_s * 1e3,
            self.kernel_gflops(),
            self.e2e_gflops(),
            self.overlap_ratio * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_gpusim::{Engine, Span, SpanKind};

    fn span(engine: Engine, start: f64, end: f64) -> Span {
        Span { op: 0, stream: 0, engine, kind: SpanKind::Kernel, label: String::new(), start, end }
    }

    #[test]
    fn phase_timing_from_timeline() {
        let t = Timeline {
            spans: vec![
                span(Engine::H2D, 0.0, 3.0),
                span(Engine::Compute, 3.0, 4.0),
                span(Engine::D2H, 4.0, 4.5),
            ],
        };
        let p = PhaseTiming::from_timeline(&t);
        assert_eq!(p.h2d_s, 3.0);
        assert_eq!(p.kernel_s, 1.0);
        assert_eq!(p.d2h_s, 0.5);
        assert_eq!(p.total_s, 4.5);
        assert!((p.h2d_fraction() - 3.0 / 4.5).abs() < 1e-12);
    }

    #[test]
    fn gflops_and_summary() {
        let r = MttkrpReport {
            backend: "scalfrag",
            mode: 0,
            rank: 16,
            config: LaunchConfig::new(1024, 256),
            segments: 4,
            streams: 4,
            flops: 2_000_000_000,
            timing: PhaseTiming {
                h2d_s: 0.01,
                kernel_s: 0.004,
                d2h_s: 0.001,
                host_s: 0.0,
                total_s: 0.012,
            },
            overlap_ratio: 0.2,
            output: Mat::zeros(1, 1),
        };
        assert!((r.kernel_gflops() - 500.0).abs() < 1e-9);
        assert!((r.e2e_gflops() - 2_000.0 / 12.0).abs() < 1e-6);
        let s = r.summary();
        assert!(s.contains("scalfrag") && s.contains("segs=4"));
    }

    #[test]
    fn zero_time_is_safe() {
        let p = PhaseTiming::default();
        assert_eq!(p.h2d_fraction(), 0.0);
    }
}
