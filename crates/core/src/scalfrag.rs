//! The ScalFrag framework facade (Fig. 6).

use crate::report::{MttkrpReport, PhaseTiming};
use scalfrag_autotune::TrainedPredictor;
use scalfrag_gpusim::{DeviceSpec, Gpu, LaunchConfig};
use scalfrag_kernels::{FactorSet, MttkrpBackend};
use scalfrag_linalg::Mat;
use scalfrag_pipeline::{
    execute_hybrid, execute_pipelined, execute_sync, split_by_slice_population, ExecMode,
    KernelChoice, PipelinePlan,
};
use scalfrag_tensor::{CooTensor, TensorFeatures};

/// Feature toggles for the ScalFrag stack — the ablation surface.
#[derive(Clone, Debug)]
pub struct ScalFragConfig {
    /// Use the trained predictor to pick the launch configuration
    /// (§IV-B); otherwise fall back to `fixed_config` or the ParTI
    /// heuristic.
    pub adaptive_launch: bool,
    /// Launch the shared-memory tiled kernel (§IV-A) instead of the plain
    /// atomic COO kernel.
    pub tiled_kernel: bool,
    /// Launch the load-balanced segmented-scan kernel (`balance-segscan`):
    /// fixed-nnz chunks + carry chain, immune to slice/fiber skew. Takes
    /// priority over `tiled_kernel`.
    pub balanced_kernel: bool,
    /// Launch the FLYCOO mode-agnostic kernel (`balance-flycoo`): one
    /// tensor copy + per-mode remap tables, no re-tiling between modes.
    /// Takes priority over `tiled_kernel`; `balanced_kernel` wins if both
    /// are set.
    pub mode_agnostic_kernel: bool,
    /// Segment the tensor and overlap transfers with compute (§IV-C);
    /// otherwise execute synchronously.
    pub pipelined: bool,
    /// Route near-empty slices to the host CPU (§I's hybrid optimisation).
    pub hybrid: bool,
    /// Slice-population threshold for the hybrid split.
    pub hybrid_threshold: u32,
    /// Segment count override (`None` = auto from device memory, min 4).
    pub segments: Option<usize>,
    /// Stream count override (`None` = auto).
    pub streams: Option<usize>,
    /// Launch configuration override used when `adaptive_launch` is off.
    pub fixed_config: Option<LaunchConfig>,
    /// Seed for predictor training.
    pub train_seed: u64,
    /// Non-zero tiers for predictor training (`None` = the autotune
    /// crate's defaults, which cover ~3 K – 2 M nnz).
    pub train_tiers: Option<Vec<usize>>,
}

impl Default for ScalFragConfig {
    fn default() -> Self {
        Self {
            adaptive_launch: true,
            tiled_kernel: true,
            balanced_kernel: false,
            mode_agnostic_kernel: false,
            pipelined: true,
            hybrid: false,
            hybrid_threshold: 4,
            segments: None,
            streams: None,
            fixed_config: None,
            train_seed: 0x5ca1,
            train_tiers: None,
        }
    }
}

/// Builder for [`ScalFrag`].
pub struct ScalFragBuilder {
    device: DeviceSpec,
    config: ScalFragConfig,
    predictor: Option<TrainedPredictor>,
}

impl ScalFragBuilder {
    /// Sets the simulated device (default: RTX 3090).
    pub fn device(mut self, d: DeviceSpec) -> Self {
        self.device = d;
        self
    }

    /// Enables/disables the adaptive launching strategy.
    pub fn adaptive_launch(mut self, on: bool) -> Self {
        self.config.adaptive_launch = on;
        self
    }

    /// Enables/disables the tiled kernel.
    pub fn tiled_kernel(mut self, on: bool) -> Self {
        self.config.tiled_kernel = on;
        self
    }

    /// Enables/disables the load-balanced segmented-scan kernel (takes
    /// priority over `tiled_kernel`).
    pub fn balanced_kernel(mut self, on: bool) -> Self {
        self.config.balanced_kernel = on;
        self
    }

    /// Enables/disables the FLYCOO mode-agnostic kernel (takes priority
    /// over `tiled_kernel`; loses to `balanced_kernel`).
    pub fn mode_agnostic_kernel(mut self, on: bool) -> Self {
        self.config.mode_agnostic_kernel = on;
        self
    }

    /// Enables/disables pipelined execution.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.config.pipelined = on;
        self
    }

    /// Enables/disables the CPU–GPU hybrid split.
    pub fn hybrid(mut self, on: bool) -> Self {
        self.config.hybrid = on;
        self
    }

    /// Slice-population threshold below which slices run on the host
    /// (only meaningful with `hybrid(true)`).
    pub fn hybrid_threshold(mut self, t: u32) -> Self {
        self.config.hybrid_threshold = t;
        self
    }

    /// Overrides the segment count.
    pub fn segments(mut self, n: usize) -> Self {
        self.config.segments = Some(n);
        self
    }

    /// Overrides the stream count.
    pub fn streams(mut self, n: usize) -> Self {
        self.config.streams = Some(n);
        self
    }

    /// Overrides the nnz tiers used to train the launch predictor (useful
    /// for fast tests; defaults cover the full deployment range).
    pub fn train_tiers(mut self, tiers: Vec<usize>) -> Self {
        self.config.train_tiers = Some(tiers);
        self
    }

    /// Pins a fixed launch configuration (implies `adaptive_launch(false)`).
    pub fn fixed_config(mut self, c: LaunchConfig) -> Self {
        self.config.fixed_config = Some(c);
        self.config.adaptive_launch = false;
        self
    }

    /// Shares an already-created [`TrainedPredictor`] handle instead of
    /// training privately — the handle's training device/seed/tiers win
    /// over this builder's. This is how a fleet of facades (one per pool
    /// device, or a serving layer) pays predictor training exactly once.
    pub fn predictor(mut self, handle: TrainedPredictor) -> Self {
        self.predictor = Some(handle);
        self
    }

    /// Finalises the framework instance.
    pub fn build(self) -> ScalFrag {
        let predictor = self.predictor.unwrap_or_else(|| {
            TrainedPredictor::train_once(
                &self.device,
                self.config.train_seed,
                self.config.train_tiers.clone(),
            )
        });
        ScalFrag { device: self.device, config: self.config, predictor }
    }
}

/// The end-to-end ScalFrag framework.
///
/// One instance is reusable across tensors and ranks; launch-parameter
/// predictors are trained lazily per rank and cached (the paper: "the
/// training needs to be performed only once").
pub struct ScalFrag {
    device: DeviceSpec,
    config: ScalFragConfig,
    predictor: TrainedPredictor,
}

impl ScalFrag {
    /// Starts a builder with the paper's defaults (RTX 3090, everything on).
    pub fn builder() -> ScalFragBuilder {
        ScalFragBuilder {
            device: DeviceSpec::rtx3090(),
            config: ScalFragConfig::default(),
            predictor: None,
        }
    }

    /// The simulated device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &ScalFragConfig {
        &self.config
    }

    /// The shared trained-predictor handle (clone it into other facades or
    /// a serving layer to reuse the trained models).
    pub fn trained_predictor(&self) -> &TrainedPredictor {
        &self.predictor
    }

    /// Selects the launch configuration for `(tensor, mode)` according to
    /// the active strategy.
    pub fn select_config(&self, tensor: &CooTensor, mode: usize, rank: u32) -> LaunchConfig {
        if self.config.adaptive_launch {
            let features = TensorFeatures::extract(tensor, mode).to_vec();
            self.predictor.for_rank(rank).predict_from_features(&features)
        } else {
            self.config.fixed_config.unwrap_or_else(|| LaunchConfig::parti_default(tensor.nnz()))
        }
    }

    fn kernel_choice(&self) -> KernelChoice {
        if self.config.balanced_kernel {
            KernelChoice::Balanced
        } else if self.config.mode_agnostic_kernel {
            KernelChoice::ModeAgnostic
        } else if self.config.tiled_kernel {
            KernelChoice::Tiled
        } else {
            KernelChoice::CooAtomic
        }
    }

    /// Runs one end-to-end MTTKRP (functional: the output is numerically
    /// real and validated against the CPU reference in the test suite).
    pub fn mttkrp(&self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> MttkrpReport {
        self.run(tensor, factors, mode, true)
    }

    /// Timing-only variant for large benchmark sweeps.
    pub fn mttkrp_dry(&self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> MttkrpReport {
        self.run(tensor, factors, mode, false)
    }

    fn run(
        &self,
        tensor: &CooTensor,
        factors: &FactorSet,
        mode: usize,
        functional: bool,
    ) -> MttkrpReport {
        let rank = factors.rank();
        let cfg = self.select_config(tensor, mode, rank as u32);
        let kernel = self.kernel_choice();
        let mut gpu = Gpu::new(self.device.clone());
        let stats = scalfrag_kernels::SegmentStats::compute(tensor, mode);
        let exec = if functional { ExecMode::Functional } else { ExecMode::Dry };

        let (run, segments, streams) = if self.config.hybrid && functional {
            let split = split_by_slice_population(tensor, mode, self.config.hybrid_threshold);
            let segs = self.config.segments.unwrap_or(4);
            let strs = self.config.streams.unwrap_or(4.min(segs.max(1)));
            let run =
                execute_hybrid(&mut gpu, &split, factors, mode, cfg, segs, strs, kernel, exec);
            (run, segs, strs)
        } else if self.config.pipelined {
            let mut sorted = tensor.clone();
            sorted.sort_for_mode(mode);
            let plan = match (self.config.segments, self.config.streams) {
                (Some(segs), streams) => {
                    PipelinePlan::new(&sorted, mode, cfg, segs, streams.unwrap_or(segs.min(4)))
                }
                (None, _) => {
                    PipelinePlan::auto(&sorted, mode, cfg, &self.device, factors.byte_size())
                }
            };
            let run = execute_pipelined(&mut gpu, &sorted, factors, &plan, kernel, exec);
            (run, plan.num_segments(), plan.num_streams)
        } else {
            let run = execute_sync(&mut gpu, tensor, factors, mode, cfg, kernel, exec);
            (run, 1, 1)
        };

        MttkrpReport {
            backend: "scalfrag",
            mode,
            rank,
            config: kernel.full_config(cfg, rank as u32),
            segments,
            streams,
            flops: stats.flops(rank as u32),
            timing: PhaseTiming::from_timeline(&run.timeline),
            overlap_ratio: run.timeline.overlap_ratio(),
            output: run.output,
        }
    }

    /// An [`MttkrpBackend`] view of this framework (for CPD-ALS), which
    /// also accumulates the simulated device seconds spent.
    pub fn backend(&self) -> ScalFragBackend<'_> {
        ScalFragBackend { ctx: self, simulated_seconds: 0.0 }
    }
}

/// CPD-ALS backend adapter for [`ScalFrag`].
pub struct ScalFragBackend<'a> {
    ctx: &'a ScalFrag,
    /// Total simulated device time over all MTTKRP calls.
    pub simulated_seconds: f64,
}

impl MttkrpBackend for ScalFragBackend<'_> {
    fn name(&self) -> &'static str {
        "scalfrag"
    }

    fn mttkrp(&mut self, tensor: &CooTensor, factors: &FactorSet, mode: usize) -> Mat {
        let report = self.ctx.mttkrp(tensor, factors, mode);
        self.simulated_seconds += report.timing.total_s;
        report.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalfrag_kernels::reference::mttkrp_seq;

    fn small() -> (CooTensor, FactorSet) {
        let dims = [150u32, 100, 80];
        let t = scalfrag_tensor::gen::zipf_slices(&dims, 8_000, 0.9, 51);
        let f = FactorSet::random(&dims, 16, 52);
        (t, f)
    }

    #[test]
    fn full_stack_output_matches_reference() {
        let (t, f) = small();
        // Fixed config avoids predictor training in the unit test.
        let ctx =
            ScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).segments(4).build();
        let r = ctx.mttkrp(&t, &f, 0);
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(r.output.max_abs_diff(&expect) < 1e-2, "diff {}", r.output.max_abs_diff(&expect));
        assert!(r.timing.total_s > 0.0);
        assert_eq!(r.segments, 4);
        assert!(r.config.shared_mem_per_block > 0, "tiled kernel requests smem");
    }

    #[test]
    fn hybrid_stack_output_matches_reference() {
        let (t, f) = small();
        // With avg ~50 nnz per slice, a threshold of 30 guarantees a
        // non-empty host tail on the Zipf tensor.
        let ctx = ScalFrag::builder()
            .fixed_config(LaunchConfig::new(1024, 256))
            .hybrid(true)
            .hybrid_threshold(30)
            .build();
        let r = ctx.mttkrp(&t, &f, 0);
        let expect = mttkrp_seq(&t, &f, 0);
        assert!(r.output.max_abs_diff(&expect) < 1e-2);
        assert!(r.timing.host_s > 0.0, "hybrid must use the host engine");
    }

    #[test]
    fn sync_ablation_runs() {
        let (t, f) = small();
        let ctx =
            ScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).pipelined(false).build();
        let r = ctx.mttkrp(&t, &f, 1);
        assert_eq!(r.segments, 1);
        assert!(r.overlap_ratio < 0.05);
        let expect = mttkrp_seq(&t, &f, 1);
        assert!(r.output.max_abs_diff(&expect) < 1e-2);
    }

    #[test]
    fn balance_arms_match_reference_end_to_end() {
        let (t, f) = small();
        for (balanced, agnostic) in [(true, false), (false, true)] {
            let ctx = ScalFrag::builder()
                .fixed_config(LaunchConfig::new(1024, 256))
                .pipelined(false)
                .balanced_kernel(balanced)
                .mode_agnostic_kernel(agnostic)
                .build();
            for mode in 0..3 {
                let r = ctx.mttkrp(&t, &f, mode);
                let expect = mttkrp_seq(&t, &f, mode);
                assert!(
                    r.output.max_abs_diff(&expect) < 1e-2,
                    "balanced={balanced} agnostic={agnostic} mode={mode}: {}",
                    r.output.max_abs_diff(&expect)
                );
                assert_eq!(r.config.shared_mem_per_block, 0, "balance arms use no smem tile");
            }
        }
    }

    #[test]
    fn backend_drives_cpd() {
        let (t, f) = small();
        let _ = f;
        let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(512, 256)).segments(2).build();
        let mut backend = ctx.backend();
        let opts = scalfrag_kernels::CpdOptions {
            rank: 4,
            max_iters: 2,
            tol: 0.0,
            seed: 3,
            nonnegative: false,
        };
        let res = scalfrag_kernels::cpd_als(&t, &opts, &mut backend);
        assert_eq!(res.iters, 2);
        assert!(res.final_fit().is_finite());
        assert!(backend.simulated_seconds > 0.0);
    }

    #[test]
    fn dry_run_times_without_computing() {
        let (t, f) = small();
        let ctx = ScalFrag::builder().fixed_config(LaunchConfig::new(1024, 256)).build();
        let r = ctx.mttkrp_dry(&t, &f, 0);
        assert!(r.timing.total_s > 0.0);
        assert_eq!(r.output.frob_norm(), 0.0);
    }

    #[test]
    fn adaptive_launch_trains_once_and_selects_valid_configs() {
        let (t, f) = small();
        let ctx = ScalFrag::builder().train_tiers(vec![3_000, 12_000]).build();
        let c1 = ctx.select_config(&t, 0, f.rank() as u32);
        let c2 = ctx.select_config(&t, 0, f.rank() as u32);
        assert_eq!(c1, c2, "cached predictor must be deterministic");
        assert!(c1.validate(ctx.device()).is_ok());
        assert_eq!(ctx.trained_predictor().trainings(), 1);
    }

    #[test]
    fn shared_predictor_handle_trains_once_across_facades() {
        let (t, f) = small();
        let rank = f.rank() as u32;
        let handle =
            TrainedPredictor::train_once(&DeviceSpec::rtx3090(), 0x5ca1, Some(vec![3_000, 12_000]));
        let a = ScalFrag::builder().predictor(handle.clone()).build();
        let b = ScalFrag::builder().predictor(handle.clone()).build();
        assert_eq!(a.select_config(&t, 0, rank), b.select_config(&t, 0, rank));
        assert_eq!(handle.trainings(), 1, "two facades, one training");
    }
}
