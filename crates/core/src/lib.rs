//! # scalfrag-core
//!
//! The end-to-end ScalFrag framework (§IV-A, Fig. 6) and the ParTI
//! baseline it is evaluated against (§V-A3).
//!
//! [`ScalFrag`] wires the whole stack together: feature extraction →
//! adaptive launch selection (trained DecisionTree predictor) → mode
//! sorting and slice-aligned segmentation → pipelined stream execution of
//! the tiled kernel → optional CPU–GPU hybrid split. Every stage can be
//! ablated through [`ScalFragConfig`], which is how the benchmark
//! harnesses isolate each contribution.
//!
//! [`Parti`] reproduces the baseline strategy: the nnz-parallel atomic COO
//! kernel at ParTI's suggested launch heuristic, executed synchronously
//! (whole-tensor H2D → kernel → D2H).
//!
//! [`ClusterScalFrag`] lifts the same stack onto a multi-GPU node: the
//! tensor is sharded, shards are scheduled onto `N` simulated devices
//! behind an interconnect model, and partial outputs are reduced.

pub mod cluster;
pub mod parti;
pub mod report;
pub mod scalfrag;

pub use cluster::{
    ClusterConfig, ClusterMttkrpReport, ClusterScalFrag, ClusterScalFragBuilder,
    ResilientClusterMttkrpReport,
};
pub use parti::{plan_builders, Parti};
pub use report::{MttkrpReport, PhaseTiming};
pub use scalfrag::{ScalFrag, ScalFragBuilder, ScalFragConfig};
