//! Conformance-level driver for the gpusim race checker.
//!
//! Runs every kernel's write trace (see `scalfrag_kernels::race`) over a
//! tensor and launch configuration, and packages the per-kernel
//! [`RaceReport`]s plus the mutant self-test CI gates on: the checker must
//! *catch* the deliberately-racy mutants on a contended tensor — the
//! plain-store COO kernel, and the segmented-scan kernel with its carry
//! applied as a plain store to the shared output row — and must *pass*
//! every shipped kernel: a checker that cannot catch the mutants proves
//! nothing by passing the real kernels.

use scalfrag_balance::{CHUNK_LEN, FLYCOO_SEG_LEN};
use scalfrag_gpusim::{AccessLog, LaunchConfig, RaceReport};
use scalfrag_kernels::race::{
    trace_balanced, trace_bcsf, trace_coo, trace_csf, trace_fcoo, trace_flycoo, trace_hicoo,
    trace_racy_balanced_carry, trace_racy_coo, trace_tiled,
};
use scalfrag_kernels::BcsfKernel;
use scalfrag_tensor::{
    gen, ChunkedTensor, CooTensor, CsfTensor, FCooTensor, FlycooTensor, HiCooTensor,
};

/// One kernel's race verdict.
pub struct RaceVerdict {
    /// Kernel name (matches the kernel's `NAME` constant).
    pub kernel: &'static str,
    /// The checker's report for this kernel's trace.
    pub report: RaceReport,
}

/// Traces every shipped kernel over `tensor` and checks each for races.
pub fn check_all_kernels(
    tensor: &CooTensor,
    mode: usize,
    rank: usize,
    cfg: LaunchConfig,
) -> Vec<RaceVerdict> {
    let mut sorted = tensor.clone();
    sorted.sort_for_mode(mode);
    let mut verdicts = Vec::new();

    let mut log = AccessLog::new();
    trace_coo(tensor, mode, rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "coo-atomic", report: log.check() });

    let mut log = AccessLog::new();
    trace_tiled(&sorted, mode, rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "scalfrag-tiled", report: log.check() });

    let mut log = AccessLog::new();
    trace_csf(&CsfTensor::from_coo(tensor, mode), rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "csf-fiber", report: log.check() });

    let mut log = AccessLog::new();
    let split = BcsfKernel::split(&sorted, mode, 64);
    trace_bcsf(&sorted, mode, &split, rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "bcsf-heavy-light", report: log.check() });

    let mut log = AccessLog::new();
    trace_hicoo(&HiCooTensor::from_coo(tensor, 3), mode, rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "hicoo-block", report: log.check() });

    let mut log = AccessLog::new();
    trace_fcoo(&FCooTensor::from_coo(tensor, mode, 128), rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "fcoo-segreduce", report: log.check() });

    let mut log = AccessLog::new();
    trace_balanced(&ChunkedTensor::from_coo(tensor, mode, CHUNK_LEN), rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "balance-segscan", report: log.check() });

    let mut log = AccessLog::new();
    trace_flycoo(&FlycooTensor::from_coo(tensor, FLYCOO_SEG_LEN), mode, rank, cfg, &mut log);
    verdicts.push(RaceVerdict { kernel: "balance-flycoo", report: log.check() });

    verdicts
}

/// The CI self-test: the mutant must be caught, the shipped kernels must
/// all be clean. Returns a descriptive error naming the first violation.
pub fn self_test() -> Result<(), String> {
    // Skewed tensor: many entries per slice guarantees cross-thread
    // contention on output rows, so the mutant cannot slip through.
    let tensor = gen::zipf_slices(&[48, 32, 24], 4_000, 1.2, 1301);
    let cfg = LaunchConfig::new(16, 64);
    let rank = 8;

    let mut log = AccessLog::new();
    trace_racy_coo(&tensor, 0, rank, cfg, &mut log);
    let mutant = log.check();
    if mutant.is_race_free() {
        return Err("race checker failed to catch the plain-store COO mutant".into());
    }

    // Second mutant: the segmented-scan kernel with its carry applied as a
    // plain store to the shared output row instead of through the carry
    // cells + single resolver. A small chunk length guarantees cut rows.
    let mut log = AccessLog::new();
    let chunked = ChunkedTensor::from_coo(&tensor, 0, 64);
    if chunked.boundary_rows().is_empty() {
        return Err("self-test tensor produced no cut rows; mutant check is vacuous".into());
    }
    trace_racy_balanced_carry(&chunked, rank, cfg, &mut log);
    if log.check().is_race_free() {
        return Err("race checker failed to catch the plain-store segscan carry mutant".into());
    }

    for mode in 0..tensor.order() {
        for v in check_all_kernels(&tensor, mode, rank, cfg) {
            if !v.report.is_race_free() {
                return Err(format!(
                    "kernel {} mode {mode} flagged by race checker: {}",
                    v.kernel,
                    v.report.summary()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().unwrap();
    }

    #[test]
    fn verdicts_cover_all_kernels() {
        let t = gen::uniform(&[16, 12, 10], 400, 3);
        let names: Vec<_> = check_all_kernels(&t, 0, 4, LaunchConfig::new(4, 32))
            .into_iter()
            .map(|v| v.kernel)
            .collect();
        assert_eq!(
            names,
            vec![
                "coo-atomic",
                "scalfrag-tiled",
                "csf-fiber",
                "bcsf-heavy-light",
                "hicoo-block",
                "fcoo-segreduce",
                "balance-segscan",
                "balance-flycoo"
            ]
        );
    }
}
