//! The differential runner: every backend × every corpus case × every
//! mode, compared against the `f64` oracle under a per-case ULP tolerance.
//!
//! ## Tolerance model
//!
//! All generated values and factors are strictly positive, so the MTTKRP
//! sum has no cancellation and the standard summation bound applies: an
//! `f32` kernel that accumulates `n` terms into an output element in any
//! order differs from the exact sum by at most ~`n` ULP, plus a couple of
//! ULP per term for the factor-product multiplies. The per-case budget is
//! therefore
//!
//! ```text
//! tol(case, mode) = 16 + 4 · max_row_terms(case, mode)
//! ```
//!
//! where `max_row_terms` is the largest number of non-zeros any output row
//! accumulates. The slack factor 4 covers product rounding and reduction
//! trees; genuine bugs are orders of magnitude past it (a double
//! accumulation lands ~2²³ ULP out, a dropped entry similarly).

use crate::backends::Backend;
use crate::gen::TensorCase;
use crate::oracle::oracle_mttkrp;
use crate::ulp::max_ulp;
use scalfrag_kernels::FactorSet;
use scalfrag_tensor::CooTensor;

/// ULP budget for one (tensor, mode) pair. Public so tests can assert the
/// policy, not just its effects.
pub fn tolerance_for(tensor: &CooTensor, mode: usize) -> u64 {
    let mut per_row = vec![0u64; tensor.dims()[mode] as usize];
    for &i in tensor.mode_indices(mode) {
        per_row[i as usize] += 1;
    }
    16 + 4 * per_row.iter().copied().max().unwrap_or(0)
}

/// Where a backend first left tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Corpus case name.
    pub case: String,
    /// MTTKRP mode.
    pub mode: usize,
    /// Output coordinates of the offending element.
    pub row: usize,
    pub col: usize,
    /// Oracle value.
    pub expected: f32,
    /// Backend value.
    pub actual: f32,
    /// ULP distance between them.
    pub ulp: u64,
    /// The budget it exceeded.
    pub tolerance: u64,
}

/// One backend's verdict over the whole corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendVerdict {
    /// Backend name as registered.
    pub backend: String,
    /// (case × mode) pairs executed.
    pub comparisons: usize,
    /// Largest ULP distance observed anywhere (within or beyond budget).
    pub max_ulp: u64,
    /// Case/mode where `max_ulp` occurred.
    pub worst_case: Option<String>,
    /// First out-of-tolerance element, if any.
    pub first_divergence: Option<Divergence>,
}

impl BackendVerdict {
    /// True when every comparison stayed inside its ULP budget.
    pub fn pass(&self) -> bool {
        self.first_divergence.is_none()
    }
}

/// The structured result of a differential run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConformanceReport {
    /// One verdict per backend, in registration order.
    pub verdicts: Vec<BackendVerdict>,
    /// Corpus cases covered.
    pub cases: usize,
}

impl ConformanceReport {
    /// True when every backend passed.
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(BackendVerdict::pass)
    }

    /// The one-line-per-backend PASS/FAIL table CI prints.
    pub fn table(&self) -> String {
        let width = self.verdicts.iter().map(|v| v.backend.len()).max().unwrap_or(8).max(8);
        let mut out = format!(
            "{:<width$}  {:>6}  {:>8}  {}\n",
            "backend",
            "result",
            "max-ulp",
            "detail",
            width = width
        );
        for v in &self.verdicts {
            let (result, detail) = match &v.first_divergence {
                None => ("PASS".to_string(), format!("{} comparisons", v.comparisons)),
                Some(d) => (
                    "FAIL".to_string(),
                    format!(
                        "{} mode {} @ ({},{}): {} vs {} ({} ulp > {})",
                        d.case, d.mode, d.row, d.col, d.expected, d.actual, d.ulp, d.tolerance
                    ),
                ),
            };
            out.push_str(&format!(
                "{:<width$}  {:>6}  {:>8}  {}\n",
                v.backend,
                result,
                v.max_ulp,
                detail,
                width = width
            ));
        }
        out
    }
}

/// Runs `backends` over `cases` (every mode of every case) against the
/// oracle. Factor seeds derive from `seed` so the whole run is replayable.
pub fn run_differential(
    backends: &[Backend],
    cases: &[TensorCase],
    seed: u64,
) -> ConformanceReport {
    let mut verdicts: Vec<BackendVerdict> = backends
        .iter()
        .map(|b| BackendVerdict {
            backend: b.name.to_string(),
            comparisons: 0,
            max_ulp: 0,
            worst_case: None,
            first_divergence: None,
        })
        .collect();

    for (ci, case) in cases.iter().enumerate() {
        for mode in 0..case.tensor.order() {
            let factors =
                FactorSet::random(case.tensor.dims(), case.rank, seed ^ ((ci as u64) << 8));
            let expected = oracle_mttkrp(&case.tensor, &factors, mode);
            let tol = tolerance_for(&case.tensor, mode);
            for (b, v) in backends.iter().zip(&mut verdicts) {
                let actual = (b.run)(&case.tensor, &factors, mode);
                v.comparisons += 1;
                assert_eq!(
                    (actual.rows(), actual.cols()),
                    (expected.rows(), expected.cols()),
                    "{}: output shape mismatch on {} mode {mode}",
                    b.name,
                    case.name
                );
                let worst = max_ulp(expected.as_slice(), actual.as_slice());
                if worst.max_ulp > v.max_ulp {
                    v.max_ulp = worst.max_ulp;
                    v.worst_case = Some(format!("{} mode {mode}", case.name));
                }
                if worst.max_ulp > tol && v.first_divergence.is_none() {
                    let at = worst.at.unwrap_or(0);
                    let (row, col) = (at / expected.cols(), at % expected.cols());
                    v.first_divergence = Some(Divergence {
                        case: case.name.clone(),
                        mode,
                        row,
                        col,
                        expected: expected.as_slice()[at],
                        actual: actual.as_slice()[at],
                        ulp: worst.max_ulp,
                        tolerance: tol,
                    });
                }
            }
        }
    }

    ConformanceReport { verdicts, cases: cases.len() }
}

/// One (case, mode) unit's verdict fragment for one backend — everything
/// the submission-order fold needs, computed without any shared state.
struct UnitVerdict {
    max_ulp: u64,
    label: String,
    divergence: Option<Divergence>,
}

/// The parallel corpus runner: (case, mode) pairs fan out across the
/// `scalfrag-host` pool and each unit runs every backend against the
/// oracle independently; the per-unit fragments then fold **in (case,
/// mode) submission order** with exactly [`run_differential`]'s verdict
/// logic (strictly-greater `max_ulp` update, first-wins divergence).
/// The returned report is therefore identical to the sequential runner's
/// — same `max_ulp`, same `worst_case`, same `first_divergence` fields —
/// at every pool size, which `tests/conformance.rs` pins.
pub fn run_differential_parallel(
    backends: &[Backend],
    cases: &[TensorCase],
    seed: u64,
) -> ConformanceReport {
    let units: Vec<(usize, usize)> = cases
        .iter()
        .enumerate()
        .flat_map(|(ci, case)| (0..case.tensor.order()).map(move |mode| (ci, mode)))
        .collect();

    let fragments: Vec<Vec<UnitVerdict>> = scalfrag_host::par_map(units.len(), |u| {
        let (ci, mode) = units[u];
        let case = &cases[ci];
        let factors = FactorSet::random(case.tensor.dims(), case.rank, seed ^ ((ci as u64) << 8));
        let expected = oracle_mttkrp(&case.tensor, &factors, mode);
        let tol = tolerance_for(&case.tensor, mode);
        backends
            .iter()
            .map(|b| {
                let actual = (b.run)(&case.tensor, &factors, mode);
                assert_eq!(
                    (actual.rows(), actual.cols()),
                    (expected.rows(), expected.cols()),
                    "{}: output shape mismatch on {} mode {mode}",
                    b.name,
                    case.name
                );
                let worst = max_ulp(expected.as_slice(), actual.as_slice());
                let divergence = (worst.max_ulp > tol).then(|| {
                    let at = worst.at.unwrap_or(0);
                    Divergence {
                        case: case.name.clone(),
                        mode,
                        row: at / expected.cols(),
                        col: at % expected.cols(),
                        expected: expected.as_slice()[at],
                        actual: actual.as_slice()[at],
                        ulp: worst.max_ulp,
                        tolerance: tol,
                    }
                });
                UnitVerdict {
                    max_ulp: worst.max_ulp,
                    label: format!("{} mode {mode}", case.name),
                    divergence,
                }
            })
            .collect()
    });

    let mut verdicts: Vec<BackendVerdict> = backends
        .iter()
        .map(|b| BackendVerdict {
            backend: b.name.to_string(),
            comparisons: 0,
            max_ulp: 0,
            worst_case: None,
            first_divergence: None,
        })
        .collect();
    for fragment in fragments {
        for (v, u) in verdicts.iter_mut().zip(fragment) {
            v.comparisons += 1;
            if u.max_ulp > v.max_ulp {
                v.max_ulp = u.max_ulp;
                v.worst_case = Some(u.label);
            }
            if v.first_divergence.is_none() {
                v.first_divergence = u.divergence;
            }
        }
    }
    ConformanceReport { verdicts, cases: cases.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::Backend;
    use crate::gen::smoke_corpus;
    use scalfrag_linalg::Mat;

    #[test]
    fn tolerance_tracks_row_population() {
        let t = CooTensor::from_entries(
            &[4, 2, 2],
            &[
                (vec![0, 0, 0], 0.5),
                (vec![0, 1, 1], 0.5),
                (vec![0, 0, 1], 0.5),
                (vec![3, 0, 0], 0.5),
            ],
        );
        assert_eq!(tolerance_for(&t, 0), 16 + 4 * 3);
        let empty = CooTensor::new(&[4, 4, 4]);
        assert_eq!(tolerance_for(&empty, 0), 16);
    }

    #[test]
    fn broken_backend_is_flagged_with_coordinates() {
        // A backend that doubles the oracle: the classic double
        // accumulation. Must FAIL with a populated divergence.
        let double = Backend {
            name: "mutant-double",
            run: Box::new(|t, f, mode| {
                let mut y = oracle_mttkrp(t, f, mode);
                y.scale(2.0);
                y
            }),
        };
        let zero = Backend { name: "honest-oracle", run: Box::new(oracle_mttkrp) };
        let cases: Vec<_> =
            smoke_corpus(5).into_iter().filter(|c| c.tensor.nnz() > 0).take(2).collect();
        let report = run_differential(&[zero, double], &cases, 5);
        assert!(report.verdicts[0].pass(), "oracle vs itself: {}", report.table());
        let v = &report.verdicts[1];
        assert!(!v.pass());
        let d = v.first_divergence.as_ref().unwrap();
        assert!(d.ulp > 1_000_000, "doubling is a huge ULP error, got {}", d.ulp);
        assert!(report.table().contains("FAIL"));
        assert!(!report.all_pass());
    }

    #[test]
    fn shape_checked_before_values() {
        let bad = Backend { name: "wrong-shape", run: Box::new(|_, f, _| Mat::zeros(1, f.rank())) };
        let cases: Vec<_> =
            smoke_corpus(9).into_iter().filter(|c| c.tensor.nnz() > 0).take(1).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_differential(&[bad], &cases, 9)
        }));
        assert!(result.is_err(), "shape mismatch must panic loudly");
    }
}
